//! Microarchitectural hotspot analysis (the paper's headline use case):
//! runs every workload on all three BOOM configurations and ranks the
//! power-hungriest components, reproducing the paper's key takeaways
//! (branch predictor first, scheduler second).
//!
//! ```sh
//! cargo run --release --example hotspots
//! ```

use boom_uarch::BoomConfig;
use boomflow::{run_simpoint_flow, FlowConfig};
use rtl_power::Component;
use rv_workloads::{all, Scale};

fn main() {
    let workloads = all(Scale::Small);
    let flow = FlowConfig::default();
    for cfg in BoomConfig::all_three() {
        println!("=== {} ===", cfg.name);
        let mut means: Vec<(Component, f64)> =
            Component::ANALYZED.iter().map(|c| (*c, 0.0)).collect();
        let mut tile = 0.0;
        for w in &workloads {
            let r = run_simpoint_flow(&cfg, w, &flow).expect("flow failed");
            for (c, acc) in &mut means {
                *acc += r.power.component(*c).total_mw();
            }
            tile += r.tile_power_mw();
        }
        let n = workloads.len() as f64;
        for (_, acc) in &mut means {
            *acc /= n;
        }
        tile /= n;
        means.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!("  mean tile power: {tile:.1} mW; hotspots:");
        for (rank, (c, mw)) in means.iter().take(5).enumerate() {
            println!(
                "  #{} {:<18} {:>6.2} mW ({:>4.1}% of tile)",
                rank + 1,
                c.name(),
                mw,
                100.0 * mw / tile
            );
        }
        println!();
    }
    println!("Paper Key Takeaway #7: the branch predictor should rank #1 everywhere;");
    println!("Key Takeaway #4: the scheduler (issue queues) and D-cache should follow.");
}
