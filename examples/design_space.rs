//! Design-space exploration: sweep a microarchitectural parameter and
//! watch the power/performance trade-off move — the "what should the next
//! BOOM change" question the paper's takeaways feed.
//!
//! Sweeps the integer issue-queue size on LargeBOOM (Key Takeaways #4/#5)
//! and the branch-predictor flavour (Key Takeaway #7).
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use boom_uarch::{BoomConfig, PredictorKind};
use boomflow::{run_simpoint_flow, FlowConfig};
use rtl_power::Component;
use rv_workloads::{by_name, Scale};

fn main() {
    let flow = FlowConfig::default();
    let dijkstra = by_name("dijkstra", Scale::Small).expect("dijkstra is a registered workload");

    println!("--- Integer issue-queue sweep (LargeBOOM, Dijkstra) ---");
    println!("{:>6} {:>8} {:>12} {:>12}", "slots", "IPC", "IQ mW", "IPC/W");
    for slots in [16usize, 24, 32, 40, 48] {
        let mut cfg = BoomConfig::large();
        cfg.int_issue_slots = slots;
        let r = run_simpoint_flow(&cfg, &dijkstra, &flow).expect("flow failed");
        println!(
            "{:>6} {:>8.2} {:>12.2} {:>12.1}",
            slots,
            r.ipc,
            r.power.component(Component::IntIssue).total_mw(),
            r.perf_per_watt()
        );
    }

    println!();
    println!("--- Branch predictor flavour (all configs, Dijkstra) ---");
    println!("{:>12} {:>9} {:>8} {:>9} {:>10}", "config", "predictor", "IPC", "BP mW", "IPC/W");
    for base in BoomConfig::all_three() {
        for kind in [PredictorKind::Tage, PredictorKind::Gshare] {
            let cfg = base.clone().with_predictor(kind);
            let r = run_simpoint_flow(&cfg, &dijkstra, &flow).expect("flow failed");
            println!(
                "{:>12} {:>9} {:>8.2} {:>9.2} {:>10.1}",
                base.name,
                format!("{kind:?}"),
                r.ipc,
                r.power.component(Component::BranchPredictor).total_mw(),
                r.perf_per_watt()
            );
        }
    }
    println!();
    println!("The sweep shows the paper's trade-offs: bigger queues buy IPC at a");
    println!("super-linear power cost, and TAGE buys accuracy for ~2.5x the BP power.");
}
