//! Quickstart: run one workload through the full SimPoint power/performance
//! flow on one BOOM configuration and print the paper-style summary.
//!
//! ```sh
//! cargo run --release --example quickstart [workload] [medium|large|mega]
//! ```

use boom_uarch::BoomConfig;
use boomflow::{run_simpoint_flow, FlowConfig};
use rtl_power::Component;
use rv_workloads::{by_name, Scale};

fn main() {
    let workload_name = std::env::args().nth(1).unwrap_or_else(|| "sha".to_string());
    let cfg = match std::env::args().nth(2).as_deref() {
        Some("large") => BoomConfig::large(),
        Some("mega") => BoomConfig::mega(),
        _ => BoomConfig::medium(),
    };
    let workload = by_name(&workload_name, Scale::Small)
        .unwrap_or_else(|| panic!("unknown workload `{workload_name}`"));

    println!("Running {} on {} through the SimPoint flow...", workload.name, cfg.name);
    let r = run_simpoint_flow(&cfg, &workload, &FlowConfig::default()).expect("flow failed");

    println!();
    println!("workload           : {} ({} dynamic instructions)", r.name, r.total_insts);
    println!(
        "simulation points  : {} x {} instructions ({:.0}% coverage)",
        r.points.len(),
        r.interval_size,
        100.0 * r.coverage
    );
    println!("detailed-sim budget: {:.0}x smaller than full simulation", r.speedup);
    println!("IPC                : {:.2}", r.ipc);
    println!("BOOM tile power    : {:.2} mW @ 500 MHz", r.tile_power_mw());
    println!("performance/watt   : {:.1} IPC/W", r.perf_per_watt());
    println!();
    println!(
        "{:<18} {:>9} {:>9} {:>9} {:>9}",
        "component", "leak mW", "int mW", "switch mW", "total mW"
    );
    for c in Component::ALL {
        let p = r.power.component(c);
        println!(
            "{:<18} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            c.name(),
            p.leakage_mw,
            p.internal_mw,
            p.switching_mw,
            p.total_mw()
        );
    }
}
