//! Disassemble a workload's text section and print its static instruction
//! mix — a small demonstration of the `rv-isa` decode/disassembly API.
//!
//! ```sh
//! cargo run --release --example disasm -- sha | head -40
//! ```

use rv_isa::decode;
use rv_isa::inst::Inst;
use rv_workloads::{by_name, Scale};
use std::collections::BTreeMap;

fn class_of(inst: &Inst) -> &'static str {
    match inst {
        Inst::Branch { .. } => "branch",
        Inst::Jal { .. } | Inst::Jalr { .. } => "jump",
        Inst::Load { .. } | Inst::FpLoad { .. } => "load",
        Inst::Store { .. } | Inst::FpStore { .. } => "store",
        Inst::MulDiv { .. } => "mul/div",
        Inst::FpOp { .. } | Inst::FpFma { .. } | Inst::FpCmp { .. } => "fp-arith",
        Inst::FpCvtToInt { .. }
        | Inst::FpCvtFromInt { .. }
        | Inst::FpCvtFmt { .. }
        | Inst::FpMvToInt { .. }
        | Inst::FpMvFromInt { .. } => "fp-move/cvt",
        Inst::Lui { .. } | Inst::Auipc { .. } => "const",
        Inst::Fence | Inst::Ecall | Inst::Ebreak => "system",
        _ => "int-alu",
    }
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "sha".to_string());
    let w = by_name(&name, Scale::Test).unwrap_or_else(|| panic!("unknown workload `{name}`"));
    let program = &w.program;

    let mut mix: BTreeMap<&'static str, usize> = BTreeMap::new();
    let base = program.base();
    for (i, word) in program.image()[..program.text_len()].chunks_exact(4).enumerate() {
        let pc = base + 4 * i as u64;
        let word = u32::from_le_bytes(word.try_into().expect("4-byte chunk"));
        let inst = decode(word).expect("text section decodes");
        *mix.entry(class_of(&inst)).or_default() += 1;
        println!("{pc:#010x}:  {word:08x}  {inst}");
    }

    eprintln!("\n{} static instructions; mix:", program.inst_count());
    for (class, count) in mix {
        eprintln!(
            "  {class:<12} {count:>5}  ({:>4.1}%)",
            100.0 * count as f64 / program.inst_count() as f64
        );
    }
}
