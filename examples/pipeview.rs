//! Dump a Konata-format pipeline trace (BOOM's "pipeview") for the first
//! instructions of a workload — open the output file in the Konata viewer
//! to watch dispatch/issue/execute/commit and misprediction flushes.
//!
//! ```sh
//! cargo run --release --example pipeview -- dijkstra mega 2000 > trace.kanata
//! ```

use boom_uarch::{BoomConfig, Core};
use rv_workloads::{by_name, Scale};

fn main() {
    let workload_name = std::env::args().nth(1).unwrap_or_else(|| "dijkstra".to_string());
    let cfg = match std::env::args().nth(2).as_deref() {
        Some("medium") => BoomConfig::medium(),
        Some("large") => BoomConfig::large(),
        _ => BoomConfig::mega(),
    };
    let insts: u64 = std::env::args().nth(3).and_then(|s| s.parse().ok()).unwrap_or(2_000);
    let w = by_name(&workload_name, Scale::Test)
        .unwrap_or_else(|| panic!("unknown workload `{workload_name}`"));

    let mut core = Core::new(cfg, &w.program);
    core.attach_tracer();
    let r = core.run(insts);
    eprintln!(
        "traced {} committed instructions over {} cycles (IPC {:.2}, {} squashed)",
        r.retired,
        r.cycles,
        core.stats().ipc(),
        core.stats().squashed
    );
    print!("{}", core.take_trace().expect("tracer attached"));
}
