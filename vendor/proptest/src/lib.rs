//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace patches
//! `proptest` with this minimal implementation of the API surface its
//! property tests use: the `proptest!` macro (with an optional
//! `#![proptest_config(..)]` header), `Strategy`/`prop_map`, `Just`,
//! numeric range strategies, tuple strategies, `any::<T>()`,
//! `collection::vec`, `prop_oneof!`, and the `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//! - cases are generated from a fixed per-case seed, so runs are fully
//!   deterministic (no `PROPTEST_*` environment handling);
//! - there is no shrinking — a failing case reports its panic directly;
//! - `.proptest-regressions` files are ignored.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let draw = (rng.next_u64() as u128) % span;
                    self.start.wrapping_add(draw as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                    let draw = (rng.next_u64() as u128) % span;
                    start.wrapping_add(draw as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Object-safe view of a strategy, for `prop_oneof!` arms.
    pub trait DynStrategy<T> {
        /// Draws one value.
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Uniform choice among heterogeneous strategies with one value type
    /// (the result of `prop_oneof!`).
    #[derive(Clone)]
    pub struct Union<T> {
        arms: Vec<Rc<dyn DynStrategy<T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union from already-boxed arms.
        pub fn new(arms: Vec<Rc<dyn DynStrategy<T>>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }

        /// Boxes one arm.
        pub fn arm<S: Strategy<Value = T> + 'static>(s: S) -> Rc<dyn DynStrategy<T>> {
            Rc::new(s)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[idx].generate_dyn(rng)
        }
    }

    /// The strategy behind [`crate::arbitrary::any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Any<T> {
        /// Creates the strategy.
        pub fn new() -> Any<T> {
            Any(std::marker::PhantomData)
        }
    }

    macro_rules! impl_any {
        ($($t:ty => $body:expr),* $(,)?) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let f: fn(&mut TestRng) -> $t = $body;
                    f(rng)
                }
            }
        )*};
    }

    impl_any! {
        bool => |r| r.next_u64() & 1 == 1,
        u8 => |r| r.next_u64() as u8,
        u16 => |r| r.next_u64() as u16,
        u32 => |r| r.next_u64() as u32,
        u64 => |r| r.next_u64(),
        u128 => |r| (r.next_u64() as u128) << 64 | r.next_u64() as u128,
        usize => |r| r.next_u64() as usize,
        i8 => |r| r.next_u64() as i8,
        i16 => |r| r.next_u64() as i16,
        i32 => |r| r.next_u64() as i32,
        i64 => |r| r.next_u64() as i64,
        i128 => |r| ((r.next_u64() as u128) << 64 | r.next_u64() as u128) as i128,
        isize => |r| r.next_u64() as isize,
        f64 => |r| f64::from_bits(r.next_u64()),
    }
}

pub mod arbitrary {
    use crate::strategy::Any;

    /// Returns the canonical strategy for `T` (primitives only here).
    pub fn any<T>() -> Any<T>
    where
        Any<T>: crate::strategy::Strategy<Value = T>,
    {
        Any::new()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A size specification for [`vec`].
    pub trait SizeRange {
        /// Draws a length.
        fn draw(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn draw(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// A strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Deterministic generator driving every test case (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the generator for one (test, case) pair.
        pub fn for_case(case: u32) -> TestRng {
            TestRng { state: 0xB0F0_F10E_5EED_0000 ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Runner configuration (`#![proptest_config(..)]`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
        /// Accepted for upstream compatibility; unused (no shrinking here).
        pub max_shrink_iters: u32,
        /// Accepted for upstream compatibility; unused.
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64, max_shrink_iters: 0, max_global_rejects: 0 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines deterministic property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    (($cfg:expr)) => {};
}

/// Uniform choice among strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Union::arm($arm)),+])
    };
}

/// Asserts a condition inside a property (fails the case on violation).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// Ranges, tuples, maps, unions, and vecs all stay in bounds.
        #[test]
        fn combinators_stay_in_bounds(
            x in 3u32..9,
            y in -2048i32..=2047,
            pair in (0u64..10, any::<bool>()),
            v in crate::collection::vec(0usize..5, 1..8),
            choice in prop_oneof![Just(1u8), Just(2u8), (3u8..5).prop_map(|b| b)],
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2048..=2047).contains(&y));
            prop_assert!(pair.0 < 10);
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 5));
            prop_assert!((1..5).contains(&choice));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let strat = (0u64..1000, 0u64..1000);
        let mut a = crate::test_runner::TestRng::for_case(3);
        let mut b = crate::test_runner::TestRng::for_case(3);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
