//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace patches
//! `criterion` with this minimal benchmarking harness implementing the API
//! the workspace's benches use: `criterion_group!`/`criterion_main!`,
//! `Criterion::{default, sample_size, bench_function, benchmark_group}`,
//! `BenchmarkGroup::{throughput, bench_function, finish}`,
//! `Throughput::Elements`, `Bencher::iter`, and `black_box`.
//!
//! It reports mean wall-clock time per iteration (and element throughput
//! when configured) without statistics, plots, or comparisons.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared work per benchmark iteration, for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Runs the measured closure and counts iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough times to get a stable estimate.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then timed batches.
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if iters >= self.iters || start.elapsed() > Duration::from_millis(500) {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }

    fn per_iter(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            self.elapsed / self.iters as u32
        }
    }
}

fn report(id: &str, b: &Bencher, throughput: Option<Throughput>) {
    let per = b.per_iter();
    let mut line = format!("{id:<40} {:>12.3?}/iter ({} iters)", per, b.iters);
    if let Some(t) = throughput {
        let secs = per.as_secs_f64();
        if secs > 0.0 {
            match t {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  {:.2} Melem/s", n as f64 / secs / 1e6));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  {:.2} MB/s", n as f64 / secs / 1e6));
                }
            }
        }
    }
    println!("{line}");
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many iterations to target per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Criterion {
        let mut b = Bencher { iters: self.sample_size as u64, elapsed: Duration::ZERO };
        f(&mut b);
        report(&id.to_string(), &b, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { criterion: self, throughput: None }
    }
}

/// A group of related benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work done per iteration of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one named benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.criterion.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&format!("  {id}"), &b, self.throughput);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions and its driver configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_nonzero_iters() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grouped");
        g.throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| black_box(2 + 2)));
        g.finish();
    }
}
