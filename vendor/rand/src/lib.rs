//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace patches
//! `rand` with this minimal, dependency-free implementation of exactly the
//! API surface the workspace uses: `SmallRng` (a SplitMix64/xoshiro256++
//! generator), `SeedableRng::seed_from_u64`, and the `Rng` convenience
//! methods `gen`, `gen_range`, `gen_ratio`, and `fill`.
//!
//! The generated streams are deterministic but intentionally *not*
//! bit-compatible with upstream `rand`; nothing in this repository depends
//! on upstream's exact streams (the seed never built against it).

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value samplable uniformly over the generator's full output domain.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        rng.next_u32() as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                self.start.wrapping_add(draw as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                let draw = (rng.next_u64() as u128) % span;
                start.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = f64::sample(rng) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        (self.next_u64() % denominator as u64) < numerator as u64
    }

    /// Fills the byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++ seeded via
    /// SplitMix64, mirroring upstream's `SmallRng` construction).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(5..=10usize);
            assert!((5..=10).contains(&v));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let b = rng.gen_range(b'a'..=b'z');
            assert!(b.is_ascii_lowercase());
        }
    }

    #[test]
    fn ratio_is_roughly_right() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!((1_500..3_500).contains(&hits), "{hits}");
    }

    #[test]
    fn fill_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
