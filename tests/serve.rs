//! Campaign-service tests: concurrent clients through one `boomflow
//! serve` process get reports byte-identical to solo runs while sharing
//! work through the warm store, and a killed server resumes a request
//! from its journal on restart + re-attach.

// Test helpers unwrap freely: a failed unwrap is exactly a test failure.
#![allow(clippy::unwrap_used)]

use boomflow::{
    all_fixed_latency, realize_campaign, request_events, request_id, run_sweep,
    supervise_matrix_with, ArtifactStore, CampaignOptions, CampaignRequest, ClientMsg, FlowConfig,
    Request, ServeAddr, ServeOptions, Server, ServerMsg, SweepOptions, SweepRequest, SweepSpec,
};
use rv_workloads::Scale;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("boomflow-serve-{tag}-{}-{n}", std::process::id()))
}

/// A Test-scale campaign request over `workloads` (CSV), small enough
/// for CI but with real points to share.
fn campaign_request(workloads: &str) -> CampaignRequest {
    CampaignRequest {
        workloads: workloads.to_string(),
        config: "medium".to_string(),
        scale: Scale::Test,
        warmup: 1_000,
        retries: 3,
        batch_lanes: 1,
        idle_skip: false,
    }
}

/// The reference bytes a solo, fresh-store run of the same request
/// produces.
fn solo_report(req: &CampaignRequest) -> String {
    let (cfgs, ws, flow) = realize_campaign(req).unwrap();
    supervise_matrix_with(&cfgs, &ws, &flow, &CampaignOptions::default()).render_deterministic()
}

/// Binds an in-process server on a scratch Unix socket and runs it on a
/// background thread until `Shutdown`.
fn start_server(
    tag: &str,
    opts: ServeOptions,
) -> (ServeAddr, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(&ServeAddr::Unix(scratch(tag)), opts).unwrap();
    let addr = server.addr().clone();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

/// Submits `msg` and returns the terminal message (panicking on a
/// transport error or a server that died mid-stream).
fn roundtrip(addr: &ServeAddr, msg: &ClientMsg) -> ServerMsg {
    request_events(addr, msg, |_| {}).unwrap().expect("server closed the stream mid-request")
}

fn shutdown(addr: &ServeAddr, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    let bye = roundtrip(addr, &ClientMsg::Shutdown);
    assert!(matches!(bye, ServerMsg::Bye { .. }), "expected Bye, got {bye:?}");
    handle.join().unwrap().unwrap();
}

/// The acceptance scenario: two clients concurrently submit overlapping
/// matrices; each report is byte-identical to its solo run, and the
/// overlap is actually shared — the stage summaries surface single-flight
/// or warm-store hits. Exercised at both ends of the pool-width range.
#[test]
fn concurrent_overlapping_clients_match_solo_reports() {
    for jobs in [1usize, 4] {
        let opts = ServeOptions {
            jobs,
            max_active: 4,
            cache_dir: None,
            state_dir: scratch(&format!("state-{jobs}")),
            kill_after_points: None,
        };
        let (addr, handle) = start_server(&format!("sock-{jobs}"), opts);

        // Overlap on sha: request A computes it first (or concurrently),
        // request B must coalesce onto those very points.
        let req_a = campaign_request("bitcount,sha");
        let req_b = campaign_request("sha,qsort");
        let results: Vec<ServerMsg> = std::thread::scope(|s| {
            let handles: Vec<_> = [&req_a, &req_b]
                .into_iter()
                .map(|req| {
                    let addr = addr.clone();
                    let msg = ClientMsg::Submit(Request::Campaign(req.clone()));
                    s.spawn(move || roundtrip(&addr, &msg))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let mut shared = false;
        for (req, result) in [&req_a, &req_b].into_iter().zip(&results) {
            let ServerMsg::Done { ok, report, summary, .. } = result else {
                panic!("jobs {jobs}: expected Done, got {result:?}");
            };
            assert!(ok, "jobs {jobs}: served campaign failed:\n{summary}");
            assert_eq!(
                String::from_utf8(report.clone()).unwrap(),
                solo_report(req),
                "jobs {jobs}: served report must be byte-identical to the solo run"
            );
            shared |= summary.contains("Single-flight:");
        }
        assert!(
            shared,
            "jobs {jobs}: the overlapping sha points must surface as single-flight \
             dedup or warm-store hits in a stage summary"
        );
        shutdown(&addr, handle);
    }
}

/// Identical submissions coalesce onto one run: both clients are told
/// the same request id and receive the same bytes, and a later attach by
/// id replays the terminal result without re-running anything.
#[test]
fn identical_submissions_coalesce_and_attach_replays() {
    let opts = ServeOptions {
        jobs: 2,
        max_active: 4,
        cache_dir: None,
        state_dir: scratch("state-coalesce"),
        kill_after_points: None,
    };
    let (addr, handle) = start_server("sock-coalesce", opts);

    let req = campaign_request("bitcount");
    let id = request_id(&Request::Campaign(req.clone()));
    let msg = ClientMsg::Submit(Request::Campaign(req.clone()));
    let results: Vec<(u64, ServerMsg)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let addr = addr.clone();
                let msg = msg.clone();
                s.spawn(move || {
                    let mut admitted_id = 0;
                    let done = request_events(&addr, &msg, |event| {
                        if let ServerMsg::Admitted { id, .. } = event {
                            admitted_id = *id;
                        }
                    })
                    .unwrap()
                    .expect("server closed the stream mid-request");
                    (admitted_id, done)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let reports: Vec<&Vec<u8>> = results
        .iter()
        .map(|(admitted_id, done)| {
            assert_eq!(*admitted_id, id, "admitted id must be the content-addressed request id");
            match done {
                ServerMsg::Done { ok: true, report, .. } => report,
                other => panic!("expected successful Done, got {other:?}"),
            }
        })
        .collect();
    assert_eq!(reports[0], reports[1], "coalesced clients must read the same bytes");
    assert_eq!(String::from_utf8(reports[0].clone()).unwrap(), solo_report(&req));

    // Attach after completion replays the stored terminal message.
    match roundtrip(&addr, &ClientMsg::Attach(id)) {
        ServerMsg::Done { ok: true, report, .. } => assert_eq!(&report, reports[0]),
        other => panic!("attach after completion: expected Done, got {other:?}"),
    }
    // Attaching an id the server never saw is a typed rejection.
    match roundtrip(&addr, &ClientMsg::Attach(id ^ 0xdead_beef)) {
        ServerMsg::Rejected { reason } => {
            assert!(reason.contains("unknown request id"), "got: {reason}")
        }
        other => panic!("unknown attach: expected Rejected, got {other:?}"),
    }
    shutdown(&addr, handle);
}

/// A sweep request through the service matches the bytes of a solo
/// `run_sweep` with the same realized spec.
#[test]
fn served_sweep_matches_solo_run() {
    let opts = ServeOptions {
        jobs: 2,
        max_active: 4,
        cache_dir: None,
        state_dir: scratch("state-sweep"),
        kill_after_points: None,
    };
    let (addr, handle) = start_server("sock-sweep", opts);

    let req = SweepRequest {
        preset: "smoke16".to_string(),
        base: String::new(),
        workloads: "bitcount".to_string(),
        scale: Scale::Test,
        warmup: 1_000,
        max_rungs: 0,
        rung0_points: 1,
        rung0_shift: 3,
        epsilon: 0.05,
        epsilon_decay: 0.5,
        exhaustive: false,
        batch_lanes: 1,
    };
    let done = roundtrip(&addr, &ClientMsg::Submit(Request::Sweep(req.clone())));
    let ServerMsg::Done { ok, report, summary, extra, .. } = done else {
        panic!("expected Done, got {done:?}");
    };
    assert!(ok, "served sweep failed:\n{summary}");
    assert!(!extra.is_empty(), "a sweep's Done must carry the frontier rendering");

    let cfgs = SweepSpec::preset("smoke16").unwrap().generate().unwrap();
    let ws = vec![rv_workloads::by_name("bitcount", Scale::Test).unwrap()];
    let flow = FlowConfig {
        warmup_insts: req.warmup,
        idle_skip: all_fixed_latency(&cfgs),
        ..FlowConfig::default()
    };
    let solo = run_sweep(
        &cfgs,
        &ws,
        &flow,
        &ArtifactStore::new(),
        &SweepOptions { jobs: 1, batch_lanes: 1, ..SweepOptions::default() },
    )
    .unwrap();
    assert_eq!(
        String::from_utf8(report).unwrap(),
        solo.render_deterministic(),
        "served sweep report must be byte-identical to the solo run"
    );
    shutdown(&addr, handle);
}

/// The crash drill: a real server process killed mid-campaign
/// (`--inject-kill-after`) leaves a journal + persisted spec behind; a
/// restarted server on the same state directory resumes the request on
/// `attach` and finishes it byte-identical to an uninterrupted solo run.
#[test]
fn killed_server_resumes_on_restart_and_attach() {
    let state_dir = scratch("state-kill");
    let sock = scratch("sock-kill");
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_boomflow"))
        .args([
            "serve",
            "--socket",
            sock.to_str().unwrap(),
            "--state-dir",
            state_dir.to_str().unwrap(),
            "--jobs",
            "1",
            "--inject-kill-after",
            "1",
        ])
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    while !sock.exists() {
        assert!(Instant::now() < deadline, "server never bound its socket");
        std::thread::sleep(Duration::from_millis(20));
    }

    let req = campaign_request("bitcount,sha");
    let id = request_id(&Request::Campaign(req.clone()));
    // The server aborts after journaling its first fresh point, so the
    // submission must NOT complete successfully — the stream dies (EOF /
    // reset) or, in a tight race, the connection itself fails.
    let submit = request_events(
        &sock_addr(&sock),
        &ClientMsg::Submit(Request::Campaign(req.clone())),
        |_| {},
    );
    assert!(
        !matches!(submit, Ok(Some(ServerMsg::Done { ok: true, .. }))),
        "killed server cannot have completed the campaign: {submit:?}"
    );
    let status = child.wait().unwrap();
    assert!(!status.success(), "--inject-kill-after must abort the server");
    assert!(
        state_dir.join(format!("{id:016x}.req")).exists(),
        "the request spec must be persisted before any simulation"
    );
    assert!(
        state_dir.join(format!("{id:016x}.bfj")).exists(),
        "the killed server must leave the request's journal behind"
    );

    // Restart (in-process this time) on the same state directory and
    // re-attach: the journal replays and the campaign completes.
    let opts = ServeOptions {
        jobs: 1,
        max_active: 4,
        cache_dir: None,
        state_dir,
        kill_after_points: None,
    };
    let (addr, handle) = start_server("sock-kill2", opts);
    match roundtrip(&addr, &ClientMsg::Attach(id)) {
        ServerMsg::Done { ok, report, summary, .. } => {
            assert!(ok, "resumed campaign failed:\n{summary}");
            assert!(
                summary.contains("Journal:") && summary.contains("point(s) replayed"),
                "the resumed run must replay journaled points:\n{summary}"
            );
            assert_eq!(
                String::from_utf8(report).unwrap(),
                solo_report(&req),
                "resumed report must be byte-identical to an uninterrupted solo run"
            );
        }
        other => panic!("attach after restart: expected Done, got {other:?}"),
    }
    shutdown(&addr, handle);
}

fn sock_addr(path: &std::path::Path) -> ServeAddr {
    ServeAddr::Unix(path.to_path_buf())
}
