//! The paper's eight key takeaways and headline evaluation claims,
//! asserted as integration tests over the full flow.
//!
//! These run at `Scale::Test`/`Scale::Small` so the whole file finishes
//! in tens of seconds; the bench harness re-checks the same claims at
//! evaluation scale.

// Test helpers may unwrap freely; `allow-unwrap-in-tests` only covers
// `#[test]` fns, not the helpers integration tests share.
#![allow(clippy::unwrap_used)]

use boom_uarch::{BoomConfig, Core, PredictorKind};
use boomflow::{run_simpoint_flow, FlowConfig, WorkloadResult};
use rtl_power::{estimate_core, Component};
use rv_workloads::{all, by_name, Scale};

fn flow(cfg: &BoomConfig, name: &str) -> WorkloadResult {
    let w = by_name(name, Scale::Test).unwrap();
    run_simpoint_flow(cfg, &w, &FlowConfig::default()).unwrap()
}

fn mean_component(cfg: &BoomConfig, c: Component) -> f64 {
    let ws = all(Scale::Test);
    let total: f64 = ws
        .iter()
        .map(|w| {
            run_simpoint_flow(cfg, w, &FlowConfig::default()).unwrap().power.component(c).total_mw()
        })
        .sum();
    total / ws.len() as f64
}

/// Key Takeaway #1: integer register file power varies dramatically across
/// configurations, driven by the non-linear bypass network growth.
#[test]
fn kt1_int_regfile_grows_superlinearly() {
    let m = mean_component(&BoomConfig::medium(), Component::IntRegFile);
    let l = mean_component(&BoomConfig::large(), Component::IntRegFile);
    let g = mean_component(&BoomConfig::mega(), Component::IntRegFile);
    assert!(l > 1.5 * m, "Large {l:.2} vs Medium {m:.2}");
    assert!(g > 4.0 * l, "Mega {g:.2} vs Large {l:.2} (paper: ~6.7x)");
}

/// Key Takeaway #2: the FP register file is nearly free on the small
/// configs but has a large, mostly-static floor on MegaBOOM even for
/// integer-only code (2x ports).
#[test]
fn kt2_fp_regfile_static_floor_on_mega() {
    // Bitcount never touches FP registers.
    let m = flow(&BoomConfig::medium(), "bitcount");
    let g = flow(&BoomConfig::mega(), "bitcount");
    let pm = m.power.component(Component::FpRegFile);
    let pg = g.power.component(Component::FpRegFile);
    assert!(pg.total_mw() > 5.0 * pm.total_mw(), "{} vs {}", pg.total_mw(), pm.total_mw());
    // ...and that Mega floor is almost entirely leakage.
    assert!(
        pg.leakage_mw > 0.9 * pg.total_mw(),
        "leakage {:.3} of total {:.3}",
        pg.leakage_mw,
        pg.total_mw()
    );
}

/// Key Takeaway #3: the FP rename unit burns power on every branch (the
/// allocation-list snapshots) even when no FP instruction executes.
#[test]
fn kt3_fp_rename_burns_power_without_fp_code() {
    let r = flow(&BoomConfig::large(), "bitcount"); // integer-only
    let fp_rename = r.power.component(Component::FpRename).total_mw();
    let fp_rf = r.power.component(Component::FpRegFile).total_mw();
    assert!(
        fp_rename > 2.0 * fp_rf,
        "FP rename {fp_rename:.2} should dwarf FP RF {fp_rf:.2} on int code"
    );
    // Snapshot switching must be a visible share of it.
    assert!(r.power.component(Component::FpRename).switching_mw > 0.0);
}

/// Key Takeaway #4: the integer issue unit is the largest of the three
/// scheduler queues, and the scheduler collectively is second only to the
/// branch predictor.
#[test]
fn kt4_scheduler_is_second_hotspot() {
    let cfg = BoomConfig::mega();
    let int_iq = mean_component(&cfg, Component::IntIssue);
    let mem_iq = mean_component(&cfg, Component::MemIssue);
    let fp_iq = mean_component(&cfg, Component::FpIssue);
    assert!(int_iq > mem_iq && int_iq > fp_iq, "int {int_iq:.2} mem {mem_iq:.2} fp {fp_iq:.2}");
    let scheduler = int_iq + mem_iq + fp_iq;
    let bp = mean_component(&cfg, Component::BranchPredictor);
    // Scheduler beats every non-BP analyzed component.
    for c in Component::ANALYZED {
        if matches!(
            c,
            Component::IntIssue
                | Component::MemIssue
                | Component::FpIssue
                | Component::BranchPredictor
        ) {
            continue;
        }
        let v = mean_component(&cfg, c);
        assert!(scheduler > v, "scheduler {scheduler:.2} vs {c} {v:.2}");
    }
    assert!(bp > scheduler * 0.5, "BP {bp:.2} should lead scheduler {scheduler:.2}");
}

/// Key Takeaway #4 (Fig. 8 contrast): Dijkstra keeps the integer issue
/// queue fuller — and hotter — than Sha despite much lower IPC.
#[test]
fn kt4_dijkstra_occupancy_beats_sha() {
    let cfg = BoomConfig::mega();
    let d = flow(&cfg, "dijkstra");
    let s = flow(&cfg, "sha");
    assert!(d.ipc < s.ipc, "dijkstra {:.2} vs sha {:.2}", d.ipc, s.ipc);
    let occ = |r: &WorkloadResult| -> f64 {
        r.points.iter().map(|p| p.weight * p.stats.int_iq.mean_occupancy(p.stats.cycles)).sum()
    };
    assert!(occ(&d) > occ(&s), "occupancy {:.1} vs {:.1}", occ(&d), occ(&s));
    let iq = |r: &WorkloadResult| r.power.component(Component::IntIssue).total_mw();
    assert!(iq(&d) > iq(&s), "issue power {:.2} vs {:.2}", iq(&d), iq(&s));
}

/// Key Takeaway #6 context: BOOM's merged register file keeps the ROB
/// small — it must stay a modest share of tile power (~4-5%).
#[test]
fn kt6_rob_is_modest() {
    for cfg in BoomConfig::all_three() {
        let r = flow(&cfg, "qsort");
        let rob = r.power.component(Component::Rob).total_mw();
        let share = rob / r.tile_power_mw();
        assert!(share < 0.09, "{}: ROB share {:.1}%", cfg.name, 100.0 * share);
    }
}

/// Key Takeaway #7: the branch predictor is the single largest consumer in
/// every configuration, and TAGE costs ~2.5x gshare.
#[test]
fn kt7_branch_predictor_dominates_and_tage_costs() {
    for cfg in BoomConfig::all_three() {
        let r = flow(&cfg, "patricia");
        let bp = r.power.component(Component::BranchPredictor).total_mw();
        for c in Component::ANALYZED {
            if c == Component::BranchPredictor {
                continue;
            }
            let v = r.power.component(c).total_mw();
            assert!(bp > v, "{}: BP {bp:.2} vs {c} {v:.2}", cfg.name);
        }
    }
    // TAGE vs gshare on the same core.
    let tage = flow(&BoomConfig::large(), "dijkstra");
    let gsh = run_simpoint_flow(
        &BoomConfig::large().with_predictor(PredictorKind::Gshare),
        &by_name("dijkstra", Scale::Test).unwrap(),
        &FlowConfig::default(),
    )
    .unwrap();
    let ratio = tage.power.component(Component::BranchPredictor).total_mw()
        / gsh.power.component(Component::BranchPredictor).total_mw();
    assert!(ratio > 1.8 && ratio < 3.5, "TAGE/gshare ratio {ratio:.2} (paper ~2.5)");
}

/// Key Takeaway #8: MegaBOOM's D-cache burns roughly twice LargeBOOM's
/// despite identical geometry (dual memory units + 2x MSHRs).
#[test]
fn kt8_mega_dcache_doubles_large() {
    let l = mean_component(&BoomConfig::large(), Component::DCache);
    let g = mean_component(&BoomConfig::mega(), Component::DCache);
    assert!(g > 1.5 * l, "Mega dcache {g:.2} vs Large {l:.2}");
    // Geometry really is identical (the power difference is ports/MSHRs).
    assert_eq!(
        BoomConfig::large().dcache.capacity_bytes(),
        BoomConfig::mega().dcache.capacity_bytes()
    );
}

/// The L1 I-cache is the least workload-sensitive component.
#[test]
fn icache_power_is_workload_insensitive() {
    let cfg = BoomConfig::large();
    let vals: Vec<f64> = ["sha", "dijkstra", "qsort", "bitcount"]
        .iter()
        .map(|n| flow(&cfg, n).power.component(Component::ICache).total_mw())
        .collect();
    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
    for v in &vals {
        assert!((v - mean).abs() / mean < 0.4, "icache spread too wide: {vals:?}");
    }
}

/// Fig. 9: the thirteen analyzed components must cover a growing share of
/// tile power from Medium to Mega (paper: 73% -> 85%).
#[test]
fn fig9_analyzed_share_grows_with_core_size() {
    let share = |cfg: &BoomConfig| -> f64 {
        let r = flow(cfg, "stringsearch");
        r.power.analyzed_fraction()
    };
    let m = share(&BoomConfig::medium());
    let g = share(&BoomConfig::mega());
    assert!(m > 0.6 && m < 0.85, "medium share {m:.2}");
    assert!(g > m, "mega share {g:.2} must exceed medium {m:.2}");
    assert!(g > 0.78 && g < 0.93, "mega share {g:.2}");
}

/// TAGE must out-predict gshare (that is what the extra power buys).
#[test]
fn tage_is_more_accurate_than_gshare() {
    let w = by_name("dijkstra", Scale::Small).unwrap();
    let mispredicts = |kind: PredictorKind| -> f64 {
        let mut core = Core::new(BoomConfig::large().with_predictor(kind), &w.program);
        core.run(200_000);
        let s = core.stats();
        // also exercise the power path end to end
        let _ = estimate_core(&core);
        s.mispredict_rate()
    };
    let tage = mispredicts(PredictorKind::Tage);
    let gshare = mispredicts(PredictorKind::Gshare);
    assert!(tage <= gshare, "TAGE {tage:.3} vs gshare {gshare:.3}");
}
