//! Every workload must pass its built-in self-verification (exit code 0)
//! on the cycle-level core in unusual configurations too — the gshare
//! variant and a deliberately tiny custom configuration that stresses
//! structural-hazard paths (full ROB, full queues, free-list exhaustion).

use boom_uarch::{BoomConfig, Core, PredictorKind};
use rv_workloads::{all, Scale};

#[test]
fn all_workloads_pass_with_gshare_predictor() {
    for w in all(Scale::Test) {
        let cfg = BoomConfig::medium().with_predictor(PredictorKind::Gshare);
        let mut core = Core::new(cfg, &w.program);
        let r = core.run(500_000_000);
        assert!(r.exited && r.exit_code == Some(0), "{}: {r:?}", w.name);
    }
}

#[test]
fn all_workloads_pass_on_a_tiny_stress_config() {
    // A deliberately cramped core: resources this small force constant
    // dispatch stalls, queue-full back-pressure and snapshot exhaustion.
    let mut cfg = BoomConfig::medium();
    cfg.name = "TinyBOOM".to_string();
    cfg.rob_entries = 12;
    cfg.int_phys_regs = 40;
    cfg.fp_phys_regs = 40;
    cfg.int_issue_slots = 4;
    cfg.mem_issue_slots = 3;
    cfg.fp_issue_slots = 3;
    cfg.ldq_entries = 3;
    cfg.stq_entries = 3;
    cfg.fetch_buffer_entries = 6;
    cfg.max_br_count = 3;
    for w in all(Scale::Test) {
        let mut core = Core::new(cfg.clone(), &w.program);
        let r = core.run(500_000_000);
        assert!(r.exited && r.exit_code == Some(0), "{}: {r:?}", w.name);
    }
}
