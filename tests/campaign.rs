//! Staged-pipeline and campaign-scheduler tests: artifact reuse across
//! configurations, compute-exactly-once under concurrency, and the
//! determinism contract between sequential and parallel campaigns.

// Test helpers unwrap freely: a failed unwrap is exactly a test failure.
#![allow(clippy::unwrap_used)]

use boom_uarch::BoomConfig;
use boomflow::{
    run_simpoint_flow, run_simpoint_flow_with_store, supervise_campaign, supervise_matrix_with,
    ArtifactStore, CampaignOptions, CampaignReport, FlowConfig, WorkloadResult,
};
use rtl_power::Component;
use rv_workloads::{by_name, Scale, Workload};
use simpoint::SimPointConfig;
use std::sync::Arc;

fn quick_flow() -> FlowConfig {
    FlowConfig {
        simpoint: SimPointConfig { max_k: 6, restarts: 2, ..SimPointConfig::default() },
        warmup_insts: 1_000,
        max_profile_insts: 500_000_000,
        ..FlowConfig::default()
    }
}

fn test_workloads() -> Vec<Workload> {
    vec![by_name("bitcount", Scale::Test).unwrap(), by_name("dijkstra", Scale::Test).unwrap()]
}

/// Exact (bit-level) equality of everything a `WorkloadResult` reports.
/// The flow is deterministic, so caching and scheduling must not perturb
/// a single bit of the output.
fn assert_results_identical(a: &WorkloadResult, b: &WorkloadResult, what: &str) {
    assert_eq!(a.name, b.name, "{what}: workload name");
    assert_eq!(a.config, b.config, "{what}: config name");
    assert_eq!(a.ipc.to_bits(), b.ipc.to_bits(), "{what}: ipc {} vs {}", a.ipc, b.ipc);
    assert_eq!(a.total_insts, b.total_insts, "{what}: total_insts");
    assert_eq!(a.interval_size, b.interval_size, "{what}: interval_size");
    assert_eq!(a.coverage.to_bits(), b.coverage.to_bits(), "{what}: coverage");
    assert_eq!(a.speedup.to_bits(), b.speedup.to_bits(), "{what}: speedup");
    assert_eq!(a.points.len(), b.points.len(), "{what}: point count");
    for (i, (pa, pb)) in a.points.iter().zip(&b.points).enumerate() {
        assert_eq!(pa.interval, pb.interval, "{what}: point {i} interval");
        assert_eq!(pa.weight.to_bits(), pb.weight.to_bits(), "{what}: point {i} weight");
        assert_eq!(pa.ipc.to_bits(), pb.ipc.to_bits(), "{what}: point {i} ipc");
    }
    for c in Component::ALL {
        assert_eq!(
            a.power.component(c).total_mw().to_bits(),
            b.power.component(c).total_mw().to_bits(),
            "{what}: {} power",
            c.name()
        );
    }
    assert_eq!(a.degradation.is_some(), b.degradation.is_some(), "{what}: degradation presence");
    if let (Some(da), Some(db)) = (&a.degradation, &b.degradation) {
        assert_eq!(da.failed.len(), db.failed.len(), "{what}: failed count");
        assert_eq!(da.retries, db.retries, "{what}: retries");
        assert_eq!(da.lost_weight.to_bits(), db.lost_weight.to_bits(), "{what}: lost weight");
    }
}

fn assert_reports_identical(a: &CampaignReport, b: &CampaignReport) {
    assert_eq!(a.cells.len(), b.cells.len(), "cell count");
    for (i, (ca, cb)) in a.cells.iter().zip(&b.cells).enumerate() {
        assert_eq!(ca.config, cb.config, "cell {i} config order");
        assert_eq!(ca.workload, cb.workload, "cell {i} workload order");
        match (&ca.outcome, &cb.outcome) {
            (Ok(ra), Ok(rb)) => assert_results_identical(ra, rb, &format!("cell {i}")),
            (Err(ea), Err(eb)) => {
                assert_eq!(ea.to_string(), eb.to_string(), "cell {i} error")
            }
            _ => panic!("cell {i}: one run succeeded and the other failed"),
        }
    }
}

/// Satellite: a run through a warm store must be bit-identical to a cold
/// (uncached) run — memoization changes cost, never content.
#[test]
fn cached_and_uncached_flows_are_identical() {
    let w = by_name("bitcount", Scale::Test).unwrap();
    let cfg = BoomConfig::medium();
    let flow = quick_flow();

    let uncached = run_simpoint_flow(&cfg, &w, &flow).unwrap();
    let store = ArtifactStore::new();
    let cold = run_simpoint_flow_with_store(&cfg, &w, &flow, &store).unwrap();
    let warm = run_simpoint_flow_with_store(&cfg, &w, &flow, &store).unwrap();

    assert_results_identical(&uncached, &cold, "uncached vs cold");
    assert_results_identical(&cold, &warm, "cold vs warm");
    let s = store.stats();
    assert_eq!(s.profile_computed, 1, "warm run must reuse the profile");
    assert_eq!(s.checkpoint_computed, 1, "warm run must reuse the checkpoints");
    assert!(s.checkpoint_hits >= 1);
}

/// Satellite: concurrent cells racing on the same artifact key block on
/// one computation and share its result.
#[test]
fn concurrent_cells_compute_artifacts_exactly_once() {
    let store = ArtifactStore::new();
    let w = by_name("bitcount", Scale::Test).unwrap();
    let flow = quick_flow();
    let sets: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> =
            (0..8).map(|_| s.spawn(|| store.checkpoints(&w, &flow).unwrap())).collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for set in &sets[1..] {
        assert!(Arc::ptr_eq(&sets[0], set), "all callers must share one artifact");
    }
    let s = store.stats();
    assert_eq!(s.profile_computed, 1);
    assert_eq!(s.cluster_computed, 1);
    assert_eq!(s.checkpoint_computed, 1);
    assert_eq!(s.checkpoint_hits, 7);
}

/// Acceptance: a 3-configuration campaign performs profiling, clustering,
/// and checkpointing exactly once per workload.
#[test]
fn three_config_campaign_computes_front_half_once_per_workload() {
    let cfgs = BoomConfig::all_three();
    let workloads = test_workloads();
    let store = ArtifactStore::new();
    let report = supervise_campaign(
        &cfgs,
        &workloads,
        &quick_flow(),
        &store,
        &CampaignOptions { jobs: 2, ..CampaignOptions::default() },
    );
    assert!(report.all_ok(), "{:?}", report.failure_log());
    assert_eq!(report.cells.len(), cfgs.len() * workloads.len());

    let s = store.stats();
    let n = workloads.len() as u64;
    assert_eq!(s.profile_computed, n, "one profiling pass per workload");
    assert_eq!(s.cluster_computed, n, "one phase analysis per workload");
    assert_eq!(s.checkpoint_computed, n, "one checkpoint capture per workload");
    assert_eq!(report.stats.cache, s, "report must carry the store's stats");
    assert_eq!(report.stats.jobs, 2);
    assert!(report.stats.cache.detailed_ms > 0.0, "detailed sim time must be recorded");
    assert!(!report.stage_summary().is_empty());
}

/// Acceptance: a parallel campaign's report is identical in content and
/// ordering to the sequential one — for clean runs and for runs that
/// degrade under fault injection.
#[test]
fn parallel_campaign_report_matches_sequential() {
    let cfgs = BoomConfig::all_three();
    let workloads = test_workloads();
    let flow = quick_flow();
    let sequential = supervise_matrix_with(
        &cfgs,
        &workloads,
        &flow,
        &CampaignOptions { jobs: 1, ..CampaignOptions::default() },
    );
    let parallel = supervise_matrix_with(
        &cfgs,
        &workloads,
        &flow,
        &CampaignOptions { jobs: 4, ..CampaignOptions::default() },
    );
    assert!(sequential.all_ok());
    assert_reports_identical(&sequential, &parallel);

    // Configuration-major order: workloads iterate fastest.
    let mut expect = Vec::new();
    for cfg in &cfgs {
        for w in &workloads {
            expect.push((cfg.name.clone(), w.name));
        }
    }
    let got: Vec<_> = sequential.cells.iter().map(|c| (c.config.clone(), c.workload)).collect();
    assert_eq!(got, expect, "cells must stay in configuration-major order");
}

/// Tentpole acceptance: a dual-core co-run cell — two cores co-running
/// different workloads over one shared L2 — produces per-core IPC,
/// per-component power including the uncore, and interference counters,
/// and the whole report is bit-identical at any job count (the co-run
/// itself always interleaves both cores on one thread).
#[test]
fn dual_core_campaign_is_deterministic_across_job_counts() {
    let cfgs = vec![BoomConfig::medium()];
    let workloads = test_workloads();
    let flow = quick_flow();
    let opts = |jobs| CampaignOptions { jobs, co_runs: vec![(0, 1)], ..CampaignOptions::default() };

    let sequential = supervise_matrix_with(&cfgs, &workloads, &flow, &opts(1));
    let parallel = supervise_matrix_with(&cfgs, &workloads, &flow, &opts(4));
    assert!(sequential.all_ok(), "{:?}", sequential.failure_log());

    assert_eq!(sequential.co_cells.len(), 1);
    let cell = &sequential.co_cells[0];
    assert_eq!(cell.config, "MediumBOOM");
    assert_eq!(cell.workloads, ["Bitcount", "Dijkstra"]);
    let cores = cell.outcome.as_ref().expect("co-run must succeed");
    for core in cores.iter() {
        assert!(core.ipc > 0.0, "{}: ipc", core.workload);
        assert!(core.stats.mem.l2.reads > 0, "{}: the shared L2 must see refills", core.workload);
        assert!(
            core.power.component(Component::L2Cache).total_mw() > 0.0,
            "{}: L2 power must be modelled",
            core.workload
        );
        assert!(
            core.power.component(Component::DramInterface).total_mw() > 0.0,
            "{}: DRAM-interface power must be modelled",
            core.workload
        );
        // The interference accessors exist and are consistent with the
        // underlying counters (contention may legitimately be zero for
        // tiny workloads; bandwidth waits always occur on a shared DRAM
        // channel with co-running cores).
        assert_eq!(core.l2_contention_stalls(), core.stats.mem.l2_contention_stalls);
        assert_eq!(core.dram_bw_wait_cycles(), core.stats.mem.dram_bw_wait_cycles);
    }
    assert!(
        cores.iter().any(|c| c.dram_bw_wait_cycles() > 0),
        "co-running cores must contend for DRAM bandwidth"
    );

    // The co-run section participates in the deterministic render, and
    // the full report is bit-identical across job counts.
    let rendered = sequential.render_deterministic();
    assert!(rendered.contains("co-cell MediumBOOM Bitcount+Dijkstra ok"), "{rendered}");
    assert!(rendered.contains("l2_contention_stalls"), "{rendered}");
    assert_eq!(rendered, parallel.render_deterministic(), "co-run report must not depend on jobs");
    assert_reports_identical(&sequential, &parallel);
}

/// Tentpole acceptance: batched multi-config lanes and idle-cycle
/// skipping are pure wall-clock optimizations. A campaign run with both
/// enabled — at any job count — must match the solo skip-off campaign in
/// every cell, every counter, and every byte of the deterministic
/// render; the new `batched_points` counter surfaces only in the stage
/// summary.
#[test]
fn batched_idle_skip_campaign_is_bit_identical_to_solo() {
    let cfgs = BoomConfig::all_three();
    let workloads = test_workloads();
    let solo_flow = quick_flow();
    let baseline = supervise_matrix_with(
        &cfgs,
        &workloads,
        &solo_flow,
        &CampaignOptions { jobs: 1, ..CampaignOptions::default() },
    );
    assert!(baseline.all_ok(), "{:?}", baseline.failure_log());
    let reference = baseline.render_deterministic();
    assert_eq!(baseline.stats.batched_points, 0, "no batching was requested");

    let skip_flow = FlowConfig { idle_skip: true, ..quick_flow() };
    for jobs in [1usize, 4] {
        let batched = supervise_matrix_with(
            &cfgs,
            &workloads,
            &skip_flow,
            &CampaignOptions { jobs, batch_lanes: 3, ..CampaignOptions::default() },
        );
        assert!(batched.all_ok(), "jobs {jobs}: {:?}", batched.failure_log());
        assert_reports_identical(&baseline, &batched);
        assert_eq!(
            batched.render_deterministic(),
            reference,
            "jobs {jobs}: batched+skip report must be byte-identical to solo skip-off"
        );
        assert!(
            batched.stats.batched_points > 0,
            "jobs {jobs}: a 3-config campaign with batch_lanes 3 must batch"
        );
        assert!(
            batched.stage_summary().contains("Batched lanes"),
            "jobs {jobs}: batching must surface in the stage summary:\n{}",
            batched.stage_summary()
        );
    }

    // Idle skipping alone (no batching) is equally invisible.
    let skip_only = supervise_matrix_with(
        &cfgs,
        &workloads,
        &skip_flow,
        &CampaignOptions { jobs: 2, ..CampaignOptions::default() },
    );
    assert_reports_identical(&baseline, &skip_only);
    assert_eq!(skip_only.render_deterministic(), reference);
    assert_eq!(skip_only.stats.batched_points, 0, "batch_lanes 1 must not batch");
}

/// A broken workload fails its whole column — once per workload, not once
/// per cell — while every other cell still runs, under any job count.
#[test]
fn parallel_campaign_isolates_failing_workload_column() {
    use rv_isa::asm::Assembler;
    use rv_isa::reg::Reg::*;
    let mut a = Assembler::new();
    a.li(A0, 7);
    a.exit();
    let broken = Workload {
        name: "broken",
        suite: rv_workloads::Suite::MiBench,
        program: a.assemble().unwrap(),
        interval_size: 100,
    };
    let healthy = by_name("bitcount", Scale::Test).unwrap();
    let cfgs = BoomConfig::all_three();
    let store = ArtifactStore::new();
    let report = supervise_campaign(
        &cfgs,
        &[broken, healthy],
        &quick_flow(),
        &store,
        &CampaignOptions { jobs: 3, ..CampaignOptions::default() },
    );
    assert_eq!(report.cells.len(), 6);
    assert_eq!(report.failed().count(), 3, "the broken workload fails in every configuration");
    for cell in &report.cells {
        match cell.workload {
            "broken" => {
                let err = cell.outcome.as_ref().unwrap_err().to_string();
                assert!(err.contains("self-verification"), "{err}");
            }
            _ => assert!(cell.outcome.is_ok(), "healthy cells must survive"),
        }
    }
    // The failing profile ran once and its error replayed to all cells.
    assert_eq!(store.stats().profile_computed, 2, "one pass each for broken and healthy");
}
