//! Adaptive-sweep tests: grid generation and clamp-collision dedup, the
//! determinism contract (`--jobs` invariance, kill → resume
//! bit-identity), adaptive-vs-exhaustive frontier identity with a
//! detailed-cycle reduction floor, spec validation, and the idle-skip
//! auto-arm precondition.

// Test helpers unwrap freely: a failed unwrap is exactly a test failure.
#![allow(clippy::unwrap_used)]

use boom_uarch::{BoomConfig, ConfigError, HierarchyParams, MemBackendKind};
use boomflow::{
    admit, all_fixed_latency, run_sweep, ArtifactStore, FlowConfig, SweepKnob, SweepOptions,
    SweepSpec,
};
use rv_workloads::{by_name, Scale, Workload};
use simpoint::SimPointConfig;
use std::path::PathBuf;

fn quick_flow() -> FlowConfig {
    FlowConfig {
        simpoint: SimPointConfig { max_k: 6, restarts: 2, ..SimPointConfig::default() },
        warmup_insts: 1_000,
        max_profile_insts: 500_000_000,
        ..FlowConfig::default()
    }
}

fn scratch(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("boomflow-sweep-{tag}-{}-{n}", std::process::id()))
}

/// An 8-point grid over the knobs the reference grid exercises, small
/// enough for in-process tests.
fn small_grid() -> Vec<BoomConfig> {
    SweepSpec {
        base: BoomConfig::medium(),
        axes: vec![
            (SweepKnob::FetchWidth, vec![4, 8]),
            (SweepKnob::Rob, vec![32, 64]),
            (SweepKnob::DcacheWays, vec![1, 4]),
        ],
        random: None,
    }
    .generate()
    .unwrap()
}

fn workloads() -> Vec<Workload> {
    vec![by_name("bitcount", Scale::Test).unwrap(), by_name("dijkstra", Scale::Test).unwrap()]
}

/// Framed journal record end offsets (header is 16 bytes; each record is
/// a u32 length + payload + 8-byte checksum).
fn journal_record_ends(bytes: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut pos = 16;
    while pos + 4 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let end = pos + 4 + len + 8;
        if end > bytes.len() {
            break;
        }
        ends.push(end);
        pos = end;
    }
    ends
}

/// Clamping collides distinct grid points onto one configuration, and
/// admission folds them by fingerprint: an issue-width axis wider than
/// the decode width yields one admitted config, and a sweep over the
/// colliding grid simulates exactly one configuration per workload.
#[test]
fn clamp_collided_grid_points_fold_at_admission() {
    // MediumBOOM decodes 2-wide, so int-issue 2, 4, and 8 all clamp to 2.
    let spec = SweepSpec {
        base: BoomConfig::medium(),
        axes: vec![(SweepKnob::IntIssueWidth, vec![2, 4, 8])],
        random: None,
    };
    let cfgs = spec.generate().unwrap();
    assert_eq!(cfgs.len(), 3, "generation keeps every grid point");
    assert!(cfgs.iter().all(|c| c.int_issue_width == 2), "all clamp to decode width");
    assert!(cfgs.iter().all(|c| c.name == cfgs[0].name), "post-clamp names collide");

    let (unique, folded) = admit(cfgs.clone());
    assert_eq!(unique.len(), 1);
    assert_eq!(folded, 2);

    // The scheduler admits by fingerprint, not grid index: the sweep
    // runs one configuration, not three.
    let wl = vec![by_name("bitcount", Scale::Test).unwrap()];
    let report =
        run_sweep(&cfgs, &wl, &quick_flow(), &ArtifactStore::new(), &SweepOptions::default())
            .unwrap();
    assert!(report.all_ok());
    assert_eq!(report.configs.len(), 1, "one admitted configuration");
    assert_eq!(report.folded, 2, "the report records the folded duplicates");
    assert_eq!(report.cells.len(), 1, "one surviving cell, not three");
}

/// The deterministic report — configs, rung history, every cell, and
/// the frontier — is byte-identical across `--jobs` settings.
#[test]
fn sweep_report_is_jobs_invariant() {
    let cfgs = small_grid();
    let wls = workloads();
    let flow = quick_flow();

    let solo = run_sweep(
        &cfgs,
        &wls,
        &flow,
        &ArtifactStore::new(),
        &SweepOptions { jobs: 1, ..SweepOptions::default() },
    )
    .unwrap();
    assert!(solo.all_ok());
    let reference = solo.render_deterministic();

    let parallel = run_sweep(
        &cfgs,
        &wls,
        &flow,
        &ArtifactStore::new(),
        &SweepOptions { jobs: 4, ..SweepOptions::default() },
    )
    .unwrap();
    assert_eq!(
        parallel.render_deterministic(),
        reference,
        "a 4-job sweep must render byte-identically to a sequential one"
    );
}

/// A sweep killed partway through resumes from its journal — at any job
/// count — and produces a report bit-identical to an uninterrupted run,
/// replaying the journaled points instead of re-simulating them.
#[test]
fn killed_sweep_resumes_bit_identically() {
    let cfgs = small_grid();
    let wls = workloads();
    let flow = quick_flow();
    let path = scratch("journal");

    let uninterrupted = run_sweep(
        &cfgs,
        &wls,
        &flow,
        &ArtifactStore::new(),
        &SweepOptions { jobs: 1, ..SweepOptions::default() },
    )
    .unwrap();
    assert!(uninterrupted.all_ok());
    let reference = uninterrupted.render_deterministic();

    // Journal a full run, then cut the journal back to a prefix — the
    // on-disk state of a process killed mid-rung.
    let journaled = run_sweep(
        &cfgs,
        &wls,
        &flow,
        &ArtifactStore::new(),
        &SweepOptions { jobs: 1, journal_path: Some(path.clone()), ..SweepOptions::default() },
    )
    .unwrap();
    assert_eq!(journaled.render_deterministic(), reference, "journaling must not perturb");
    let full = std::fs::read(&path).unwrap();
    let ends = journal_record_ends(&full);
    assert!(ends.len() >= 4, "sweep must journal at least 4 points, got {}", ends.len());
    let keep = ends.len() / 2;

    for jobs in [1usize, 4] {
        std::fs::write(&path, &full[..ends[keep - 1]]).unwrap();
        let resumed = run_sweep(
            &cfgs,
            &wls,
            &flow,
            &ArtifactStore::new(),
            &SweepOptions {
                jobs,
                journal_path: Some(path.clone()),
                resume: true,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert_eq!(resumed.stats.replayed_points, keep as u64, "jobs {jobs}");
        assert_eq!(
            resumed.render_deterministic(),
            reference,
            "resumed report (jobs {jobs}) must be bit-identical to the uninterrupted run"
        );
        // After the resumed run the journal must be whole again.
        assert_eq!(
            journal_record_ends(&std::fs::read(&path).unwrap()).len(),
            ends.len(),
            "jobs {jobs}: resume must re-journal the recomputed points"
        );
    }
}

/// The acceptance property at test scale: the adaptive sweep's Pareto
/// frontier is byte-identical to the exhaustive full-budget frontier
/// while spending a fraction of the detailed-sim cycles, and the rung
/// history shows real elimination (not a degenerate promote-everything
/// run).
#[test]
fn adaptive_frontier_matches_exhaustive_at_a_fraction_of_the_cycles() {
    let cfgs = small_grid();
    let wls = workloads();
    let flow = quick_flow();

    let exhaustive = run_sweep(
        &cfgs,
        &wls,
        &flow,
        &ArtifactStore::new(),
        &SweepOptions { jobs: 2, exhaustive: true, ..SweepOptions::default() },
    )
    .unwrap();
    assert!(exhaustive.all_ok());
    assert_eq!(exhaustive.rungs.len(), 1, "exhaustive mode is a single full rung");
    assert_eq!(exhaustive.rungs[0].eliminated, 0, "exhaustive mode never eliminates");

    let adaptive = run_sweep(
        &cfgs,
        &wls,
        &flow,
        &ArtifactStore::new(),
        &SweepOptions { jobs: 2, ..SweepOptions::default() },
    )
    .unwrap();
    assert!(adaptive.all_ok());

    assert_eq!(
        adaptive.render_frontier(),
        exhaustive.render_frontier(),
        "adaptive frontier must be byte-identical to the exhaustive frontier"
    );
    let eliminated: usize = adaptive.rungs.iter().map(|r| r.eliminated).sum();
    assert!(eliminated > 0, "successive halving must eliminate something");
    // The short point ladders of test-scale workloads leave less room
    // for halving than the reference grid (benched at ≥ 5×); still, the
    // adaptive run must come in well under the exhaustive cost.
    let (ada, exh) = (adaptive.stats.detailed_cycles, exhaustive.stats.detailed_cycles);
    assert!(
        ada * 3 <= exh * 2,
        "adaptive sweep must cost at most 2/3 of the exhaustive cycles (got {ada} vs {exh})"
    );
    let reused: u64 = adaptive.rungs.iter().map(|r| r.reused_points).sum();
    assert!(reused > 0, "promoted configs must reuse lower-rung points, not resimulate");
}

/// Spec validation flows through the standard typed-config-error path.
#[test]
fn sweep_spec_validation_uses_config_errors() {
    let empty = SweepSpec { base: BoomConfig::medium(), axes: vec![], random: None };
    assert!(matches!(empty.generate(), Err(ConfigError::Zero { .. })));

    let hollow_axis = SweepSpec {
        base: BoomConfig::medium(),
        axes: vec![(SweepKnob::Rob, vec![])],
        random: None,
    };
    assert!(matches!(hollow_axis.generate(), Err(ConfigError::Zero { .. })));

    assert_eq!(SweepKnob::parse("fetch-width"), Some(SweepKnob::FetchWidth));
    assert_eq!(SweepKnob::parse("bp-shift"), Some(SweepKnob::BpShift));
    assert_eq!(SweepKnob::parse("bogus-knob"), None);
}

/// Idle-cycle skipping auto-arms only when every configuration in the
/// sweep uses the flat fixed-latency memory backend.
#[test]
fn idle_skip_auto_arm_requires_fixed_latency_everywhere() {
    let mut cfgs = small_grid();
    assert!(all_fixed_latency(&cfgs), "preset grids use the flat backend");

    cfgs[0].mem_backend = MemBackendKind::Hierarchy(HierarchyParams::default_uncore());
    assert!(
        !all_fixed_latency(&cfgs),
        "one hierarchy-backed configuration must disarm idle skipping"
    );
}
