//! Fault-tolerance tests for the flow supervisor: per-point isolation,
//! retry & re-weighting, watchdog diagnostics, and campaign-level cell
//! isolation.

use boom_uarch::BoomConfig;
use boomflow::{
    run_simpoint_flow, supervise_matrix, FailureKind, FaultInjection, FlowConfig, FlowError,
    RetryPolicy,
};
use proptest::prelude::*;
use rv_workloads::{by_name, Scale, Workload};
use simpoint::SimPointConfig;

fn quick_flow() -> FlowConfig {
    FlowConfig {
        simpoint: SimPointConfig { max_k: 6, restarts: 2, ..SimPointConfig::default() },
        warmup_insts: 1_000,
        max_profile_insts: 500_000_000,
        ..FlowConfig::default()
    }
}

/// The acceptance scenario: one simulation point forced to hang still
/// yields a `WorkloadResult` with re-normalized weights and a populated
/// degradation record carrying the watchdog snapshot.
#[test]
fn hang_on_one_point_degrades_and_renormalizes() {
    let w = by_name("bitcount", Scale::Test).unwrap();
    let cfg = BoomConfig::medium();

    // Establish that the workload has at least two points, so quarantining
    // one leaves a meaningful result.
    let clean = run_simpoint_flow(&cfg, &w, &quick_flow()).unwrap();
    assert!(clean.points.len() >= 2, "need >= 2 points for this test, got {}", clean.points.len());

    let flow = FlowConfig {
        inject: FaultInjection { hang_point: Some(0), ..FaultInjection::default() },
        retry: RetryPolicy { max_attempts: 2, ..RetryPolicy::default() },
        ..quick_flow()
    };
    let r = run_simpoint_flow(&cfg, &w, &flow).unwrap();

    assert_eq!(r.points.len(), clean.points.len() - 1);
    let wsum: f64 = r.points.iter().map(|p| p.weight).sum();
    assert!((wsum - 1.0).abs() < 1e-9, "weights must re-normalize to 1, got {wsum}");

    let d = r.degradation.expect("degradation record must be populated");
    assert_eq!(d.failed.len(), 1);
    assert_eq!(d.failed[0].simpoint, 0);
    assert_eq!(d.failed[0].attempts, 2, "the hung point must have been retried");
    assert!(d.lost_weight > 0.0 && d.lost_weight < 1.0);
    assert!(d.retries >= 1);
    match &d.failed[0].kind {
        FailureKind::Hung { snapshot } => {
            assert!(snapshot.cycles_since_commit >= 100_000, "watchdog fired early");
            assert!(!snapshot.issue_queues.is_empty());
            let text = snapshot.to_string();
            assert!(text.contains("watchdog"), "{text}");
            assert!(text.contains("diagnosis"), "{text}");
        }
        other => panic!("expected a hang, got {other}"),
    }
    // The degraded IPC is still a plausible weighted average.
    assert!(r.ipc > 0.2 && r.ipc < 3.0, "ipc {}", r.ipc);
}

/// An injected worker panic is caught, retried, and quarantined — the
/// process must not abort.
#[test]
fn panic_on_one_point_is_isolated() {
    let w = by_name("bitcount", Scale::Test).unwrap();
    let flow = FlowConfig {
        inject: FaultInjection { panic_point: Some(1), ..FaultInjection::default() },
        retry: RetryPolicy { max_attempts: 3, ..RetryPolicy::default() },
        ..quick_flow()
    };
    let r = run_simpoint_flow(&BoomConfig::medium(), &w, &flow).unwrap();
    let d = r.degradation.expect("degradation record must be populated");
    assert_eq!(d.failed.len(), 1);
    assert_eq!(d.failed[0].attempts, 3);
    assert!(matches!(d.failed[0].kind, FailureKind::Panicked { .. }));
    let wsum: f64 = r.points.iter().map(|p| p.weight).sum();
    assert!((wsum - 1.0).abs() < 1e-9);
}

/// The campaign driver isolates a failing cell: the broken workload's cell
/// fails, the healthy one still produces a result, and the failure log
/// names the failing cell.
#[test]
fn supervise_matrix_isolates_failing_cells() {
    use rv_isa::asm::Assembler;
    use rv_isa::reg::Reg::*;
    let mut a = Assembler::new();
    a.li(A0, 7);
    a.exit();
    let broken = Workload {
        name: "broken",
        suite: rv_workloads::Suite::MiBench,
        program: a.assemble().unwrap(),
        interval_size: 100,
    };
    let healthy = by_name("bitcount", Scale::Test).unwrap();

    let report = supervise_matrix(&[BoomConfig::medium()], &[broken, healthy], &quick_flow());
    assert_eq!(report.cells.len(), 2);
    assert!(!report.all_ok());
    assert_eq!(report.failed().count(), 1);
    assert!(report.cells[0].outcome.is_err(), "broken cell must fail");
    assert!(report.cells[1].outcome.is_ok(), "healthy cell must survive its neighbor");
    let log = report.failure_log().expect("failure log must be produced");
    assert!(log.contains("broken"), "{log}");
    assert!(log.contains("self-verification"), "{log}");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// A core forced into a hang on every point always surfaces as
    /// `FlowError::CoreHung` with a non-empty diagnostic snapshot,
    /// whatever the configuration, workload, or retry budget.
    #[test]
    fn forced_hang_always_yields_core_hung_with_snapshot(
        cfg_idx in 0usize..2,
        w_idx in 0usize..2,
        attempts in 1u32..3,
    ) {
        let cfg = if cfg_idx == 0 { BoomConfig::medium() } else { BoomConfig::large() };
        let w = by_name(["bitcount", "sha"][w_idx], Scale::Test).unwrap();
        let flow = FlowConfig {
            simpoint: SimPointConfig { max_k: 3, restarts: 1, ..SimPointConfig::default() },
            warmup_insts: 500,
            inject: FaultInjection { hang_every_point: true, ..FaultInjection::default() },
            retry: RetryPolicy { max_attempts: attempts, ..RetryPolicy::default() },
            ..FlowConfig::default()
        };
        match run_simpoint_flow(&cfg, &w, &flow) {
            Err(FlowError::CoreHung { snapshot, .. }) => {
                prop_assert!(snapshot.cycles_since_commit >= 100_000);
                prop_assert!(!snapshot.issue_queues.is_empty());
                prop_assert!(!snapshot.to_string().is_empty());
            }
            other => prop_assert!(false, "expected CoreHung, got {other:?}"),
        }
    }

    /// Quarantining any k of n points keeps the surviving weights summing
    /// to 1 after re-normalization.
    #[test]
    fn quarantine_keeps_weights_normalized(
        weights in proptest::collection::vec(0.01f64..1.0, 1..10),
        quarantine in 0usize..10,
    ) {
        let k = quarantine % weights.len();
        let survivors = &weights[k..];
        match boomflow::supervisor::renormalized(survivors) {
            Some(renorm) => {
                let sum: f64 = renorm.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
                prop_assert_eq!(renorm.len(), survivors.len());
            }
            None => prop_assert!(survivors.is_empty(), "non-empty survivors must renormalize"),
        }
    }
}
