//! Integration tests of the complete SimPoint flow across all crates:
//! functional profiling, phase analysis, checkpointing, detailed
//! simulation with warm-up, and weighted power/performance aggregation.

use boom_uarch::BoomConfig;
use boomflow::{run_full, run_simpoint_flow, FlowConfig};
use rv_workloads::{all, by_name, Scale};

#[test]
fn flow_invariants_hold_for_every_workload() {
    let flow = FlowConfig::default();
    let cfg = BoomConfig::medium();
    for w in all(Scale::Test) {
        let r = run_simpoint_flow(&cfg, &w, &flow).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(r.coverage >= 0.9, "{}: coverage {}", w.name, r.coverage);
        assert!(r.ipc > 0.1 && r.ipc < 4.0, "{}: ipc {}", w.name, r.ipc);
        let wsum: f64 = r.points.iter().map(|p| p.weight).sum();
        assert!((wsum - 1.0).abs() < 1e-9, "{}: weights sum {wsum}", w.name);
        assert!(
            r.tile_power_mw() > 5.0 && r.tile_power_mw() < 100.0,
            "{}: tile {} mW",
            w.name,
            r.tile_power_mw()
        );
        // At Test scale some workloads have so few intervals that SimPoint
        // cannot buy simulation time (it exists for *large* workloads);
        // the flow must still never blow the budget up by more than the
        // warm-up overhead.
        assert!(r.speedup > 0.5, "{}: speedup {}", w.name, r.speedup);
        // Leakage must not depend on the workload: every point of the same
        // config reports identical leakage per component.
        for c in rtl_power::Component::ALL {
            let leaks: Vec<f64> =
                r.points.iter().map(|p| p.power.component(c).leakage_mw).collect();
            for l in &leaks {
                assert!((l - leaks[0]).abs() < 1e-9, "{}: {c} leakage varies", w.name);
            }
        }
    }
}

#[test]
fn simpoint_ipc_matches_full_simulation_within_tolerance() {
    let flow = FlowConfig::default();
    let cfg = BoomConfig::large();
    for name in ["bitcount", "dijkstra", "sha", "matmult"] {
        let w = by_name(name, Scale::Test).unwrap();
        let sp = run_simpoint_flow(&cfg, &w, &flow).unwrap();
        let full = run_full(&cfg, &w).unwrap();
        let err = (sp.ipc - full.ipc).abs() / full.ipc;
        assert!(
            err < 0.30,
            "{name}: simpoint IPC {:.3} vs full {:.3} ({:.0}% error)",
            sp.ipc,
            full.ipc,
            100.0 * err
        );
    }
}

#[test]
fn bigger_cores_are_faster_but_less_efficient_on_average() {
    let flow = FlowConfig::default();
    let workloads = all(Scale::Test);
    let mean = |cfg: &BoomConfig| -> (f64, f64) {
        let rs: Vec<_> =
            workloads.iter().map(|w| run_simpoint_flow(cfg, w, &flow).unwrap()).collect();
        let n = rs.len() as f64;
        (
            rs.iter().map(|r| r.ipc).sum::<f64>() / n,
            rs.iter().map(|r| r.perf_per_watt()).sum::<f64>() / n,
        )
    };
    let (ipc_m, ppw_m) = mean(&BoomConfig::medium());
    let (ipc_g, ppw_g) = mean(&BoomConfig::mega());
    assert!(ipc_g > ipc_m * 1.1, "Mega IPC {ipc_g:.2} vs Medium {ipc_m:.2}");
    assert!(ppw_m > ppw_g * 1.2, "Medium IPC/W {ppw_m:.1} vs Mega {ppw_g:.1}");
}

#[test]
fn deterministic_results_across_runs() {
    let flow = FlowConfig::default();
    let w = by_name("patricia", Scale::Test).unwrap();
    let a = run_simpoint_flow(&BoomConfig::medium(), &w, &flow).unwrap();
    let b = run_simpoint_flow(&BoomConfig::medium(), &w, &flow).unwrap();
    assert_eq!(a.ipc, b.ipc);
    assert_eq!(a.tile_power_mw(), b.tile_power_mw());
    assert_eq!(a.points.len(), b.points.len());
}
