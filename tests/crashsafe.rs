//! Crash-safety tests: the disk-backed artifact cache under corruption
//! (truncations, bit flips, injected torn/corrupt writes) and the
//! resumable campaign journal (kill → resume → bit-identical report).

// Test helpers unwrap freely: a failed unwrap is exactly a test failure.
#![allow(clippy::unwrap_used)]

use boom_uarch::BoomConfig;
use boomflow::{
    campaign_fingerprint, campaign_fingerprint_with, run_simpoint_flow_with_store,
    supervise_campaign, supervise_matrix_with, ArtifactStore, CacheStage, CampaignJournal,
    CampaignOptions, DiskFaultInjection, FlowConfig, JournalError, WorkloadResult,
};
use proptest::prelude::*;
use rv_workloads::{by_name, Scale, Workload};
use simpoint::SimPointConfig;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

fn quick_flow() -> FlowConfig {
    FlowConfig {
        simpoint: SimPointConfig { max_k: 6, restarts: 2, ..SimPointConfig::default() },
        warmup_insts: 1_000,
        max_profile_insts: 500_000_000,
        ..FlowConfig::default()
    }
}

fn scratch(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("boomflow-crashsafe-{tag}-{}-{n}", std::process::id()))
}

/// Bit-level equality of everything a `WorkloadResult` reports.
fn assert_results_identical(a: &WorkloadResult, b: &WorkloadResult, what: &str) {
    assert_eq!(a.ipc.to_bits(), b.ipc.to_bits(), "{what}: ipc");
    assert_eq!(a.coverage.to_bits(), b.coverage.to_bits(), "{what}: coverage");
    assert_eq!(a.speedup.to_bits(), b.speedup.to_bits(), "{what}: speedup");
    assert_eq!(a.total_insts, b.total_insts, "{what}: total_insts");
    assert_eq!(a.points.len(), b.points.len(), "{what}: point count");
    for (i, (pa, pb)) in a.points.iter().zip(&b.points).enumerate() {
        assert_eq!(pa.interval, pb.interval, "{what}: point {i} interval");
        assert_eq!(pa.weight.to_bits(), pb.weight.to_bits(), "{what}: point {i} weight");
        assert_eq!(pa.ipc.to_bits(), pb.ipc.to_bits(), "{what}: point {i} ipc");
        assert_eq!(
            pa.stats.fingerprint(),
            pb.stats.fingerprint(),
            "{what}: point {i} activity fingerprint"
        );
    }
    for c in rtl_power::Component::ALL {
        assert_eq!(
            a.power.component(c).total_mw().to_bits(),
            b.power.component(c).total_mw().to_bits(),
            "{what}: {} power",
            c.name()
        );
    }
}

/// Cold store populates the disk cache; a brand-new store over the same
/// directory serves every front-half stage from disk, bit-identically.
#[test]
fn disk_cache_round_trips_across_store_instances() {
    let dir = scratch("roundtrip");
    let w = by_name("bitcount", Scale::Test).unwrap();
    let cfg = BoomConfig::medium();
    let flow = quick_flow();

    let cold_store = ArtifactStore::with_disk_cache(&dir).unwrap();
    let cold = run_simpoint_flow_with_store(&cfg, &w, &flow, &cold_store).unwrap();
    let cs = cold_store.stats();
    assert_eq!(cs.profile_computed, 1);
    assert_eq!(cs.disk_hits, 0, "cold run cannot hit the disk cache");
    assert!(cs.disk_misses >= 3, "profile, analysis, and checkpoints all miss cold");
    assert!(cs.disk_writes >= 3, "all three front-half stages must be persisted");

    let warm_store = ArtifactStore::with_disk_cache(&dir).unwrap();
    let warm = run_simpoint_flow_with_store(&cfg, &w, &flow, &warm_store).unwrap();
    let ws = warm_store.stats();
    assert_eq!(ws.profile_computed, 0, "warm run must load the profile from disk");
    assert_eq!(ws.cluster_computed, 0, "warm run must load the analysis from disk");
    assert_eq!(ws.checkpoint_computed, 0, "warm run must load the checkpoints from disk");
    assert!(ws.disk_hits >= 3, "all three stages must be disk hits, got {}", ws.disk_hits);
    assert_results_identical(&cold, &warm, "cold vs disk-warm");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Injected torn and corrupt writes poison the cache once; the next
/// store quarantines the damage, recomputes, and heals the cache —
/// results stay bit-identical throughout.
#[test]
fn injected_write_faults_quarantine_and_recompute() {
    let dir = scratch("faults");
    let w = by_name("bitcount", Scale::Test).unwrap();
    let cfg = BoomConfig::medium();
    let flow = quick_flow();

    let faults = DiskFaultInjection {
        torn_write: Some(CacheStage::Profile),
        corrupt_write: Some(CacheStage::Checkpoints),
    };
    let poisoned = ArtifactStore::with_disk_cache_injected(&dir, faults).unwrap();
    let reference = run_simpoint_flow_with_store(&cfg, &w, &flow, &poisoned).unwrap();

    let healer = ArtifactStore::with_disk_cache(&dir).unwrap();
    let healed = run_simpoint_flow_with_store(&cfg, &w, &flow, &healer).unwrap();
    let hs = healer.stats();
    assert!(hs.disk_quarantined >= 2, "torn profile and corrupt checkpoints must quarantine");
    assert!(hs.disk_writes >= 2, "quarantined stages must be recomputed and re-stored");
    assert_results_identical(&reference, &healed, "poisoned vs healed");
    assert!(
        std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .any(|e| { e.path().extension().is_some_and(|x| x == "corrupt") }),
        "quarantined entries must be preserved as .corrupt files"
    );

    let warm = ArtifactStore::with_disk_cache(&dir).unwrap();
    let again = run_simpoint_flow_with_store(&cfg, &w, &flow, &warm).unwrap();
    assert_eq!(warm.stats().disk_quarantined, 0, "the cache must be healed");
    assert!(warm.stats().disk_hits >= 3);
    assert_results_identical(&reference, &again, "poisoned vs healed-warm");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A replayed cached `FlowError` keeps its original failure context and
/// is counted as an error replay, and errors are never persisted to
/// disk (a transient failure must not poison future processes).
#[test]
fn cached_errors_replay_with_context_and_never_persist() {
    use rv_isa::asm::Assembler;
    use rv_isa::reg::Reg::*;
    let mut a = Assembler::new();
    a.li(A0, 7);
    a.exit();
    let broken = Workload {
        name: "broken",
        suite: rv_workloads::Suite::MiBench,
        program: a.assemble().unwrap(),
        interval_size: 100,
    };
    let dir = scratch("errs");
    let store = ArtifactStore::with_disk_cache(&dir).unwrap();
    let flow = quick_flow();
    let first = store.checkpoints(&broken, &flow).unwrap_err();
    let second = store.checkpoints(&broken, &flow).unwrap_err();
    assert_eq!(first.to_string(), second.to_string(), "replay must keep the failure context");
    let s = store.stats();
    assert_eq!(s.profile_computed, 1, "the failing profile ran once");
    assert!(s.error_replays >= 1, "the second call must be tagged as an error replay");
    assert_eq!(s.disk_writes, 0, "errors must never be persisted to the disk cache");

    let fresh = ArtifactStore::with_disk_cache(&dir).unwrap();
    let third = fresh.checkpoints(&broken, &flow).unwrap_err();
    assert_eq!(first.to_string(), third.to_string());
    assert_eq!(fresh.stats().profile_computed, 1, "a new process recomputes the error");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Offsets where journal records end: header is 16 bytes, records are
/// `[len u32][payload][checksum u64]`.
fn journal_record_ends(bytes: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut pos = 16;
    while pos + 4 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let end = pos + 4 + len + 8;
        if end > bytes.len() {
            break;
        }
        ends.push(end);
        pos = end;
    }
    ends
}

/// The acceptance scenario: a campaign interrupted mid-run resumes from
/// its journal — at `--jobs 1` and `--jobs 4` — and produces a report
/// bit-identical to an uninterrupted run, replaying the journaled
/// points instead of re-simulating them.
#[test]
fn resumed_campaign_report_is_bit_identical_to_uninterrupted() {
    let cfgs = vec![BoomConfig::medium(), BoomConfig::large()];
    let workloads =
        vec![by_name("bitcount", Scale::Test).unwrap(), by_name("dijkstra", Scale::Test).unwrap()];
    let flow = quick_flow();
    let fp = campaign_fingerprint(&cfgs, &workloads, &flow);
    let path = scratch("journal");

    let uninterrupted = supervise_matrix_with(
        &cfgs,
        &workloads,
        &flow,
        &CampaignOptions { jobs: 1, ..CampaignOptions::default() },
    );
    assert!(uninterrupted.all_ok());
    let reference = uninterrupted.render_deterministic();

    // Journal a full run, then cut the journal back to a prefix — the
    // on-disk state of a process killed partway through the campaign.
    let journal = CampaignJournal::create(&path, fp).unwrap();
    let journaled = supervise_campaign(
        &cfgs,
        &workloads,
        &flow,
        &ArtifactStore::new(),
        &CampaignOptions {
            jobs: 1,
            journal: Some(Arc::new(journal)),
            ..CampaignOptions::default()
        },
    );
    assert_eq!(journaled.render_deterministic(), reference, "journaling must not perturb");
    let full = std::fs::read(&path).unwrap();
    let ends = journal_record_ends(&full);
    assert!(ends.len() >= 4, "matrix must yield at least 4 points, got {}", ends.len());
    let keep = ends.len() / 2;

    for jobs in [1usize, 4] {
        std::fs::write(&path, &full[..ends[keep - 1]]).unwrap();
        let (journal, replay) = CampaignJournal::resume(&path, fp).unwrap();
        assert_eq!(replay.len(), keep, "every surviving record must replay");
        let resumed = supervise_campaign(
            &cfgs,
            &workloads,
            &flow,
            &ArtifactStore::new(),
            &CampaignOptions {
                jobs,
                journal: Some(Arc::new(journal)),
                replay: Some(Arc::new(replay)),
                ..CampaignOptions::default()
            },
        );
        assert_eq!(resumed.stats.replayed_points, keep as u64, "jobs {jobs}");
        assert_eq!(
            resumed.render_deterministic(),
            reference,
            "resumed report (jobs {jobs}) must be bit-identical to the uninterrupted run"
        );
        // After the resumed run the journal must be whole again.
        assert_eq!(
            journal_record_ends(&std::fs::read(&path).unwrap()).len(),
            ends.len(),
            "jobs {jobs}: resume must re-journal the recomputed points"
        );
    }

    // A journal from a different campaign setup is refused, not replayed.
    let mut other = quick_flow();
    other.warmup_insts += 1;
    let other_fp = campaign_fingerprint(&cfgs, &workloads, &other);
    assert!(matches!(
        CampaignJournal::resume(&path, other_fp),
        Err(JournalError::FingerprintMismatch { .. })
    ));
    let _ = std::fs::remove_file(&path);
}

/// A batched + idle-skip campaign journals per-(cell, point) records
/// exactly like a solo one — the campaign fingerprint deliberately
/// excludes both knobs — so a run killed partway resumes into a
/// bit-identical report in *either* mode: batched resuming batched, and
/// an unbatched skip-off process picking up a batched run's journal.
#[test]
fn batched_campaign_resumes_bit_identically_across_modes() {
    let cfgs = vec![BoomConfig::medium(), BoomConfig::large(), BoomConfig::mega()];
    let workloads =
        vec![by_name("bitcount", Scale::Test).unwrap(), by_name("dijkstra", Scale::Test).unwrap()];
    let solo_flow = quick_flow();
    let skip_flow = FlowConfig { idle_skip: true, ..quick_flow() };
    assert_eq!(
        campaign_fingerprint(&cfgs, &workloads, &solo_flow),
        campaign_fingerprint(&cfgs, &workloads, &skip_flow),
        "idle_skip must not enter the campaign fingerprint (journals resume across modes)"
    );
    let fp = campaign_fingerprint(&cfgs, &workloads, &solo_flow);
    let path = scratch("batched");

    let reference = supervise_matrix_with(
        &cfgs,
        &workloads,
        &solo_flow,
        &CampaignOptions { jobs: 1, ..CampaignOptions::default() },
    );
    assert!(reference.all_ok());
    let reference = reference.render_deterministic();

    // Journal a full batched + idle-skip run, then cut it back to the
    // on-disk prefix of a killed process.
    let journal = CampaignJournal::create(&path, fp).unwrap();
    let journaled = supervise_campaign(
        &cfgs,
        &workloads,
        &skip_flow,
        &ArtifactStore::new(),
        &CampaignOptions {
            jobs: 2,
            batch_lanes: 3,
            journal: Some(Arc::new(journal)),
            ..CampaignOptions::default()
        },
    );
    assert!(journaled.stats.batched_points > 0, "the journaled run must actually batch");
    assert_eq!(journaled.render_deterministic(), reference, "batched journaling must not perturb");
    let full = std::fs::read(&path).unwrap();
    let ends = journal_record_ends(&full);
    assert!(ends.len() >= 4, "matrix must yield at least 4 points, got {}", ends.len());
    let keep = ends.len() / 2;

    // Resume in batched mode and in solo skip-off mode; both must land on
    // the reference bytes. (Batching only groups the *unfilled* lanes, so
    // a half-replayed matrix still batches whatever is left.)
    let modes: [(&str, &FlowConfig, usize); 2] =
        [("batched", &skip_flow, 3), ("solo", &solo_flow, 1)];
    for (name, flow, batch_lanes) in modes {
        std::fs::write(&path, &full[..ends[keep - 1]]).unwrap();
        let (journal, replay) = CampaignJournal::resume(&path, fp).unwrap();
        assert_eq!(replay.len(), keep, "{name}: every surviving record must replay");
        let resumed = supervise_campaign(
            &cfgs,
            &workloads,
            flow,
            &ArtifactStore::new(),
            &CampaignOptions {
                jobs: 2,
                batch_lanes,
                journal: Some(Arc::new(journal)),
                replay: Some(Arc::new(replay)),
                ..CampaignOptions::default()
            },
        );
        assert_eq!(resumed.stats.replayed_points, keep as u64, "{name}");
        assert_eq!(
            resumed.render_deterministic(),
            reference,
            "{name}: resumed report must be bit-identical to the uninterrupted solo run"
        );
        assert_eq!(
            journal_record_ends(&std::fs::read(&path).unwrap()).len(),
            ends.len(),
            "{name}: resume must re-journal the recomputed points"
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// Quarantined (degraded) points replay from the journal with weight
/// re-normalization intact: a resumed degraded campaign matches the
/// uninterrupted degraded campaign bit for bit.
#[test]
fn degraded_campaign_resumes_bit_identically() {
    use boomflow::{FaultInjection, RetryPolicy};
    let cfgs = vec![BoomConfig::medium()];
    let workloads = vec![by_name("bitcount", Scale::Test).unwrap()];
    let flow = FlowConfig {
        inject: FaultInjection { hang_point: Some(0), ..FaultInjection::default() },
        retry: RetryPolicy { max_attempts: 1, ..RetryPolicy::default() },
        ..quick_flow()
    };
    let fp = campaign_fingerprint(&cfgs, &workloads, &flow);
    let path = scratch("degraded");

    let reference = supervise_matrix_with(
        &cfgs,
        &workloads,
        &flow,
        &CampaignOptions { jobs: 1, ..CampaignOptions::default() },
    );
    let journal = CampaignJournal::create(&path, fp).unwrap();
    let journaled = supervise_campaign(
        &cfgs,
        &workloads,
        &flow,
        &ArtifactStore::new(),
        &CampaignOptions {
            jobs: 1,
            journal: Some(Arc::new(journal)),
            ..CampaignOptions::default()
        },
    );
    assert_eq!(journaled.render_deterministic(), reference.render_deterministic());
    assert!(
        reference.render_deterministic().contains("quarantined"),
        "the hang injection must actually degrade the campaign"
    );

    // Cut nothing: replay *everything*, including the quarantined point.
    let (journal, replay) = CampaignJournal::resume(&path, fp).unwrap();
    assert!(!replay.is_empty());
    let n = replay.len() as u64;
    let resumed = supervise_campaign(
        &cfgs,
        &workloads,
        &flow,
        &ArtifactStore::new(),
        &CampaignOptions {
            jobs: 1,
            journal: Some(Arc::new(journal)),
            replay: Some(Arc::new(replay)),
            ..CampaignOptions::default()
        },
    );
    assert_eq!(resumed.stats.replayed_points, n);
    assert_eq!(resumed.render_deterministic(), reference.render_deterministic());
    let _ = std::fs::remove_file(&path);
}

/// A dual-core campaign journals its co-run outcomes too: a run killed
/// partway — whether it lost one co-run core, or the whole co cell plus
/// some single-core points — resumes at any job count into a report
/// bit-identical to the uninterrupted run.
#[test]
fn dual_core_campaign_resumes_bit_identically() {
    let cfgs = vec![BoomConfig::medium()];
    let workloads =
        vec![by_name("bitcount", Scale::Test).unwrap(), by_name("dijkstra", Scale::Test).unwrap()];
    let flow = quick_flow();
    let co_runs = vec![(0usize, 1usize)];
    let fp = campaign_fingerprint_with(&cfgs, &workloads, &flow, &co_runs);
    let path = scratch("dualcore");
    let opts = |jobs, journal, replay| CampaignOptions {
        jobs,
        journal,
        replay,
        co_runs: co_runs.clone(),
        ..CampaignOptions::default()
    };

    // Adding a co-run changes the campaign identity: a journal written
    // without it must be refused, not partially replayed.
    assert_ne!(fp, campaign_fingerprint(&cfgs, &workloads, &flow));

    let reference = supervise_matrix_with(&cfgs, &workloads, &flow, &opts(1, None, None));
    assert!(reference.all_ok(), "{:?}", reference.failure_log());
    assert_eq!(reference.co_cells.len(), 1);
    let reference = reference.render_deterministic();

    let journal = CampaignJournal::create(&path, fp).unwrap();
    let journaled = supervise_campaign(
        &cfgs,
        &workloads,
        &flow,
        &ArtifactStore::new(),
        &opts(1, Some(Arc::new(journal)), None),
    );
    assert_eq!(journaled.render_deterministic(), reference, "journaling must not perturb");
    let full = std::fs::read(&path).unwrap();
    let ends = journal_record_ends(&full);
    assert!(ends.len() >= 4, "single-core points plus two co-run cores, got {}", ends.len());

    // Cut 1 drops only the last co-run core; cut 2 drops the whole co
    // cell and part of the single-core matrix.
    for (keep, jobs) in [(ends.len() - 1, 1usize), (ends.len() / 2, 4)] {
        std::fs::write(&path, &full[..ends[keep - 1]]).unwrap();
        let (journal, replay) = CampaignJournal::resume(&path, fp).unwrap();
        assert_eq!(replay.len(), keep);
        let resumed = supervise_campaign(
            &cfgs,
            &workloads,
            &flow,
            &ArtifactStore::new(),
            &opts(jobs, Some(Arc::new(journal)), Some(Arc::new(replay))),
        );
        assert_eq!(resumed.stats.replayed_points, keep as u64, "keep {keep} jobs {jobs}");
        assert_eq!(
            resumed.render_deterministic(),
            reference,
            "resumed dual-core report (keep {keep}, jobs {jobs}) must be bit-identical"
        );
        assert_eq!(
            journal_record_ends(&std::fs::read(&path).unwrap()).len(),
            ends.len(),
            "keep {keep} jobs {jobs}: resume must re-journal the recomputed points"
        );
    }

    // The pre-co-run fingerprint is refused outright.
    std::fs::write(&path, &full).unwrap();
    assert!(matches!(
        CampaignJournal::resume(&path, campaign_fingerprint(&cfgs, &workloads, &flow)),
        Err(JournalError::FingerprintMismatch { .. })
    ));
    let _ = std::fs::remove_file(&path);
}

/// Shared fixture for the corruption property: one populated cache
/// directory plus the reference result. Mutated entries quarantine and
/// recompute, which re-stores a good file, so the directory self-heals
/// between cases.
struct CorruptionFixture {
    dir: PathBuf,
    reference: WorkloadResult,
}

fn corruption_fixture() -> &'static CorruptionFixture {
    static FIXTURE: OnceLock<CorruptionFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = scratch("prop");
        let w = by_name("bitcount", Scale::Test).unwrap();
        let store = ArtifactStore::with_disk_cache(&dir).unwrap();
        let reference =
            run_simpoint_flow_with_store(&BoomConfig::medium(), &w, &quick_flow(), &store).unwrap();
        CorruptionFixture { dir, reference }
    })
}

fn cache_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "bfa"))
        .collect();
    files.sort();
    files
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Satellite: whatever single mutilation a cache file suffers —
    /// truncation anywhere (including a zero-byte mid-write kill) or a
    /// bit flip anywhere — the flow quarantines the damage and
    /// recomputes. It never serves a wrong artifact and never aborts.
    #[test]
    fn corrupted_cache_entries_quarantine_never_corrupt_results(
        which in 0usize..3,
        truncate in any::<bool>(),
        frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let fixture = corruption_fixture();
        let files = cache_files(&fixture.dir);
        prop_assert_eq!(files.len(), 3, "profile, analysis, checkpoints");
        let victim = &files[which % files.len()];
        let original = std::fs::read(victim).unwrap();
        let mutated = if truncate {
            original[..(original.len() as f64 * frac) as usize].to_vec()
        } else {
            let mut m = original.clone();
            let idx = ((m.len() - 1) as f64 * frac) as usize;
            m[idx] ^= 1 << bit;
            m
        };
        let changed = mutated != original;
        std::fs::write(victim, &mutated).unwrap();

        let store = ArtifactStore::with_disk_cache(&fixture.dir).unwrap();
        let result = run_simpoint_flow_with_store(
            &BoomConfig::medium(),
            &by_name("bitcount", Scale::Test).unwrap(),
            &quick_flow(),
            &store,
        )
        .unwrap();
        assert_results_identical(&fixture.reference, &result, "corrupted cache");
        let s = store.stats();
        if changed {
            prop_assert!(
                s.disk_quarantined >= 1,
                "a damaged entry must be quarantined, not silently used"
            );
        }
        // Self-heal check: the victim file is valid again.
        let healed = ArtifactStore::with_disk_cache(&fixture.dir).unwrap();
        let again = run_simpoint_flow_with_store(
            &BoomConfig::medium(),
            &by_name("bitcount", Scale::Test).unwrap(),
            &quick_flow(),
            &healed,
        )
        .unwrap();
        assert_results_identical(&fixture.reference, &again, "healed cache");
        prop_assert_eq!(healed.stats().disk_quarantined, 0);
    }
}
