//! Property-based tests of the power model: monotonicity in activity and
//! geometry, additivity of the leakage/internal/switching split, and
//! scale-invariance of per-cycle normalization.

use boom_uarch::stats::Stats;
use boom_uarch::BoomConfig;
use proptest::prelude::*;
use rtl_power::{estimate, Component, PredictorGeometry};

fn geom() -> PredictorGeometry {
    PredictorGeometry { cond_bits: 65536, tables_per_lookup: 5, btb_bits: 14592 }
}

fn stats_with(cycles: u64, fill: impl Fn(&mut Stats)) -> Stats {
    let cfg = BoomConfig::medium();
    let mut s = Stats::new(cfg.int_issue_slots, cfg.mem_issue_slots, cfg.fp_issue_slots);
    s.cycles = cycles;
    fill(&mut s);
    s
}

proptest! {
    /// More of any single activity never lowers any component's power.
    #[test]
    fn activity_is_monotone(
        base_reads in 0u64..100_000,
        extra in 1u64..100_000,
    ) {
        let cfg = BoomConfig::medium();
        let cycles = 100_000;
        let lo = stats_with(cycles, |s| s.irf_reads = base_reads);
        let hi = stats_with(cycles, |s| s.irf_reads = base_reads + extra);
        let p_lo = estimate(&cfg, &lo, &geom());
        let p_hi = estimate(&cfg, &hi, &geom());
        prop_assert!(
            p_hi.component(Component::IntRegFile).total_mw()
                >= p_lo.component(Component::IntRegFile).total_mw()
        );
        // Unrelated components must be unaffected.
        let d = (p_hi.component(Component::DCache).total_mw()
            - p_lo.component(Component::DCache).total_mw())
        .abs();
        prop_assert!(d < 1e-12);
    }

    /// The three power classes are non-negative and sum to the total.
    #[test]
    fn split_is_additive(
        reads in 0u64..1_000_000,
        writes in 0u64..1_000_000,
        lookups in 0u64..1_000_000,
    ) {
        let cfg = BoomConfig::large();
        let s = stats_with(1_000_000, |s| {
            s.irf_reads = reads;
            s.irf_writes = writes;
            s.bp.lookups = lookups;
            s.bp.table_reads = lookups * 5;
        });
        let rep = estimate(&cfg, &s, &geom());
        for (c, pb) in rep.iter() {
            prop_assert!(pb.leakage_mw >= 0.0, "{c}");
            prop_assert!(pb.internal_mw >= 0.0, "{c}");
            prop_assert!(pb.switching_mw >= 0.0, "{c}");
            let sum = pb.leakage_mw + pb.internal_mw + pb.switching_mw;
            prop_assert!((sum - pb.total_mw()).abs() < 1e-12, "{c}");
        }
    }

    /// Power is a rate: scaling counters and cycles together is invariant.
    #[test]
    fn per_cycle_normalization(k in 2u64..10, reads in 1u64..10_000) {
        let cfg = BoomConfig::mega();
        let a = stats_with(100_000, |s| {
            s.irf_reads = reads;
            s.decoded = reads;
        });
        let b = stats_with(100_000 * k, |s| {
            s.irf_reads = reads * k;
            s.decoded = reads * k;
        });
        let pa = estimate(&cfg, &a, &geom());
        let pb = estimate(&cfg, &b, &geom());
        prop_assert!((pa.tile_total_mw() - pb.tile_total_mw()).abs() < 1e-9);
    }
}

#[test]
fn leakage_ordering_medium_large_mega() {
    // With zero activity, every component's power is pure leakage and the
    // bigger configuration must never leak less.
    let zero = |cfg: &BoomConfig| {
        let mut s = Stats::new(cfg.int_issue_slots, cfg.mem_issue_slots, cfg.fp_issue_slots);
        s.cycles = 1000;
        estimate(cfg, &s, &geom())
    };
    let m = zero(&BoomConfig::medium());
    let l = zero(&BoomConfig::large());
    let g = zero(&BoomConfig::mega());
    for c in Component::ALL {
        let (pm, pl, pg) =
            (m.component(c).leakage_mw, l.component(c).leakage_mw, g.component(c).leakage_mw);
        assert!(pl >= pm - 1e-12, "{c}: Large {pl} < Medium {pm}");
        assert!(pg >= pl - 1e-12, "{c}: Mega {pg} < Large {pl}");
    }
}

#[test]
fn gshare_geometry_cuts_bp_power() {
    let cfg = BoomConfig::large();
    let s = stats_with_activity();
    let tage = estimate(&cfg, &s, &geom());
    let small = PredictorGeometry { cond_bits: 16384, tables_per_lookup: 1, btb_bits: 14592 };
    let gsh = estimate(&cfg, &s, &small);
    let ratio = tage.component(Component::BranchPredictor).total_mw()
        / gsh.component(Component::BranchPredictor).total_mw();
    assert!(ratio > 1.5, "ratio {ratio}");
}

fn stats_with_activity() -> Stats {
    let cfg = BoomConfig::large();
    let mut s = Stats::new(cfg.int_issue_slots, cfg.mem_issue_slots, cfg.fp_issue_slots);
    s.cycles = 100_000;
    s.bp.lookups = 20_000;
    s.bp.table_reads = 100_000;
    s.bp.updates = 20_000;
    s.bp.btb_lookups = 20_000;
    s
}
