//! Per-component calibration constants.
//!
//! Structure models in [`crate::structures`] fix the *shape* of each
//! component's power (how it scales with ports, entries, and activity);
//! the two constants here fix its *absolute level*. They were fitted by
//! least squares against the per-component averages the paper reports
//! for MediumBOOM / LargeBOOM / MegaBOOM at 500 MHz in ASAP7 (§IV-B),
//! using the measured activity of this repository's eleven scaled
//! workloads (see `boomflow-bench`'s `calibrate` tool, which regenerates
//! this table).
//!
//! This mirrors what McPAT-Calib does for McPAT: analytic models
//! anchored to published reference numbers.

use crate::report::Component;

/// Scale factors applied to one component's modelled power.
#[derive(Clone, Copy, Debug)]
pub struct ComponentCalib {
    /// Multiplier on modelled leakage power.
    pub leakage: f64,
    /// Multiplier on modelled dynamic (internal + switching) power.
    pub dynamic: f64,
}

/// Calibration table. Regenerate with `cargo run -p boomflow-bench --bin
/// calibrate` after model changes.
pub fn calibration(c: Component) -> ComponentCalib {
    let (leakage, dynamic) = match c {
        Component::IntRegFile => (2.3336, 2.0000),
        Component::FpRegFile => (9.2503, 4.0000),
        Component::IntRename => (2.4245, 20.4760),
        Component::FpRename => (2.4390, 18.5441),
        Component::IntIssue => (0.0001, 3.6598),
        Component::MemIssue => (0.0001, 4.8889),
        Component::FpIssue => (1.3044, 4.0882),
        Component::Rob => (15.4310, 0.0001),
        Component::BranchPredictor => (6.2017, 26.0000),
        Component::FetchBuffer => (3.2661, 3.5060),
        Component::Lsu => (2.5950, 6.3563),
        Component::DCache => (1.1685, 7.5343),
        Component::ICache => (0.0001, 15.4928),
        Component::RestOfTile => (1.1915, 0.3636),
        // Uncore components have no paper reference figure (the paper's
        // tile stops at L1); they ship uncalibrated until the bench
        // `calibrate` tool grows hierarchy targets.
        Component::L2Cache => (1.0, 1.0),
        Component::DramInterface => (1.0, 1.0),
    };
    ComponentCalib { leakage, dynamic }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_is_positive_for_all_components() {
        for c in Component::ALL {
            let k = calibration(c);
            assert!(k.leakage > 0.0 && k.dynamic > 0.0, "{c}");
        }
    }
}
