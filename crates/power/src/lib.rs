//! # rtl-power — activity-based RTL power estimation
//!
//! This crate plays the role of Cadence Joules + the ASAP7 PDK in the
//! paper *"SimPoint-Based Microarchitectural Hotspot & Energy-Efficiency
//! Analysis of RISC-V OoO CPUs"* (ISPASS 2024). Joules maps RTL onto
//! standard cells and combines per-cell library energies with per-signal
//! toggle rates from simulation traces; this crate does the same one
//! abstraction level up: it maps each of the thirteen analyzed BOOM
//! components onto parametric structure models (SRAM arrays, CAMs,
//! multi-ported register files, bypass networks) and combines their
//! ASAP7-flavoured energy coefficients with the per-structure activity
//! counters produced by `boom-uarch`.
//!
//! Power is decomposed the way RTL power tools report it (§II-E of the
//! paper):
//!
//! * **leakage** — state-independent, proportional to storage bits and
//!   port-scaled cell sizes;
//! * **internal** — per-access energy inside cells (wordlines, sense
//!   amps, clocking of occupied entries);
//! * **switching** — load-capacitance switching on broadcast wires
//!   (wakeup tags, bypass networks, snapshot buses).
//!
//! The absolute scale is calibrated against the per-component averages
//! the paper reports for the three BOOM configurations at 500 MHz in
//! ASAP7 (see [`calib`]); the *workload-* and *configuration-sensitivity*
//! comes entirely from the activity counters.
//!
//! ```
//! use boom_uarch::{BoomConfig, Core};
//! use rtl_power::{estimate_core, Component};
//! # use rv_isa::asm::Assembler; use rv_isa::reg::Reg::*;
//! # let mut a = Assembler::new();
//! # a.li(T0, 500); a.label("l"); a.addi(T0, T0, -1); a.bnez(T0, "l"); a.exit();
//! # let p = a.assemble().unwrap();
//! let mut core = Core::new(BoomConfig::medium(), &p);
//! core.run(1_000_000);
//! let report = estimate_core(&core);
//! let bp = report.component(Component::BranchPredictor);
//! assert!(bp.total_mw() > 0.0);
//! assert!(report.tile_total_mw() > bp.total_mw());
//! ```

#![warn(missing_docs)]
pub mod calib;
pub mod estimate;
pub mod report;
pub mod structures;

pub use estimate::{estimate, estimate_core, PredictorGeometry};
pub use report::{Component, PowerBreakdown, PowerReport};
