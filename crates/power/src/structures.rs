//! Parametric energy models for the hardware structures BOOM is built
//! from: SRAM arrays, CAMs, multi-ported register files, and broadcast
//! (bypass/wakeup) networks.
//!
//! The models are first-order but capture the *scaling* the paper's
//! analysis hinges on:
//!
//! * multi-port register-file cells grow with total port count, and the
//!   bypass network grows **non-linearly** in read × write ports (Key
//!   Takeaway #1);
//! * CAM search energy scales with the number of searched entries
//!   (issue-queue wakeup, STQ address match);
//! * SRAM access energy scales with the row width and associativity;
//! * leakage scales with storage bits, inflated by port-heavy cells.
//!
//! All energies are in picojoules per event; leakage in milliwatts.

/// ASAP7-flavoured base coefficients (7 nm-class, 0.7 V, typical corner).
///
/// These are the "liberty file" of the model: one set of process
/// constants shared by every structure.
#[derive(Clone, Copy, Debug)]
pub struct ProcessParams {
    /// Leakage per storage bit of single-port SRAM, in mW.
    pub leak_per_bit_mw: f64,
    /// Leakage per bit of flip-flop/latch storage (queues, maps), in mW.
    pub leak_per_ff_bit_mw: f64,
    /// Read/write energy per bit of single-port SRAM, in pJ.
    pub sram_bit_access_pj: f64,
    /// Energy per bit driven across a broadcast wire, in pJ.
    pub wire_bit_pj: f64,
    /// Energy per CAM tag comparison (per entry, per search), in pJ.
    pub cam_compare_pj: f64,
    /// Clock/precharge energy per occupied flip-flop bit per cycle, in pJ.
    pub clock_per_bit_pj: f64,
}

impl Default for ProcessParams {
    fn default() -> ProcessParams {
        ProcessParams {
            leak_per_bit_mw: 6.0e-6,
            leak_per_ff_bit_mw: 2.5e-5,
            sram_bit_access_pj: 2.2e-4,
            wire_bit_pj: 1.2e-4,
            cam_compare_pj: 3.0e-3,
            clock_per_bit_pj: 4.0e-5,
        }
    }
}

/// A single-port (or lightly ported) SRAM array such as a cache data/tag
/// array or a predictor table.
#[derive(Clone, Copy, Debug)]
pub struct SramArray {
    /// Total storage bits.
    pub bits: u64,
    /// Bits driven per access (row width).
    pub row_bits: u64,
}

impl SramArray {
    /// Leakage power in mW.
    pub fn leakage_mw(&self, p: &ProcessParams) -> f64 {
        self.bits as f64 * p.leak_per_bit_mw
    }

    /// Energy of one access in pJ (row activation + a size-dependent
    /// wordline/bitline term).
    pub fn access_pj(&self, p: &ProcessParams) -> f64 {
        let row = self.row_bits as f64 * p.sram_bit_access_pj;
        // Larger arrays pay longer bitlines: sqrt term.
        let wires = (self.bits as f64).sqrt() * p.wire_bit_pj;
        row + wires
    }
}

/// A multi-ported register file with a bypass network.
#[derive(Clone, Copy, Debug)]
pub struct MultiPortRegFile {
    /// Number of registers.
    pub regs: u64,
    /// Bits per register.
    pub width: u64,
    /// Read ports.
    pub read_ports: u64,
    /// Write ports.
    pub write_ports: u64,
}

impl MultiPortRegFile {
    /// The size of the bypass/forwarding network in "wire-bit units".
    ///
    /// Every write port broadcasts to every read port across the operand
    /// width, and the mux/comparator tree grows with total port count —
    /// the super-linear growth the paper highlights.
    pub fn bypass_units(&self) -> f64 {
        // Empirically, RTL power of BOOM's merged register files grows
        // roughly with the cube of (read x write) ports: the forwarding
        // mux tree and comparator matrix both widen and deepen. This is
        // the non-linearity behind the paper's Key Takeaways #1 and #2.
        let rw = (self.read_ports * self.write_ports) as f64;
        rw.powf(2.7) / 64.0 * self.width as f64
    }

    /// Leakage power in mW: port-heavy cells grow quadratically with port
    /// count, and the bypass network leaks in proportion to its size.
    pub fn leakage_mw(&self, p: &ProcessParams) -> f64 {
        let ports = (self.read_ports + self.write_ports) as f64;
        let cells =
            self.regs as f64 * self.width as f64 * p.leak_per_bit_mw * (0.3 + 0.015 * ports);
        let bypass = self.bypass_units() * 3.0 * p.leak_per_bit_mw;
        cells + bypass
    }

    /// Energy of one register read in pJ.
    pub fn read_pj(&self, p: &ProcessParams) -> f64 {
        let ports = (self.read_ports + self.write_ports) as f64;
        self.width as f64 * p.sram_bit_access_pj * (1.0 + 0.15 * ports)
    }

    /// Energy of one register write in pJ (includes the bypass broadcast
    /// to all read ports).
    pub fn write_pj(&self, p: &ProcessParams) -> f64 {
        let bypass = self.width as f64 * self.read_ports as f64 * p.wire_bit_pj;
        self.read_pj(p) + bypass
    }
}

/// A CAM-searched queue (issue-queue wakeup, STQ address match).
#[derive(Clone, Copy, Debug)]
pub struct CamQueue {
    /// Number of entries.
    pub entries: u64,
    /// Payload bits per entry.
    pub entry_bits: u64,
    /// Tag bits compared per search.
    pub tag_bits: u64,
}

impl CamQueue {
    /// Leakage power in mW (flip-flop storage + comparators).
    pub fn leakage_mw(&self, p: &ProcessParams) -> f64 {
        let storage = (self.entries * self.entry_bits) as f64 * p.leak_per_ff_bit_mw;
        let comparators = (self.entries * self.tag_bits) as f64 * 2.0 * p.leak_per_ff_bit_mw;
        storage + comparators
    }

    /// Energy of writing one entry, in pJ.
    pub fn write_pj(&self, p: &ProcessParams) -> f64 {
        self.entry_bits as f64 * p.sram_bit_access_pj * 2.0
    }

    /// Energy of one tag comparison against one entry, in pJ.
    pub fn compare_pj(&self, p: &ProcessParams) -> f64 {
        p.cam_compare_pj * self.tag_bits as f64 / 8.0
    }

    /// Clock/precharge energy of one occupied entry for one cycle, in pJ.
    pub fn hold_pj(&self, p: &ProcessParams) -> f64 {
        self.entry_bits as f64 * p.clock_per_bit_pj
    }
}

/// Converts an energy-per-cycle figure to power at a clock frequency.
///
/// `pj_per_cycle` picojoules dissipated each cycle at `clock_hz` is
/// `pj_per_cycle × clock_hz / 1e9` mW.
#[inline]
pub fn pj_per_cycle_to_mw(pj_per_cycle: f64, clock_hz: f64) -> f64 {
    pj_per_cycle * clock_hz / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: ProcessParams = ProcessParams {
        leak_per_bit_mw: 6.0e-6,
        leak_per_ff_bit_mw: 2.5e-5,
        sram_bit_access_pj: 2.2e-4,
        wire_bit_pj: 1.2e-4,
        cam_compare_pj: 3.0e-3,
        clock_per_bit_pj: 4.0e-5,
    };

    #[test]
    fn regfile_power_grows_superlinearly_with_ports() {
        // MediumBOOM vs MegaBOOM integer register files (Table I).
        let medium = MultiPortRegFile { regs: 80, width: 64, read_ports: 6, write_ports: 3 };
        let mega = MultiPortRegFile { regs: 128, width: 64, read_ports: 12, write_ports: 6 };
        let leak_ratio = mega.leakage_mw(&P) / medium.leakage_mw(&P);
        // Registers grow 1.6x but power must grow much faster (ports).
        assert!(leak_ratio > 3.0, "leakage ratio {leak_ratio}");
        let write_ratio = mega.write_pj(&P) / medium.write_pj(&P);
        assert!(write_ratio > 1.5, "write ratio {write_ratio}");
    }

    #[test]
    fn sram_access_energy_scales_with_row_width() {
        let narrow = SramArray { bits: 1 << 15, row_bits: 64 };
        let wide = SramArray { bits: 1 << 15, row_bits: 512 };
        assert!(wide.access_pj(&P) > narrow.access_pj(&P) * 3.0);
    }

    #[test]
    fn cam_energy_monotone_in_geometry() {
        let small = CamQueue { entries: 12, entry_bits: 40, tag_bits: 14 };
        let large = CamQueue { entries: 40, entry_bits: 40, tag_bits: 14 };
        assert!(large.leakage_mw(&P) > small.leakage_mw(&P));
        assert_eq!(small.compare_pj(&P), large.compare_pj(&P));
    }

    #[test]
    fn unit_conversion_at_500mhz() {
        // 1 pJ per 2 ns cycle = 0.5 mW.
        assert!((pj_per_cycle_to_mw(1.0, 500e6) - 0.5).abs() < 1e-12);
    }
}
