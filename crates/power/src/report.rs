//! Power report types: per-component leakage/internal/switching breakdowns.

use std::fmt;

/// The thirteen microarchitectural components the paper analyzes, plus
/// the remainder of the BOOM tile (execution units, decode, FTQ, …).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Component {
    /// Integer physical register file (incl. its bypass network).
    IntRegFile,
    /// FP physical register file (incl. its bypass network).
    FpRegFile,
    /// Integer rename unit (map table, free list, allocation lists).
    IntRename,
    /// FP rename unit.
    FpRename,
    /// Integer issue unit (collapsing queue).
    IntIssue,
    /// Memory issue unit.
    MemIssue,
    /// FP issue unit.
    FpIssue,
    /// Reorder buffer.
    Rob,
    /// Branch predictor (conditional predictor + BTB + RAS).
    BranchPredictor,
    /// Fetch buffer.
    FetchBuffer,
    /// Load-store unit (LDQ/STQ + search logic).
    Lsu,
    /// L1 data cache (incl. MSHRs).
    DCache,
    /// L1 instruction cache.
    ICache,
    /// Everything else in the tile (execution units, decode, fetch
    /// control) — needed to reproduce the paper's Fig. 9 contributions.
    RestOfTile,
    /// Shared L2 SRAM (incl. its MSHRs); present only when a hierarchy
    /// memory backend is configured.
    L2Cache,
    /// DRAM interface (controller queues, row activation, bus drivers);
    /// present only when a hierarchy memory backend is configured.
    DramInterface,
}

impl Component {
    /// The thirteen analyzed components, in the paper's presentation order.
    pub const ANALYZED: [Component; 13] = [
        Component::IntRegFile,
        Component::FpRegFile,
        Component::IntRename,
        Component::FpRename,
        Component::IntIssue,
        Component::MemIssue,
        Component::FpIssue,
        Component::Rob,
        Component::BranchPredictor,
        Component::FetchBuffer,
        Component::Lsu,
        Component::DCache,
        Component::ICache,
    ];

    /// All components: the tile remainder plus the uncore components
    /// that appear under the hierarchy memory backend. New variants go
    /// at the end — the journal codec tags components by position here.
    pub const ALL: [Component; 16] = [
        Component::IntRegFile,
        Component::FpRegFile,
        Component::IntRename,
        Component::FpRename,
        Component::IntIssue,
        Component::MemIssue,
        Component::FpIssue,
        Component::Rob,
        Component::BranchPredictor,
        Component::FetchBuffer,
        Component::Lsu,
        Component::DCache,
        Component::ICache,
        Component::RestOfTile,
        Component::L2Cache,
        Component::DramInterface,
    ];

    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Component::IntRegFile => "Int RegFile",
            Component::FpRegFile => "FP RegFile",
            Component::IntRename => "Int Rename",
            Component::FpRename => "FP Rename",
            Component::IntIssue => "Int Issue",
            Component::MemIssue => "Mem Issue",
            Component::FpIssue => "FP Issue",
            Component::Rob => "ROB",
            Component::BranchPredictor => "Branch Predictor",
            Component::FetchBuffer => "Fetch Buffer",
            Component::Lsu => "LSU",
            Component::DCache => "L1 DCache",
            Component::ICache => "L1 ICache",
            Component::RestOfTile => "Rest of Tile",
            Component::L2Cache => "L2 Cache",
            Component::DramInterface => "DRAM Interface",
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Power of one component, decomposed the way RTL tools report it.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PowerBreakdown {
    /// Static (leakage) power in mW.
    pub leakage_mw: f64,
    /// Internal (cell-internal) power in mW.
    pub internal_mw: f64,
    /// Switching (net) power in mW.
    pub switching_mw: f64,
}

impl PowerBreakdown {
    /// Total power in mW.
    pub fn total_mw(&self) -> f64 {
        self.leakage_mw + self.internal_mw + self.switching_mw
    }

    /// Component-wise sum.
    pub fn add(&self, other: &PowerBreakdown) -> PowerBreakdown {
        PowerBreakdown {
            leakage_mw: self.leakage_mw + other.leakage_mw,
            internal_mw: self.internal_mw + other.internal_mw,
            switching_mw: self.switching_mw + other.switching_mw,
        }
    }

    /// Scales all three parts (weighted SimPoint averaging).
    pub fn scale(&self, k: f64) -> PowerBreakdown {
        PowerBreakdown {
            leakage_mw: self.leakage_mw * k,
            internal_mw: self.internal_mw * k,
            switching_mw: self.switching_mw * k,
        }
    }
}

/// A complete per-component power report for one simulation.
#[derive(Clone, Debug)]
pub struct PowerReport {
    entries: Vec<(Component, PowerBreakdown)>,
    /// Per-slot power of the integer issue queue (paper Fig. 8), mW.
    pub int_issue_slot_mw: Vec<f64>,
}

impl PowerReport {
    /// Builds a report from `(component, breakdown)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a component appears twice.
    pub fn new(
        entries: Vec<(Component, PowerBreakdown)>,
        int_issue_slot_mw: Vec<f64>,
    ) -> PowerReport {
        for (i, (c, _)) in entries.iter().enumerate() {
            assert!(entries[i + 1..].iter().all(|(d, _)| d != c), "duplicate component {c}");
        }
        PowerReport { entries, int_issue_slot_mw }
    }

    /// Power of one component (zero if absent).
    pub fn component(&self, c: Component) -> PowerBreakdown {
        self.entries.iter().find(|(d, _)| *d == c).map(|(_, p)| *p).unwrap_or_default()
    }

    /// Iterates `(component, breakdown)` in presentation order.
    pub fn iter(&self) -> impl Iterator<Item = &(Component, PowerBreakdown)> {
        self.entries.iter()
    }

    /// Total tile power (all components + rest of tile), mW.
    pub fn tile_total_mw(&self) -> f64 {
        self.entries.iter().map(|(_, p)| p.total_mw()).sum()
    }

    /// Sum of the thirteen analyzed components, mW.
    pub fn analyzed_total_mw(&self) -> f64 {
        Component::ANALYZED.iter().map(|c| self.component(*c).total_mw()).sum()
    }

    /// Fraction of tile power covered by the analyzed components
    /// (the paper's Fig. 9: 73 % / 81 % / 85 %).
    pub fn analyzed_fraction(&self) -> f64 {
        self.analyzed_total_mw() / self.tile_total_mw().max(1e-12)
    }

    /// Weighted average of reports (SimPoint aggregation). Weights should
    /// sum to 1.
    ///
    /// # Panics
    ///
    /// Panics if `reports` is empty or lengths differ.
    pub fn weighted_average(reports: &[(f64, &PowerReport)]) -> PowerReport {
        assert!(!reports.is_empty(), "no reports to average");
        let first = reports[0].1;
        let mut entries: Vec<(Component, PowerBreakdown)> =
            first.entries.iter().map(|(c, _)| (*c, PowerBreakdown::default())).collect();
        let mut slots = vec![0.0; first.int_issue_slot_mw.len()];
        for (w, r) in reports {
            assert_eq!(r.entries.len(), entries.len(), "mismatched report shapes");
            for (acc, (c, p)) in entries.iter_mut().zip(r.entries.iter()) {
                assert_eq!(acc.0, *c);
                acc.1 = acc.1.add(&p.scale(*w));
            }
            for (acc, s) in slots.iter_mut().zip(&r.int_issue_slot_mw) {
                *acc += w * s;
            }
        }
        PowerReport { entries, int_issue_slot_mw: slots }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pb(l: f64, i: f64, s: f64) -> PowerBreakdown {
        PowerBreakdown { leakage_mw: l, internal_mw: i, switching_mw: s }
    }

    #[test]
    fn totals_are_additive() {
        let r = PowerReport::new(
            vec![
                (Component::IntRegFile, pb(0.1, 0.2, 0.3)),
                (Component::RestOfTile, pb(1.0, 0.0, 0.0)),
            ],
            vec![],
        );
        assert!((r.tile_total_mw() - 1.6).abs() < 1e-12);
        assert!((r.analyzed_total_mw() - 0.6).abs() < 1e-12);
        assert!((r.analyzed_fraction() - 0.375).abs() < 1e-12);
    }

    #[test]
    fn weighted_average_is_convex() {
        let a = PowerReport::new(vec![(Component::Rob, pb(1.0, 1.0, 1.0))], vec![2.0]);
        let b = PowerReport::new(vec![(Component::Rob, pb(3.0, 3.0, 3.0))], vec![4.0]);
        let avg = PowerReport::weighted_average(&[(0.5, &a), (0.5, &b)]);
        assert!((avg.component(Component::Rob).total_mw() - 6.0).abs() < 1e-12);
        assert!((avg.int_issue_slot_mw[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_component_rejected() {
        let _ = PowerReport::new(
            vec![(Component::Rob, pb(1.0, 0.0, 0.0)), (Component::Rob, pb(2.0, 0.0, 0.0))],
            vec![],
        );
    }

    #[test]
    fn missing_component_reads_zero() {
        let r = PowerReport::new(vec![], vec![]);
        assert_eq!(r.component(Component::DCache).total_mw(), 0.0);
    }
}
