//! The power estimator: configuration + activity → per-component power.

use crate::calib::calibration;
use crate::report::{Component, PowerBreakdown, PowerReport};
use crate::structures::{pj_per_cycle_to_mw, CamQueue, MultiPortRegFile, ProcessParams, SramArray};
use boom_uarch::stats::{IssueQueueStats, Stats};
use boom_uarch::{BoomConfig, Core};

/// Storage geometry of the branch-prediction structures, taken from the
/// live predictor objects (their size depends on the configured flavour).
#[derive(Clone, Copy, Debug)]
pub struct PredictorGeometry {
    /// Conditional-predictor storage bits (TAGE ≫ gshare).
    pub cond_bits: u64,
    /// Tables read per prediction.
    pub tables_per_lookup: u64,
    /// BTB storage bits.
    pub btb_bits: u64,
}

/// Convenience wrapper: estimates power for a finished [`Core`] run.
pub fn estimate_core(core: &Core) -> PowerReport {
    let geom = PredictorGeometry {
        cond_bits: core.predictor_storage_bits(),
        tables_per_lookup: core.predictor_tables_per_lookup(),
        btb_bits: core.btb_storage_bits(),
    };
    estimate(core.config(), core.stats(), &geom)
}

/// Estimates per-component power from a configuration, its activity
/// counters, and the predictor geometry.
///
/// Leakage is constant per configuration; internal and switching power
/// scale with events per cycle, converted to mW at the configured clock.
pub fn estimate(cfg: &BoomConfig, stats: &Stats, geom: &PredictorGeometry) -> PowerReport {
    let p = ProcessParams::default();
    let est = Estimator { cfg, stats, geom, p, cycles: stats.cycles.max(1) as f64 };
    let mut entries = Vec::with_capacity(14);
    entries.push((Component::IntRegFile, est.int_regfile()));
    entries.push((Component::FpRegFile, est.fp_regfile()));
    entries.push((Component::IntRename, est.rename(true)));
    entries.push((Component::FpRename, est.rename(false)));
    entries.push((
        Component::IntIssue,
        est.issue_queue(&stats.int_iq, cfg.int_issue_slots, cfg.int_issue_width),
    ));
    entries.push((
        Component::MemIssue,
        est.issue_queue(&stats.mem_iq, cfg.mem_issue_slots, cfg.mem_issue_width),
    ));
    entries.push((
        Component::FpIssue,
        est.issue_queue(&stats.fp_iq, cfg.fp_issue_slots, cfg.fp_issue_width),
    ));
    entries.push((Component::Rob, est.rob()));
    entries.push((Component::BranchPredictor, est.branch_predictor()));
    entries.push((Component::FetchBuffer, est.fetch_buffer()));
    entries.push((Component::Lsu, est.lsu()));
    entries.push((Component::DCache, est.dcache()));
    entries.push((Component::ICache, est.icache()));
    entries.push((Component::RestOfTile, est.rest_of_tile()));
    // Uncore components exist only under the hierarchy backend, so
    // fixed-latency reports keep their original 14-entry shape (and
    // their exact rendering) byte for byte.
    if let boom_uarch::MemBackendKind::Hierarchy(h) = &cfg.mem_backend {
        entries.push((
            Component::L2Cache,
            est.cache(&h.l2, &stats.mem.l2, (h.l2.line_bytes * 8) as u64, 1),
        ));
        entries.push((Component::DramInterface, est.dram(h)));
    }
    // Apply the per-component calibration.
    for (c, pb) in &mut entries {
        let k = calibration(*c);
        pb.leakage_mw *= k.leakage;
        pb.internal_mw *= k.dynamic;
        pb.switching_mw *= k.dynamic;
    }
    let slots = est.int_issue_per_slot();
    PowerReport::new(entries, slots)
}

/// Bits per issue-queue entry (uop payload).
const IQ_ENTRY_BITS: u64 = 70;
/// Physical-register tag bits compared by wakeup CAMs.
const IQ_TAG_BITS: u64 = 8;
/// Bits per ROB entry (no data — merged register file).
const ROB_ENTRY_BITS: u64 = 50;
/// Bits per fetch-buffer entry (instruction + prediction metadata).
const FB_ENTRY_BITS: u64 = 80;
/// Bits per LDQ/STQ entry (address + data + flags).
const LSQ_ENTRY_BITS: u64 = 110;
/// Address bits compared by the STQ search CAM.
const LSQ_TAG_BITS: u64 = 40;
/// Tag bits per cache line.
const CACHE_TAG_BITS: u64 = 24;

struct Estimator<'a> {
    cfg: &'a BoomConfig,
    stats: &'a Stats,
    geom: &'a PredictorGeometry,
    p: ProcessParams,
    cycles: f64,
}

impl Estimator<'_> {
    #[inline]
    fn epc(&self, events: u64) -> f64 {
        events as f64 / self.cycles
    }

    #[inline]
    fn to_mw(&self, pj_per_cycle: f64) -> f64 {
        pj_per_cycle_to_mw(pj_per_cycle, self.cfg.clock_hz)
    }

    fn regfile(&self, rf: MultiPortRegFile, reads: u64, writes: u64) -> PowerBreakdown {
        let p = &self.p;
        let internal = self.epc(reads) * rf.read_pj(p) + self.epc(writes) * rf.read_pj(p) * 1.2;
        // Every write broadcasts across the bypass network; the network's
        // clocked comparators also tick every cycle.
        let bypass_wire = rf.width as f64 * rf.read_ports as f64 * p.wire_bit_pj;
        let switching =
            self.epc(writes) * bypass_wire + rf.bypass_units() * 0.02 * p.clock_per_bit_pj;
        PowerBreakdown {
            leakage_mw: rf.leakage_mw(p),
            internal_mw: self.to_mw(internal),
            switching_mw: self.to_mw(switching),
        }
    }

    fn int_regfile(&self) -> PowerBreakdown {
        let rf = MultiPortRegFile {
            regs: self.cfg.int_phys_regs as u64,
            width: 64,
            read_ports: self.cfg.irf_read_ports as u64,
            write_ports: self.cfg.irf_write_ports as u64,
        };
        self.regfile(rf, self.stats.irf_reads, self.stats.irf_writes)
    }

    fn fp_regfile(&self) -> PowerBreakdown {
        let rf = MultiPortRegFile {
            regs: self.cfg.fp_phys_regs as u64,
            width: 64,
            read_ports: self.cfg.frf_read_ports as u64,
            write_ports: self.cfg.frf_write_ports as u64,
        };
        self.regfile(rf, self.stats.frf_reads, self.stats.frf_writes)
    }

    fn rename(&self, int: bool) -> PowerBreakdown {
        let p = &self.p;
        let (phys, rs) = if int {
            (self.cfg.int_phys_regs as u64, &self.stats.int_rename)
        } else {
            (self.cfg.fp_phys_regs as u64, &self.stats.fp_rename)
        };
        let tag_bits = (64 - (phys - 1).leading_zeros()) as u64; // ceil(log2)
        let map_bits = 32 * tag_bits;
        let snapshot_bits = map_bits + phys; // allocation list: map + free list
        let storage_bits = map_bits + phys + self.cfg.max_br_count as u64 * snapshot_bits;
        // The map table and allocation lists are read/written by every
        // decode lane, so cell size grows with machine width.
        let leakage = storage_bits as f64 * p.leak_per_ff_bit_mw * self.cfg.decode_width as f64;

        let map_access = tag_bits as f64 * p.sram_bit_access_pj * 4.0;
        let internal = (self.epc(rs.map_reads) + self.epc(rs.map_writes)) * map_access
            + (self.epc(rs.freelist_pops) + self.epc(rs.freelist_pushes))
                * (tag_bits as f64 * p.sram_bit_access_pj * 3.0);
        // Snapshot writes copy the entire allocation list — this is what
        // makes the FP rename unit burn power on every branch even in
        // integer-only code (Key Takeaway #3).
        let switching = self.epc(rs.snapshot_writes) * snapshot_bits as f64 * p.wire_bit_pj * 4.0;
        PowerBreakdown {
            leakage_mw: leakage,
            internal_mw: self.to_mw(internal),
            switching_mw: self.to_mw(switching),
        }
    }

    fn iq_cam(&self, slots: usize) -> CamQueue {
        CamQueue { entries: slots as u64, entry_bits: IQ_ENTRY_BITS, tag_bits: IQ_TAG_BITS }
    }

    fn issue_queue(&self, iq: &IssueQueueStats, slots: usize, width: usize) -> PowerBreakdown {
        let p = &self.p;
        let cam = self.iq_cam(slots);
        // Every additional issue port adds a full read/select network to
        // the queue, scaling all per-event energies.
        let port_factor = width as f64;
        // A non-collapsing queue trades the shift writes for an explicit
        // age-ordered select network (~slots^2 age matrix): selection gets
        // markedly more expensive and the matrix leaks.
        let (select_factor, age_matrix_bits) = match self.cfg.iq_kind {
            boom_uarch::IssueQueueKind::Collapsing => (1.0, 0u64),
            boom_uarch::IssueQueueKind::NonCollapsing => (4.0, (slots * slots) as u64),
        };
        let select_pj = slots as f64 * 0.25 * p.clock_per_bit_pj * 8.0 * select_factor;
        // Occupied slots dominate: every occupied entry clocks its
        // payload, precharges its wakeup comparators, and participates in
        // select every cycle — the paper's occupancy-correlated power
        // (Fig. 8). Entry writes/shifts are comparatively cheap.
        let internal =
            ((self.epc(iq.writes) + self.epc(iq.collapse_writes)) * cam.write_pj(p) * 0.15
                + self.epc(iq.issued) * select_pj
                + self.epc(iq.occupancy_sum) * cam.hold_pj(p) * 10.0)
                * port_factor;
        // Wakeup: each broadcast compares source tags of waiting entries.
        let switching = self.epc(iq.wakeup_cam_matches) * cam.compare_pj(p) * port_factor;
        PowerBreakdown {
            leakage_mw: cam.leakage_mw(p) + age_matrix_bits as f64 * p.leak_per_ff_bit_mw,
            internal_mw: self.to_mw(internal),
            switching_mw: self.to_mw(switching),
        }
    }

    /// Per-slot power of the integer issue queue (paper Fig. 8), mW,
    /// calibration applied to match the component total.
    fn int_issue_per_slot(&self) -> Vec<f64> {
        let p = &self.p;
        let k = calibration(Component::IntIssue);
        let cam = self.iq_cam(self.cfg.int_issue_slots);
        let iq = &self.stats.int_iq;
        let port_factor = self.cfg.int_issue_width as f64;
        let leak_per_slot = cam.leakage_mw(p) / self.cfg.int_issue_slots as f64 * k.leakage;
        let total_occ: u64 = iq.slot_occupancy.iter().sum::<u64>().max(1);
        iq.slot_occupancy
            .iter()
            .zip(&iq.slot_writes)
            .map(|(&occ, &writes)| {
                let hold = self.epc(occ) * cam.hold_pj(p) * 10.0 * port_factor;
                let write = self.epc(writes) * cam.write_pj(p) * 0.15 * port_factor;
                // Wakeup compare energy distributed by slot residency.
                let wake =
                    self.epc(iq.wakeup_cam_matches) * cam.compare_pj(p) * port_factor * occ as f64
                        / total_occ as f64;
                leak_per_slot + self.to_mw(hold + write + wake) * k.dynamic
            })
            .collect()
    }

    fn rob(&self) -> PowerBreakdown {
        let p = &self.p;
        let bits = self.cfg.rob_entries as u64 * ROB_ENTRY_BITS;
        let leakage = bits as f64 * p.leak_per_ff_bit_mw * 0.6;
        let access = ROB_ENTRY_BITS as f64 * p.sram_bit_access_pj * 2.0;
        let internal = (self.epc(self.stats.rob_writes) + self.epc(self.stats.rob_reads)) * access
            + self.epc(self.stats.rob_occupancy_sum)
                * ROB_ENTRY_BITS as f64
                * p.clock_per_bit_pj
                * 0.3;
        PowerBreakdown { leakage_mw: leakage, internal_mw: self.to_mw(internal), switching_mw: 0.0 }
    }

    fn branch_predictor(&self) -> PowerBreakdown {
        let p = &self.p;
        let bp = &self.stats.bp;
        let total_bits = self.geom.cond_bits + self.geom.btb_bits + 32 * 64;
        let leakage = total_bits as f64 * p.leak_per_bit_mw * 2.2;

        let table = SramArray {
            bits: (self.geom.cond_bits / self.geom.tables_per_lookup.max(1)).max(1),
            row_bits: 16,
        };
        let btb =
            SramArray { bits: self.geom.btb_bits.max(1), row_bits: 57 * self.cfg.btb_ways as u64 };
        let internal = self.epc(bp.table_reads) * table.access_pj(p)
            + self.epc(bp.updates) * table.access_pj(p) * 1.5
            + self.epc(bp.allocations) * table.access_pj(p) * 2.0
            + (self.epc(bp.btb_lookups) + self.epc(bp.btb_updates)) * btb.access_pj(p)
            + (self.epc(bp.ras_pushes) + self.epc(bp.ras_pops)) * (64.0 * p.sram_bit_access_pj);
        // Index hashing / history folding toggles every lookup.
        let switching = self.epc(bp.lookups) * 128.0 * p.wire_bit_pj;
        PowerBreakdown {
            leakage_mw: leakage,
            internal_mw: self.to_mw(internal),
            switching_mw: self.to_mw(switching),
        }
    }

    fn fetch_buffer(&self) -> PowerBreakdown {
        let p = &self.p;
        let bits = self.cfg.fetch_buffer_entries as u64 * FB_ENTRY_BITS;
        let leakage = bits as f64 * p.leak_per_ff_bit_mw * 0.5;
        let access = FB_ENTRY_BITS as f64 * p.sram_bit_access_pj * 2.0;
        let internal = (self.epc(self.stats.fetch_buffer_writes)
            + self.epc(self.stats.fetch_buffer_reads))
            * access
            + self.epc(self.stats.fetch_buffer_occupancy_sum)
                * FB_ENTRY_BITS as f64
                * p.clock_per_bit_pj
                * 0.3;
        PowerBreakdown { leakage_mw: leakage, internal_mw: self.to_mw(internal), switching_mw: 0.0 }
    }

    fn lsu(&self) -> PowerBreakdown {
        let p = &self.p;
        let entries = (self.cfg.ldq_entries + self.cfg.stq_entries) as u64;
        let cam = CamQueue { entries, entry_bits: LSQ_ENTRY_BITS, tag_bits: LSQ_TAG_BITS };
        let leakage = cam.leakage_mw(p);
        let internal = (self.epc(self.stats.ldq_writes) + self.epc(self.stats.stq_writes))
            * cam.write_pj(p)
            + self.epc(self.stats.lsu_occupancy_sum) * cam.hold_pj(p) * 0.5
            + self.epc(self.stats.agu_ops) * (40.0 * p.sram_bit_access_pj * 4.0);
        // Each load searches the whole STQ.
        let search_pj = self.cfg.stq_entries as f64 * cam.compare_pj(p);
        let switching = self.epc(self.stats.stq_searches) * search_pj
            + self.epc(self.stats.forwards) * 64.0 * p.wire_bit_pj;
        PowerBreakdown {
            leakage_mw: leakage,
            internal_mw: self.to_mw(internal),
            switching_mw: self.to_mw(switching),
        }
    }

    fn cache(
        &self,
        params: &boom_uarch::CacheParams,
        cs: &boom_uarch::stats::CacheStats,
        row_bits: u64,
        ports: usize,
    ) -> PowerBreakdown {
        let p = &self.p;
        let cap_bits = (params.capacity_bytes() * 8) as u64;
        let tag_bits = (params.sets * params.ways) as u64 * CACHE_TAG_BITS;
        let data = SramArray { bits: cap_bits, row_bits: row_bits * params.ways as u64 / 2 };
        let tags = SramArray { bits: tag_bits, row_bits: CACHE_TAG_BITS * params.ways as u64 };
        let mshr_bits = params.mshrs as u64 * 64 * 8;
        // Multi-ported arrays (MegaBOOM's dual memory units) roughly
        // double the cell size — Key Takeaway #8.
        let leakage = ((cap_bits + tag_bits) as f64 * p.leak_per_bit_mw
            + mshr_bits as f64 * p.leak_per_ff_bit_mw)
            * ports as f64;

        let line_bits = (params.line_bytes * 8) as f64;
        let internal = (self.epc(cs.reads) + self.epc(cs.writes))
            * (data.access_pj(p) + tags.access_pj(p))
            + self.epc(cs.misses) * line_bits * p.sram_bit_access_pj * 1.5
            + self.epc(cs.writebacks) * line_bits * p.sram_bit_access_pj
            + self.epc(cs.mshr_occupancy_sum) * 64.0 * 8.0 * p.clock_per_bit_pj;
        let switching = self.epc(cs.misses) * line_bits * p.wire_bit_pj;
        PowerBreakdown {
            leakage_mw: leakage,
            internal_mw: self.to_mw(internal),
            switching_mw: self.to_mw(switching),
        }
    }

    fn dcache(&self) -> PowerBreakdown {
        self.cache(&self.cfg.dcache, &self.stats.dcache, 64, self.cfg.mem_issue_width)
    }

    fn icache(&self) -> PowerBreakdown {
        self.cache(&self.cfg.icache, &self.stats.icache, 32 * self.cfg.fetch_width as u64, 1)
    }

    /// DRAM interface: controller queues and pads leak; each transfer
    /// moves a full line across the bus (internal), and each row
    /// activation (a transfer that missed the open row) fires the
    /// high-energy wordline/bitline path (switching).
    fn dram(&self, h: &boom_uarch::HierarchyParams) -> PowerBreakdown {
        let p = &self.p;
        let m = &self.stats.mem;
        let line_bits = (h.l2.line_bytes * 8) as f64;
        // Controller: request/response queues plus bus pad drivers,
        // modelled as flop storage for 64 line-sized entries.
        let ctrl_bits = 64.0 * line_bits;
        let leakage = ctrl_bits * p.leak_per_ff_bit_mw;
        let transfers = self.epc(m.dram_reads) + self.epc(m.dram_writes);
        let internal = transfers * line_bits * (p.sram_bit_access_pj + p.wire_bit_pj * 4.0);
        let activations = self.epc((m.dram_reads + m.dram_writes).saturating_sub(m.dram_row_hits));
        let row_bits = h.dram_row_bytes as f64 * 8.0;
        let switching = activations * row_bits * p.sram_bit_access_pj * 0.5;
        PowerBreakdown {
            leakage_mw: leakage,
            internal_mw: self.to_mw(internal),
            switching_mw: self.to_mw(switching),
        }
    }

    fn rest_of_tile(&self) -> PowerBreakdown {
        let p = &self.p;
        let s = self.stats;
        // Execution units + decode + fetch control leak roughly in
        // proportion to machine width.
        let unit_bits = (self.cfg.decode_width * 14_000
            + self.cfg.mem_issue_width * 6_000
            + self.cfg.fp_issue_width * 22_000
            + 30_000) as f64;
        let leakage = unit_bits * p.leak_per_ff_bit_mw;
        let internal = self.epc(s.alu_ops) * 1.6
            + self.epc(s.mul_ops) * 5.0
            + self.epc(s.div_ops) * 18.0
            + self.epc(s.fpu_ops) * 7.0
            + self.epc(s.fdiv_ops) * 24.0
            + self.epc(s.agu_ops) * 1.2
            + self.epc(s.decoded) * 2.4;
        let switching = self.epc(s.decoded) * 0.8;
        PowerBreakdown {
            leakage_mw: leakage,
            internal_mw: self.to_mw(internal),
            switching_mw: self.to_mw(switching),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boom_uarch::BoomConfig;
    use rv_isa::asm::Assembler;
    use rv_isa::reg::Reg::*;

    fn run_loop(cfg: BoomConfig) -> Core {
        let mut a = Assembler::new();
        a.li(A0, 0);
        a.li(T0, 5000);
        a.label("loop");
        a.add(A0, A0, T0);
        a.xori(A1, A0, 21);
        a.addi(T0, T0, -1);
        a.bnez(T0, "loop");
        a.exit();
        let p = a.assemble().unwrap();
        let mut core = Core::new(cfg, &p);
        let r = core.run(10_000_000);
        assert!(r.exited);
        core
    }

    #[test]
    fn all_components_positive() {
        let core = run_loop(BoomConfig::medium());
        let rep = estimate_core(&core);
        for (c, pb) in rep.iter() {
            assert!(pb.leakage_mw >= 0.0, "{c} leakage");
            assert!(pb.total_mw() > 0.0, "{c} total");
        }
        assert!(rep.analyzed_fraction() > 0.3 && rep.analyzed_fraction() < 1.0);
    }

    #[test]
    fn hierarchy_config_reports_uncore_components() {
        use boom_uarch::HierarchyParams;
        // Fixed latency: the report keeps its original 14-entry shape.
        let flat = estimate_core(&run_loop(BoomConfig::medium()));
        assert_eq!(flat.iter().count(), 14);
        assert_eq!(flat.component(Component::L2Cache).total_mw(), 0.0);
        // Hierarchy: L2 and DRAM appear with nonzero power (cold-start
        // icache/dcache misses always reach the uncore).
        let cfg = BoomConfig::medium().with_hierarchy(HierarchyParams::default_uncore());
        let rep = estimate_core(&run_loop(cfg));
        assert_eq!(rep.iter().count(), 16);
        assert!(rep.component(Component::L2Cache).total_mw() > 0.0);
        assert!(rep.component(Component::DramInterface).total_mw() > 0.0);
        assert!(rep.component(Component::DramInterface).switching_mw > 0.0, "row activations");
    }

    #[test]
    fn bigger_config_burns_more_power() {
        let med = estimate_core(&run_loop(BoomConfig::medium()));
        let mega = estimate_core(&run_loop(BoomConfig::mega()));
        assert!(mega.tile_total_mw() > med.tile_total_mw());
        // The integer register file must grow dramatically (Takeaway #1).
        let ratio = mega.component(Component::IntRegFile).total_mw()
            / med.component(Component::IntRegFile).total_mw();
        assert!(ratio > 3.0, "IRF ratio {ratio}");
    }

    #[test]
    fn leakage_is_workload_independent() {
        let a = estimate_core(&run_loop(BoomConfig::large()));
        let mut quick = Assembler::new();
        quick.li(T0, 10);
        quick.label("l");
        quick.addi(T0, T0, -1);
        quick.bnez(T0, "l");
        quick.exit();
        let p = quick.assemble().unwrap();
        let mut core = Core::new(BoomConfig::large(), &p);
        core.run(10_000_000);
        let b = estimate_core(&core);
        for c in Component::ALL {
            let (la, lb) = (a.component(c).leakage_mw, b.component(c).leakage_mw);
            assert!((la - lb).abs() < 1e-9, "{c}: {la} vs {lb}");
        }
    }

    #[test]
    fn per_slot_power_sums_below_component_total() {
        let core = run_loop(BoomConfig::mega());
        let rep = estimate_core(&core);
        assert_eq!(rep.int_issue_slot_mw.len(), 40);
        let slot_sum: f64 = rep.int_issue_slot_mw.iter().sum();
        let total = rep.component(Component::IntIssue).total_mw();
        // Slots exclude the shared select tree, so the sum is close to but
        // does not exceed the component total.
        assert!(slot_sum <= total * 1.01, "slots {slot_sum} vs total {total}");
        assert!(slot_sum > total * 0.3);
    }

    #[test]
    fn occupied_low_slots_burn_more() {
        let core = run_loop(BoomConfig::mega());
        let rep = estimate_core(&core);
        // A simple dependent loop keeps only the low slots occupied.
        assert!(rep.int_issue_slot_mw[0] > rep.int_issue_slot_mw[39]);
    }
}
