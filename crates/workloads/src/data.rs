//! Deterministic input-data generation shared by the workloads.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG for a named workload — same name, same data, always.
pub fn rng_for(name: &str) -> SmallRng {
    let mut seed = 0xB00F_CAFE_u64;
    for b in name.bytes() {
        seed = seed.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
    }
    SmallRng::seed_from_u64(seed)
}

/// `n` random 64-bit values.
pub fn u64s(rng: &mut SmallRng, n: usize) -> Vec<u64> {
    (0..n).map(|_| rng.gen()).collect()
}

/// `n` random 32-bit values as u64 (zero-extended).
pub fn u32s(rng: &mut SmallRng, n: usize) -> Vec<u64> {
    (0..n).map(|_| rng.gen::<u32>() as u64).collect()
}

/// `n` random bytes, restricted to lowercase letters and spaces (text-like).
pub fn text(rng: &mut SmallRng, n: usize) -> Vec<u8> {
    (0..n).map(|_| if rng.gen_ratio(1, 6) { b' ' } else { rng.gen_range(b'a'..=b'z') }).collect()
}

/// `n` doubles uniform in `(lo, hi)`.
pub fn doubles(rng: &mut SmallRng, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let a = u64s(&mut rng_for("x"), 8);
        let b = u64s(&mut rng_for("x"), 8);
        let c = u64s(&mut rng_for("y"), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn text_is_printable() {
        let t = text(&mut rng_for("t"), 1000);
        assert!(t.iter().all(|&b| b == b' ' || b.is_ascii_lowercase()));
    }
}
