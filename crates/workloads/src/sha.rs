//! Sha (Embench/MiBench-style): SHA-256 compression over a message buffer.
//!
//! The paper's highest-IPC workload: two independent hash lanes (as in
//! multi-buffer SHA libraries) and an 8x-unrolled round loop with
//! register-role rotation expose abundant integer ILP, which lets all
//! three BOOM configurations approach their issue-width ceilings
//! (Fig. 10) while leaving the integer issue queue nearly empty (Fig. 8).

use crate::data::{rng_for, u32s};
use crate::{Scale, Suite, Workload};
use rv_isa::asm::Assembler;
use rv_isa::reg::Reg::{self, *};

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Reference SHA-256 compression (whole blocks, no padding) — the oracle
/// for the assembly implementation.
fn compress_blocks(blocks: &[u32], reps: u64) -> [u32; 8] {
    let mut h = H0;
    for _ in 0..reps {
        for block in blocks.chunks_exact(16) {
            let mut w = [0u32; 64];
            w[..16].copy_from_slice(block);
            for t in 16..64 {
                let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
                let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
                w[t] = w[t - 16].wrapping_add(s0).wrapping_add(w[t - 7]).wrapping_add(s1);
            }
            let (mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh) =
                (h[0], h[1], h[2], h[3], h[4], h[5], h[6], h[7]);
            for t in 0..64 {
                let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
                let ch = (e & f) ^ (!e & g);
                let t1 = hh.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[t]).wrapping_add(w[t]);
                let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
                let maj = (a & b) ^ (a & c) ^ (b & c);
                let t2 = s0.wrapping_add(maj);
                hh = g;
                g = f;
                f = e;
                e = d.wrapping_add(t1);
                d = c;
                c = b;
                b = a;
                a = t1.wrapping_add(t2);
            }
            for (hi, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
                *hi = hi.wrapping_add(v);
            }
        }
    }
    h
}

/// Emits `rd = rs rotr32 r` using `t` as a temporary (1 <= r <= 31).
fn rotr32(a: &mut Assembler, rd: Reg, rs: Reg, r: i32, t: Reg) {
    a.srliw(t, rs, r);
    a.slliw(rd, rs, 32 - r);
    a.or(rd, rd, t);
}

/// Emits one SHA-256 round for the lane whose working variables live in
/// `st = [a,b,c,d,e,f,g,h]`. Writes only `st[3]` (d += t1, the next e)
/// and `st[7]` (h = t1 + t2, the next a); the caller rotates the role
/// array, so no move instructions are needed. `k` holds K[t] and must
/// survive; temps T0-T3 and T5 are clobbered.
fn emit_round(a: &mut Assembler, st: &[Reg; 8], w_ptr: Reg, w_off: i32, k: Reg) {
    // khw = k + w + h (off the critical e-chain)
    a.lw(T5, w_ptr, w_off);
    a.addw(T5, T5, k);
    a.addw(T5, T5, st[7]);
    // s1 = rotr(e,6) ^ rotr(e,11) ^ rotr(e,25)
    rotr32(a, T0, st[4], 6, T1);
    rotr32(a, T2, st[4], 11, T1);
    a.xor(T0, T0, T2);
    rotr32(a, T2, st[4], 25, T1);
    a.xor(T0, T0, T2);
    // ch = (e & f) ^ (!e & g)
    a.and(T2, st[4], st[5]);
    a.not(T3, st[4]);
    a.and(T3, T3, st[6]);
    a.xor(T2, T2, T3);
    // t1 = s1 + ch + khw
    a.addw(T0, T0, T2);
    a.addw(T0, T0, T5);
    // d += t1 (becomes the next round's e)
    a.addw(st[3], st[3], T0);
    // s0 = rotr(a,2) ^ rotr(a,13) ^ rotr(a,22)
    rotr32(a, T2, st[0], 2, T1);
    rotr32(a, T3, st[0], 13, T1);
    a.xor(T2, T2, T3);
    rotr32(a, T3, st[0], 22, T1);
    a.xor(T2, T2, T3);
    // maj = (a&b) ^ (a&c) ^ (b&c)
    a.and(T3, st[0], st[1]);
    a.and(T5, st[0], st[2]);
    a.xor(T3, T3, T5);
    a.and(T5, st[1], st[2]);
    a.xor(T3, T3, T5);
    a.addw(T2, T2, T3); // t2
                        // h = t1 + t2 (becomes the next round's a)
    a.addw(st[7], T0, T2);
}

/// Emits the message-schedule expansion for one lane: copies the block at
/// `msg_ptr` into the buffer labelled `wbuf` and expands W[16..64].
/// Clobbers T1-T6, A6 and A7.
fn emit_schedule(a: &mut Assembler, msg_ptr: Reg, wbuf: &str) {
    a.la(A6, wbuf);
    a.li(T1, 16);
    a.mv(T2, msg_ptr);
    a.mv(T3, A6);
    let copy = format!("{wbuf}_copy");
    a.label(&copy);
    a.lw(T4, T2, 0);
    a.sw(T4, T3, 0);
    a.addi(T2, T2, 4);
    a.addi(T3, T3, 4);
    a.addi(T1, T1, -1);
    a.bnez(T1, &copy);
    // expand W[16..64]; T3 points at W[t]
    a.li(T1, 48);
    let expand = format!("{wbuf}_expand");
    a.label(&expand);
    a.lw(T2, T3, -60); // w[t-15]
    rotr32(a, T4, T2, 7, T6);
    rotr32(a, T5, T2, 18, T6);
    a.xor(T4, T4, T5);
    a.srliw(T5, T2, 3);
    a.xor(T4, T4, T5); // s0
    a.lw(T2, T3, -8); // w[t-2]
    rotr32(a, T6, T2, 17, T5);
    rotr32(a, T5, T2, 19, A7);
    a.xor(T6, T6, T5);
    a.srliw(T5, T2, 10);
    a.xor(T6, T6, T5); // s1
    a.lw(T2, T3, -64); // w[t-16]
    a.lw(T5, T3, -28); // w[t-7]
    a.addw(T2, T2, T4);
    a.addw(T2, T2, T5);
    a.addw(T2, T2, T6);
    a.sw(T2, T3, 0);
    a.addi(T3, T3, 4);
    a.addi(T1, T1, -1);
    a.bnez(T1, &expand);
}

/// Builds the workload.
pub fn build(scale: Scale) -> Workload {
    let blocks_per_lane: usize = 2;
    let reps: u64 = 6 * scale.factor();

    let mut rng = rng_for("sha");
    let msg32: Vec<u32> =
        u32s(&mut rng, 2 * blocks_per_lane * 16).iter().map(|&v| v as u32).collect();
    let (lane1_msg, lane2_msg) = msg32.split_at(blocks_per_lane * 16);
    let digest1 = compress_blocks(lane1_msg, reps);
    let digest2 = compress_blocks(lane2_msg, reps);

    let lane1: [Reg; 8] = [S2, S3, S4, S5, S6, S7, S8, S9];
    let lane2: [Reg; 8] = [A0, A1, A2, A3, A4, A5, A6, A7];

    let mut a = Assembler::new();
    // Initialize both hash states from the IV table.
    a.la(T0, "iv");
    a.la(T1, "hstate1");
    a.la(T2, "hstate2");
    a.li(T3, 8);
    a.label("init_h");
    a.lw(T4, T0, 0);
    a.sw(T4, T1, 0);
    a.sw(T4, T2, 0);
    a.addi(T0, T0, 4);
    a.addi(T1, T1, 4);
    a.addi(T2, T2, 4);
    a.addi(T3, T3, -1);
    a.bnez(T3, "init_h");

    a.li(S11, reps as i64);
    a.label("rep");
    a.la(T0, "blkctr");
    a.sd(Zero, T0, 0);
    a.label("block_loop");

    // ---- message schedules for both lanes -----------------------------
    a.la(T0, "blkctr");
    a.ld(T0, T0, 0);
    a.slli(T0, T0, 6); // *64 bytes
    a.la(S0, "msg");
    a.add(S0, S0, T0); // lane-1 block
    a.li(T1, (blocks_per_lane * 64) as i64);
    a.add(S1, S0, T1); // lane-2 block
    emit_schedule(&mut a, S0, "wbuf1");
    emit_schedule(&mut a, S1, "wbuf2");

    // ---- load both lane states ----------------------------------------
    a.la(T0, "hstate1");
    for (i, r) in lane1.iter().enumerate() {
        a.lw(*r, T0, (i * 4) as i32);
    }
    a.la(T0, "hstate2");
    for (i, r) in lane2.iter().enumerate() {
        a.lw(*r, T0, (i * 4) as i32);
    }

    // ---- 64 rounds, 8x unrolled, two interleaved lanes -----------------
    a.la(S10, "ktab");
    a.la(S0, "wbuf1");
    a.la(S1, "wbuf2");
    a.li(T6, 8);
    a.label("round8");
    let mut r1 = lane1;
    let mut r2 = lane2;
    for r in 0..8 {
        a.lw(T4, S10, r * 4);
        emit_round(&mut a, &r1, S0, r * 4, T4);
        emit_round(&mut a, &r2, S1, r * 4, T4);
        r1.rotate_right(1);
        r2.rotate_right(1);
    }
    a.addi(S10, S10, 32);
    a.addi(S0, S0, 32);
    a.addi(S1, S1, 32);
    a.addi(T6, T6, -1);
    a.bnez(T6, "round8");

    // ---- add the working variables back into the states -----------------
    a.la(T0, "hstate1");
    for (i, r) in lane1.iter().enumerate() {
        a.lw(T1, T0, (i * 4) as i32);
        a.addw(T1, T1, *r);
        a.sw(T1, T0, (i * 4) as i32);
    }
    a.la(T0, "hstate2");
    for (i, r) in lane2.iter().enumerate() {
        a.lw(T1, T0, (i * 4) as i32);
        a.addw(T1, T1, *r);
        a.sw(T1, T0, (i * 4) as i32);
    }

    a.la(T0, "blkctr");
    a.ld(T1, T0, 0);
    a.addi(T1, T1, 1);
    a.sd(T1, T0, 0);
    a.li(T2, blocks_per_lane as i64);
    a.blt(T1, T2, "block_loop");
    a.addi(S11, S11, -1);
    a.bnez(S11, "rep");

    // ---- verify both digests ---------------------------------------------
    a.li(A0, 0);
    for (state, digest) in [("hstate1", "digest1"), ("hstate2", "digest2")] {
        a.la(T0, state);
        a.la(T1, digest);
        a.li(T2, 8);
        let check = format!("check_{state}");
        a.label(&check);
        a.lwu(T3, T0, 0);
        a.lwu(T4, T1, 0);
        a.xor(T3, T3, T4);
        a.or(A0, A0, T3);
        a.addi(T0, T0, 4);
        a.addi(T1, T1, 4);
        a.addi(T2, T2, -1);
        a.bnez(T2, &check);
    }
    a.snez(A0, A0);
    a.exit();

    a.data_label("iv");
    a.words(&H0);
    a.data_label("ktab");
    a.words(&K);
    a.data_label("msg");
    a.words(&msg32);
    a.data_label("hstate1");
    a.zeros(32);
    a.data_label("hstate2");
    a.zeros(32);
    a.data_label("wbuf1");
    a.zeros(64 * 4);
    a.data_label("wbuf2");
    a.zeros(64 * 4);
    a.data_label("blkctr");
    a.dwords(&[0]);
    a.data_label("digest1");
    a.words(&digest1);
    a.data_label("digest2");
    a.words(&digest2);

    Workload {
        name: "Sha",
        suite: Suite::Embench,
        program: a.assemble().expect("sha assembles"),
        interval_size: scale.interval(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_isa::cpu::{Cpu, StopReason};

    #[test]
    fn oracle_leaves_iv_untouched_for_empty_message() {
        assert_eq!(compress_blocks(&[], 1), H0);
    }

    #[test]
    fn verifies_against_oracle() {
        let w = build(Scale::Test);
        let mut cpu = Cpu::new(&w.program);
        assert_eq!(cpu.run(100_000_000).unwrap(), StopReason::Exited(0));
    }

    #[test]
    fn lanes_hash_different_halves() {
        let mut rng = rng_for("sha");
        let msg: Vec<u32> = u32s(&mut rng, 64).iter().map(|&v| v as u32).collect();
        let (l1, l2) = msg.split_at(32);
        assert_ne!(compress_blocks(l1, 1), compress_blocks(l2, 1));
    }
}
