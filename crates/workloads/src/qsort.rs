//! Qsort (MiBench `qsort_large`): sort 3-D points by Euclidean distance.
//!
//! Distances are computed with FP multiply-add and square root, and the
//! quicksort partitions compare doubles — this is one of the three
//! workloads (with FFT/iFFT) that exercise the FP register file in the
//! paper's analysis.

use crate::data::{doubles, rng_for};
use crate::{Scale, Suite, Workload};
use rv_isa::asm::Assembler;
use rv_isa::reg::FReg::*;
use rv_isa::reg::Reg::*;

/// Builds the workload.
pub fn build(scale: Scale) -> Workload {
    let n: usize = match scale {
        Scale::Test => 96,
        Scale::Small => 384,
        Scale::Full => 1024,
    };
    let reps: u64 = (3 * scale.factor() / 4).max(1);

    let mut rng = rng_for("qsort");
    let points = doubles(&mut rng, 3 * n, -1000.0, 1000.0);

    let mut a = Assembler::new();
    a.li(S11, reps as i64);
    a.label("rep");

    // ---- compute dist[i] = sqrt(x² + y² + z²) --------------------------
    a.la(S0, "points");
    a.la(S1, "dist");
    a.li(T0, n as i64);
    a.label("dist_loop");
    a.fld(Fa0, S0, 0);
    a.fld(Fa1, S0, 8);
    a.fld(Fa2, S0, 16);
    a.fmul_d(Fa3, Fa0, Fa0);
    a.fmadd_d(Fa3, Fa1, Fa1, Fa3);
    a.fmadd_d(Fa3, Fa2, Fa2, Fa3);
    a.fsqrt_d(Fa3, Fa3);
    a.fsd(Fa3, S1, 0);
    a.addi(S0, S0, 24);
    a.addi(S1, S1, 8);
    a.addi(T0, T0, -1);
    a.bnez(T0, "dist_loop");

    // ---- iterative quicksort over dist[0..n] ---------------------------
    a.la(S0, "dist");
    a.li(S1, n as i64);
    a.la(S2, "qstack");
    a.li(S3, 0); // stack depth (pairs)
                 // push (0, n-1)
    a.sd(Zero, S2, 0);
    a.addi(T0, S1, -1);
    a.sd(T0, S2, 8);
    a.li(S3, 1);

    a.label("qs_loop");
    a.beqz(S3, "qs_done");
    a.addi(S3, S3, -1);
    a.slli(T0, S3, 4);
    a.add(T0, S2, T0);
    a.ld(S4, T0, 0); // lo
    a.ld(S5, T0, 8); // hi
    a.bge(S4, S5, "qs_loop");
    // pivot = a[hi]
    a.slli(T0, S5, 3);
    a.add(T0, S0, T0);
    a.fld(Fa0, T0, 0);
    // i = lo - 1; j = lo
    a.addi(S6, S4, -1);
    a.mv(S7, S4);
    a.label("part");
    a.bge(S7, S5, "part_done");
    a.slli(T0, S7, 3);
    a.add(T0, S0, T0);
    a.fld(Fa1, T0, 0);
    a.flt_d(T1, Fa1, Fa0);
    a.beqz(T1, "part_next");
    a.addi(S6, S6, 1);
    // swap a[i], a[j]
    a.slli(T2, S6, 3);
    a.add(T2, S0, T2);
    a.fld(Fa2, T2, 0);
    a.fsd(Fa1, T2, 0);
    a.fsd(Fa2, T0, 0);
    a.label("part_next");
    a.addi(S7, S7, 1);
    a.j("part");
    a.label("part_done");
    // place pivot: swap a[i+1], a[hi]
    a.addi(S6, S6, 1);
    a.slli(T0, S6, 3);
    a.add(T0, S0, T0);
    a.slli(T1, S5, 3);
    a.add(T1, S0, T1);
    a.fld(Fa1, T0, 0);
    a.fld(Fa2, T1, 0);
    a.fsd(Fa2, T0, 0);
    a.fsd(Fa1, T1, 0);
    // push (lo, i-1) and (i+1, hi)
    a.slli(T0, S3, 4);
    a.add(T0, S2, T0);
    a.sd(S4, T0, 0);
    a.addi(T1, S6, -1);
    a.sd(T1, T0, 8);
    a.addi(S3, S3, 1);
    a.slli(T0, S3, 4);
    a.add(T0, S2, T0);
    a.addi(T1, S6, 1);
    a.sd(T1, T0, 0);
    a.sd(S5, T0, 8);
    a.addi(S3, S3, 1);
    a.j("qs_loop");
    a.label("qs_done");

    a.addi(S11, S11, -1);
    a.bnez(S11, "rep");

    // ---- verify ascending order ----------------------------------------
    a.la(S0, "dist");
    a.li(T0, (n - 1) as i64);
    a.li(A0, 0);
    a.label("verify");
    a.fld(Fa0, S0, 0);
    a.fld(Fa1, S0, 8);
    a.fle_d(T1, Fa0, Fa1);
    a.xori(T1, T1, 1);
    a.or(A0, A0, T1);
    a.addi(S0, S0, 8);
    a.addi(T0, T0, -1);
    a.bnez(T0, "verify");
    a.exit();

    a.data_label("points");
    a.doubles(&points);
    a.data_label("dist");
    a.zeros(n * 8);
    a.data_label("qstack");
    a.zeros(2 * n * 16);

    Workload {
        name: "Qsort",
        suite: Suite::MiBench,
        program: a.assemble().expect("qsort assembles"),
        interval_size: scale.interval(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_isa::cpu::{Cpu, StopReason};

    #[test]
    fn sorts_and_verifies() {
        let w = build(Scale::Test);
        let mut cpu = Cpu::new(&w.program);
        assert_eq!(cpu.run(100_000_000).unwrap(), StopReason::Exited(0));
        // Cross-check the final array against a Rust sort of the same
        // distances.
        let base = w.program.symbol("dist").unwrap();
        let pts = w.program.symbol("points").unwrap();
        let n = 96;
        let mut expected: Vec<f64> = (0..n)
            .map(|i| {
                let x = f64::from_bits(cpu.mem.read(pts + i * 24, 8));
                let y = f64::from_bits(cpu.mem.read(pts + i * 24 + 8, 8));
                let z = f64::from_bits(cpu.mem.read(pts + i * 24 + 16, 8));
                // Mirror the fused multiply-adds the assembly uses.
                z.mul_add(z, y.mul_add(y, x * x)).sqrt()
            })
            .collect();
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (i, e) in expected.iter().enumerate() {
            let got = f64::from_bits(cpu.mem.read(base + i as u64 * 8, 8));
            assert_eq!(got, *e, "element {i}");
        }
    }
}
