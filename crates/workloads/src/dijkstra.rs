//! Dijkstra (MiBench): all-pairs-style shortest paths on a dense graph.
//!
//! The adjacency-matrix min-scan is a long dependence chain with
//! data-dependent branches, so instructions pile up in the integer issue
//! queue — the paper's canonical high-occupancy / low-IPC contrast to Sha
//! (Fig. 8, Key Takeaway #4).

use crate::data::rng_for;
use crate::{Scale, Suite, Workload};
use rand::Rng;
use rv_isa::asm::Assembler;
use rv_isa::reg::Reg::*;

const INF: u64 = 1 << 40;

/// Reference implementation — the oracle.
fn oracle(adj: &[u32], v: usize, sources: &[usize]) -> u64 {
    let mut checksum = 0u64;
    for &src in sources {
        let mut dist = vec![INF; v];
        let mut visited = vec![false; v];
        dist[src] = 0;
        for _ in 0..v {
            let mut best = INF;
            let mut best_idx = usize::MAX;
            for i in 0..v {
                if !visited[i] && dist[i] < best {
                    best = dist[i];
                    best_idx = i;
                }
            }
            if best_idx == usize::MAX {
                break;
            }
            visited[best_idx] = true;
            for j in 0..v {
                let nd = best + adj[best_idx * v + j] as u64;
                if nd < dist[j] {
                    dist[j] = nd;
                }
            }
        }
        for d in dist {
            checksum = checksum.wrapping_add(d);
        }
    }
    checksum
}

/// Builds the workload.
pub fn build(scale: Scale) -> Workload {
    let v: usize = match scale {
        Scale::Test => 20,
        Scale::Small => 40,
        Scale::Full => 64,
    };
    let num_sources: usize = (2 * scale.factor()) as usize;

    let mut rng = rng_for("dijkstra");
    let adj: Vec<u32> = (0..v * v).map(|_| rng.gen_range(1..100u32)).collect();
    let sources: Vec<usize> = (0..num_sources).map(|s| (s * 7 + 3) % v).collect();
    let expected = oracle(&adj, v, &sources);

    let mut a = Assembler::new();
    a.la(S0, "adj");
    a.la(S1, "nodes"); // node pool: [dist: u64][next: u64] per vertex
    a.la(S2, "lhead"); // head cell: pointer to the first list node
    a.li(S3, v as i64);
    a.li(S4, 0); // source index counter
    a.li(S5, num_sources as i64);
    a.li(A0, 0); // checksum
    a.la(S6, "inf");
    a.ld(S6, S6, 0); // INF constant

    a.label("source_loop");
    // Build the unvisited list 0 -> 1 -> ... -> V-1 with dist = INF.
    a.mv(T0, S1);
    a.mv(T1, S3);
    a.sd(S1, S2, 0); // lhead -> node 0
    a.label("init");
    a.sd(S6, T0, 0); // dist = INF
    a.addi(T2, T0, 16);
    a.sd(T2, T0, 8); // next = following node
    a.mv(T0, T2);
    a.addi(T1, T1, -1);
    a.bnez(T1, "init");
    a.sd(Zero, T0, -8); // last node: next = null
                        // src = (s4*7+3) % v ; nodes[src].dist = 0
    a.li(T0, 7);
    a.mul(T0, S4, T0);
    a.addi(T0, T0, 3);
    a.remu(T0, T0, S3);
    a.slli(T0, T0, 4);
    a.add(T0, S1, T0);
    a.sd(Zero, T0, 0);

    a.mv(S7, S3); // outer iteration counter
    a.label("iter");
    // --- min-scan: pointer-chase the unvisited list -------------------
    // MiBench's dijkstra walks a queue of candidates; the next-pointer
    // chase is a serial load chain, so dispatched scan work piles up in
    // the integer issue queue (the paper's Fig. 8 occupancy signature),
    // and the running minimum is maintained branchlessly (cmov-style).
    a.mv(A1, S6); // best dist
    a.li(A2, 0); // best node ptr
    a.li(A3, 0); // address of the pointer to the best node
    a.mv(T0, S2); // qaddr: address of pointer to current node
    a.ld(T1, S2, 0); // p = first node
    a.label("scan");
    a.beqz(T1, "scan_done");
    a.ld(T2, T1, 0); // d = p->dist
    a.sltu(T3, T2, A1);
    a.neg(T3, T3); // mask
    a.xor(T4, T2, A1);
    a.and(T4, T4, T3);
    a.xor(A1, A1, T4); // best = min(best, d)
    a.xor(T4, T1, A2);
    a.and(T4, T4, T3);
    a.xor(A2, A2, T4); // bestp
    a.xor(T4, T0, A3);
    a.and(T4, T4, T3);
    a.xor(A3, A3, T4); // best qaddr
    a.addi(T0, T1, 8);
    a.ld(T1, T1, 8); // p = p->next (the serial chain)
    a.j("scan");
    a.label("scan_done");
    a.beqz(A2, "source_done");
    // Unlink the chosen node: *best_qaddr = bestp->next.
    a.ld(T0, A2, 8);
    a.sd(T0, A3, 0);
    // --- relax the chosen vertex's adjacency row ----------------------
    // vertex id = (bestp - pool) / 16
    a.sub(T0, A2, S1);
    a.srli(T0, T0, 4);
    a.mul(T0, T0, S3);
    a.slli(T0, T0, 2);
    a.add(T0, S0, T0); // &adj[best][0]
    a.mv(T1, S1); // &nodes[0]
    a.mv(T2, S3); // j counter
    a.label("relax");
    a.lwu(T3, T0, 0);
    a.add(T3, T3, A1); // nd = best + w
    a.ld(T4, T1, 0);
    // dist[j] = min(dist[j], nd), branchlessly
    a.sltu(T5, T3, T4);
    a.neg(T5, T5);
    a.xor(T6, T3, T4);
    a.and(T6, T6, T5);
    a.xor(T4, T4, T6);
    a.sd(T4, T1, 0);
    a.addi(T0, T0, 4);
    a.addi(T1, T1, 16);
    a.addi(T2, T2, -1);
    a.bnez(T2, "relax");
    a.addi(S7, S7, -1);
    a.bnez(S7, "iter");

    a.label("source_done");
    // checksum += sum of node distances
    a.mv(T0, S1);
    a.mv(T1, S3);
    a.label("sum");
    a.ld(T2, T0, 0);
    a.add(A0, A0, T2);
    a.addi(T0, T0, 16);
    a.addi(T1, T1, -1);
    a.bnez(T1, "sum");
    a.addi(S4, S4, 1);
    a.blt(S4, S5, "source_loop");

    // verify
    a.la(T0, "expected");
    a.ld(T0, T0, 0);
    a.xor(A0, A0, T0);
    a.snez(A0, A0);
    a.exit();

    a.data_label("adj");
    a.words(&adj);
    a.data_label("nodes");
    a.zeros(v * 16);
    a.data_label("lhead");
    a.dwords(&[0]);
    a.data_label("inf");
    a.dwords(&[INF]);
    a.data_label("expected");
    a.dwords(&[expected]);

    Workload {
        name: "Dijkstra",
        suite: Suite::MiBench,
        program: a.assemble().expect("dijkstra assembles"),
        interval_size: scale.interval(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_isa::cpu::{Cpu, StopReason};

    #[test]
    fn oracle_on_tiny_graph() {
        // 2 vertices: dist = [0, w01] from source 0.
        let adj = vec![5, 7, 2, 5];
        assert_eq!(oracle(&adj, 2, &[0]), 7);
    }

    #[test]
    fn verifies_against_oracle() {
        let w = build(Scale::Test);
        let mut cpu = Cpu::new(&w.program);
        assert_eq!(cpu.run(100_000_000).unwrap(), StopReason::Exited(0));
    }
}
