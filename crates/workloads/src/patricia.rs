//! Patricia (MiBench): digital search trie over 32-bit keys (IP-address
//! style routing-table lookups).
//!
//! Every probe is a chain of dependent loads with a data-dependent
//! branch per trie level — the pointer-chasing profile MiBench's
//! patricia is known for (the paper gives it a 2M SimPoint interval,
//! like Tarfind, because its phases are long).

use crate::data::{rng_for, u32s};
use crate::{Scale, Suite, Workload};
use rv_isa::asm::Assembler;
use rv_isa::reg::Reg::*;
use std::collections::HashSet;

/// Node layout: `[key: u64][left: u64][right: u64][pad: u64]` = 32 bytes.
const NODE_BYTES: u64 = 32;

/// Builds the workload.
pub fn build(scale: Scale) -> Workload {
    let n_insert: usize = match scale {
        Scale::Test => 128,
        Scale::Small => 512,
        Scale::Full => 1024,
    };
    let n_query: usize = 256;
    let reps: u64 = 4 * scale.factor();

    let mut rng = rng_for("patricia");
    let keys = u32s(&mut rng, n_insert);
    // Queries: alternate between inserted keys and fresh random ones.
    let fresh = u32s(&mut rng, n_query);
    let queries: Vec<u64> = (0..n_query)
        .map(|i| if i % 2 == 0 { keys[(i * 7) % n_insert] } else { fresh[i] })
        .collect();

    // Oracle: exact membership.
    let set: HashSet<u64> = keys.iter().copied().collect();
    let hits_per_pass: u64 = queries.iter().filter(|q| set.contains(q)).count() as u64;
    let expected = hits_per_pass * reps;

    let mut a = Assembler::new();
    // ---- build the trie --------------------------------------------------
    a.la(S0, "pool"); // bump allocator
    a.la(S1, "root"); // root pointer cell
    a.la(S2, "keys");
    a.li(S3, n_insert as i64);
    a.label("insert_loop");
    a.ld(A1, S2, 0); // key
    a.mv(T0, S1); // slot address
    a.li(T1, 0); // depth
    a.label("ins_walk");
    a.ld(T2, T0, 0); // child pointer
    a.beqz(T2, "ins_place");
    a.ld(T3, T2, 0); // node key
    a.beq(T3, A1, "ins_next_key"); // duplicate
    a.srl(T3, A1, T1);
    a.andi(T3, T3, 1);
    a.slli(T3, T3, 3);
    a.addi(T0, T2, 8);
    a.add(T0, T0, T3); // &left or &right
    a.addi(T1, T1, 1);
    a.j("ins_walk");
    a.label("ins_place");
    a.sd(A1, S0, 0); // node.key = key (children zeroed pool)
    a.sd(S0, T0, 0); // *slot = node
    a.addi(S0, S0, NODE_BYTES as i32);
    a.label("ins_next_key");
    a.addi(S2, S2, 8);
    a.addi(S3, S3, -1);
    a.bnez(S3, "insert_loop");

    // ---- query passes -----------------------------------------------------
    a.li(A0, 0); // hit counter
    a.li(S11, reps as i64);
    a.label("rep");
    a.la(S2, "queries");
    a.li(S3, n_query as i64);
    a.label("query_loop");
    a.ld(A1, S2, 0);
    a.ld(T2, S1, 0); // cur = root
    a.li(T1, 0); // depth
    a.label("q_walk");
    a.beqz(T2, "q_miss");
    a.ld(T3, T2, 0);
    a.beq(T3, A1, "q_hit");
    a.srl(T3, A1, T1);
    a.andi(T3, T3, 1);
    a.slli(T3, T3, 3);
    a.addi(T4, T2, 8);
    a.add(T4, T4, T3);
    a.ld(T2, T4, 0);
    a.addi(T1, T1, 1);
    a.j("q_walk");
    a.label("q_hit");
    a.addi(A0, A0, 1);
    a.label("q_miss");
    a.addi(S2, S2, 8);
    a.addi(S3, S3, -1);
    a.bnez(S3, "query_loop");
    a.addi(S11, S11, -1);
    a.bnez(S11, "rep");

    // ---- verify -----------------------------------------------------------
    a.la(T0, "expected");
    a.ld(T0, T0, 0);
    a.xor(A0, A0, T0);
    a.snez(A0, A0);
    a.exit();

    a.data_label("root");
    a.dwords(&[0]);
    a.data_label("keys");
    a.dwords(&keys);
    a.data_label("queries");
    a.dwords(&queries);
    a.data_label("expected");
    a.dwords(&[expected]);
    a.data_label("pool");
    a.zeros(((n_insert as u64 + 1) * NODE_BYTES) as usize);

    Workload {
        name: "Patricia",
        suite: Suite::MiBench,
        program: a.assemble().expect("patricia assembles"),
        interval_size: 2 * scale.interval(), // Table II: 2M vs 1M intervals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_isa::cpu::{Cpu, StopReason};

    #[test]
    fn verifies_against_oracle() {
        let w = build(Scale::Test);
        let mut cpu = Cpu::new(&w.program);
        assert_eq!(cpu.run(100_000_000).unwrap(), StopReason::Exited(0));
    }

    #[test]
    fn queries_contain_hits_and_misses() {
        // The workload is only interesting if both outcomes occur.
        let mut rng = rng_for("patricia");
        let keys = u32s(&mut rng, 128);
        let fresh = u32s(&mut rng, 256);
        let set: HashSet<u64> = keys.iter().copied().collect();
        let hits = (0..256)
            .map(|i| if i % 2 == 0 { keys[(i * 7) % 128] } else { fresh[i] })
            .filter(|q| set.contains(q))
            .count();
        assert!(hits >= 128, "implanted keys must hit");
        assert!(hits < 256, "random keys should mostly miss");
    }
}
