//! Tarfind (Embench): scan a tar archive for files matching a name.
//!
//! Walks 512-byte tar headers: validates the `ustar` magic, sums header
//! bytes (the tar checksum), parses the octal size field, and skips the
//! data blocks. Serial byte loads over a buffer much larger than the L1
//! make this the lowest-IPC workload, exactly as in the paper's Fig. 10.

use crate::data::rng_for;
use crate::{Scale, Suite, Workload};
use rand::Rng;
use rv_isa::asm::Assembler;
use rv_isa::reg::Reg::*;

const BLOCK: usize = 512;
const MAGIC_OFF: usize = 257;
const SIZE_OFF: usize = 124;

/// Builds a synthetic ustar archive; returns the bytes and the file count.
fn build_archive(files: usize, rng: &mut impl Rng) -> Vec<u8> {
    let mut out = Vec::new();
    for _ in 0..files {
        let name_len = rng.gen_range(5..=10usize);
        let mut name: Vec<u8> = (0..name_len).map(|_| rng.gen_range(b'a'..=b'z')).collect();
        if rng.gen_ratio(1, 3) {
            name[0] = b'a'; // target prefix
        }
        let size = rng.gen_range(200..3000usize);
        let mut header = vec![0u8; BLOCK];
        header[..name.len()].copy_from_slice(&name);
        // 11 octal digits, NUL-terminated.
        let octal = format!("{size:011o}");
        header[SIZE_OFF..SIZE_OFF + 11].copy_from_slice(octal.as_bytes());
        header[MAGIC_OFF..MAGIC_OFF + 5].copy_from_slice(b"ustar");
        out.extend_from_slice(&header);
        let data_blocks = size.div_ceil(BLOCK);
        let mut data = vec![0u8; data_blocks * BLOCK];
        rng.fill(&mut data[..size]);
        out.extend_from_slice(&data);
    }
    out.extend_from_slice(&[0u8; 2 * BLOCK]); // end-of-archive marker
    out
}

/// Reference scan — the oracle. Mirrors the assembly exactly.
fn oracle(archive: &[u8]) -> u64 {
    let mut checksum = 0u64;
    let mut ptr = 0usize;
    loop {
        let block = &archive[ptr..ptr + BLOCK];
        if &block[MAGIC_OFF..MAGIC_OFF + 5] != b"ustar" {
            break;
        }
        // Rolling (multiplicative) hash of the header: a serial
        // multiply-accumulate chain, the latency-bound behaviour that
        // makes Tarfind the lowest-IPC workload.
        let mut hdr_hash = 0u64;
        for &b in block {
            hdr_hash = hdr_hash.wrapping_mul(31).wrapping_add(b as u64).wrapping_mul(17);
        }
        checksum = checksum.wrapping_add(hdr_hash);
        let mut size = 0u64;
        for &c in &block[SIZE_OFF..] {
            if c == 0 {
                break;
            }
            size = size * 8 + (c - b'0') as u64;
        }
        checksum = checksum.wrapping_add(size);
        if block[0] == b'a' {
            checksum = checksum.wrapping_add(1 << 32);
        }
        ptr += BLOCK + (size as usize).div_ceil(BLOCK) * BLOCK;
    }
    checksum
}

/// Builds the workload.
pub fn build(scale: Scale) -> Workload {
    let files: usize = match scale {
        Scale::Test => 8,
        Scale::Small => 48,
        Scale::Full => 96,
    };
    let reps: u64 = scale.factor();

    let mut rng = rng_for("tarfind");
    let archive = build_archive(files, &mut rng);
    let expected = oracle(&archive).wrapping_mul(reps);

    let mut a = Assembler::new();
    a.li(A0, 0); // checksum
    a.li(S11, reps as i64);
    a.label("rep");
    a.la(S0, "archive"); // block pointer

    a.label("block_loop");
    // ---- magic check at +257 -------------------------------------------
    a.la(T0, "magic");
    a.li(T1, 5);
    a.addi(T2, S0, MAGIC_OFF as i32);
    a.label("magic_cmp");
    a.lbu(T3, T2, 0);
    a.lbu(T4, T0, 0);
    a.bne(T3, T4, "archive_done");
    a.addi(T0, T0, 1);
    a.addi(T2, T2, 1);
    a.addi(T1, T1, -1);
    a.bnez(T1, "magic_cmp");

    // ---- rolling header hash (serial multiply-accumulate chain) ----------
    // Unrolled 8x: the multiply chain is the critical path, so the core
    // is latency-bound here — Tarfind's signature low IPC.
    a.li(T0, (BLOCK / 8) as i64);
    a.mv(T1, S0);
    a.li(T2, 0);
    a.li(T5, 31);
    a.li(T6, 17);
    a.label("hdr_hash");
    for off in 0..8 {
        a.lbu(T3, T1, off);
        a.mul(T2, T2, T5);
        a.add(T2, T2, T3);
        a.mul(T2, T2, T6);
    }
    a.addi(T1, T1, 8);
    a.addi(T0, T0, -1);
    a.bnez(T0, "hdr_hash");
    a.add(A0, A0, T2);

    // ---- octal size parse -------------------------------------------------
    a.addi(T1, S0, SIZE_OFF as i32);
    a.li(T2, 0); // size
    a.label("octal");
    a.lbu(T3, T1, 0);
    a.beqz(T3, "octal_done");
    a.slli(T2, T2, 3);
    a.addi(T3, T3, -48);
    a.add(T2, T2, T3);
    a.addi(T1, T1, 1);
    a.j("octal");
    a.label("octal_done");
    a.add(A0, A0, T2);

    // ---- name-prefix match -------------------------------------------------
    a.lbu(T3, S0, 0);
    a.li(T4, b'a' as i64);
    a.bne(T3, T4, "no_match");
    a.li(T4, 1);
    a.slli(T4, T4, 32);
    a.add(A0, A0, T4);
    a.label("no_match");

    // ---- skip to the next header -------------------------------------------
    // blocks = ceil(size / 512); ptr += 512 + blocks*512
    a.addi(T2, T2, 511);
    a.srli(T2, T2, 9);
    a.slli(T2, T2, 9);
    a.add(S0, S0, T2);
    a.addi(S0, S0, BLOCK as i32);
    a.j("block_loop");

    a.label("archive_done");
    a.addi(S11, S11, -1);
    a.bnez(S11, "rep");

    // ---- verify --------------------------------------------------------------
    a.la(T0, "expected");
    a.ld(T0, T0, 0);
    a.xor(A0, A0, T0);
    a.snez(A0, A0);
    a.exit();

    a.data_label("magic");
    a.bytes(b"ustar");
    a.data_label("expected");
    a.dwords(&[expected]);
    a.data_label("archive");
    a.bytes(&archive);

    Workload {
        name: "Tarfind",
        suite: Suite::Embench,
        program: a.assemble().expect("tarfind assembles"),
        interval_size: 2 * scale.interval(), // Table II: 2M intervals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_isa::cpu::{Cpu, StopReason};

    #[test]
    fn archive_is_block_aligned_and_terminated() {
        let mut rng = rng_for("tarfind");
        let arc = build_archive(4, &mut rng);
        assert_eq!(arc.len() % BLOCK, 0);
        assert!(arc[arc.len() - 2 * BLOCK..].iter().all(|&b| b == 0));
    }

    #[test]
    fn oracle_counts_prefixed_files() {
        let mut rng = rng_for("tarfind");
        let arc = build_archive(8, &mut rng);
        let sum = oracle(&arc);
        // At least the header sums are non-zero.
        assert!(sum > 0);
    }

    #[test]
    fn verifies_against_oracle() {
        let w = build(Scale::Test);
        let mut cpu = Cpu::new(&w.program);
        assert_eq!(cpu.run(100_000_000).unwrap(), StopReason::Exited(0));
    }
}
