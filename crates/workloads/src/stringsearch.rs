//! Stringsearch (MiBench): Boyer–Moore–Horspool text search.
//!
//! Byte loads, a 256-entry skip-table lookup per window, and
//! data-dependent comparison loops give the memory-issue-unit pressure
//! the paper observes (Stringsearch and Dijkstra dominate Mem Issue
//! power across all three configurations).

use crate::data::{rng_for, text};
use crate::{Scale, Suite, Workload};
use rand::Rng;
use rv_isa::asm::Assembler;
use rv_isa::reg::Reg::*;

/// Reference Horspool search — the oracle. Returns `(match_count,
/// position_sum)` with the same non-overlapping advance as the assembly.
fn oracle(text: &[u8], pat: &[u8]) -> (u64, u64) {
    let plen = pat.len();
    let mut skip = [plen as u64; 256];
    for (i, &b) in pat[..plen - 1].iter().enumerate() {
        skip[b as usize] = (plen - 1 - i) as u64;
    }
    let (mut count, mut possum) = (0u64, 0u64);
    let mut pos = plen - 1;
    while pos < text.len() {
        let mut j = 0;
        while j < plen && text[pos - j] == pat[plen - 1 - j] {
            j += 1;
        }
        if j == plen {
            count += 1;
            possum = possum.wrapping_add(pos as u64);
            pos += plen;
        } else {
            pos += skip[text[pos] as usize] as usize;
        }
    }
    (count, possum)
}

/// Builds the workload.
pub fn build(scale: Scale) -> Workload {
    let text_len: usize = match scale {
        Scale::Test => 2048,
        Scale::Small => 8192,
        Scale::Full => 24576,
    };
    let reps = scale.factor();

    let mut rng = rng_for("stringsearch");
    let body = text(&mut rng, text_len);
    let patterns: Vec<Vec<u8>> = (0..12)
        .map(|i| {
            let len = rng.gen_range(5..=10usize);
            if i % 2 == 0 {
                // Implanted pattern: copy a slice of the text.
                let start = rng.gen_range(0..text_len - len);
                body[start..start + len].to_vec()
            } else {
                text(&mut rng, len)
            }
        })
        .collect();

    let mut expected = 0u64;
    for pat in &patterns {
        let (count, possum) = oracle(&body, pat);
        expected = expected.wrapping_add(count.wrapping_mul(1_000_003)).wrapping_add(possum);
    }
    expected = expected.wrapping_mul(reps);

    // Pattern blob: [len:u64][bytes padded to 8] per pattern.
    let mut blob = Vec::new();
    for pat in &patterns {
        blob.extend_from_slice(&(pat.len() as u64).to_le_bytes());
        let mut bytes = pat.clone();
        while bytes.len() % 8 != 0 {
            bytes.push(0);
        }
        blob.extend_from_slice(&bytes);
    }

    let mut a = Assembler::new();
    a.la(S0, "text");
    a.li(S1, text_len as i64);
    a.li(A0, 0); // running checksum
    a.li(S11, reps as i64);

    a.label("rep");
    a.la(S2, "patterns");
    a.li(S3, patterns.len() as i64);

    a.label("pattern_loop");
    a.ld(S4, S2, 0); // plen
    a.addi(S5, S2, 8); // pattern bytes
                       // --- build the skip table: skip[b] = plen; then last-occurrence ---
    a.la(S6, "skip");
    a.li(T0, 256);
    a.mv(T1, S6);
    a.label("skip_init");
    a.sd(S4, T1, 0);
    a.addi(T1, T1, 8);
    a.addi(T0, T0, -1);
    a.bnez(T0, "skip_init");
    a.addi(T0, S4, -1); // i over pat[..plen-1]
    a.mv(T1, S5);
    a.mv(T2, T0); // remaining = plen-1 ... skip value = plen-1-i, start at plen-1
    a.label("skip_fill");
    a.beqz(T2, "skip_done");
    a.lbu(T3, T1, 0);
    a.slli(T3, T3, 3);
    a.add(T3, S6, T3);
    a.sd(T2, T3, 0);
    a.addi(T1, T1, 1);
    a.addi(T2, T2, -1);
    a.j("skip_fill");
    a.label("skip_done");

    // --- scan ---
    a.addi(T0, S4, -1); // pos = plen-1
    a.label("scan");
    a.bge(T0, S1, "pattern_done");
    // backwards compare: j = 0..plen
    a.li(T1, 0); // j
    a.label("cmp");
    a.beq(T1, S4, "match");
    a.sub(T2, T0, T1);
    a.add(T2, S0, T2);
    a.lbu(T2, T2, 0); // text[pos-j]
    a.sub(T3, S4, T1);
    a.addi(T3, T3, -1);
    a.add(T3, S5, T3);
    a.lbu(T3, T3, 0); // pat[plen-1-j]
    a.bne(T2, T3, "mismatch");
    a.addi(T1, T1, 1);
    a.j("cmp");
    a.label("match");
    // checksum += 1_000_003; checksum += pos; pos += plen
    a.la(T4, "prime");
    a.ld(T4, T4, 0);
    a.add(A0, A0, T4);
    a.add(A0, A0, T0);
    a.add(T0, T0, S4);
    a.j("scan");
    a.label("mismatch");
    // pos += skip[text[pos]]
    a.add(T2, S0, T0);
    a.lbu(T2, T2, 0);
    a.slli(T2, T2, 3);
    a.add(T2, S6, T2);
    a.ld(T2, T2, 0);
    a.add(T0, T0, T2);
    a.j("scan");

    a.label("pattern_done");
    // advance to next pattern: 8 + padded len
    a.addi(T0, S4, 7);
    a.andi(T0, T0, -8);
    a.addi(T0, T0, 8);
    a.add(S2, S2, T0);
    a.addi(S3, S3, -1);
    a.bnez(S3, "pattern_loop");
    a.addi(S11, S11, -1);
    a.bnez(S11, "rep");

    // verify
    a.la(T0, "expected");
    a.ld(T0, T0, 0);
    a.xor(A0, A0, T0);
    a.snez(A0, A0);
    a.exit();

    a.data_label("text");
    a.bytes(&body);
    a.data_label("patterns");
    a.bytes(&blob);
    a.data_label("skip");
    a.zeros(256 * 8);
    a.data_label("prime");
    a.dwords(&[1_000_003]);
    a.data_label("expected");
    a.dwords(&[expected]);

    Workload {
        name: "Stringsearch",
        suite: Suite::MiBench,
        program: a.assemble().expect("stringsearch assembles"),
        interval_size: scale.interval(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_isa::cpu::{Cpu, StopReason};

    #[test]
    fn oracle_finds_known_matches() {
        let (count, possum) = oracle(b"abracadabra", b"abra");
        assert_eq!(count, 2);
        // matches end at positions 3 and 10
        assert_eq!(possum, 13);
    }

    #[test]
    fn oracle_handles_no_match() {
        assert_eq!(oracle(b"aaaaaa", b"xyz"), (0, 0));
    }

    #[test]
    fn verifies_against_oracle() {
        let w = build(Scale::Test);
        let mut cpu = Cpu::new(&w.program);
        assert_eq!(cpu.run(100_000_000).unwrap(), StopReason::Exited(0));
    }
}
