//! Matmult (Embench `matmult-int`): integer matrix multiplication.
//!
//! Streaming loads with a strided B-matrix access pattern make this the
//! workload with the highest data-cache power in the paper (Fig. 7
//! analysis, Key Takeaway #8).

use crate::data::{rng_for, u32s};
use crate::{Scale, Suite, Workload};
use rv_isa::asm::Assembler;
use rv_isa::reg::Reg::*;

/// Builds the workload.
pub fn build(scale: Scale) -> Workload {
    // 64x64 matrices of 8-byte elements: each matrix is 32 KiB, so the
    // B-matrix stream contends for the entire L1 (16-32 KiB) — the cache
    // pressure behind Matmult's top D-cache power in the paper.
    let n: u64 = match scale {
        Scale::Test => 16,
        Scale::Small => 64,
        Scale::Full => 64,
    };
    let reps: u64 = match scale {
        Scale::Test => 2,
        Scale::Small => 1,
        Scale::Full => 3,
    };

    let mut rng = rng_for("matmult");
    let a_vals = u32s(&mut rng, (n * n) as usize);
    let b_vals = u32s(&mut rng, (n * n) as usize);

    // Oracle: the same multiply in Rust, with the same wrapping arithmetic.
    let mut c_vals = vec![0u64; (n * n) as usize];
    for i in 0..n as usize {
        for j in 0..n as usize {
            let mut acc = 0u64;
            for k in 0..n as usize {
                acc = acc.wrapping_add(
                    a_vals[i * n as usize + k].wrapping_mul(b_vals[k * n as usize + j]),
                );
            }
            c_vals[i * n as usize + j] = acc;
        }
    }
    let expected: u64 = c_vals.iter().fold(0u64, |s, &v| s.wrapping_add(v));

    let mut asm = Assembler::new();
    asm.la(S0, "mat_a");
    asm.la(S1, "mat_b");
    asm.la(S2, "mat_c");
    asm.li(S3, n as i64);
    asm.li(S11, reps as i64);

    asm.label("rep");
    asm.li(S4, 0); // i
    asm.label("i_loop");
    asm.li(S5, 0); // j
    asm.label("j_loop");
    // acc = 0; pa = &A[i][0]; pb = &B[0][j]
    asm.li(A0, 0);
    asm.mul(T0, S4, S3);
    asm.slli(T0, T0, 3);
    asm.add(T1, S0, T0); // pa
    asm.slli(T2, S5, 3);
    asm.add(T2, S1, T2); // pb
    asm.slli(T4, S3, 3); // row stride in bytes
    asm.mv(T5, S3); // k counter
    asm.label("k_loop");
    asm.ld(A1, T1, 0);
    asm.ld(A2, T2, 0);
    asm.mul(A3, A1, A2);
    asm.add(A0, A0, A3);
    asm.addi(T1, T1, 8);
    asm.add(T2, T2, T4);
    asm.addi(T5, T5, -1);
    asm.bnez(T5, "k_loop");
    // C[i][j] = acc
    asm.mul(T0, S4, S3);
    asm.add(T0, T0, S5);
    asm.slli(T0, T0, 3);
    asm.add(T0, S2, T0);
    asm.sd(A0, T0, 0);
    asm.addi(S5, S5, 1);
    asm.blt(S5, S3, "j_loop");
    asm.addi(S4, S4, 1);
    asm.blt(S4, S3, "i_loop");
    asm.addi(S11, S11, -1);
    asm.bnez(S11, "rep");

    // Checksum C and verify against the oracle constant.
    asm.li(A0, 0);
    asm.mv(T0, S2);
    asm.mul(T1, S3, S3);
    asm.label("sum");
    asm.ld(T2, T0, 0);
    asm.add(A0, A0, T2);
    asm.addi(T0, T0, 8);
    asm.addi(T1, T1, -1);
    asm.bnez(T1, "sum");
    asm.la(T3, "expected");
    asm.ld(T3, T3, 0);
    asm.xor(A0, A0, T3);
    asm.snez(A0, A0); // 0 on success, 1 on mismatch
    asm.exit();

    asm.data_label("mat_a");
    asm.dwords(&a_vals);
    asm.data_label("mat_b");
    asm.dwords(&b_vals);
    asm.data_label("mat_c");
    asm.zeros((n * n * 8) as usize);
    asm.data_label("expected");
    asm.dwords(&[expected]);

    Workload {
        name: "Matmult",
        suite: Suite::Embench,
        program: asm.assemble().expect("matmult assembles"),
        interval_size: scale.interval(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_isa::cpu::{Cpu, StopReason};

    #[test]
    fn verifies_against_oracle() {
        let w = build(Scale::Test);
        let mut cpu = Cpu::new(&w.program);
        assert_eq!(cpu.run(50_000_000).unwrap(), StopReason::Exited(0));
    }

    #[test]
    fn scales_dynamic_length() {
        let count = |s| {
            let w = build(s);
            let mut cpu = Cpu::new(&w.program);
            cpu.run(100_000_000).unwrap();
            cpu.instret()
        };
        assert!(count(Scale::Small) > 4 * count(Scale::Test));
    }
}
