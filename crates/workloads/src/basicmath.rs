//! Basicmath (MiBench): integer square roots, Newton cube roots, and
//! angle conversions.
//!
//! A mixed integer/FP profile: the bit-by-bit integer square root is
//! branch- and shift-heavy, the cube-root solver leans on the unpipelined
//! FP divider, and the angle conversions stream FP multiplies.

use crate::data::{doubles, rng_for, u64s};
use crate::{Scale, Suite, Workload};
use rv_isa::asm::Assembler;
use rv_isa::reg::FReg::*;
use rv_isa::reg::Reg::*;
use std::f64::consts::PI;

/// Bit-by-bit integer square root — the oracle for the assembly kernel.
fn isqrt(x: u64) -> u64 {
    let mut op = x;
    let mut res = 0u64;
    let mut one = 1u64 << 62;
    while one > op {
        one >>= 2;
    }
    while one != 0 {
        if op >= res + one {
            op -= res + one;
            res = (res >> 1) + one;
        } else {
            res >>= 1;
        }
        one >>= 2;
    }
    res
}

/// Builds the workload.
pub fn build(scale: Scale) -> Workload {
    let n_sqrt: usize = 320 * scale.factor() as usize;
    let n_cbrt: usize = 160 * scale.factor() as usize;
    let newton_iters = 30;

    let mut rng = rng_for("basicmath");
    let sqrt_vals: Vec<u64> = u64s(&mut rng, n_sqrt).iter().map(|v| v >> 2).collect();
    let cbrt_vals = doubles(&mut rng, n_cbrt, 1.0, 1000.0);
    let angles = doubles(&mut rng, 360, 0.0, 360.0);

    let expected_isqrt: u64 = sqrt_vals.iter().fold(0u64, |s, &v| s.wrapping_add(isqrt(v)));

    let mut a = Assembler::new();
    a.li(A0, 0); // failure accumulator

    // ---- kernel 1: integer square roots --------------------------------
    a.la(S0, "sqrt_vals");
    a.li(S1, n_sqrt as i64);
    a.li(S2, 0); // checksum
    a.label("isqrt_loop");
    a.ld(T0, S0, 0); // op
    a.li(T1, 0); // res
    a.li(T2, 1);
    a.slli(T2, T2, 62); // one
    a.label("shrink");
    a.bgeu(T0, T2, "bits");
    a.srli(T2, T2, 2);
    a.bnez(T2, "shrink");
    a.label("bits");
    a.beqz(T2, "isqrt_done");
    a.add(T3, T1, T2); // res + one
    a.bltu(T0, T3, "no_sub");
    a.sub(T0, T0, T3);
    a.srli(T1, T1, 1);
    a.add(T1, T1, T2);
    a.j("bits_next");
    a.label("no_sub");
    a.srli(T1, T1, 1);
    a.label("bits_next");
    a.srli(T2, T2, 2);
    a.j("bits");
    a.label("isqrt_done");
    a.add(S2, S2, T1);
    a.addi(S0, S0, 8);
    a.addi(S1, S1, -1);
    a.bnez(S1, "isqrt_loop");
    // compare with the oracle sum
    a.la(T0, "expected_isqrt");
    a.ld(T0, T0, 0);
    a.xor(T0, T0, S2);
    a.snez(T0, T0);
    a.add(A0, A0, T0);

    // ---- kernel 2: Newton reciprocal cube roots --------------------------
    // z_{k+1} = z·(4 − x·z³)/3 converges to x^(-1/3); cbrt(x) = x·z².
    // Four values iterate in interleaved lanes (the multiply-only inner
    // loop is how production libm implements cbrt).
    a.la(S0, "cbrt_vals");
    a.li(S1, (n_cbrt / 4) as i64);
    a.la(T0, "consts");
    a.fld(Fs0, T0, 0); // 4.0
    a.fld(Fs1, T0, 8); // 1/3
    a.fld(Fs2, T0, 16); // tolerance 1e-9
    a.la(T0, "one");
    a.fld(Fs3, T0, 0); // 1.0
    a.label("cbrt_loop");
    a.fld(Fa0, S0, 0);
    a.fld(Fa1, S0, 8);
    a.fld(Fa2, S0, 16);
    a.fld(Fa3, S0, 24);
    // z0 = 1/x per lane (safe start: x·z³ = 1/x² ≤ 1)
    a.fdiv_d(Fa4, Fs3, Fa0);
    a.fdiv_d(Fa5, Fs3, Fa1);
    a.fdiv_d(Fa6, Fs3, Fa2);
    a.fdiv_d(Fa7, Fs3, Fa3);
    a.li(T1, newton_iters);
    a.label("newton");
    for (x, z, t) in [(Fa0, Fa4, Ft0), (Fa1, Fa5, Ft1), (Fa2, Fa6, Ft2), (Fa3, Fa7, Ft3)] {
        a.fmul_d(t, z, z);
        a.fmul_d(t, t, z);
        a.fmul_d(t, t, x);
        a.fsub_d(t, Fs0, t); // 4 − x·z³
        a.fmul_d(t, t, z);
        a.fmul_d(t, t, Fs1); // /3
        a.fmv_d(z, t);
    }
    a.addi(T1, T1, -1);
    a.bnez(T1, "newton");
    // verify per lane: y = x·z²; |y³ − x| ≤ tol·x
    for (x, z) in [(Fa0, Fa4), (Fa1, Fa5), (Fa2, Fa6), (Fa3, Fa7)] {
        a.fmul_d(Ft0, z, z);
        a.fmul_d(Ft0, Ft0, x); // y
        a.fmul_d(Ft1, Ft0, Ft0);
        a.fmul_d(Ft1, Ft1, Ft0); // y³
        a.fsub_d(Ft1, Ft1, x);
        a.fabs_d(Ft1, Ft1);
        a.fmul_d(Ft2, x, Fs2);
        a.fle_d(T1, Ft1, Ft2);
        a.xori(T1, T1, 1);
        a.add(A0, A0, T1);
    }
    a.addi(S0, S0, 32);
    a.addi(S1, S1, -1);
    a.bnez(S1, "cbrt_loop");

    // ---- kernel 3: deg↔rad round trips -----------------------------------
    a.li(S11, scale.factor() as i64);
    a.label("deg_rep");
    a.la(S0, "angles");
    a.li(S1, 360);
    a.la(T0, "consts");
    a.fld(Fs3, T0, 24); // π/180
    a.fld(Fs4, T0, 32); // 180/π
    a.fld(Fs2, T0, 16); // tolerance
    a.label("deg_loop");
    a.fld(Fa0, S0, 0);
    a.fmul_d(Fa1, Fa0, Fs3);
    a.fmul_d(Fa1, Fa1, Fs4);
    a.fsub_d(Fa2, Fa1, Fa0);
    a.fabs_d(Fa2, Fa2);
    a.la(T1, "consts");
    a.fld(Fa3, T1, 40); // 1.0
    a.fadd_d(Fa3, Fa0, Fa3);
    a.fmul_d(Fa3, Fa3, Fs2);
    a.fle_d(T1, Fa2, Fa3);
    a.xori(T1, T1, 1);
    a.add(A0, A0, T1);
    a.addi(S0, S0, 8);
    a.addi(S1, S1, -1);
    a.bnez(S1, "deg_loop");
    a.addi(S11, S11, -1);
    a.bnez(S11, "deg_rep");

    a.snez(A0, A0);
    a.exit();

    a.data_label("sqrt_vals");
    a.dwords(&sqrt_vals);
    a.data_label("expected_isqrt");
    a.dwords(&[expected_isqrt]);
    a.data_label("cbrt_vals");
    a.doubles(&cbrt_vals);
    a.data_label("angles");
    a.doubles(&angles);
    a.data_label("consts");
    a.doubles(&[4.0, 1.0 / 3.0, 1e-9, PI / 180.0, 180.0 / PI, 1.0]);
    a.data_label("one");
    a.doubles(&[1.0]);

    Workload {
        name: "Basicmath",
        suite: Suite::MiBench,
        program: a.assemble().expect("basicmath assembles"),
        interval_size: scale.interval(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_isa::cpu::{Cpu, StopReason};

    #[test]
    fn isqrt_oracle_is_exact() {
        for x in [0u64, 1, 2, 3, 4, 15, 16, 17, 1 << 40, u64::MAX >> 2] {
            let r = isqrt(x);
            assert!(r * r <= x, "x={x}");
            assert!((r + 1).checked_mul(r + 1).is_none_or(|sq| sq > x), "x={x}");
        }
    }

    #[test]
    fn verifies_against_oracle() {
        let w = build(Scale::Test);
        let mut cpu = Cpu::new(&w.program);
        assert_eq!(cpu.run(200_000_000).unwrap(), StopReason::Exited(0));
    }
}
