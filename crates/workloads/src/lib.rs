//! # rv-workloads — the paper's eleven benchmarks for RV64IMFD
//!
//! The paper evaluates eleven workloads from MiBench and Embench
//! (Table II). No RISC-V cross-compiler exists in this environment, so
//! each benchmark kernel is re-implemented against the [`rv_isa::asm`]
//! macro-assembler with:
//!
//! * **deterministic inputs** generated from fixed seeds, embedded in the
//!   program image;
//! * **self-verification**: every program checks its own result (against
//!   a Rust-side oracle constant baked into the image, or an algebraic
//!   property) and exits with code 0 on success;
//! * **a scaling knob** ([`Scale`]): dynamic instruction counts are scaled
//!   down ~50–100× from the paper's hundreds of millions (Table II) so a
//!   full SimPoint flow runs in seconds — SimPoint makes the methodology
//!   insensitive to absolute workload length, which is exactly the
//!   paper's point.
//!
//! The kernels preserve the *microarchitectural signatures* the paper's
//! analysis keys on: Sha's high ILP, Dijkstra's dependence-bound
//! issue-queue pressure, FFT/iFFT/Qsort's floating-point use, Matmult and
//! Tarfind's data-cache traffic, Tarfind's low IPC, and Patricia's
//! pointer chasing.
//!
//! ```
//! use rv_workloads::{all, Scale};
//! use rv_isa::cpu::{Cpu, StopReason};
//!
//! let workloads = all(Scale::Test);
//! assert_eq!(workloads.len(), 11);
//! let mut cpu = Cpu::new(&workloads[0].program);
//! assert_eq!(cpu.run(50_000_000).unwrap(), StopReason::Exited(0));
//! ```

#![warn(missing_docs)]
pub mod basicmath;
pub mod bitcount;
pub mod data;
pub mod dijkstra;
pub mod fft;
pub mod matmult;
pub mod patricia;
pub mod qsort;
pub mod sha;
pub mod stringsearch;
pub mod tarfind;

use rv_isa::Program;

/// Which benchmark suite a workload comes from (paper Table II).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Suite {
    /// MiBench (Guthaus et al., WWC 2001).
    MiBench,
    /// Embench (embench.org).
    Embench,
}

impl Suite {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Suite::MiBench => "MiBench",
            Suite::Embench => "Embench",
        }
    }
}

/// Workload size selector.
///
/// `Full` is the evaluation size used by the benches (≈0.5–6 M dynamic
/// instructions per workload, a documented ~50–100× scale-down of the
/// paper's Table II); `Small` suits integration tests; `Test` keeps unit
/// tests fast.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Tiny: tens of thousands of instructions.
    Test,
    /// Medium: a few hundred thousand instructions.
    Small,
    /// Evaluation size: millions of instructions.
    Full,
}

impl Scale {
    /// A scale-dependent iteration/size factor: `Test` = base,
    /// `Small` ≈ 4×, `Full` ≈ 16×.
    pub fn factor(self) -> u64 {
        match self {
            Scale::Test => 1,
            Scale::Small => 4,
            Scale::Full => 16,
        }
    }

    /// SimPoint interval size (dynamic instructions) appropriate for this
    /// scale — the analogue of Table II's 1M/2M intervals.
    pub fn interval(self) -> u64 {
        match self {
            Scale::Test => 2_000,
            Scale::Small => 10_000,
            Scale::Full => 50_000,
        }
    }
}

/// One benchmark: a self-verifying program plus its Table II metadata.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name as the paper prints it.
    pub name: &'static str,
    /// Source suite.
    pub suite: Suite,
    /// The assembled, loadable program (exits 0 on success).
    pub program: Program,
    /// SimPoint interval size in dynamic instructions for this scale
    /// (Table II's "Interval" column, scaled).
    pub interval_size: u64,
}

/// Builds all eleven workloads in the paper's Table II order.
pub fn all(scale: Scale) -> Vec<Workload> {
    vec![
        basicmath::build(scale),
        stringsearch::build(scale),
        fft::build(scale, false),
        fft::build(scale, true),
        bitcount::build(scale),
        qsort::build(scale),
        dijkstra::build(scale),
        patricia::build(scale),
        matmult::build(scale),
        sha::build(scale),
        tarfind::build(scale),
    ]
}

/// Looks a workload up by its paper name (case-insensitive).
pub fn by_name(name: &str, scale: Scale) -> Option<Workload> {
    all(scale).into_iter().find(|w| w.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_workloads_in_table2_order() {
        let names: Vec<&str> = all(Scale::Test).iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                "Basicmath",
                "Stringsearch",
                "FFT",
                "iFFT",
                "Bitcount",
                "Qsort",
                "Dijkstra",
                "Patricia",
                "Matmult",
                "Sha",
                "Tarfind"
            ]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("sha", Scale::Test).is_some());
        assert!(by_name("SHA", Scale::Test).is_some());
        assert!(by_name("nope", Scale::Test).is_none());
    }
}

#[cfg(test)]
mod scale_tests {
    use super::*;
    use rv_isa::cpu::{Cpu, StopReason};

    /// Dynamic instruction counts must grow with scale for every workload,
    /// and every scale must still self-verify.
    #[test]
    fn scales_grow_and_verify() {
        for (test_w, small_w) in all(Scale::Test).into_iter().zip(all(Scale::Small)) {
            let count = |w: &Workload| -> u64 {
                let mut cpu = Cpu::new(&w.program);
                let stop = cpu.run(500_000_000).unwrap();
                assert_eq!(stop, StopReason::Exited(0), "{} failed", w.name);
                cpu.instret()
            };
            let t = count(&test_w);
            let s = count(&small_w);
            assert!(s > 2 * t, "{}: Test {t} vs Small {s}", test_w.name);
        }
    }
}
