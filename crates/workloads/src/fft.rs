//! FFT / iFFT (MiBench): iterative radix-2 complex FFT on doubles.
//!
//! The FP-heaviest workloads in the paper: together with Qsort they are
//! the only benchmarks that exercise the FP register file and FP issue
//! unit (Key Takeaway #2 and the FP Issue analysis key on them).
//!
//! The forward workload checks Parseval's identity
//! (`Σ|X|²/N = Σ|x|²` within 1 ppm); the inverse workload runs
//! forward + inverse and checks elementwise round-trip error.

use crate::data::{doubles, rng_for};
use crate::{Scale, Suite, Workload};
use rv_isa::asm::Assembler;
use rv_isa::reg::FReg::*;
use rv_isa::reg::Reg::*;
use std::f64::consts::PI;

/// Emits an in-place radix-2 DIT FFT over the buffer pointed to by `S0`
/// (`n` interleaved re/im doubles), using the twiddle table at `tw_label`.
/// All labels are prefixed so the routine can be emitted more than once.
fn emit_fft(a: &mut Assembler, prefix: &str, n: usize, tw_label: &str) {
    let l = |s: &str| format!("{prefix}_{s}");
    a.li(S2, n as i64);
    a.li(S1, 1); // half (points)
    a.la(S6, tw_label);
    a.label(&l("stage"));
    // twiddle base for this stage: tw + (half-1)*16
    a.addi(T0, S1, -1);
    a.slli(T0, T0, 4);
    a.add(S5, S6, T0);
    a.li(S3, 0); // k
    a.label(&l("kloop"));
    a.li(S4, 0); // j
    a.label(&l("jloop"));
    // twiddle (wr, wi)
    a.slli(T0, S4, 4);
    a.add(T0, S5, T0);
    a.fld(Fa0, T0, 0); // wr
    a.fld(Fa1, T0, 8); // wi
                       // element addresses: i1 = (k+j)*16, i2 = i1 + half*16
    a.add(T1, S3, S4);
    a.slli(T1, T1, 4);
    a.add(T1, S0, T1); // &work[i1]
    a.slli(T2, S1, 4);
    a.add(T2, T1, T2); // &work[i2]
    a.fld(Fa2, T2, 0); // re2
    a.fld(Fa3, T2, 8); // im2
                       // tr = wr*re2 - wi*im2 ; ti = wr*im2 + wi*re2
    a.fmul_d(Fa4, Fa1, Fa3);
    a.fmsub_d(Fa4, Fa0, Fa2, Fa4);
    a.fmul_d(Fa5, Fa1, Fa2);
    a.fmadd_d(Fa5, Fa0, Fa3, Fa5);
    a.fld(Fa6, T1, 0); // re1
    a.fld(Fa7, T1, 8); // im1
    a.fsub_d(Ft0, Fa6, Fa4);
    a.fsub_d(Ft1, Fa7, Fa5);
    a.fsd(Ft0, T2, 0);
    a.fsd(Ft1, T2, 8);
    a.fadd_d(Ft0, Fa6, Fa4);
    a.fadd_d(Ft1, Fa7, Fa5);
    a.fsd(Ft0, T1, 0);
    a.fsd(Ft1, T1, 8);
    a.addi(S4, S4, 1);
    a.blt(S4, S1, &l("jloop"));
    // k += 2*half
    a.slli(T0, S1, 1);
    a.add(S3, S3, T0);
    a.blt(S3, S2, &l("kloop"));
    // half *= 2
    a.slli(S1, S1, 1);
    a.blt(S1, S2, &l("stage"));
}

/// Concatenated per-stage twiddle factors: for each stage with `half`
/// butterflies, pairs `(cos θ, sign·sin θ)` with `θ = −π·j/half`.
fn twiddles(n: usize, sign: f64) -> Vec<f64> {
    let mut out = Vec::new();
    let mut half = 1usize;
    while half < n {
        for j in 0..half {
            let theta = -PI * j as f64 / half as f64;
            out.push(theta.cos());
            out.push(sign * theta.sin());
        }
        half *= 2;
    }
    out
}

/// Bit-reversed index permutation.
fn bit_reverse_perm(n: usize) -> Vec<u64> {
    let bits = n.trailing_zeros();
    (0..n as u64).map(|i| (i.reverse_bits() >> (64 - bits)) & (n as u64 - 1)).collect()
}

/// Builds the FFT (`inverse = false`) or iFFT (`inverse = true`) workload.
pub fn build(scale: Scale, inverse: bool) -> Workload {
    let n: usize = match scale {
        Scale::Test => 64,
        Scale::Small => 128,
        Scale::Full => 256,
    };
    let reps: u64 = if inverse { 3 * scale.factor() } else { 6 * scale.factor() };

    let mut rng = rng_for(if inverse { "ifft" } else { "fft" });
    let mut signal = Vec::with_capacity(2 * n);
    for v in doubles(&mut rng, 2 * n, -1.0, 1.0) {
        signal.push(v);
    }

    let mut a = Assembler::new();
    a.li(A0, 0); // failure accumulator
    a.li(S11, reps as i64);
    a.label("rep");

    // ---- bit-reversal copy signal -> work ------------------------------
    a.la(T0, "signal");
    a.la(T1, "work");
    a.la(T2, "perm");
    a.li(T3, n as i64);
    a.label("brc");
    a.ld(T4, T2, 0); // j = perm[i]
    a.slli(T4, T4, 4);
    a.add(T4, T1, T4);
    a.fld(Fa0, T0, 0);
    a.fld(Fa1, T0, 8);
    a.fsd(Fa0, T4, 0);
    a.fsd(Fa1, T4, 8);
    a.addi(T0, T0, 16);
    a.addi(T2, T2, 8);
    a.addi(T3, T3, -1);
    a.bnez(T3, "brc");

    // ---- forward transform ----------------------------------------------
    a.la(S0, "work");
    emit_fft(&mut a, "fwd", n, "tw_fwd");

    if inverse {
        // ---- inverse transform: bit-reverse work -> work2, iFFT, scale --
        a.la(T0, "work");
        a.la(T1, "work2");
        a.la(T2, "perm");
        a.li(T3, n as i64);
        a.label("brc2");
        a.ld(T4, T2, 0);
        a.slli(T4, T4, 4);
        a.add(T4, T1, T4);
        a.fld(Fa0, T0, 0);
        a.fld(Fa1, T0, 8);
        a.fsd(Fa0, T4, 0);
        a.fsd(Fa1, T4, 8);
        a.addi(T0, T0, 16);
        a.addi(T2, T2, 8);
        a.addi(T3, T3, -1);
        a.bnez(T3, "brc2");
        a.la(S0, "work2");
        emit_fft(&mut a, "inv", n, "tw_inv");
        // scale by 1/N and compare elementwise with the original signal
        a.la(T0, "work2");
        a.la(T1, "signal");
        a.la(T2, "consts");
        a.fld(Fa5, T2, 0); // 1/N
        a.fld(Fa6, T2, 8); // tolerance
        a.fld(Fa7, T2, 16); // 1.0
        a.li(T3, 2 * n as i64);
        a.label("cmp");
        a.fld(Fa0, T0, 0);
        a.fmul_d(Fa0, Fa0, Fa5);
        a.fld(Fa1, T1, 0);
        a.fsub_d(Fa2, Fa0, Fa1);
        a.fabs_d(Fa2, Fa2);
        a.fabs_d(Fa3, Fa1);
        a.fadd_d(Fa3, Fa3, Fa7);
        a.fmul_d(Fa3, Fa3, Fa6);
        a.fle_d(T4, Fa2, Fa3);
        a.xori(T4, T4, 1);
        a.add(A0, A0, T4);
        a.addi(T0, T0, 8);
        a.addi(T1, T1, 8);
        a.addi(T3, T3, -1);
        a.bnez(T3, "cmp");
    } else {
        // ---- Parseval check: |Σ|X|²/N − Σ|x|²| ≤ tol·Σ|x|² --------------
        a.la(T0, "signal");
        a.la(T1, "work");
        a.la(T2, "consts");
        a.fld(Fa5, T2, 0); // 1/N
        a.fld(Fa6, T2, 8); // tolerance
        a.li(T3, n as i64);
        a.fmv_d_x(Fa0, Zero); // E1
        a.fmv_d_x(Fa1, Zero); // E2
        a.label("energy");
        a.fld(Fa2, T0, 0);
        a.fmadd_d(Fa0, Fa2, Fa2, Fa0);
        a.fld(Fa2, T0, 8);
        a.fmadd_d(Fa0, Fa2, Fa2, Fa0);
        a.fld(Fa2, T1, 0);
        a.fmadd_d(Fa1, Fa2, Fa2, Fa1);
        a.fld(Fa2, T1, 8);
        a.fmadd_d(Fa1, Fa2, Fa2, Fa1);
        a.addi(T0, T0, 16);
        a.addi(T1, T1, 16);
        a.addi(T3, T3, -1);
        a.bnez(T3, "energy");
        a.fmul_d(Fa1, Fa1, Fa5); // E2/N
        a.fsub_d(Fa2, Fa1, Fa0);
        a.fabs_d(Fa2, Fa2);
        a.fmul_d(Fa3, Fa0, Fa6);
        a.fle_d(T4, Fa2, Fa3);
        a.xori(T4, T4, 1);
        a.add(A0, A0, T4);
    }

    a.addi(S11, S11, -1);
    a.bnez(S11, "rep");
    a.snez(A0, A0);
    a.exit();

    a.data_label("signal");
    a.doubles(&signal);
    a.data_label("work");
    a.zeros(16 * n);
    if inverse {
        a.data_label("work2");
        a.zeros(16 * n);
    }
    a.data_label("perm");
    a.dwords(&bit_reverse_perm(n));
    a.data_label("tw_fwd");
    a.doubles(&twiddles(n, 1.0));
    if inverse {
        a.data_label("tw_inv");
        a.doubles(&twiddles(n, -1.0));
    }
    a.data_label("consts");
    a.doubles(&[1.0 / n as f64, if inverse { 1e-9 } else { 1e-6 }, 1.0]);

    Workload {
        name: if inverse { "iFFT" } else { "FFT" },
        suite: Suite::MiBench,
        program: a.assemble().expect("fft assembles"),
        interval_size: scale.interval(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_isa::cpu::{Cpu, StopReason};

    #[test]
    fn perm_is_an_involution() {
        let p = bit_reverse_perm(64);
        for (i, &j) in p.iter().enumerate() {
            assert_eq!(p[j as usize], i as u64);
        }
    }

    #[test]
    fn twiddle_table_has_n_minus_one_pairs() {
        assert_eq!(twiddles(64, 1.0).len(), 2 * 63);
        // First stage twiddle is W = 1.
        let t = twiddles(8, 1.0);
        assert_eq!(t[0], 1.0);
        assert_eq!(t[1], 0.0);
    }

    #[test]
    fn forward_passes_parseval() {
        let w = build(Scale::Test, false);
        let mut cpu = Cpu::new(&w.program);
        assert_eq!(cpu.run(100_000_000).unwrap(), StopReason::Exited(0));
    }

    #[test]
    fn round_trip_recovers_signal() {
        let w = build(Scale::Test, true);
        let mut cpu = Cpu::new(&w.program);
        assert_eq!(cpu.run(100_000_000).unwrap(), StopReason::Exited(0));
    }
}
