//! Bitcount (MiBench): bit-population counting with three algorithms.
//!
//! The SWAR pass is pure shift/mask ILP; the Kernighan pass has a
//! data-dependent loop; the nibble-table pass adds small-table loads.
//! Together they give the high-IPC integer profile the paper observes
//! (Bitcount stresses the integer pipeline alongside Sha).

use crate::data::{rng_for, u64s};
use crate::{Scale, Suite, Workload};
use rv_isa::asm::Assembler;
use rv_isa::reg::Reg::*;

/// Builds the workload.
pub fn build(scale: Scale) -> Workload {
    let n: usize = 256;
    let reps: u64 = 3 * scale.factor();

    let mut rng = rng_for("bitcount");
    let values = u64s(&mut rng, n);

    // Oracle: total set bits, counted three times (once per algorithm).
    let ones: u64 = values.iter().map(|v| v.count_ones() as u64).sum();
    let expected = ones.wrapping_mul(3).wrapping_mul(reps);

    // 4-bit popcount lookup table.
    let nibble_table: Vec<u64> = (0..16u64).map(|v| v.count_ones() as u64).collect();

    let mut a = Assembler::new();
    a.la(S0, "values");
    a.li(S1, n as i64);
    a.li(S11, reps as i64);
    a.li(A0, 0); // grand total

    a.label("rep");

    // --- Pass 1: SWAR popcount -------------------------------------
    a.mv(T0, S0);
    a.mv(T1, S1);
    a.la(S2, "m1");
    a.ld(S3, S2, 0); // 0x5555...
    a.ld(S4, S2, 8); // 0x3333...
    a.ld(S5, S2, 16); // 0x0f0f...
    a.ld(S6, S2, 24); // 0x0101...
    a.label("swar");
    a.ld(A1, T0, 0);
    a.srli(A2, A1, 1);
    a.and(A2, A2, S3);
    a.sub(A1, A1, A2);
    a.srli(A2, A1, 2);
    a.and(A1, A1, S4);
    a.and(A2, A2, S4);
    a.add(A1, A1, A2);
    a.srli(A2, A1, 4);
    a.add(A1, A1, A2);
    a.and(A1, A1, S5);
    a.mul(A1, A1, S6);
    a.srli(A1, A1, 56);
    a.add(A0, A0, A1);
    a.addi(T0, T0, 8);
    a.addi(T1, T1, -1);
    a.bnez(T1, "swar");

    // --- Pass 2: Kernighan's loop ----------------------------------
    a.mv(T0, S0);
    a.mv(T1, S1);
    a.label("kern_outer");
    a.ld(A1, T0, 0);
    a.beqz(A1, "kern_done");
    a.label("kern_inner");
    a.addi(A2, A1, -1);
    a.and(A1, A1, A2);
    a.addi(A0, A0, 1);
    a.bnez(A1, "kern_inner");
    a.label("kern_done");
    a.addi(T0, T0, 8);
    a.addi(T1, T1, -1);
    a.bnez(T1, "kern_outer");

    // --- Pass 3: nibble-table lookups -------------------------------
    a.la(S7, "nibbles");
    a.mv(T0, S0);
    a.mv(T1, S1);
    a.label("tab_outer");
    a.ld(A1, T0, 0);
    a.li(T2, 16); // nibbles per word
    a.label("tab_inner");
    a.andi(A2, A1, 0xF);
    a.slli(A2, A2, 3);
    a.add(A2, S7, A2);
    a.ld(A3, A2, 0);
    a.add(A0, A0, A3);
    a.srli(A1, A1, 4);
    a.addi(T2, T2, -1);
    a.bnez(T2, "tab_inner");
    a.addi(T0, T0, 8);
    a.addi(T1, T1, -1);
    a.bnez(T1, "tab_outer");

    a.addi(S11, S11, -1);
    a.bnez(S11, "rep");

    // Verify.
    a.la(T3, "expected");
    a.ld(T3, T3, 0);
    a.xor(A0, A0, T3);
    a.snez(A0, A0);
    a.exit();

    a.data_label("values");
    a.dwords(&values);
    a.data_label("m1");
    a.dwords(&[
        0x5555_5555_5555_5555,
        0x3333_3333_3333_3333,
        0x0f0f_0f0f_0f0f_0f0f,
        0x0101_0101_0101_0101,
    ]);
    a.data_label("nibbles");
    a.dwords(&nibble_table);
    a.data_label("expected");
    a.dwords(&[expected]);

    Workload {
        name: "Bitcount",
        suite: Suite::MiBench,
        program: a.assemble().expect("bitcount assembles"),
        interval_size: scale.interval(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_isa::cpu::{Cpu, StopReason};

    #[test]
    fn verifies_against_oracle() {
        let w = build(Scale::Test);
        let mut cpu = Cpu::new(&w.program);
        assert_eq!(cpu.run(50_000_000).unwrap(), StopReason::Exited(0));
    }
}
