//! Workload-identity tests: each benchmark must exhibit the dynamic
//! instruction mix its analysis role in the paper depends on (FP usage
//! confined to FFT/iFFT/Qsort/Basicmath, memory intensity for Matmult,
//! branchiness for Stringsearch, multiply pressure for Tarfind, ...).

// Test helpers may unwrap freely; `allow-unwrap-in-tests` only covers
// `#[test]` fns, not the helpers integration tests share.
#![allow(clippy::unwrap_used)]

use rv_isa::cpu::Cpu;
use rv_isa::inst::Inst;
use rv_workloads::{all, Scale};
use std::collections::HashMap;

#[derive(Default, Clone, Debug)]
struct Mix {
    total: u64,
    loads: u64,
    stores: u64,
    branches: u64,
    muldiv: u64,
    fp: u64,
}

fn measure() -> HashMap<&'static str, Mix> {
    let mut out = HashMap::new();
    for w in all(Scale::Test) {
        let mut cpu = Cpu::new(&w.program);
        let mut mix = Mix::default();
        cpu.run_with(200_000_000, |r| {
            mix.total += 1;
            match r.inst {
                Inst::Load { .. } | Inst::FpLoad { .. } => mix.loads += 1,
                Inst::Store { .. } | Inst::FpStore { .. } => mix.stores += 1,
                Inst::Branch { .. } => mix.branches += 1,
                Inst::MulDiv { .. } => mix.muldiv += 1,
                _ => {}
            }
            if matches!(
                r.inst,
                Inst::FpLoad { .. }
                    | Inst::FpStore { .. }
                    | Inst::FpOp { .. }
                    | Inst::FpFma { .. }
                    | Inst::FpCmp { .. }
                    | Inst::FpCvtToInt { .. }
                    | Inst::FpCvtFromInt { .. }
                    | Inst::FpCvtFmt { .. }
                    | Inst::FpMvToInt { .. }
                    | Inst::FpMvFromInt { .. }
            ) {
                mix.fp += 1;
            }
        })
        .unwrap();
        out.insert(w.name, mix);
    }
    out
}

#[test]
fn fp_usage_is_confined_to_fp_workloads() {
    let mixes = measure();
    // The paper: only FFT, iFFT and Qsort use FP registers heavily
    // (Basicmath's cbrt kernel uses FP too).
    for name in ["FFT", "iFFT", "Qsort", "Basicmath"] {
        let m = &mixes[name];
        assert!(
            m.fp as f64 > 0.10 * m.total as f64,
            "{name}: fp share {:.1}%",
            100.0 * m.fp as f64 / m.total as f64
        );
    }
    for name in ["Bitcount", "Sha", "Dijkstra", "Patricia", "Matmult", "Stringsearch", "Tarfind"] {
        let m = &mixes[name];
        assert!(
            (m.fp as f64) < 0.01 * m.total as f64,
            "{name}: unexpected fp share {:.1}%",
            100.0 * m.fp as f64 / m.total as f64
        );
    }
}

#[test]
fn memory_intensity_identities() {
    let mixes = measure();
    // Matmult streams two operands per MAC: loads dominate.
    let mm = &mixes["Matmult"];
    assert!(mm.loads as f64 > 0.2 * mm.total as f64, "matmult loads {:?}", mm);
    // Stringsearch and Patricia are load-heavy, store-light.
    for name in ["Stringsearch", "Patricia", "Tarfind"] {
        let m = &mixes[name];
        assert!(m.loads > 4 * m.stores, "{name}: {m:?}");
    }
    // Sha's state lives in registers: well under 10% memory operations.
    let sha = &mixes["Sha"];
    assert!((sha.loads + sha.stores) as f64 <= 0.12 * sha.total as f64, "{sha:?}");
}

#[test]
fn control_and_multiply_identities() {
    let mixes = measure();
    // Tarfind's rolling hash: multiplies are a large dynamic share.
    let tf = &mixes["Tarfind"];
    assert!(tf.muldiv as f64 > 0.2 * tf.total as f64, "{tf:?}");
    // Bitcount's Kernighan pass and loops make it branchy but not
    // memory-bound.
    let bc = &mixes["Bitcount"];
    assert!(bc.branches as f64 > 0.1 * bc.total as f64, "{bc:?}");
    assert!((bc.loads + bc.stores) as f64 <= 0.2 * bc.total as f64, "{bc:?}");
    // Dijkstra's branchless min-scan keeps branch share low while staying
    // load-heavy (the chain is through loads, not branches).
    let dj = &mixes["Dijkstra"];
    assert!(dj.loads as f64 > 0.12 * dj.total as f64, "{dj:?}");
}
