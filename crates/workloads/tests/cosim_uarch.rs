//! Every workload must exit successfully (code 0) on the cycle-level
//! OoO core — the full-program co-simulation check — and exhibit the
//! relative IPC ordering the paper's Fig. 10 reports.

use boom_uarch::{BoomConfig, Core};
use rv_workloads::{all, Scale};

#[test]
fn all_workloads_pass_on_medium_boom() {
    for w in all(Scale::Test) {
        let mut core = Core::new(BoomConfig::medium(), &w.program);
        let r = core.run(500_000_000);
        assert!(r.exited && !r.hung, "{}: {r:?}", w.name);
        assert_eq!(r.exit_code, Some(0), "{} failed self-verification", w.name);
        println!(
            "{:14} insts={:9} cycles={:9} IPC={:.2} mispred={:.1}%",
            w.name,
            core.stats().retired,
            core.stats().cycles,
            core.stats().ipc(),
            100.0 * core.stats().mispredict_rate(),
        );
    }
}

#[test]
fn all_workloads_pass_on_mega_boom() {
    for w in all(Scale::Test) {
        let mut core = Core::new(BoomConfig::mega(), &w.program);
        let r = core.run(500_000_000);
        assert!(r.exited && !r.hung, "{}: {r:?}", w.name);
        assert_eq!(r.exit_code, Some(0), "{} failed self-verification", w.name);
        println!("{:14} IPC={:.2}", w.name, core.stats().ipc());
    }
}

#[test]
fn sha_has_highest_ipc_tarfind_lowest() {
    // The paper's Fig. 10 headline orderings.
    let mut ipc = std::collections::HashMap::new();
    for w in all(Scale::Small) {
        let mut core = Core::new(BoomConfig::large(), &w.program);
        let r = core.run(500_000_000);
        assert!(r.exited, "{}", w.name);
        ipc.insert(w.name, core.stats().ipc());
    }
    let sha = ipc["Sha"];
    let tarfind = ipc["Tarfind"];
    for (name, v) in &ipc {
        assert!(sha >= *v * 0.95, "Sha ({sha:.2}) should lead, {name} = {v:.2}");
        assert!(tarfind <= *v * 1.05, "Tarfind ({tarfind:.2}) should trail, {name} = {v:.2}");
    }
}
