//! Predecode-equivalence suite: the predecoded-image fast path must be a
//! pure speedup. Across every bundled workload, the fast path has to
//! retire a bit-identical `Retired` stream and produce an identical
//! `BbvProfile` versus the decode-per-step reference path — including
//! under self-modifying code, where stores into the text segment must
//! invalidate stale predecoded slots on both the functional CPU and the
//! detailed core.

// Test helpers may unwrap freely; `allow-unwrap-in-tests` only covers
// `#[test]` fns, not the helpers integration tests share.
#![allow(clippy::unwrap_used)]

use boom_uarch::{BoomConfig, Core};
use rv_isa::asm::Assembler;
use rv_isa::bbv::{BbvCollector, BbvProfile};
use rv_isa::checkpoint::Checkpoint;
use rv_isa::cpu::{Cpu, StopReason};
use rv_isa::inst::encode;
use rv_isa::program::Program;
use rv_isa::reg::Reg::*;
use rv_workloads::{all, by_name, Scale};
use std::sync::Arc;

/// One retired instruction, reduced to comparable bits.
type Event = (u64, u32, u64, Option<u64>);

/// Runs `cpu` to completion, recording the retired stream and a BBV
/// profile through `collector`.
fn run_recorded(
    mut cpu: Cpu,
    mut collector: BbvCollector,
) -> (Vec<Event>, BbvProfile, StopReason, Cpu) {
    let mut stream = Vec::new();
    let stop = cpu
        .run_with(u64::MAX, |r| {
            stream.push((r.pc, encode(r.inst), r.next_pc, r.exited));
            collector.observe(r);
        })
        .expect("run failed");
    (stream, collector.finish(), stop, cpu)
}

#[test]
fn fast_path_matches_reference_on_every_workload() {
    for w in all(Scale::Test) {
        // Fast: predecoded image (attached by Cpu::new) + dense collector.
        let fast_cpu = Cpu::new(&w.program);
        assert!(fast_cpu.image().is_some(), "{}: Cpu::new must attach the image", w.name);
        let (fast_stream, fast_prof, fast_stop, fast_cpu) =
            run_recorded(fast_cpu, BbvCollector::for_program(w.interval_size, &w.program));

        // Reference: decode-per-step + HashMap collector.
        let mut ref_cpu = Cpu::new(&w.program);
        ref_cpu.detach_image();
        let (ref_stream, ref_prof, ref_stop, ref_cpu) =
            run_recorded(ref_cpu, BbvCollector::new(w.interval_size));

        assert_eq!(fast_stop, ref_stop, "{}: stop reason", w.name);
        assert_eq!(fast_stream.len(), ref_stream.len(), "{}: stream length", w.name);
        if let Some(i) = (0..fast_stream.len()).find(|&i| fast_stream[i] != ref_stream[i]) {
            panic!(
                "{}: retired streams diverge at instruction {i}: fast {:x?} vs reference {:x?}",
                w.name, fast_stream[i], ref_stream[i]
            );
        }
        assert_eq!(fast_prof, ref_prof, "{}: BBV profile", w.name);
        assert_eq!(fast_cpu.xregs(), ref_cpu.xregs(), "{}: final integer registers", w.name);
        assert_eq!(fast_cpu.fregs(), ref_cpu.fregs(), "{}: final FP registers", w.name);
        assert_eq!(fast_cpu.console(), ref_cpu.console(), "{}: console output", w.name);
    }
}

/// A program that patches its own text: it copies the `donor`
/// instruction (`addi a0, a0, 2`) over the `site` instruction
/// (`addi a0, a0, 1`) before executing it, then exits with code `a0`.
/// Correct SMC handling yields exit code 2; a stale predecoded slot
/// would yield 1. `delay_iters` inserts a countdown loop between the
/// patch and the site so that, on the detailed core, the store commits
/// before the post-loop fetch of `site` (the functional CPU needs none).
fn smc_program(delay_iters: i64) -> Program {
    let mut a = Assembler::new();
    a.j("start");
    a.label("donor");
    a.addi(A0, A0, 2);
    a.label("start");
    a.la(T0, "donor");
    a.lw(T1, T0, 0);
    a.la(T2, "site");
    a.sw(T1, T2, 0);
    if delay_iters > 0 {
        a.li(T3, delay_iters);
        a.label("delay");
        a.addi(T3, T3, -1);
        a.bnez(T3, "delay");
    }
    a.label("site");
    a.addi(A0, A0, 1);
    a.exit();
    a.assemble().unwrap()
}

#[test]
fn smc_invalidation_keeps_functional_semantics_exact() {
    let p = smc_program(0);

    let (fast_stream, fast_prof, fast_stop, _) =
        run_recorded(Cpu::new(&p), BbvCollector::for_program(64, &p));
    let mut ref_cpu = Cpu::new(&p);
    ref_cpu.detach_image();
    let (ref_stream, ref_prof, ref_stop, _) = run_recorded(ref_cpu, BbvCollector::new(64));

    assert_eq!(fast_stop, StopReason::Exited(2), "patched instruction must execute");
    assert_eq!(ref_stop, StopReason::Exited(2));
    assert_eq!(fast_stream, ref_stream, "SMC retired streams");
    assert_eq!(fast_prof, ref_prof, "SMC BBV profiles");
}

#[test]
fn smc_invalidation_holds_on_the_detailed_core_under_lockstep() {
    // The delay loop is far longer than the ROB, so the patching store
    // commits long before the front end re-fetches `site` after the
    // loop-exit mispredict.
    let p = smc_program(400);
    let mut core = Core::new(BoomConfig::medium(), &p);
    core.attach_golden_model();
    let r = core.run(10_000_000);
    assert!(r.exited && !r.hung, "core run: {r:?}");
    assert_eq!(r.exit_code, Some(2), "patched instruction must execute on the core");
    assert_eq!(core.cosim_mismatch(), None, "lockstep golden model diverged");
}

#[test]
fn checkpoints_carry_the_shared_image() {
    let w = by_name("bitcount", Scale::Test).unwrap();
    let mut cpu = Cpu::new(&w.program);
    cpu.run(1_000).unwrap();
    let ck = Checkpoint::capture(&cpu);

    let image = ck.image.as_ref().expect("checkpoint must carry the image");
    assert!(
        Arc::ptr_eq(image, &w.program.decoded_image()),
        "checkpoint image must be a share of the program's, not a copy"
    );

    // A restored CPU keeps the fast path and behaves exactly like a
    // restored reference CPU with the image detached.
    let mut restored = ck.restore();
    assert!(restored.image().is_some(), "restore must re-attach the image");
    let mut reference = ck.restore();
    reference.detach_image();
    let s1 = restored.run(u64::MAX).unwrap();
    let s2 = reference.run(u64::MAX).unwrap();
    assert_eq!(s1, s2);
    assert_eq!(restored.xregs(), reference.xregs());
    assert_eq!(restored.instret(), reference.instret());

    // A detailed core seeded from the checkpoint also inherits the image;
    // lockstep co-simulation confirms it agrees with the golden model.
    let mut core = Core::from_checkpoint(BoomConfig::medium(), &ck);
    core.attach_golden_model();
    let r = core.run(500_000_000);
    assert!(r.exited && !r.hung, "core-from-checkpoint run: {r:?}");
    assert_eq!(core.cosim_mismatch(), None, "lockstep golden model diverged");
}
