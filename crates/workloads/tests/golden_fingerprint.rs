//! Golden-fingerprint regression tests for the detailed core.
//!
//! Each case runs a workload to completion on one BOOM configuration and
//! compares `Stats::fingerprint()` — a canonical hash over the final
//! cycle count, committed-instruction count, and every per-component
//! activity counter — against a committed golden value captured before
//! the allocation-free hot-loop overhaul. Any change to timing or to the
//! power-model activity inputs (CAM searches, collapse shifts, RF port
//! counts, ...) moves the hash, so these tests pin the "bit-identical"
//! claim that lets hot-loop refactors land without re-validating the
//! paper's figures.
//!
//! To re-capture goldens after an *intentional* model change, run with
//! `--nocapture` and copy the printed table into `GOLDEN`.

use boom_uarch::{BoomConfig, Core, HierarchyParams};
use rv_workloads::{by_name, Scale};

/// (config name, workload, golden fingerprint) — captured on the seed
/// poll-based core, Scale::Test, full run to exit. The `medium+l2` row
/// pins the hierarchy memory backend (shared L2 + DRAM model): its
/// fingerprint includes the `MemSysStats` counters, so any change to L2
/// MSHR handling, DRAM bandwidth accounting, or the refill path moves it.
const GOLDEN: [(&str, &str, u64); 7] = [
    ("medium", "bitcount", 0x828e_42cf_8749_bf2a),
    ("medium", "dijkstra", 0x5b5e_dc63_0790_cf44),
    ("large", "bitcount", 0x58c5_fc8e_5344_4bb4),
    ("large", "dijkstra", 0x393f_9d45_61f9_00d0),
    ("mega", "bitcount", 0x3bea_1766_f4d7_73aa),
    ("mega", "dijkstra", 0x8b6c_b37d_163c_a301),
    ("medium+l2", "dijkstra", 0x54cd_4c01_ed7e_74cf),
];

fn config(name: &str) -> BoomConfig {
    match name {
        "medium" => BoomConfig::medium(),
        "large" => BoomConfig::large(),
        "mega" => BoomConfig::mega(),
        "medium+l2" => BoomConfig::medium().with_hierarchy(HierarchyParams::default_uncore()),
        other => panic!("unknown config {other}"),
    }
}

fn run_fingerprint(cfg: &str, workload: &str) -> u64 {
    let w = by_name(workload, Scale::Test).expect("known workload");
    let mut core = Core::new(config(cfg), &w.program);
    let r = core.run(500_000_000);
    assert!(r.exited && !r.hung, "{cfg}/{workload}: {r:?}");
    assert_eq!(r.exit_code, Some(0), "{cfg}/{workload} failed self-verification");
    core.stats().fingerprint()
}

#[test]
fn detailed_core_fingerprints_match_goldens() {
    let mut failures = Vec::new();
    for (cfg, workload, golden) in GOLDEN {
        let got = run_fingerprint(cfg, workload);
        println!("    (\"{cfg}\", \"{workload}\", {got:#018x}),");
        if got != golden {
            failures.push(format!(
                "{cfg}/{workload}: fingerprint {got:#018x} != golden {golden:#018x}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "activity fingerprints drifted from committed goldens (timing or \
         power inputs changed):\n{}",
        failures.join("\n")
    );
}

/// The fingerprint must be a pure function of the run — two identical
/// runs hash identically (guards against accidentally hashing wall-clock
/// or allocation-dependent state).
#[test]
fn fingerprint_is_deterministic() {
    let a = run_fingerprint("medium", "bitcount");
    let b = run_fingerprint("medium", "bitcount");
    assert_eq!(a, b);
}

/// Event-driven idle-cycle skipping is a pure wall-clock optimization:
/// a skip-on run of every fixed-latency golden row must hash to the
/// committed skip-off golden, and across the suite it must actually
/// skip something (otherwise the mode is silently disabled and this
/// test proves nothing).
#[test]
fn idle_skip_runs_match_skip_off_goldens() {
    let mut failures = Vec::new();
    let mut total_skipped = 0u64;
    for (cfg, workload, golden) in GOLDEN {
        if cfg == "medium+l2" {
            continue; // hierarchy backend: covered below as a no-op
        }
        let w = by_name(workload, Scale::Test).expect("known workload");
        let mut core = Core::new(config(cfg), &w.program);
        core.set_idle_skip(true);
        let r = core.run(500_000_000);
        assert!(r.exited && !r.hung, "{cfg}/{workload}: {r:?}");
        let got = core.stats().fingerprint();
        if got != golden {
            failures.push(format!(
                "{cfg}/{workload}: skip-on fingerprint {got:#018x} != golden {golden:#018x}"
            ));
        }
        total_skipped += core.stats().idle_cycles_skipped;
    }
    assert!(
        failures.is_empty(),
        "idle skipping changed observable stats:\n{}",
        failures.join("\n")
    );
    assert!(total_skipped > 0, "idle skipping never fired across the golden suite");
}

/// On the shared-L2 hierarchy backend the skip gate must refuse to
/// engage (the uncore has time-dependent state), leaving the run — and
/// its fingerprint — untouched.
#[test]
fn idle_skip_is_inert_on_hierarchy_backend() {
    let w = by_name("dijkstra", Scale::Test).expect("known workload");
    let mut core = Core::new(config("medium+l2"), &w.program);
    core.set_idle_skip(true);
    let r = core.run(500_000_000);
    assert!(r.exited && !r.hung, "{r:?}");
    assert_eq!(core.stats().idle_cycles_skipped, 0);
    let golden = GOLDEN.iter().find(|g| g.0 == "medium+l2").expect("l2 golden").2;
    assert_eq!(core.stats().fingerprint(), golden);
}

/// Batched multi-config lanes share one micro-op table (classification
/// is configuration-independent); every lane, with idle skipping on top,
/// must still hash to its solo skip-off golden.
#[test]
fn batched_lanes_with_idle_skip_match_goldens() {
    let mut failures = Vec::new();
    for workload in ["bitcount", "dijkstra"] {
        let w = by_name(workload, Scale::Test).expect("known workload");
        let uops = Core::shared_uop_table(&w.program.decoded_image());
        for cfg in ["medium", "large", "mega"] {
            let golden =
                GOLDEN.iter().find(|g| g.0 == cfg && g.1 == workload).expect("golden row exists").2;
            let mut core = Core::new_with_uops(config(cfg), &w.program, &uops);
            core.set_idle_skip(true);
            let r = core.run(500_000_000);
            assert!(r.exited && !r.hung, "{cfg}/{workload}: {r:?}");
            let got = core.stats().fingerprint();
            if got != golden {
                failures.push(format!(
                    "{cfg}/{workload}: batched lane fingerprint {got:#018x} != golden \
                     {golden:#018x}"
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "batched lanes diverged from solo goldens:\n{}",
        failures.join("\n")
    );
}
