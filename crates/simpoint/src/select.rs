//! End-to-end SimPoint analysis: cluster, pick representatives, trim to a
//! coverage target.

use crate::bic::{bic, choose_k};
use crate::kmeans::kmeans_best_of;
use crate::projection::project;
use rv_isa::bbv::BbvProfile;
use rv_isa::codec::{ByteReader, ByteWriter, CodecError};

/// Tunable parameters of the SimPoint analysis.
#[derive(Clone, Debug)]
pub struct SimPointConfig {
    /// Maximum number of clusters to consider (`maxK`). Paper-scale runs use
    /// up to 30; our scaled workloads default to 10.
    pub max_k: usize,
    /// Dimension after random projection (SimPoint 3.0 default: 15).
    pub projected_dim: usize,
    /// Fraction of the best BIC a smaller `k` must reach to be chosen.
    pub bic_threshold: f64,
    /// Independent k-means restarts per `k`.
    pub restarts: usize,
    /// Lloyd iteration cap per restart.
    pub max_iters: usize,
    /// RNG seed for projection and clustering.
    pub seed: u64,
    /// Execution-coverage target for the selected subset (paper: ≥ 0.9).
    pub coverage: f64,
}

impl Default for SimPointConfig {
    fn default() -> SimPointConfig {
        SimPointConfig {
            max_k: 10,
            projected_dim: 15,
            bic_threshold: 0.9,
            restarts: 5,
            max_iters: 100,
            seed: 0xB00F,
            coverage: 0.9,
        }
    }
}

impl SimPointConfig {
    /// Stable fingerprint over every field that influences the analysis
    /// result (FNV-1a; floats hashed by bit pattern). Two configs with the
    /// same fingerprint produce identical [`SimPointAnalysis`] artifacts
    /// for the same profile, so memoizing stores use this as a cache key.
    pub fn cache_fingerprint(&self) -> u64 {
        let words = [
            self.max_k as u64,
            self.projected_dim as u64,
            self.bic_threshold.to_bits(),
            self.restarts as u64,
            self.max_iters as u64,
            self.seed,
            self.coverage.to_bits(),
        ];
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in words {
            for b in w.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

/// One chosen simulation point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimPoint {
    /// Index of the representative interval in the profile.
    pub interval: usize,
    /// Fraction of total execution represented by this point's cluster.
    pub weight: f64,
    /// Cluster this point represents.
    pub cluster: usize,
}

/// Complete result of a SimPoint analysis.
#[derive(Clone, Debug)]
pub struct SimPointAnalysis {
    /// One point per cluster, sorted by descending weight.
    pub points: Vec<SimPoint>,
    /// The prefix of [`SimPointAnalysis::points`] kept to reach the
    /// coverage target, with weights renormalized to sum to 1.
    pub selected: Vec<SimPoint>,
    /// Chosen number of clusters.
    pub k: usize,
    /// Interval size (dynamic instructions) of the underlying profile.
    pub interval_size: u64,
    /// Total dynamic instructions in the profiled execution.
    pub total_insts: u64,
    /// Raw coverage of `selected` before renormalization.
    raw_coverage: f64,
}

impl SimPointAnalysis {
    /// Execution coverage of the selected points (before renormalization).
    pub fn selected_coverage(&self) -> f64 {
        self.raw_coverage
    }

    /// Dynamic-instruction index at which each selected point's interval
    /// begins, given the profile it was derived from. The profile's
    /// interval starts are prefix-summed once, so this is linear in the
    /// profile size rather than quadratic.
    pub fn selected_starts(&self, profile: &BbvProfile) -> Vec<u64> {
        let starts = profile.interval_starts();
        self.selected.iter().map(|p| starts[p.interval]).collect()
    }

    /// The simulated-instruction budget: `selected.len() × interval_size`,
    /// versus `total_insts` for full simulation.
    pub fn speedup(&self) -> f64 {
        let detailed = self.selected.len() as u64 * self.interval_size;
        self.total_insts as f64 / detailed.max(1) as f64
    }

    /// Serializes the analysis for the disk artifact cache (weights by
    /// exact bit pattern, so a round trip is bit-identical).
    pub fn encode(&self, w: &mut ByteWriter) {
        fn put_points(w: &mut ByteWriter, points: &[SimPoint]) {
            w.put_usize(points.len());
            for p in points {
                w.put_usize(p.interval);
                w.put_f64(p.weight);
                w.put_usize(p.cluster);
            }
        }
        put_points(w, &self.points);
        put_points(w, &self.selected);
        w.put_usize(self.k);
        w.put_u64(self.interval_size);
        w.put_u64(self.total_insts);
        w.put_f64(self.raw_coverage);
    }

    /// Decodes an analysis produced by [`SimPointAnalysis::encode`].
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or a length field the buffer cannot
    /// hold — the cache layer quarantines such files and recomputes.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<SimPointAnalysis, CodecError> {
        fn take_points(r: &mut ByteReader<'_>) -> Result<Vec<SimPoint>, CodecError> {
            let n = r.seq_len(24)?;
            let mut points = Vec::with_capacity(n);
            for _ in 0..n {
                let interval = r.usize()?;
                let weight = r.f64()?;
                let cluster = r.usize()?;
                points.push(SimPoint { interval, weight, cluster });
            }
            Ok(points)
        }
        let points = take_points(r)?;
        let selected = take_points(r)?;
        let k = r.usize()?;
        let interval_size = r.u64()?;
        let total_insts = r.u64()?;
        let raw_coverage = r.f64()?;
        Ok(SimPointAnalysis { points, selected, k, interval_size, total_insts, raw_coverage })
    }
}

/// Runs the full SimPoint analysis over a BBV profile.
///
/// # Panics
///
/// Panics if the profile has no intervals.
pub fn analyze(profile: &BbvProfile, config: &SimPointConfig) -> SimPointAnalysis {
    assert!(!profile.intervals.is_empty(), "profile has no intervals");
    let n = profile.intervals.len();
    let vectors = project(profile, config.projected_dim.min(profile.dim.max(1)), config.seed);

    // Score k = 1..=min(maxK, n) with BIC; keep each clustering.
    let k_max = config.max_k.min(n).max(1);
    let mut ks = Vec::new();
    let mut scores = Vec::new();
    let mut clusterings = Vec::new();
    for k in 1..=k_max {
        let c =
            kmeans_best_of(&vectors, k, config.max_iters, config.restarts, config.seed + k as u64);
        ks.push(k);
        scores.push(bic(&c, n));
        clusterings.push(c);
    }
    let k = choose_k(&ks, &scores, config.bic_threshold);
    let clustering = &clusterings[k - 1];

    // Representative of each cluster: interval closest to the centroid,
    // weighted by the cluster's share of dynamic instructions.
    let total_insts: u64 = profile.total_insts.max(1);
    let mut points = Vec::with_capacity(k);
    for c in 0..k {
        let centroid = clustering.centroid(c);
        let mut best: Option<(usize, f64)> = None;
        let mut cluster_insts = 0u64;
        for (i, &a) in clustering.assignment.iter().enumerate() {
            if a != c {
                continue;
            }
            cluster_insts += profile.intervals[i].len;
            let d: f64 = vectors.row(i).iter().zip(centroid).map(|(x, y)| (x - y) * (x - y)).sum();
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        if let Some((interval, _)) = best {
            points.push(SimPoint {
                interval,
                weight: cluster_insts as f64 / total_insts as f64,
                cluster: c,
            });
        }
    }
    points.sort_by(|a, b| b.weight.total_cmp(&a.weight));

    // Keep the highest-weight points until the coverage target is met.
    let mut selected = Vec::new();
    let mut cum = 0.0;
    for p in &points {
        selected.push(*p);
        cum += p.weight;
        if cum >= config.coverage {
            break;
        }
    }
    let raw_coverage = cum;
    // Renormalize the kept weights so downstream weighted averages are
    // proper convex combinations.
    for p in &mut selected {
        p.weight /= raw_coverage;
    }

    SimPointAnalysis {
        points,
        selected,
        k,
        interval_size: profile.interval_size,
        total_insts: profile.total_insts,
        raw_coverage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_isa::bbv::Interval;

    fn phased_profile(phase_sizes: &[usize]) -> BbvProfile {
        let mut intervals = Vec::new();
        for (p, &count) in phase_sizes.iter().enumerate() {
            for _ in 0..count {
                intervals.push(Interval { weights: vec![(p, 100)], len: 100 });
            }
        }
        let total = intervals.iter().map(|i| i.len).sum();
        BbvProfile { intervals, dim: phase_sizes.len(), interval_size: 100, total_insts: total }
    }

    #[test]
    fn weights_sum_to_one() {
        let p = phased_profile(&[10, 5, 5]);
        let a = analyze(&p, &SimPointConfig::default());
        let sum: f64 = a.points.iter().map(|p| p.weight).sum();
        assert!((sum - 1.0).abs() < 1e-9, "weights sum to {sum}");
        let sel_sum: f64 = a.selected.iter().map(|p| p.weight).sum();
        assert!((sel_sum - 1.0).abs() < 1e-9, "selected weights sum to {sel_sum}");
    }

    #[test]
    fn representative_comes_from_its_phase() {
        let p = phased_profile(&[12, 8]);
        let a = analyze(&p, &SimPointConfig::default());
        assert_eq!(a.k, 2);
        // The heavier point must be an interval from the 12-interval phase.
        let heavy = &a.points[0];
        assert!(heavy.interval < 12, "heavy representative at {}", heavy.interval);
        assert!((heavy.weight - 0.6).abs() < 1e-9);
    }

    #[test]
    fn coverage_trimming_drops_light_clusters() {
        // 90% of execution in phase 0; tiny phases 1..4.
        let p = phased_profile(&[45, 2, 2, 1]);
        let cfg = SimPointConfig { coverage: 0.9, ..SimPointConfig::default() };
        let a = analyze(&p, &cfg);
        assert!(a.selected.len() <= a.points.len());
        assert!(a.selected_coverage() >= 0.9);
    }

    #[test]
    fn speedup_reflects_interval_budget() {
        let p = phased_profile(&[50]);
        let a = analyze(&p, &SimPointConfig::default());
        assert_eq!(a.k, 1);
        assert!((a.speedup() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn analysis_encode_decode_round_trips_bit_identically() {
        let p = phased_profile(&[12, 8, 3]);
        let a = analyze(&p, &SimPointConfig::default());
        let mut w = ByteWriter::new();
        a.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let d = SimPointAnalysis::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(d.k, a.k);
        assert_eq!(d.interval_size, a.interval_size);
        assert_eq!(d.total_insts, a.total_insts);
        assert_eq!(d.selected_coverage().to_bits(), a.selected_coverage().to_bits());
        assert_eq!(d.points.len(), a.points.len());
        for (x, y) in d.points.iter().zip(&a.points).chain(d.selected.iter().zip(&a.selected)) {
            assert_eq!(x.interval, y.interval);
            assert_eq!(x.cluster, y.cluster);
            assert_eq!(x.weight.to_bits(), y.weight.to_bits());
        }
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(SimPointAnalysis::decode(&mut r).and_then(|_| r.finish()).is_err());
        }
    }

    #[test]
    fn single_interval_profile_degenerates_gracefully() {
        let p = phased_profile(&[1]);
        let a = analyze(&p, &SimPointConfig::default());
        assert_eq!(a.k, 1);
        assert_eq!(a.selected.len(), 1);
        assert_eq!(a.selected[0].interval, 0);
    }
}
