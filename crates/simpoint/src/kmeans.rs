//! Lloyd's k-means with k-means++ seeding, as used by SimPoint 3.0.

use crate::projection::ProjectedVectors;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Result of one k-means run.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// Cluster index for every input vector.
    pub assignment: Vec<usize>,
    /// Cluster centroids, row-major (`k × dim`).
    pub centroids: Vec<f64>,
    /// Dimensionality of the space.
    pub dim: usize,
    /// Number of clusters.
    pub k: usize,
    /// Sum of squared distances of points to their centroid.
    pub sse: f64,
}

impl Clustering {
    /// The centroid of cluster `c`.
    pub fn centroid(&self, c: usize) -> &[f64] {
        &self.centroids[c * self.dim..(c + 1) * self.dim]
    }

    /// Number of points assigned to each cluster.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &a in &self.assignment {
            sizes[a] += 1;
        }
        sizes
    }
}

#[inline]
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn kmeanspp_init(vectors: &ProjectedVectors, k: usize, rng: &mut SmallRng) -> Vec<f64> {
    let dim = vectors.dim();
    let n = vectors.rows();
    let mut centroids = Vec::with_capacity(k * dim);
    let first = rng.gen_range(0..n);
    centroids.extend_from_slice(vectors.row(first));
    let mut d2: Vec<f64> = (0..n).map(|i| dist2(vectors.row(i), vectors.row(first))).collect();
    for _ in 1..k {
        let total: f64 = d2.iter().sum();
        let next = if total <= f64::EPSILON {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        let start = centroids.len();
        centroids.extend_from_slice(vectors.row(next));
        let new_c = &centroids[start..start + dim].to_vec();
        for (i, d) in d2.iter_mut().enumerate() {
            let nd = dist2(vectors.row(i), new_c);
            if nd < *d {
                *d = nd;
            }
        }
    }
    centroids
}

/// Runs Lloyd's algorithm once from a k-means++ seeding.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the number of vectors.
pub fn kmeans(vectors: &ProjectedVectors, k: usize, max_iters: usize, seed: u64) -> Clustering {
    assert!(k >= 1 && k <= vectors.rows(), "k must be in 1..=n");
    let dim = vectors.dim();
    let n = vectors.rows();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut centroids = kmeanspp_init(vectors, k, &mut rng);
    let mut assignment = vec![0usize; n];

    for _ in 0..max_iters {
        // Assign.
        let mut changed = false;
        for (i, slot) in assignment.iter_mut().enumerate() {
            let v = vectors.row(i);
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let d = dist2(v, &centroids[c * dim..(c + 1) * dim]);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if *slot != best {
                *slot = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![0.0f64; k * dim];
        let mut counts = vec![0usize; k];
        for (i, &c) in assignment.iter().enumerate() {
            counts[c] += 1;
            for (s, x) in sums[c * dim..(c + 1) * dim].iter_mut().zip(vectors.row(i)) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at the farthest point.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = dist2(
                            vectors.row(a),
                            &centroids[assignment[a] * dim..(assignment[a] + 1) * dim],
                        );
                        let db = dist2(
                            vectors.row(b),
                            &centroids[assignment[b] * dim..(assignment[b] + 1) * dim],
                        );
                        da.total_cmp(&db)
                    })
                    .expect("n >= 1 when a cluster is non-empty");
                centroids[c * dim..(c + 1) * dim].copy_from_slice(vectors.row(far));
                changed = true;
            } else {
                for (dst, s) in
                    centroids[c * dim..(c + 1) * dim].iter_mut().zip(&sums[c * dim..(c + 1) * dim])
                {
                    *dst = s / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let sse = (0..n)
        .map(|i| dist2(vectors.row(i), &centroids[assignment[i] * dim..(assignment[i] + 1) * dim]))
        .sum();
    Clustering { assignment, centroids, dim, k, sse }
}

/// Runs `restarts` independent k-means attempts and keeps the lowest-SSE one.
pub fn kmeans_best_of(
    vectors: &ProjectedVectors,
    k: usize,
    max_iters: usize,
    restarts: usize,
    seed: u64,
) -> Clustering {
    (0..restarts.max(1))
        .map(|r| kmeans(vectors, k, max_iters, seed.wrapping_add(r as u64 * 0x9e37)))
        .min_by(|a, b| a.sse.total_cmp(&b.sse))
        .expect("at least one restart")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::project;
    use rv_isa::bbv::{BbvProfile, Interval};

    fn two_phase_profile() -> BbvProfile {
        // 10 intervals dominated by block 0, then 10 dominated by block 1.
        let mut intervals = Vec::new();
        for i in 0..20 {
            let block = if i < 10 { 0 } else { 1 };
            intervals.push(Interval { weights: vec![(block, 95), (2, 5)], len: 100 });
        }
        BbvProfile { intervals, dim: 3, interval_size: 100, total_insts: 2000 }
    }

    #[test]
    fn separates_two_obvious_phases() {
        let p = two_phase_profile();
        let v = project(&p, 8, 1);
        let c = kmeans_best_of(&v, 2, 100, 5, 1);
        // All of phase 1 in one cluster, all of phase 2 in the other.
        let first = c.assignment[0];
        assert!(c.assignment[..10].iter().all(|&a| a == first));
        assert!(c.assignment[10..].iter().all(|&a| a != first));
        assert!(c.sse < 1e-9, "perfect phases should cluster exactly: sse={}", c.sse);
    }

    #[test]
    fn k_equals_one_gives_mean() {
        let p = two_phase_profile();
        let v = project(&p, 4, 2);
        let c = kmeans(&v, 1, 50, 3);
        assert!(c.assignment.iter().all(|&a| a == 0));
        // centroid is the mean of all rows
        for d in 0..4 {
            let mean: f64 = (0..v.rows()).map(|i| v.row(i)[d]).sum::<f64>() / v.rows() as f64;
            assert!((c.centroid(0)[d] - mean).abs() < 1e-9);
        }
    }

    #[test]
    fn sse_never_increases_with_k() {
        let p = two_phase_profile();
        let v = project(&p, 8, 3);
        let mut prev = f64::INFINITY;
        for k in 1..=4 {
            let c = kmeans_best_of(&v, k, 100, 8, 4);
            assert!(c.sse <= prev + 1e-9, "sse increased at k={k}");
            prev = c.sse;
        }
    }

    #[test]
    fn cluster_sizes_sum_to_n() {
        let p = two_phase_profile();
        let v = project(&p, 8, 5);
        let c = kmeans_best_of(&v, 3, 100, 3, 6);
        assert_eq!(c.sizes().iter().sum::<usize>(), 20);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = two_phase_profile();
        let v = project(&p, 8, 9);
        let a = kmeans(&v, 2, 100, 42);
        let b = kmeans(&v, 2, 100, 42);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.sse, b.sse);
    }
}
