//! Bayesian Information Criterion scoring of clusterings.
//!
//! SimPoint picks the number of clusters `k` by scoring each candidate
//! clustering with the BIC of a spherical-Gaussian mixture (the X-means
//! formulation of Pelleg & Moore) and choosing the smallest `k` whose score
//! reaches a set fraction of the best score observed.

use crate::kmeans::Clustering;

/// BIC score of a clustering (higher is better).
///
/// Uses the spherical-Gaussian likelihood with a shared variance estimated
/// from the clustering's SSE, penalized by `p/2 · ln(n)` free parameters
/// where `p = k·(d+1)`.
pub fn bic(clustering: &Clustering, n: usize) -> f64 {
    let k = clustering.k as f64;
    let d = clustering.dim as f64;
    let n_f = n as f64;
    let sizes = clustering.sizes();

    // Variance of the spherical model; clamp for degenerate (perfect) fits.
    let denom = (n_f - k).max(1.0);
    let sigma2 = (clustering.sse / (denom * d)).max(1e-12);

    let mut ll = 0.0;
    for &rj in &sizes {
        if rj == 0 {
            continue;
        }
        let rj_f = rj as f64;
        ll += rj_f * rj_f.ln()
            - rj_f * n_f.ln()
            - rj_f * d / 2.0 * (2.0 * std::f64::consts::PI * sigma2).ln()
            - (rj_f - 1.0) * d / 2.0;
    }
    let params = k * (d + 1.0);
    ll - params / 2.0 * n_f.ln()
}

/// Picks the smallest `k` whose normalized BIC reaches `threshold` of the
/// best score (SimPoint 3.0's `-bicThreshold`, default 0.9).
///
/// `scores` must be ordered by ascending `k`, with `scores[i]` belonging to
/// `ks[i]`.
///
/// # Panics
///
/// Panics if `scores` is empty or lengths differ.
pub fn choose_k(ks: &[usize], scores: &[f64], threshold: f64) -> usize {
    assert!(!scores.is_empty() && ks.len() == scores.len());
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = scores.iter().cloned().fold(f64::INFINITY, f64::min);
    let range = (max - min).max(1e-12);
    for (&k, &s) in ks.iter().zip(scores) {
        if (s - min) / range >= threshold {
            return k;
        }
    }
    *ks.last().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::kmeans_best_of;
    use crate::projection::project;
    use rv_isa::bbv::{BbvProfile, Interval};

    fn phased_profile(phases: usize, per_phase: usize) -> BbvProfile {
        let mut intervals = Vec::new();
        for p in 0..phases {
            for _ in 0..per_phase {
                intervals.push(Interval { weights: vec![(p, 90), (phases, 10)], len: 100 });
            }
        }
        let total = (phases * per_phase * 100) as u64;
        BbvProfile { intervals, dim: phases + 1, interval_size: 100, total_insts: total }
    }

    #[test]
    fn bic_prefers_true_phase_count() {
        let profile = phased_profile(3, 8);
        let v = project(&profile, 8, 11);
        let ks: Vec<usize> = (1..=6).collect();
        let scores: Vec<f64> =
            ks.iter().map(|&k| bic(&kmeans_best_of(&v, k, 100, 8, 13), v.rows())).collect();
        let chosen = choose_k(&ks, &scores, 0.9);
        assert_eq!(chosen, 3, "scores: {scores:?}");
    }

    #[test]
    fn choose_k_threshold_monotonicity() {
        let ks = [1, 2, 3, 4];
        let scores = [0.0, 50.0, 100.0, 99.0];
        assert_eq!(choose_k(&ks, &scores, 1.0), 3);
        assert_eq!(choose_k(&ks, &scores, 0.9), 3);
        assert_eq!(choose_k(&ks, &scores, 0.5), 2);
        assert_eq!(choose_k(&ks, &scores, 0.0), 1);
    }

    #[test]
    fn bic_finite_for_perfect_clustering() {
        let profile = phased_profile(2, 5);
        let v = project(&profile, 4, 17);
        let c = kmeans_best_of(&v, 2, 100, 5, 19);
        let score = bic(&c, v.rows());
        assert!(score.is_finite());
    }
}
