//! # simpoint — program-phase analysis (SimPoint 3.0)
//!
//! A from-scratch implementation of the SimPoint methodology (Hamerly,
//! Perelman, Lau & Calder, *SimPoint 3.0*, JILP 2005) used by the paper to
//! cut RTL-simulation time by 45×:
//!
//! 1. Each fixed-size interval of dynamic execution is summarized by a
//!    basic-block vector (collected by [`rv_isa::bbv`]).
//! 2. Vectors are normalized and randomly projected down to a small
//!    dimension ([`projection`]).
//! 3. k-means (with k-means++ seeding) clusters the projected vectors for a
//!    range of `k`; the Bayesian Information Criterion picks the best `k`
//!    ([`kmeans`], [`bic`]).
//! 4. The interval closest to each centroid becomes a *simulation point*,
//!    weighted by its cluster's share of execution; the highest-weight
//!    points are kept until a target coverage is reached ([`select`]).
//!
//! ```
//! use rv_isa::bbv::{BbvCollector, BbvProfile};
//! use simpoint::{analyze, SimPointConfig};
//! # use rv_isa::asm::Assembler; use rv_isa::cpu::Cpu; use rv_isa::reg::Reg::*;
//! # let mut a = Assembler::new();
//! # a.li(T0, 2000); a.label("l"); a.addi(A0, A0, 1); a.addi(T0, T0, -1);
//! # a.bnez(T0, "l"); a.exit();
//! # let p = a.assemble().unwrap();
//! # let mut cpu = Cpu::new(&p);
//! let mut collector = BbvCollector::new(200);
//! cpu.run_with(u64::MAX, |r| collector.observe(r)).unwrap();
//! let profile: BbvProfile = collector.finish();
//! let analysis = analyze(&profile, &SimPointConfig::default());
//! assert!(analysis.selected_coverage() >= 0.9);
//! ```

#![warn(missing_docs)]
pub mod bic;
pub mod kmeans;
pub mod projection;
pub mod select;

pub use select::{analyze, SimPoint, SimPointAnalysis, SimPointConfig};
