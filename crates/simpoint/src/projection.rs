//! Normalization and random projection of basic-block vectors.
//!
//! SimPoint first normalizes each interval's BBV to unit L1 mass (so that
//! intervals of unequal length compare by *shape*), then projects the
//! high-dimensional sparse vectors down to a small dense dimension with a
//! random matrix. Random projection approximately preserves pairwise
//! distances (Johnson–Lindenstrauss), which is all k-means needs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rv_isa::bbv::BbvProfile;

/// Dense row-major matrix of projected interval vectors.
#[derive(Clone, Debug)]
pub struct ProjectedVectors {
    data: Vec<f64>,
    dim: usize,
    rows: usize,
}

impl ProjectedVectors {
    /// Number of interval vectors.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Projected dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `i`-th projected vector.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterates over all rows.
    pub fn iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.dim)
    }
}

/// Projects a BBV profile to `dim` dense dimensions using a random ±U(0,1)
/// matrix generated from `seed`.
///
/// The projection matrix is generated lazily per basic block (keyed by block
/// id), so memory is `O(observed_blocks × dim)` and results are independent
/// of block discovery order.
///
/// # Panics
///
/// Panics if `dim` is zero or the profile has no intervals.
pub fn project(profile: &BbvProfile, dim: usize, seed: u64) -> ProjectedVectors {
    assert!(dim > 0, "projection dimension must be positive");
    assert!(!profile.intervals.is_empty(), "profile has no intervals");

    // One deterministic row of the projection matrix per basic block.
    let block_row = |block: usize| -> Vec<f64> {
        let mut rng =
            SmallRng::seed_from_u64(seed ^ (block as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect()
    };
    let mut rows_cache: Vec<Option<Vec<f64>>> = vec![None; profile.dim.max(1)];

    let mut data = Vec::with_capacity(profile.intervals.len() * dim);
    for interval in &profile.intervals {
        let norm: f64 = interval.len.max(1) as f64;
        let mut out = vec![0.0; dim];
        for &(block, weight) in &interval.weights {
            let row = rows_cache
                .get_mut(block)
                .expect("block id within profile dimension")
                .get_or_insert_with(|| block_row(block));
            let w = weight as f64 / norm;
            for (o, r) in out.iter_mut().zip(row.iter()) {
                *o += w * r;
            }
        }
        data.extend_from_slice(&out);
    }
    ProjectedVectors { data, dim, rows: profile.intervals.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_isa::bbv::Interval;

    fn profile(intervals: Vec<Interval>, dim: usize) -> BbvProfile {
        let total = intervals.iter().map(|i| i.len).sum();
        BbvProfile { intervals, dim, interval_size: 100, total_insts: total }
    }

    #[test]
    fn identical_intervals_project_identically() {
        let iv = Interval { weights: vec![(0, 60), (3, 40)], len: 100 };
        let p = profile(vec![iv.clone(), iv], 5);
        let v = project(&p, 8, 42);
        assert_eq!(v.row(0), v.row(1));
    }

    #[test]
    fn scaled_intervals_project_identically() {
        // Same *shape*, double the length: normalization must equate them.
        let a = Interval { weights: vec![(0, 60), (3, 40)], len: 100 };
        let b = Interval { weights: vec![(0, 120), (3, 80)], len: 200 };
        let p = profile(vec![a, b], 5);
        let v = project(&p, 8, 42);
        for (x, y) in v.row(0).iter().zip(v.row(1)) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn different_intervals_project_differently() {
        let a = Interval { weights: vec![(0, 100)], len: 100 };
        let b = Interval { weights: vec![(1, 100)], len: 100 };
        let p = profile(vec![a, b], 2);
        let v = project(&p, 8, 42);
        assert_ne!(v.row(0), v.row(1));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Interval { weights: vec![(0, 30), (1, 70)], len: 100 };
        let p = profile(vec![a], 2);
        let v1 = project(&p, 4, 7);
        let v2 = project(&p, 4, 7);
        let v3 = project(&p, 4, 8);
        assert_eq!(v1.row(0), v2.row(0));
        assert_ne!(v1.row(0), v3.row(0));
    }
}
