//! Property-based tests of the SimPoint pipeline on synthetic profiles.

use proptest::prelude::*;
use rv_isa::bbv::{BbvProfile, Interval};
use simpoint::{analyze, SimPointConfig};

/// Builds a synthetic profile of `phases` phases with the given interval
/// counts, each dominated by its own basic block plus shared noise.
fn synthetic(phase_sizes: &[usize], noise: u64) -> BbvProfile {
    let phases = phase_sizes.len();
    let mut intervals = Vec::new();
    for (p, &count) in phase_sizes.iter().enumerate() {
        for i in 0..count {
            let mut weights = vec![(p, 90 - noise), (phases, 10)];
            if noise > 0 {
                // Mild per-interval noise on a phase-specific secondary
                // block: bounded by `noise` so it cannot split phases.
                weights.push((phases + 1 + p, noise * (1 + i as u64 % 3)));
            }
            weights.sort_by_key(|&(b, _)| b);
            let len = weights.iter().map(|&(_, w)| w).sum();
            intervals.push(Interval { weights, len });
        }
    }
    let total = intervals.iter().map(|iv| iv.len).sum();
    BbvProfile { intervals, dim: 2 * phases + 1, interval_size: 100, total_insts: total }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Core invariants hold for any phase structure: weights are a convex
    /// combination, coverage meets the target, representatives are valid
    /// interval indices, and k never exceeds its bound.
    #[test]
    fn analysis_invariants(
        sizes in proptest::collection::vec(2usize..12, 1..5),
        noise in 0u64..5,
        seed in any::<u64>(),
    ) {
        let profile = synthetic(&sizes, noise);
        let cfg = SimPointConfig { seed, ..SimPointConfig::default() };
        let a = analyze(&profile, &cfg);
        prop_assert!(a.k >= 1 && a.k <= cfg.max_k.min(profile.intervals.len()));
        let wsum: f64 = a.selected.iter().map(|p| p.weight).sum();
        prop_assert!((wsum - 1.0).abs() < 1e-9);
        prop_assert!(a.selected_coverage() >= cfg.coverage - 1e-9);
        for p in &a.points {
            prop_assert!(p.interval < profile.intervals.len());
            prop_assert!(p.weight > 0.0 && p.weight <= 1.0 + 1e-12);
        }
        // Representatives must be distinct intervals.
        let mut ivs: Vec<usize> = a.points.iter().map(|p| p.interval).collect();
        ivs.sort_unstable();
        ivs.dedup();
        prop_assert_eq!(ivs.len(), a.points.len());
    }

    /// With clean phases (no noise), every representative interval must
    /// come from the phase its cluster dominates, and phase weights match
    /// the phase-size distribution.
    #[test]
    fn clean_phases_are_recovered(
        sizes in proptest::collection::vec(3usize..10, 2..4),
        seed in any::<u64>(),
    ) {
        let profile = synthetic(&sizes, 0);
        let cfg = SimPointConfig { seed, ..SimPointConfig::default() };
        let a = analyze(&profile, &cfg);
        // Each point's weight should match some phase's share within noise
        // introduced by cluster merging (allow 1.5x tolerance factor).
        let total: usize = sizes.iter().sum();
        for p in &a.points {
            // locate this representative's phase
            let mut acc = 0usize;
            let mut phase_share = 0.0;
            for &s in &sizes {
                if p.interval < acc + s {
                    phase_share = s as f64 / total as f64;
                    break;
                }
                acc += s;
            }
            prop_assert!(
                p.weight >= 0.5 * phase_share,
                "weight {} vs phase share {}",
                p.weight,
                phase_share
            );
        }
    }

    /// The analysis is deterministic for a fixed seed.
    #[test]
    fn deterministic_for_seed(sizes in proptest::collection::vec(2usize..8, 1..4)) {
        let profile = synthetic(&sizes, 2);
        let cfg = SimPointConfig::default();
        let a = analyze(&profile, &cfg);
        let b = analyze(&profile, &cfg);
        prop_assert_eq!(a.k, b.k);
        prop_assert_eq!(
            a.points.iter().map(|p| p.interval).collect::<Vec<_>>(),
            b.points.iter().map(|p| p.interval).collect::<Vec<_>>()
        );
    }
}
