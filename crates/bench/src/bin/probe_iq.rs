//! Debug probe: integer issue-queue activity for Dijkstra vs Sha (Mega).
use boom_uarch::{BoomConfig, Core};
use rv_workloads::{by_name, Scale};

fn main() {
    for name in ["dijkstra", "sha", "stringsearch", "tarfind", "matmult"] {
        let w = by_name(name, Scale::Full).unwrap();
        let mut core = Core::new(BoomConfig::mega(), &w.program);
        core.run(300_000);
        let s = core.stats();
        let iq = &s.int_iq;
        let c = s.cycles as f64;
        println!(
            "{:13} IPC {:.2} | occ/cyc {:5.1} writes/cyc {:.2} collapse/cyc {:5.2} issued/cyc {:.2} wakeupCAM/cyc {:5.1} | mshr_occ/cyc {:.2} dmiss% {:.1}",
            name,
            s.ipc(),
            iq.occupancy_sum as f64 / c,
            iq.writes as f64 / c,
            iq.collapse_writes as f64 / c,
            iq.issued as f64 / c,
            iq.wakeup_cam_matches as f64 / c,
            s.dcache.mshr_occupancy_sum as f64 / c,
            100.0 * s.dcache.miss_rate(),
        );
    }
}
