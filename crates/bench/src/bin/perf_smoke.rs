//! CI perf-smoke gate: compares a freshly generated `BENCH_throughput.json`
//! against the committed copy and fails when any detailed-core row regresses
//! by more than the threshold (default 30%).
//!
//! The threshold is deliberately loose: shared CI runners are noisy, and the
//! point of this gate is to catch the order-of-magnitude mistakes (an
//! accidental debug build, a hot-loop allocation creeping back in), not to
//! police single-digit drift. Functional/profiling MIPS are informational
//! only — the detailed core is the target the hot-loop work optimizes, so
//! `detailed_kcycles_per_sec` is the only guarded metric.
//!
//! The JSON is read with a purpose-built extractor rather than a JSON crate:
//! the workspace vendors no serializer (see Cargo.toml), and the bench file
//! format is a flat, known shape that a scanner handles in ~60 lines.
//!
//! Usage: `perf_smoke <committed.json> <fresh.json> [--threshold <pct>]`

use std::process::ExitCode;

/// One guarded measurement: a (config, workload) cell's detailed throughput.
#[derive(Debug, Clone, PartialEq)]
struct PerfRow {
    config: String,
    workload: String,
    kcycles_per_sec: f64,
}

/// Returns the text of the `[...]` array following `"key"`, brackets
/// excluded, or `None` when the key is absent.
fn find_array<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let open = rest.find('[')?;
    let body = &rest[open + 1..];
    let mut depth = 1usize;
    for (i, c) in body.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&body[..i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Splits an array body into its top-level `{...}` objects.
fn objects(array_body: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in array_body.char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    start = i + 1;
                }
                depth += 1;
            }
            '}' => {
                depth -= 1;
                if depth == 0 {
                    out.push(&array_body[start..i]);
                }
            }
            _ => {}
        }
    }
    out
}

/// Extracts the string value of `"key": "value"` within an object body.
fn str_field(obj: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let start = obj.find(&needle)? + needle.len();
    let rest = obj[start..].trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Extracts the numeric value of `"key": 123.4` within an object body.
fn num_field(obj: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let start = obj.find(&needle)? + needle.len();
    let rest = obj[start..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pulls every guarded row out of a `BENCH_throughput.json` body.
///
/// Prefers the per-config `detailed` array; files from before that array
/// existed fall back to the MediumBOOM `rows` table, with the config name
/// taken from the top-level `detailed_config` field.
fn extract_rows(json: &str) -> Vec<PerfRow> {
    if let Some(body) = find_array(json, "detailed") {
        return objects(body)
            .iter()
            .filter_map(|o| {
                Some(PerfRow {
                    config: str_field(o, "config")?,
                    workload: str_field(o, "workload")?,
                    kcycles_per_sec: num_field(o, "detailed_kcycles_per_sec")?,
                })
            })
            .collect();
    }
    let config = str_field(json, "detailed_config").unwrap_or_else(|| "MediumBOOM".to_string());
    find_array(json, "rows")
        .map(|body| {
            objects(body)
                .iter()
                .filter_map(|o| {
                    Some(PerfRow {
                        config: config.clone(),
                        workload: str_field(o, "workload")?,
                        kcycles_per_sec: num_field(o, "detailed_kcycles_per_sec")?,
                    })
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Pulls the batched-lane rows (multi-config batches with idle skipping)
/// out of a `BENCH_throughput.json` body. Empty for files from before the
/// `batched` array existed, which `regressions` then skips cell-by-cell.
///
/// Configs are prefixed `batched:` so a batched MediumBOOM cell can never
/// pair with the solo MediumBOOM cell of the same workload — the two
/// measure different things (a lane sharing the host with two siblings vs
/// the whole machine).
fn extract_batched(json: &str) -> Vec<PerfRow> {
    find_array(json, "batched")
        .map(|body| {
            objects(body)
                .iter()
                .filter_map(|o| {
                    Some(PerfRow {
                        config: format!("batched:{}", str_field(o, "config")?),
                        workload: str_field(o, "workload")?,
                        kcycles_per_sec: num_field(o, "detailed_kcycles_per_sec")?,
                    })
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Pulls the adaptive-sweep study rows out of a `BENCH_throughput.json`
/// body, with the deterministic cycle-reduction factor standing in for
/// the guarded rate: like a throughput, a *drop* means the successive
/// halving got more expensive (schedule or elimination-rule erosion), so
/// the same lower-is-worse threshold machinery applies. Empty for files
/// from before the `sweep` array existed.
///
/// Configs are prefixed `sweep:` so a study row can never pair with a
/// detailed or batched cell.
fn extract_sweep(json: &str) -> Vec<PerfRow> {
    find_array(json, "sweep")
        .map(|body| {
            objects(body)
                .iter()
                .filter_map(|o| {
                    Some(PerfRow {
                        config: format!("sweep:{}", str_field(o, "grid")?),
                        workload: str_field(o, "workloads")?,
                        kcycles_per_sec: num_field(o, "reduction_factor")?,
                    })
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Pulls the campaign-service study rows out of a `BENCH_throughput.json`
/// body, with the solo-vs-served wall-clock speedup as the guarded rate:
/// it collapses toward 1.0 if requests stop sharing the warm store, and
/// the same lower-is-worse threshold machinery applies. Empty for files
/// from before the `serve` array existed.
///
/// Configs are prefixed `serve:` so a study row can never pair with a
/// detailed, batched, or sweep cell.
fn extract_serve(json: &str) -> Vec<PerfRow> {
    find_array(json, "serve")
        .map(|body| {
            objects(body)
                .iter()
                .filter_map(|o| {
                    Some(PerfRow {
                        config: format!("serve:{}", str_field(o, "study")?),
                        workload: format!("{} requests", num_field(o, "requests")? as u64),
                        kcycles_per_sec: num_field(o, "serve_speedup")?,
                    })
                })
                .collect()
        })
        .unwrap_or_default()
}

/// The top-level arrays the gate understands. Anything else in the file
/// is probably a new study whose extractor was forgotten — surfaced as a
/// warning so it cannot be silently ignored.
const KNOWN_ARRAYS: [&str; 5] = ["rows", "detailed", "batched", "sweep", "serve"];

/// Names every top-level `"key": [...]` array in the JSON object.
fn top_level_arrays(json: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut cur = String::new();
    let mut key = String::new();
    let mut after_colon = false;
    for c in json.chars() {
        if in_str {
            if c == '"' {
                in_str = false;
            } else {
                cur.push(c);
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                cur.clear();
                continue;
            }
            ':' if depth == 1 => {
                key = cur.clone();
                after_colon = true;
                continue;
            }
            '[' => {
                if depth == 1 && after_colon {
                    out.push(key.clone());
                }
                depth += 1;
            }
            '{' => depth += 1,
            ']' | '}' => depth -= 1,
            c if c.is_whitespace() => continue,
            _ => {}
        }
        after_colon = false;
    }
    out
}

/// Warns about top-level arrays the gate has no extractor for.
fn warn_unknown_arrays(what: &str, json: &str) {
    for key in top_level_arrays(json) {
        if !KNOWN_ARRAYS.contains(&key.as_str()) {
            eprintln!(
                "perf_smoke: WARNING {what} has a top-level array \"{key}\" this gate does \
                 not understand — its rows are NOT guarded (add an extractor?)"
            );
        }
    }
}

/// Compares fresh rows against the committed baseline; returns the list of
/// human-readable failures. Cells present on only one side are skipped (the
/// bench matrix may grow or shrink across commits without breaking CI).
fn regressions(committed: &[PerfRow], fresh: &[PerfRow], threshold_pct: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for base in committed {
        let Some(new) =
            fresh.iter().find(|r| r.config == base.config && r.workload == base.workload)
        else {
            continue;
        };
        let floor = base.kcycles_per_sec * (1.0 - threshold_pct / 100.0);
        if new.kcycles_per_sec < floor {
            failures.push(format!(
                "{}/{}: {:.1} kcyc/s vs committed {:.1} (floor {:.1}, -{:.1}%)",
                base.config,
                base.workload,
                new.kcycles_per_sec,
                base.kcycles_per_sec,
                floor,
                (1.0 - new.kcycles_per_sec / base.kcycles_per_sec) * 100.0
            ));
        }
    }
    failures
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let mut threshold = 30.0;
    let mut paths = Vec::new();
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        if a == "--threshold" {
            threshold =
                it.next().and_then(|s| s.parse().ok()).expect("--threshold takes a percentage");
        } else {
            paths.push(a.clone());
        }
    }
    let [committed_path, fresh_path] = paths.as_slice() else {
        eprintln!("usage: perf_smoke <committed.json> <fresh.json> [--threshold <pct>]");
        return ExitCode::from(2);
    };

    let read = |p: &str| std::fs::read_to_string(p).unwrap_or_else(|e| panic!("read {p}: {e}"));
    let committed_json = read(committed_path);
    let fresh_json = read(fresh_path);
    let mut committed = extract_rows(&committed_json);
    let mut fresh = extract_rows(&fresh_json);
    committed.extend(extract_batched(&committed_json));
    fresh.extend(extract_batched(&fresh_json));
    committed.extend(extract_sweep(&committed_json));
    fresh.extend(extract_sweep(&fresh_json));
    committed.extend(extract_serve(&committed_json));
    fresh.extend(extract_serve(&fresh_json));
    warn_unknown_arrays("committed file", &committed_json);
    warn_unknown_arrays("fresh file", &fresh_json);
    if committed.is_empty() || fresh.is_empty() {
        eprintln!(
            "perf_smoke: no comparable rows (committed: {}, fresh: {})",
            committed.len(),
            fresh.len()
        );
        return ExitCode::from(2);
    }

    let failures = regressions(&committed, &fresh, threshold);
    println!(
        "perf_smoke: {} committed row(s), {} fresh row(s), threshold {threshold}%",
        committed.len(),
        fresh.len()
    );
    if failures.is_empty() {
        println!("perf_smoke: OK — no detailed-throughput regression beyond {threshold}%");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("perf_smoke: REGRESSION {f}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CURRENT: &str = r#"{
      "scale": "small",
      "detailed_config": "MediumBOOM",
      "rows": [
        {"workload": "Bitcount", "functional_mips": 237.4, "detailed_kcycles_per_sec": 5849.8, "detailed_kinsts_per_sec": 8976.5}
      ],
      "detailed": [
        {"config": "MediumBOOM", "workload": "Bitcount", "detailed_kcycles_per_sec": 5736.8, "detailed_kinsts_per_sec": 8803.0},
        {"config": "LargeBOOM", "workload": "Qsort", "detailed_kcycles_per_sec": 3570.3, "detailed_kinsts_per_sec": 3822.3}
      ],
      "batched": [
        {"config": "MediumBOOM", "workload": "Bitcount", "detailed_kcycles_per_sec": 1912.3},
        {"config": "Aggregate", "workload": "Bitcount", "detailed_kcycles_per_sec": 4890.1, "batch_speedup": 1.02}
      ],
      "sweep": [
        {"grid": "ref64", "workloads": "Sha+Qsort", "configs": 64, "exhaustive_kcycles": 1591.4, "adaptive_kcycles": 274.6, "reduction_factor": 5.79, "frontier_identical": true}
      ],
      "serve": [
        {"study": "overlapping_campaigns", "requests": 3, "jobs": 1, "solo_secs": 4.10, "serve_secs": 2.30, "serve_speedup": 1.78}
      ]
    }"#;

    const LEGACY: &str = r#"{
      "scale": "small",
      "detailed_config": "MediumBOOM",
      "rows": [
        {"workload": "Bitcount", "functional_mips": 241.5, "detailed_kcycles_per_sec": 3718.7, "detailed_kinsts_per_sec": 5628.1},
        {"workload": "Dijkstra", "functional_mips": 224.7, "detailed_kcycles_per_sec": 1794.4, "detailed_kinsts_per_sec": 2981.4}
      ]
    }"#;

    #[test]
    fn parses_detailed_array() {
        let rows = extract_rows(CURRENT);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].config, "MediumBOOM");
        assert_eq!(rows[0].workload, "Bitcount");
        assert!((rows[0].kcycles_per_sec - 5736.8).abs() < 1e-9);
        assert_eq!(rows[1].config, "LargeBOOM");
        assert_eq!(rows[1].workload, "Qsort");
    }

    #[test]
    fn falls_back_to_rows_for_legacy_files() {
        let rows = extract_rows(LEGACY);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.config == "MediumBOOM"));
        assert!((rows[1].kcycles_per_sec - 1794.4).abs() < 1e-9);
    }

    #[test]
    fn threshold_splits_pass_from_fail() {
        let base = vec![PerfRow {
            config: "MediumBOOM".into(),
            workload: "Bitcount".into(),
            kcycles_per_sec: 1000.0,
        }];
        let ok = vec![PerfRow { kcycles_per_sec: 701.0, ..base[0].clone() }];
        let bad = vec![PerfRow { kcycles_per_sec: 699.0, ..base[0].clone() }];
        assert!(regressions(&base, &ok, 30.0).is_empty());
        assert_eq!(regressions(&base, &bad, 30.0).len(), 1);
    }

    #[test]
    fn unmatched_cells_are_skipped() {
        let base = vec![PerfRow {
            config: "MegaBOOM".into(),
            workload: "Sha".into(),
            kcycles_per_sec: 1000.0,
        }];
        let fresh = vec![PerfRow {
            config: "MediumBOOM".into(),
            workload: "Sha".into(),
            kcycles_per_sec: 1.0,
        }];
        assert!(regressions(&base, &fresh, 30.0).is_empty());
    }

    #[test]
    fn batched_rows_are_extracted_with_prefixed_configs() {
        let rows = extract_batched(CURRENT);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].config, "batched:MediumBOOM");
        assert_eq!(rows[0].workload, "Bitcount");
        assert!((rows[0].kcycles_per_sec - 1912.3).abs() < 1e-9);
        assert_eq!(rows[1].config, "batched:Aggregate");
        // The prefix keeps batched cells from pairing with solo cells of
        // the same config — the solo extractor must not see them at all.
        let solo = extract_rows(CURRENT);
        assert!(solo.iter().all(|r| !r.config.starts_with("batched:")));
        assert_eq!(solo.len(), 2);
    }

    #[test]
    fn files_without_batched_array_yield_no_batched_rows() {
        assert!(extract_batched(LEGACY).is_empty());
        // And a batched regression is still caught when both sides have it.
        let base = vec![PerfRow {
            config: "batched:Aggregate".into(),
            workload: "Bitcount".into(),
            kcycles_per_sec: 4890.1,
        }];
        let bad = vec![PerfRow { kcycles_per_sec: 3000.0, ..base[0].clone() }];
        assert_eq!(regressions(&base, &bad, 30.0).len(), 1);
    }

    #[test]
    fn sweep_rows_guard_the_reduction_factor() {
        let rows = extract_sweep(CURRENT);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].config, "sweep:ref64");
        assert_eq!(rows[0].workload, "Sha+Qsort");
        assert!((rows[0].kcycles_per_sec - 5.79).abs() < 1e-9);
        // The prefix keeps the study row from pairing with detailed or
        // batched cells, and legacy files simply contribute nothing.
        assert!(extract_rows(CURRENT).iter().all(|r| !r.config.starts_with("sweep:")));
        assert!(extract_sweep(LEGACY).is_empty());
        // A reduction-factor erosion beyond the threshold fails the gate.
        let bad = vec![PerfRow { kcycles_per_sec: 3.9, ..rows[0].clone() }];
        assert_eq!(regressions(&rows, &bad, 30.0).len(), 1);
        let ok = vec![PerfRow { kcycles_per_sec: 4.3, ..rows[0].clone() }];
        assert!(regressions(&rows, &ok, 30.0).is_empty());
    }

    #[test]
    fn serve_rows_guard_the_speedup() {
        let rows = extract_serve(CURRENT);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].config, "serve:overlapping_campaigns");
        assert_eq!(rows[0].workload, "3 requests");
        assert!((rows[0].kcycles_per_sec - 1.78).abs() < 1e-9);
        // The prefix keeps the study row from pairing with any other
        // cell, and legacy files simply contribute nothing.
        assert!(extract_rows(CURRENT).iter().all(|r| !r.config.starts_with("serve:")));
        assert!(extract_serve(LEGACY).is_empty());
        // A warm-server speedup collapse beyond the threshold fails.
        let bad = vec![PerfRow { kcycles_per_sec: 1.1, ..rows[0].clone() }];
        assert_eq!(regressions(&rows, &bad, 30.0).len(), 1);
        let ok = vec![PerfRow { kcycles_per_sec: 1.3, ..rows[0].clone() }];
        assert!(regressions(&rows, &ok, 30.0).is_empty());
    }

    #[test]
    fn top_level_arrays_are_named_and_unknowns_detectable() {
        let keys = top_level_arrays(CURRENT);
        assert_eq!(keys, ["rows", "detailed", "batched", "sweep", "serve"]);
        assert!(keys.iter().all(|k| KNOWN_ARRAYS.contains(&k.as_str())));
        // Nested arrays are not top-level; unknown top-level ones are.
        let json = r#"{"mystery": [ {"x": [1, 2]} ], "rows": []}"#;
        assert_eq!(top_level_arrays(json), ["mystery", "rows"]);
        assert!(top_level_arrays(json).iter().any(|k| !KNOWN_ARRAYS.contains(&k.as_str())));
        // A top-level scalar or string is not an array.
        assert_eq!(top_level_arrays(r#"{"scale": "small", "n": 3}"#), Vec::<String>::new());
    }

    #[test]
    fn number_parsing_stops_at_delimiters() {
        assert_eq!(num_field(r#""x": 12.5, "y": 3"#, "x"), Some(12.5));
        assert_eq!(num_field(r#""y": -3}"#, "y"), Some(-3.0));
        assert_eq!(num_field(r#""z": "not a number""#, "z"), None);
    }
}
