//! Calibration fitter: regenerates the `rtl-power` calibration table.
//!
//! Runs the SimPoint flow for all workloads on the three configurations,
//! averages each component's modelled (leakage, dynamic) power with the
//! current calibration divided out, then least-squares fits the two scale
//! factors per component against the paper's published per-component
//! means. Prints a table to paste into `crates/power/src/calib.rs` and
//! the resulting fit quality.
//!
//! Usage: `cargo run --release -p boomflow-bench --bin calibrate [small|full]`

use boomflow_bench::{paper_mean_mw, run_all, WORKLOAD_NAMES};
use rtl_power::calib::calibration;
use rtl_power::Component;
use rv_workloads::Scale;

/// Components whose dynamic scale is pinned rather than fitted, so the
/// calibrated model keeps the workload sensitivity the paper describes
/// (IRF power tracks IPC; FP RF spikes on FP code; BP varies per
/// workload) instead of collapsing everything into leakage.
fn pinned_dynamic(c: Component) -> Option<f64> {
    match c {
        Component::IntRegFile => Some(2.0),
        Component::FpRegFile => Some(4.0),
        Component::BranchPredictor => Some(26.0),
        _ => None,
    }
}

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("full") => Scale::Full,
        _ => Scale::Small,
    };
    eprintln!("running flow at {scale:?} scale for calibration...");
    let all = run_all(scale);
    assert_eq!(all.len(), 3);
    for (_, results) in &all {
        assert_eq!(results.len(), WORKLOAD_NAMES.len());
    }

    println!("// Fitted by `cargo run --release -p boomflow-bench --bin calibrate`");
    println!("// against the paper's per-component means (see boomflow-bench).");
    let mut max_err = 0.0f64;
    let mut report = String::new();
    for c in Component::ALL {
        if matches!(c, Component::L2Cache | Component::DramInterface) {
            // Uncore components have no paper reference figure (the
            // paper's tile stops at the L1s) and the calibration flow
            // runs the flat-memory configurations anyway; they ship
            // uncalibrated.
            println!("        Component::{c:?} => (1.0, 1.0),");
            continue;
        }
        let k = calibration(c);
        // Per-config means of the uncalibrated model.
        let mut l = [0.0f64; 3];
        let mut d = [0.0f64; 3];
        for (i, (_, results)) in all.iter().enumerate() {
            for r in results {
                let pb = r.power.component(c);
                l[i] += pb.leakage_mw / k.leakage;
                d[i] += (pb.internal_mw + pb.switching_mw) / k.dynamic;
            }
            l[i] /= results.len() as f64;
            d[i] /= results.len() as f64;
        }
        let t = paper_mean_mw(c);

        // 2-variable non-negative least squares.
        let (sll, sld, sdd, slt, sdt) = (0..3).fold((0.0, 0.0, 0.0, 0.0, 0.0), |acc, i| {
            (
                acc.0 + l[i] * l[i],
                acc.1 + l[i] * d[i],
                acc.2 + d[i] * d[i],
                acc.3 + l[i] * t[i],
                acc.4 + d[i] * t[i],
            )
        });
        let det = sll * sdd - sld * sld;
        let (mut a, mut b) = if let Some(pin) = pinned_dynamic(c) {
            // Fit leakage only, against the residual after the pinned
            // dynamic contribution.
            let srt: f64 = (0..3).map(|i| l[i] * (t[i] - pin * d[i])).sum();
            (if sll > 0.0 { (srt / sll).max(0.0) } else { 0.0 }, pin)
        } else if det.abs() > 1e-12 {
            ((slt * sdd - sdt * sld) / det, (sdt * sll - slt * sld) / det)
        } else {
            (0.0, 0.0)
        };
        if a < 0.0 {
            a = 0.0;
            b = if sdd > 0.0 { sdt / sdd } else { 0.0 };
        }
        if b < 0.0 {
            b = 0.0;
            a = if sll > 0.0 { slt / sll } else { 0.0 };
        }

        let variant = format!("{c:?}").split(&['(', ' '][..]).next().unwrap().to_string();
        println!("        Component::{variant} => ({a:.4}, {b:.4}),");

        for i in 0..3 {
            let model = a * l[i] + b * d[i];
            let err = (model - t[i]) / t[i];
            max_err = max_err.max(err.abs());
            report.push_str(&format!(
                "// {:<16} cfg{} model {:6.2} target {:6.2} err {:+5.1}%  (L={:.3} D={:.3})\n",
                c.name(),
                i,
                model,
                t[i],
                100.0 * err,
                l[i],
                d[i]
            ));
        }
    }
    println!();
    print!("{report}");
    println!("// worst-case component error: {:.1}%", 100.0 * max_err);
}
