//! Quick probe: Medium-config IPC for the critical fig10 orderings.
use boom_uarch::{BoomConfig, Core};
use rv_workloads::{by_name, Scale};
fn main() {
    for name in ["matmult", "tarfind", "qsort", "basicmath", "sha"] {
        let w = by_name(name, Scale::Full).unwrap();
        let mut core = Core::new(BoomConfig::medium(), &w.program);
        core.run(400_000);
        println!("{:12} Medium IPC {:.2}", name, core.stats().ipc());
    }
}
