//! Shared harness for the evaluation benches: runs the SimPoint flow for
//! all eleven workloads on the three BOOM configurations (in parallel)
//! and carries the paper's published reference numbers for comparison.
//!
//! Every bench shares one [`ArtifactStore`] per sweep, so the
//! configuration-independent stages (profiling, clustering, checkpoint
//! capture) run once per workload no matter how many configurations or
//! parameter values the sweep visits.

use boom_uarch::BoomConfig;
use boomflow::{run_simpoint_flow_with_store, ArtifactStore, FlowConfig, WorkloadResult};
use rtl_power::Component;
use rv_workloads::{all, Scale, Workload};
use std::thread;

/// Runs the flow for every workload under one configuration, one thread
/// per workload, sharing `store`'s memoized profiling / clustering /
/// checkpoint artifacts with every other configuration run against it.
///
/// # Panics
///
/// Panics if any workload fails its flow (a correctness bug).
pub fn run_config(
    cfg: &BoomConfig,
    workloads: &[Workload],
    flow: &FlowConfig,
    store: &ArtifactStore,
) -> Vec<WorkloadResult> {
    thread::scope(|s| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|w| {
                let cfg = cfg.clone();
                let flow = flow.clone();
                s.spawn(move || {
                    run_simpoint_flow_with_store(&cfg, w, &flow, store)
                        .unwrap_or_else(|e| panic!("{} on {}: {e}", w.name, cfg.name))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
}

/// Runs the flow for all eleven workloads on all three configurations,
/// profiling / clustering / checkpointing each workload exactly once.
pub fn run_all(scale: Scale) -> Vec<(BoomConfig, Vec<WorkloadResult>)> {
    let workloads = all(scale);
    let flow = FlowConfig::default();
    let store = ArtifactStore::new();
    BoomConfig::all_three()
        .into_iter()
        .map(|cfg| {
            let results = run_config(&cfg, &workloads, &flow, &store);
            (cfg, results)
        })
        .collect()
}

/// The scale every figure-regenerating bench uses.
pub const BENCH_SCALE: Scale = Scale::Full;

/// Workload names in the paper's presentation order.
pub const WORKLOAD_NAMES: [&str; 11] = [
    "Basicmath",
    "Stringsearch",
    "FFT",
    "iFFT",
    "Bitcount",
    "Qsort",
    "Dijkstra",
    "Patricia",
    "Matmult",
    "Sha",
    "Tarfind",
];

/// Per-component mean power the paper reports (mW at 500 MHz, ASAP7),
/// for MediumBOOM / LargeBOOM / MegaBOOM — the calibration anchors and
/// the EXPERIMENTS.md comparison baseline. `RestOfTile` is derived from
/// the tile totals implied by Fig. 9's coverage fractions.
pub fn paper_mean_mw(c: Component) -> [f64; 3] {
    match c {
        Component::IntRegFile => [0.27, 0.72, 4.83],
        Component::FpRegFile => [0.05, 0.08, 1.18],
        Component::IntRename => [0.95, 1.57, 2.50],
        Component::FpRename => [0.60, 1.29, 2.16],
        Component::IntIssue => [0.83, 2.08, 4.40],
        Component::MemIssue => [0.26, 0.62, 1.30],
        Component::FpIssue => [0.17, 0.39, 0.74],
        Component::Rob => [0.61, 1.08, 1.57],
        Component::BranchPredictor => [3.34, 7.00, 7.60],
        Component::FetchBuffer => [0.22, 0.31, 0.36],
        Component::Lsu => [0.84, 1.30, 2.20],
        Component::DCache => [1.13, 2.24, 4.34],
        Component::ICache => [0.36, 1.06, 1.06],
        Component::RestOfTile => [3.57, 4.62, 6.06],
        // The paper's tile stops at the L1s; the uncore components that
        // appear under the hierarchy memory backend have no reference
        // figure to calibrate or compare against.
        Component::L2Cache | Component::DramInterface => [0.0, 0.0, 0.0],
    }
}

/// Tile totals implied by the paper (BP share of 25.3 % / 28.8 % / 18.8 %).
pub const PAPER_TILE_MW: [f64; 3] = [13.20, 24.31, 40.43];

/// Fig. 9: fraction of tile power covered by the 13 analyzed components.
pub const PAPER_ANALYZED_FRACTION: [f64; 3] = [0.73, 0.81, 0.85];

/// Prints a bench banner so `cargo bench` output is navigable.
pub fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_sums_are_consistent() {
        // The 13 analyzed components must sum to fraction x tile.
        for (i, tile) in PAPER_TILE_MW.iter().enumerate() {
            let sum: f64 = Component::ANALYZED.iter().map(|c| paper_mean_mw(*c)[i]).sum();
            let frac = sum / tile;
            assert!(
                (frac - PAPER_ANALYZED_FRACTION[i]).abs() < 0.03,
                "config {i}: analyzed fraction {frac:.3}"
            );
        }
    }
}
