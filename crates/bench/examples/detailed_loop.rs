//! Profiling driver: runs the detailed core on one workload in a tight
//! loop for a fixed wall-clock budget. Exists so `gprofng collect` /
//! `perf record` have a pure detailed-simulation target without the
//! functional and profiling stages the throughput bench interleaves.
//!
//! Usage: `cargo run --release --example detailed_loop [workload] [config] [seconds]`

use boom_uarch::{BoomConfig, Core};
use rv_workloads::{by_name, Scale};
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workload = args.get(1).map_or("bitcount", |s| s.as_str());
    let config = args.get(2).map_or("medium", |s| s.as_str());
    let secs: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(5);

    let w = by_name(workload, Scale::Small).expect("known workload");
    let cfg = match config {
        "medium" => BoomConfig::medium(),
        "large" => BoomConfig::large(),
        "mega" => BoomConfig::mega(),
        other => panic!("unknown config {other}"),
    };

    let budget = Duration::from_secs(secs);
    let t0 = Instant::now();
    let (mut cycles, mut insts, mut reps) = (0u64, 0u64, 0u64);
    while t0.elapsed() < budget {
        let mut core = Core::new(cfg.clone(), &w.program);
        let r = core.run(u64::MAX);
        assert!(r.exited, "detailed run must exit");
        cycles += r.cycles;
        insts += r.retired;
        reps += 1;
    }
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "{} on {}: {} reps, {:.0} kcyc/s, {:.0} kinst/s",
        w.name,
        config,
        reps,
        cycles as f64 / secs / 1e3,
        insts as f64 / secs / 1e3
    );
}
