//! Methodology ablation: SimPoint interval size.
//!
//! The paper highlights its 1:300 interval:program ratio (vs 1:20000 in
//! SPEC2006 studies): larger relative intervals need fewer points for the
//! same coverage but simulate more instructions each. This bench sweeps
//! the interval size for one workload and reports points, coverage,
//! detailed-instruction budget, and IPC error.

use boom_uarch::BoomConfig;
use boomflow::report::render_table;
use boomflow::{run_simpoint_flow_with_store, ArtifactStore, FlowConfig};
use boomflow_bench::{banner, BENCH_SCALE};
use rv_workloads::by_name;

fn main() {
    banner("Ablation: SimPoint interval size (Table II ratio discussion)");
    let cfg = BoomConfig::medium();
    let base = by_name("bitcount", BENCH_SCALE).unwrap();
    // Interval size is part of every artifact key, so the sweep's flow
    // runs never share front-half work — but the full-run baseline is
    // simulated once and reused by every row.
    let store = ArtifactStore::new();
    let full = store.full_run(&cfg, &base).unwrap().ipc;
    let header: Vec<String> =
        ["Interval", "ratio", "#SP", "Coverage", "Detailed insts", "Reduction", "IPC err"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let mut rows = Vec::new();
    for interval in [10_000u64, 25_000, 50_000, 100_000, 200_000] {
        let mut w = base.clone();
        w.interval_size = interval;
        let r =
            run_simpoint_flow_with_store(&cfg, &w, &FlowConfig::default(), &store).expect("flow");
        let detailed: u64 = r.points.len() as u64 * interval;
        rows.push(vec![
            format!("{}k", interval / 1000),
            format!("1:{}", r.total_insts / interval),
            r.points.len().to_string(),
            format!("{:.0}%", 100.0 * r.coverage),
            detailed.to_string(),
            format!("{:.0}x", r.speedup),
            format!("{:+.1}%", 100.0 * (r.ipc - full) / full),
        ]);
    }
    print!("{}", render_table(&header, &rows));
    println!();
    println!("Small intervals find fine-grained phases (more points, better accuracy");
    println!("per simulated instruction); large intervals approach full simulation.");
}
