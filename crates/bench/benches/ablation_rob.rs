//! Key Takeaway #6 ablation: ROB sizing.
//!
//! The paper proposes adaptive ROB sizing "based on workload
//! characteristics": workloads with long dependence chains benefit from a
//! larger window while others pay power for nothing. This bench sweeps
//! the ROB size on LargeBOOM for a window-hungry workload (Matmult: the window
//! feeds memory-level parallelism) and a window-insensitive one (Sha:
//! high ILP, front-end-bound).

use boom_uarch::BoomConfig;
use boomflow::report::render_table;
use boomflow::{run_simpoint_flow_with_store, ArtifactStore, FlowConfig};
use boomflow_bench::{banner, BENCH_SCALE};
use rtl_power::Component;
use rv_workloads::by_name;

fn main() {
    banner("Ablation: ROB sizing (Key Takeaway #6)");
    let flow = FlowConfig::default();
    // The ROB size only affects detailed simulation, so the whole sweep
    // shares one profile/analysis/checkpoint set per workload.
    let store = ArtifactStore::new();
    let header: Vec<String> =
        ["ROB entries", "Matmult IPC", "Matmult ROB mW", "Sha IPC", "Sha ROB mW"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let matmult = by_name("matmult", BENCH_SCALE).unwrap();
    let sha = by_name("sha", BENCH_SCALE).unwrap();
    let mut rows = Vec::new();
    for rob in [32usize, 64, 96, 128, 192] {
        let mut cfg = BoomConfig::large();
        cfg.rob_entries = rob;
        let t = run_simpoint_flow_with_store(&cfg, &matmult, &flow, &store).expect("matmult flow");
        let s = run_simpoint_flow_with_store(&cfg, &sha, &flow, &store).expect("sha flow");
        rows.push(vec![
            rob.to_string(),
            format!("{:.2}", t.ipc),
            format!("{:.2}", t.power.component(Component::Rob).total_mw()),
            format!("{:.2}", s.ipc),
            format!("{:.2}", s.power.component(Component::Rob).total_mw()),
        ]);
    }
    print!("{}", render_table(&header, &rows));
    println!();
    println!("ROB power grows with size regardless of benefit; IPC saturates at a");
    println!("workload-dependent window — the motivation for adaptive sizing.");
}
