//! Key Takeaway #5 ablation: collapsing vs non-collapsing issue queues.
//!
//! The paper notes that BOOM's collapsing queues "enhance queue
//! utilization but sacrifice energy efficiency due to frequent register
//! writes per cycle" and proposes analyzing the trade-off across
//! implementations. This bench runs both flavours on all configurations:
//! the non-collapsing queue eliminates the shift writes but pays for an
//! age-ordered select network.

use boom_uarch::{BoomConfig, IssueQueueKind};
use boomflow::report::render_table;
use boomflow::{ArtifactStore, FlowConfig};
use boomflow_bench::{banner, run_config, BENCH_SCALE};
use rtl_power::Component;
use rv_workloads::all;

fn main() {
    banner("Ablation: collapsing vs non-collapsing issue queues (Key Takeaway #5)");
    let workloads = all(BENCH_SCALE);
    let flow = FlowConfig::default();
    // The front half of the flow is configuration-independent, so one
    // store lets all six variants share each workload's artifacts.
    let store = ArtifactStore::new();
    let header: Vec<String> = [
        "Configuration",
        "collapse IQ mW",
        "non-coll IQ mW",
        "delta",
        "collapse IPC",
        "non-coll IPC",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for base in BoomConfig::all_three() {
        let coll = run_config(&base, &workloads, &flow, &store);
        let nc = run_config(
            &base.clone().with_issue_queue(IssueQueueKind::NonCollapsing),
            &workloads,
            &flow,
            &store,
        );
        let n = workloads.len() as f64;
        let iq_power = |rs: &[boomflow::WorkloadResult]| -> f64 {
            rs.iter()
                .map(|r| {
                    r.power.component(Component::IntIssue).total_mw()
                        + r.power.component(Component::MemIssue).total_mw()
                        + r.power.component(Component::FpIssue).total_mw()
                })
                .sum::<f64>()
                / n
        };
        let ipc = |rs: &[boomflow::WorkloadResult]| rs.iter().map(|r| r.ipc).sum::<f64>() / n;
        let (pc, pn) = (iq_power(&coll), iq_power(&nc));
        rows.push(vec![
            base.name.clone(),
            format!("{pc:.2}"),
            format!("{pn:.2}"),
            format!("{:+.0}%", 100.0 * (pn - pc) / pc),
            format!("{:.2}", ipc(&coll)),
            format!("{:.2}", ipc(&nc)),
        ]);
    }
    print!("{}", render_table(&header, &rows));
    println!();
    println!("With identical timing behaviour (age-ordered select in both), the");
    println!("difference is purely energetic: shift writes vs the age-matrix select.");
}
