//! SimPoint speedup (paper SS IV-A): the paper reports a 45x reduction in
//! detailed-simulation time (slightly over 2 days instead of 3+ months).
//!
//! For each workload we compare (a) full detailed simulation against
//! (b) the SimPoint flow (profiling + warm-up + measured intervals),
//! reporting the simulated-instruction reduction, the wall-clock
//! speedup of the detailed-simulation phase, and the IPC error.

use boom_uarch::BoomConfig;
use boomflow::report::render_table;
use boomflow::{run_simpoint_flow_with_store, ArtifactStore, FlowConfig};
use boomflow_bench::{banner, BENCH_SCALE};
use rv_workloads::all;
use std::time::Instant;

fn main() {
    banner("SimPoint speedup & accuracy vs full detailed simulation (MediumBOOM)");
    let cfg = BoomConfig::medium();
    let flow = FlowConfig::default();
    // One store for the whole bench: the full-run baseline is simulated
    // once per (config, workload) and the flow's front half once per
    // workload, however many comparisons later benches add.
    let store = ArtifactStore::new();
    let header: Vec<String> =
        ["Benchmark", "Full IPC", "SimPoint IPC", "IPC err", "Inst reduction", "Wall speedup"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let mut rows = Vec::new();
    let (mut geo_red, mut geo_wall, mut worst_err) = (0.0f64, 0.0f64, 0.0f64);
    let workloads = all(BENCH_SCALE);
    for w in &workloads {
        let t0 = Instant::now();
        let full = store.full_run(&cfg, w).expect("full run");
        let t_full = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let sp = run_simpoint_flow_with_store(&cfg, w, &flow, &store).expect("simpoint flow");
        let t_sp = t1.elapsed().as_secs_f64();

        let err = (sp.ipc - full.ipc).abs() / full.ipc;
        let wall = t_full / t_sp.max(1e-9);
        geo_red += sp.speedup.ln();
        geo_wall += wall.ln();
        worst_err = worst_err.max(err);
        rows.push(vec![
            w.name.to_string(),
            format!("{:.3}", full.ipc),
            format!("{:.3}", sp.ipc),
            format!("{:.1}%", 100.0 * err),
            format!("{:.0}x", sp.speedup),
            format!("{:.1}x", wall),
        ]);
    }
    print!("{}", render_table(&header, &rows));
    println!();
    let n = workloads.len() as f64;
    println!(
        "Geomean detailed-instruction reduction: {:.0}x (paper: 45x overall; our \
         workloads are ~50-100x shorter, and the flow's interval:program ratio is ~1:300 \
         as in the paper, so reductions of the same order are expected)",
        (geo_red / n).exp()
    );
    println!("Geomean wall-clock speedup of the detailed phase: {:.1}x", (geo_wall / n).exp());
    println!(
        "Worst-case SimPoint IPC error: {:.1}% (SimPoint targets ~90% coverage)",
        100.0 * worst_err
    );
}
