//! Simulator throughput: functional-sim MIPS (plain and profiling) and
//! detailed-sim cycles/sec, per workload.
//!
//! Unlike the figure benches, this bench tracks the *simulator's own*
//! speed — the quantity the predecoded-image and flat-memory fast paths
//! optimize. It writes `BENCH_throughput.json` at the workspace root so
//! the perf trajectory is comparable across PRs, and CI uploads the file
//! as an artifact from the perf-smoke job.

use boom_uarch::{BoomConfig, Core};
use boomflow_bench::banner;
use rv_isa::bbv::BbvCollector;
use rv_isa::cpu::Cpu;
use rv_workloads::{by_name, Scale, Workload};
use std::time::{Duration, Instant};

/// Workloads timed by the bench (one integer-heavy, one memory-heavy).
const WORKLOADS: [&str; 2] = ["bitcount", "dijkstra"];

/// Minimum wall-clock per measurement; repetitions accumulate until the
/// budget is met so short workloads still give stable rates.
const MIN_WALL: Duration = Duration::from_millis(300);

/// Accumulates (work units, seconds) over repetitions of `run` until
/// [`MIN_WALL`] is spent, then returns units/second.
fn rate(mut run: impl FnMut() -> u64) -> f64 {
    // One untimed warm-up repetition (page faults, caches).
    run();
    let mut units = 0u64;
    let t0 = Instant::now();
    while t0.elapsed() < MIN_WALL {
        units += run();
    }
    units as f64 / t0.elapsed().as_secs_f64()
}

struct Row {
    workload: &'static str,
    /// Functional simulation, no hooks (the full-run stage).
    functional_mips: f64,
    /// Functional simulation feeding the BBV collector (the profiling
    /// stage).
    profiling_mips: f64,
    /// Detailed (cycle-level) simulation on MediumBOOM.
    detailed_kcps: f64,
    /// Detailed-simulation instruction throughput, for reference.
    detailed_kips: f64,
}

fn measure(w: &Workload) -> Row {
    let functional = rate(|| {
        let mut cpu = Cpu::new(&w.program);
        cpu.run(u64::MAX).expect("functional run");
        cpu.instret()
    });
    let profiling = rate(|| {
        let mut cpu = Cpu::new(&w.program);
        let mut c = BbvCollector::for_program(w.interval_size, &w.program);
        cpu.run_with(u64::MAX, |r| c.observe(r)).expect("profiling run");
        let profile = c.finish();
        profile.total_insts
    });
    let cfg = BoomConfig::medium();
    let cycles = rate(|| {
        let mut core = Core::new(cfg.clone(), &w.program);
        let r = core.run(u64::MAX);
        assert!(r.exited, "detailed run must exit");
        r.cycles
    });
    let detailed_kips = {
        let mut core = Core::new(cfg.clone(), &w.program);
        let t0 = Instant::now();
        let r = core.run(u64::MAX);
        r.retired as f64 / t0.elapsed().as_secs_f64() / 1e3
    };
    Row {
        workload: w.name,
        functional_mips: functional / 1e6,
        profiling_mips: profiling / 1e6,
        detailed_kcps: cycles / 1e3,
        detailed_kips,
    }
}

fn main() {
    banner("Simulator throughput (functional MIPS, profiling MIPS, detailed kcycles/s)");
    let rows: Vec<Row> = WORKLOADS
        .iter()
        .map(|name| measure(&by_name(name, Scale::Small).expect("known workload")))
        .collect();

    println!(
        "{:<14} {:>16} {:>15} {:>17} {:>15}",
        "Workload", "Functional MIPS", "Profiling MIPS", "Detailed kcyc/s", "Detailed kips"
    );
    for r in &rows {
        println!(
            "{:<14} {:>16.1} {:>15.1} {:>17.0} {:>15.0}",
            r.workload, r.functional_mips, r.profiling_mips, r.detailed_kcps, r.detailed_kips
        );
    }

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"workload\": \"{}\", \"functional_mips\": {:.2}, \
                 \"profiling_mips\": {:.2}, \"detailed_kcycles_per_sec\": {:.1}, \
                 \"detailed_kinsts_per_sec\": {:.1}}}",
                r.workload, r.functional_mips, r.profiling_mips, r.detailed_kcps, r.detailed_kips
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"scale\": \"small\",\n  \"detailed_config\": \"MediumBOOM\",\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    std::fs::write(path, &json).expect("write BENCH_throughput.json");
    println!("\nWrote {path}");
}
