//! Simulator throughput: functional-sim MIPS (plain and profiling) and
//! detailed-sim cycles/sec, per workload.
//!
//! Unlike the figure benches, this bench tracks the *simulator's own*
//! speed — the quantity the predecoded-image, flat-memory, and
//! scoreboard-wakeup fast paths optimize. It writes
//! `BENCH_throughput.json` at the workspace root so the perf trajectory
//! is comparable across PRs: the `rows` array keeps the original
//! MediumBOOM schema (CI's perf-smoke regression gate compares those
//! rows against the committed baseline), and the `detailed` array covers
//! the full config × workload matrix the paper's campaign sweeps.

use boom_uarch::{BoomConfig, Core};
use boomflow::{
    default_jobs, realize_campaign, request_events, run_sweep, supervise_matrix_with,
    ArtifactStore, CampaignOptions, CampaignRequest, ClientMsg, FlowConfig, Request, ServeAddr,
    ServeOptions, Server, ServerMsg, SweepOptions, SweepSpec, WorkPool,
};
use boomflow_bench::banner;
use rv_isa::bbv::BbvCollector;
use rv_isa::cpu::Cpu;
use rv_workloads::{by_name, Scale, Workload};
use std::time::{Duration, Instant};

/// Workloads timed by the bench (integer-heavy, sort/pointer-heavy,
/// memory-heavy, and hash-heavy — one per broad behavior class).
const WORKLOADS: [&str; 4] = ["bitcount", "qsort", "dijkstra", "sha"];

/// Detailed-simulation configs, smallest to largest.
const CONFIGS: [&str; 3] = ["MediumBOOM", "LargeBOOM", "MegaBOOM"];

/// Minimum wall-clock per measurement; repetitions accumulate until the
/// budget is met so short workloads still give stable rates.
const MIN_WALL: Duration = Duration::from_millis(300);

fn config_by_name(name: &str) -> BoomConfig {
    match name {
        "MediumBOOM" => BoomConfig::medium(),
        "LargeBOOM" => BoomConfig::large(),
        "MegaBOOM" => BoomConfig::mega(),
        other => panic!("unknown config {other}"),
    }
}

/// Accumulates (work units, seconds) over repetitions of `run` until
/// [`MIN_WALL`] is spent, then returns units/second.
fn rate(mut run: impl FnMut() -> u64) -> f64 {
    // One untimed warm-up repetition (page faults, caches).
    run();
    let mut units = 0u64;
    let t0 = Instant::now();
    while t0.elapsed() < MIN_WALL {
        units += run();
    }
    units as f64 / t0.elapsed().as_secs_f64()
}

struct Row {
    workload: &'static str,
    /// Functional simulation, no hooks (the full-run stage).
    functional_mips: f64,
    /// Functional simulation feeding the BBV collector (the profiling
    /// stage).
    profiling_mips: f64,
    /// Detailed (cycle-level) simulation on MediumBOOM.
    detailed_kcps: f64,
    /// Detailed-simulation instruction throughput, for reference.
    detailed_kips: f64,
}

/// One cell of the detailed config × workload matrix.
struct DetailedRow {
    config: &'static str,
    workload: &'static str,
    detailed_kcps: f64,
    detailed_kips: f64,
}

/// One workload's batched measurement: all three configs simulated as
/// lanes of one batch (shared micro-op table, idle-cycle skipping on,
/// one scoped thread per lane).
struct BatchedRow {
    workload: &'static str,
    /// Each lane's kcycles/s over the whole batched pass's wall-clock.
    per_config_kcps: [f64; 3],
    /// All lanes' cycles (skipped ones included — they are simulated,
    /// just charged analytically) over the batched pass's wall-clock.
    aggregate_kcps: f64,
    /// Batched wall vs the sequential solo skip-off wall for the same
    /// work, derived from the solo rates measured in the same run.
    batch_speedup: f64,
}

/// Times batched simulation of `w` across all three configs.
/// `solo_kcps` are the per-config solo rates from the detailed matrix,
/// used to price the equivalent sequential solo wall for the speedup.
/// The lanes run on `pool` — the persistent-thread setup the flow's
/// batched path uses (submitter helping) — so the measurement prices
/// lane scheduling, not thread spawning.
fn measure_batched(w: &Workload, solo_kcps: &[f64; 3], pool: &WorkPool) -> BatchedRow {
    let cfgs: Vec<BoomConfig> = CONFIGS.iter().map(|c| config_by_name(c)).collect();
    let uops = Core::shared_uop_table(&w.program.decoded_image());
    let run_batch = || -> [u64; 3] {
        let out: [std::sync::OnceLock<u64>; 3] =
            std::array::from_fn(|_| std::sync::OnceLock::new());
        pool.run_scoped_helping((0..cfgs.len()).collect(), |i: usize| {
            let mut core = Core::new_with_uops(cfgs[i].clone(), &w.program, &uops);
            core.set_idle_skip(true);
            let r = core.run(u64::MAX);
            assert!(r.exited, "batched lane must exit");
            let _ = out[i].set(r.cycles);
        });
        std::array::from_fn(|i| *out[i].get().expect("batched lane must complete"))
    };
    run_batch(); // warm-up
    let mut cycles = [0u64; 3];
    let t0 = Instant::now();
    while t0.elapsed() < MIN_WALL {
        let c = run_batch();
        for (acc, got) in cycles.iter_mut().zip(c) {
            *acc += got;
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    let total: u64 = cycles.iter().sum();
    let solo_secs: f64 = cycles.iter().zip(solo_kcps).map(|(&c, &r)| c as f64 / 1e3 / r).sum();
    BatchedRow {
        workload: w.name,
        per_config_kcps: std::array::from_fn(|i| cycles[i] as f64 / secs / 1e3),
        aggregate_kcps: total as f64 / secs / 1e3,
        batch_speedup: solo_secs / secs,
    }
}

/// The adaptive-sweep study: the reference 64-config grid, exhaustive
/// full-budget baseline vs successive halving, on the two most
/// phase-diverse timed workloads.
struct SweepStudyRow {
    grid: &'static str,
    workloads: String,
    configs: usize,
    /// Total detailed-sim cycles of the single-rung exhaustive run.
    exhaustive_kcycles: f64,
    /// Total detailed-sim cycles of the adaptive run (all rungs).
    adaptive_kcycles: f64,
    /// Exhaustive / adaptive — the quantity successive halving buys.
    reduction_factor: f64,
    /// Whether the adaptive Pareto frontier was byte-identical to the
    /// exhaustive one (asserted, so always true in a written file).
    frontier_identical: bool,
}

/// Runs the reference sweep both ways and checks the frontier contract.
/// Detailed-sim cycle counts are deterministic (not wall-clock), so this
/// study is immune to runner noise — the reduction factor only moves if
/// the schedule or the elimination rule changes.
fn measure_sweep() -> SweepStudyRow {
    let grid = "ref64";
    let spec = SweepSpec::preset(grid).expect("known preset");
    let cfgs = spec.generate().expect("reference grid generates");
    let wls: Vec<Workload> =
        ["sha", "qsort"].iter().map(|n| by_name(n, Scale::Test).expect("known workload")).collect();
    let flow = FlowConfig { warmup_insts: 5_000, idle_skip: true, ..FlowConfig::default() };
    let jobs = default_jobs();
    let exhaustive = run_sweep(
        &cfgs,
        &wls,
        &flow,
        &ArtifactStore::new(),
        &SweepOptions { jobs, exhaustive: true, ..SweepOptions::default() },
    )
    .expect("exhaustive sweep");
    let adaptive = run_sweep(
        &cfgs,
        &wls,
        &flow,
        &ArtifactStore::new(),
        &SweepOptions { jobs, ..SweepOptions::default() },
    )
    .expect("adaptive sweep");
    assert!(exhaustive.all_ok() && adaptive.all_ok(), "sweep cells must all succeed");
    let identical = adaptive.render_frontier() == exhaustive.render_frontier();
    assert!(identical, "adaptive frontier must be byte-identical to the exhaustive frontier");
    let exh = exhaustive.stats.detailed_cycles as f64;
    let ada = adaptive.stats.detailed_cycles as f64;
    SweepStudyRow {
        grid,
        workloads: wls.iter().map(|w| w.name).collect::<Vec<_>>().join("+"),
        configs: exhaustive.configs.len(),
        exhaustive_kcycles: exh / 1e3,
        adaptive_kcycles: ada / 1e3,
        reduction_factor: exh / ada,
        frontier_identical: identical,
    }
}

/// The campaign-service study: N overlapping campaign requests through
/// one warm `boomflow serve` process vs the same N campaigns run
/// sequentially as solo processes would run them (fresh store each).
struct ServeStudyRow {
    study: &'static str,
    /// Concurrent client requests submitted.
    requests: usize,
    /// Scheduler-pool width of the server (and jobs of each solo run).
    jobs: usize,
    /// Wall-clock of the N sequential solo campaigns.
    solo_secs: f64,
    /// Wall-clock of the N concurrent requests through one server.
    serve_secs: f64,
    /// solo / serve — what cross-request artifact sharing buys.
    serve_speedup: f64,
}

/// Three pairwise-overlapping campaign requests: every workload appears
/// in exactly two requests, so the server computes each front half and
/// each point once where the solo baseline computes them twice.
fn serve_requests() -> Vec<CampaignRequest> {
    ["bitcount,sha", "sha,qsort", "qsort,bitcount"]
        .into_iter()
        .map(|workloads| CampaignRequest {
            workloads: workloads.to_string(),
            config: "medium".to_string(),
            scale: Scale::Test,
            warmup: 5_000,
            retries: 3,
            batch_lanes: 1,
            idle_skip: false,
        })
        .collect()
}

/// Runs the serve study: solo baseline first (deterministic reference
/// bytes kept), then the served pass, asserting every served report is
/// byte-identical to its solo run before any rate is reported.
fn measure_serve() -> ServeStudyRow {
    let jobs = default_jobs();
    let requests = serve_requests();

    let t0 = Instant::now();
    let solo_reports: Vec<String> = requests
        .iter()
        .map(|req| {
            let (cfgs, ws, flow) = realize_campaign(req).expect("bench request realizes");
            let report = supervise_matrix_with(
                &cfgs,
                &ws,
                &flow,
                &CampaignOptions { jobs, ..CampaignOptions::default() },
            );
            assert!(report.all_ok(), "solo campaign must succeed");
            report.render_deterministic()
        })
        .collect();
    let solo_secs = t0.elapsed().as_secs_f64();

    let state_dir =
        std::env::temp_dir().join(format!("boomflow-bench-serve-{}", std::process::id()));
    let sock = state_dir.join("serve.sock");
    let _ = std::fs::remove_dir_all(&state_dir);
    let opts = ServeOptions {
        jobs,
        max_active: requests.len(),
        cache_dir: None,
        state_dir: state_dir.clone(),
        kill_after_points: None,
    };
    let server = Server::bind(&ServeAddr::Unix(sock), opts).expect("bench server binds");
    let addr = server.addr().clone();
    let server = std::thread::spawn(move || server.run());

    let t0 = Instant::now();
    let served: Vec<ServerMsg> = std::thread::scope(|s| {
        let handles: Vec<_> = requests
            .iter()
            .map(|req| {
                let addr = addr.clone();
                let msg = ClientMsg::Submit(Request::Campaign(req.clone()));
                s.spawn(move || {
                    request_events(&addr, &msg, |_| {})
                        .expect("bench client stream")
                        .expect("bench server must finish the request")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("bench client panicked")).collect()
    });
    let serve_secs = t0.elapsed().as_secs_f64();

    for (done, solo) in served.iter().zip(&solo_reports) {
        let ServerMsg::Done { ok: true, report, .. } = done else {
            panic!("served campaign failed: {done:?}");
        };
        assert_eq!(
            std::str::from_utf8(report).expect("utf8 report"),
            solo,
            "served report must be byte-identical to the solo run"
        );
    }
    let bye = request_events(&addr, &ClientMsg::Shutdown, |_| {}).expect("shutdown stream");
    assert!(matches!(bye, Some(ServerMsg::Bye { .. })), "expected Bye, got {bye:?}");
    server.join().expect("server thread").expect("server run");
    let _ = std::fs::remove_dir_all(&state_dir);

    ServeStudyRow {
        study: "overlapping_campaigns",
        requests: requests.len(),
        jobs,
        solo_secs,
        serve_secs,
        serve_speedup: solo_secs / serve_secs,
    }
}

/// Times detailed simulation of `w` under `cfg`, returning
/// (kcycles/sec, kinsts/sec) from one accumulating measurement so the
/// two rates describe the same repetitions.
fn measure_detailed(cfg: &BoomConfig, w: &Workload) -> (f64, f64) {
    let run = || {
        let mut core = Core::new(cfg.clone(), &w.program);
        let r = core.run(u64::MAX);
        assert!(r.exited, "detailed run must exit");
        (r.cycles, r.retired)
    };
    run(); // warm-up
    let (mut cycles, mut insts) = (0u64, 0u64);
    let t0 = Instant::now();
    while t0.elapsed() < MIN_WALL {
        let (c, i) = run();
        cycles += c;
        insts += i;
    }
    let secs = t0.elapsed().as_secs_f64();
    (cycles as f64 / secs / 1e3, insts as f64 / secs / 1e3)
}

fn measure(w: &Workload) -> Row {
    let functional = rate(|| {
        let mut cpu = Cpu::new(&w.program);
        cpu.run(u64::MAX).expect("functional run");
        cpu.instret()
    });
    let profiling = rate(|| {
        let mut cpu = Cpu::new(&w.program);
        let mut c = BbvCollector::for_program(w.interval_size, &w.program);
        cpu.run_with(u64::MAX, |r| c.observe(r)).expect("profiling run");
        let profile = c.finish();
        profile.total_insts
    });
    let cfg = BoomConfig::medium();
    let (detailed_kcps, detailed_kips) = measure_detailed(&cfg, w);
    Row {
        workload: w.name,
        functional_mips: functional / 1e6,
        profiling_mips: profiling / 1e6,
        detailed_kcps,
        detailed_kips,
    }
}

fn main() {
    banner("Simulator throughput (functional MIPS, profiling MIPS, detailed kcycles/s)");
    let workloads: Vec<Workload> =
        WORKLOADS.iter().map(|name| by_name(name, Scale::Small).expect("known workload")).collect();
    let rows: Vec<Row> = workloads.iter().map(measure).collect();

    println!(
        "{:<14} {:>16} {:>15} {:>17} {:>15}",
        "Workload", "Functional MIPS", "Profiling MIPS", "Detailed kcyc/s", "Detailed kips"
    );
    for r in &rows {
        println!(
            "{:<14} {:>16.1} {:>15.1} {:>17.0} {:>15.0}",
            r.workload, r.functional_mips, r.profiling_mips, r.detailed_kcps, r.detailed_kips
        );
    }

    let mut detailed: Vec<DetailedRow> = Vec::new();
    println!(
        "\n{:<12} {:<14} {:>17} {:>15}",
        "Config", "Workload", "Detailed kcyc/s", "Detailed kips"
    );
    for config in CONFIGS {
        let cfg = config_by_name(config);
        for w in &workloads {
            let (kcps, kips) = measure_detailed(&cfg, w);
            println!("{:<12} {:<14} {:>17.0} {:>15.0}", config, w.name, kcps, kips);
            detailed.push(DetailedRow {
                config,
                workload: w.name,
                detailed_kcps: kcps,
                detailed_kips: kips,
            });
        }
    }

    let lane_pool = WorkPool::new(default_jobs());
    let batched: Vec<BatchedRow> = workloads
        .iter()
        .map(|w| {
            let solo: [f64; 3] = std::array::from_fn(|i| {
                detailed
                    .iter()
                    .find(|d| d.config == CONFIGS[i] && d.workload == w.name)
                    .expect("detailed matrix covers every (config, workload)")
                    .detailed_kcps
            });
            measure_batched(w, &solo, &lane_pool)
        })
        .collect();
    println!(
        "\n{:<14} {:>14} {:>13} {:>12} {:>18} {:>9}",
        "Batched", "Medium kcyc/s", "Large kcyc/s", "Mega kcyc/s", "Aggregate kcyc/s", "Speedup"
    );
    for b in &batched {
        println!(
            "{:<14} {:>14.0} {:>13.0} {:>12.0} {:>18.0} {:>8.2}x",
            b.workload,
            b.per_config_kcps[0],
            b.per_config_kcps[1],
            b.per_config_kcps[2],
            b.aggregate_kcps,
            b.batch_speedup
        );
    }

    let sweep = measure_sweep();
    println!(
        "\n{:<8} {:<12} {:>8} {:>19} {:>17} {:>10} {:>9}",
        "Sweep",
        "Workloads",
        "Configs",
        "Exhaustive kcyc",
        "Adaptive kcyc",
        "Reduction",
        "Frontier"
    );
    println!(
        "{:<8} {:<12} {:>8} {:>19.0} {:>17.0} {:>9.2}x {:>9}",
        sweep.grid,
        sweep.workloads,
        sweep.configs,
        sweep.exhaustive_kcycles,
        sweep.adaptive_kcycles,
        sweep.reduction_factor,
        if sweep.frontier_identical { "identical" } else { "DIFFERS" }
    );

    let serve = measure_serve();
    println!(
        "\n{:<22} {:>9} {:>6} {:>11} {:>12} {:>9}",
        "Serve", "Requests", "Jobs", "Solo s", "Served s", "Speedup"
    );
    println!(
        "{:<22} {:>9} {:>6} {:>11.2} {:>12.2} {:>8.2}x",
        serve.study,
        serve.requests,
        serve.jobs,
        serve.solo_secs,
        serve.serve_secs,
        serve.serve_speedup
    );

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"workload\": \"{}\", \"functional_mips\": {:.2}, \
                 \"profiling_mips\": {:.2}, \"detailed_kcycles_per_sec\": {:.1}, \
                 \"detailed_kinsts_per_sec\": {:.1}}}",
                r.workload, r.functional_mips, r.profiling_mips, r.detailed_kcps, r.detailed_kips
            )
        })
        .collect();
    let json_detailed: Vec<String> = detailed
        .iter()
        .map(|d| {
            format!(
                "    {{\"config\": \"{}\", \"workload\": \"{}\", \
                 \"detailed_kcycles_per_sec\": {:.1}, \"detailed_kinsts_per_sec\": {:.1}}}",
                d.config, d.workload, d.detailed_kcps, d.detailed_kips
            )
        })
        .collect();
    // The `batched` array keeps the `detailed` row shape (config,
    // workload, detailed_kcycles_per_sec) so the perf-smoke gate scans
    // it with the same machinery; an extra pseudo-config "Aggregate" row
    // per workload carries the whole-batch rate and speedup.
    let json_batched: Vec<String> = batched
        .iter()
        .flat_map(|b| {
            CONFIGS
                .iter()
                .enumerate()
                .map(|(i, config)| {
                    format!(
                        "    {{\"config\": \"{}\", \"workload\": \"{}\", \
                         \"detailed_kcycles_per_sec\": {:.1}}}",
                        config, b.workload, b.per_config_kcps[i]
                    )
                })
                .chain(std::iter::once(format!(
                    "    {{\"config\": \"Aggregate\", \"workload\": \"{}\", \
                     \"detailed_kcycles_per_sec\": {:.1}, \"batch_speedup\": {:.2}}}",
                    b.workload, b.aggregate_kcps, b.batch_speedup
                )))
                .collect::<Vec<_>>()
        })
        .collect();
    // The `sweep` array records deterministic cycle totals, not rates:
    // the reduction factor is the guarded metric (perf-smoke fails if a
    // schedule or elimination-rule change erodes it), and
    // `frontier_identical` is asserted above before anything is written.
    let json_sweep = format!(
        "    {{\"grid\": \"{}\", \"workloads\": \"{}\", \"configs\": {}, \
         \"exhaustive_kcycles\": {:.1}, \"adaptive_kcycles\": {:.1}, \
         \"reduction_factor\": {:.2}, \"frontier_identical\": {}}}",
        sweep.grid,
        sweep.workloads,
        sweep.configs,
        sweep.exhaustive_kcycles,
        sweep.adaptive_kcycles,
        sweep.reduction_factor,
        sweep.frontier_identical
    );
    // The `serve` array is wall-clock (like `rows`/`detailed`): the
    // speedup is the guarded metric — it collapses toward 1 if requests
    // stop sharing the warm store. Reports were byte-compared to solo
    // runs before this row exists.
    let json_serve = format!(
        "    {{\"study\": \"{}\", \"requests\": {}, \"jobs\": {}, \"solo_secs\": {:.2}, \
         \"serve_secs\": {:.2}, \"serve_speedup\": {:.2}}}",
        serve.study,
        serve.requests,
        serve.jobs,
        serve.solo_secs,
        serve.serve_secs,
        serve.serve_speedup
    );
    let json = format!(
        "{{\n  \"scale\": \"small\",\n  \"detailed_config\": \"MediumBOOM\",\n  \
         \"rows\": [\n{}\n  ],\n  \"detailed\": [\n{}\n  ],\n  \"batched\": [\n{}\n  ],\n  \
         \"sweep\": [\n{}\n  ],\n  \"serve\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n"),
        json_detailed.join(",\n"),
        json_batched.join(",\n"),
        json_sweep,
        json_serve
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    std::fs::write(path, &json).expect("write BENCH_throughput.json");
    println!("\nWrote {path}");
}
