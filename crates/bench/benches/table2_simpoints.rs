//! Table II: per-benchmark instruction counts, SimPoint interval sizes,
//! and the number of selected SimPoints at >= 90% coverage.
//!
//! Instruction counts are scaled down ~50-100x from the paper (see
//! DESIGN.md); the interval:program ratio (~1:300 in the paper) is
//! preserved, so SimPoint counts are comparable.

use boomflow::flow::profile;
use boomflow::report::render_table;
use boomflow_bench::{banner, BENCH_SCALE};
use rv_workloads::all;
use simpoint::{analyze, SimPointConfig};

/// Paper Table II reference: (interval, #simpoints, instructions).
fn paper_row(name: &str) -> (&'static str, u64, u64) {
    match name {
        "Basicmath" => ("1M", 2, 364_758_047),
        "Stringsearch" => ("1M", 2, 136_360_766),
        "FFT" => ("1M", 1, 266_217_322),
        "iFFT" => ("1M", 1, 266_643_273),
        "Bitcount" => ("1M", 3, 495_204_057),
        "Qsort" => ("1M", 1, 22_868_929),
        "Dijkstra" => ("1M", 1, 227_879_044),
        "Patricia" => ("2M", 2, 154_589_629),
        "Matmult" => ("1M", 1, 516_885_284),
        "Sha" => ("1M", 3, 111_029_722),
        "Tarfind" => ("2M", 1, 1_220_430_895),
        _ => unreachable!(),
    }
}

fn main() {
    banner("Table II: benchmark instructions, interval size & number of SimPoints");
    let header: Vec<String> = [
        "Benchmark",
        "Suite",
        "Interval",
        "#SimPoints",
        "Coverage",
        "Instructions",
        "Paper interval",
        "Paper #SP",
        "Paper insts",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for w in all(BENCH_SCALE) {
        let bbv = profile(&w, u64::MAX).expect("workload profiles cleanly");
        let analysis = analyze(&bbv, &SimPointConfig::default());
        let (p_int, p_sp, p_insts) = paper_row(w.name);
        rows.push(vec![
            w.name.to_string(),
            w.suite.name().to_string(),
            format!("{}k", w.interval_size / 1000),
            analysis.selected.len().to_string(),
            format!("{:.0}%", 100.0 * analysis.selected_coverage()),
            bbv.total_insts.to_string(),
            p_int.to_string(),
            p_sp.to_string(),
            p_insts.to_string(),
        ]);
    }
    print!("{}", render_table(&header, &rows));
}
