//! Key Takeaway #7 ablation: TAGE vs gshare vs bimodal predictor power.
//!
//! The paper observes TAGE consuming ~2.5x the power of the gshare
//! predictor used in the authors' prior study [14], in exchange for
//! better accuracy. This bench swaps the predictor and compares power,
//! misprediction rate, and IPC on all three configurations.

use boom_uarch::{BoomConfig, PredictorKind};
use boomflow::report::render_table;
use boomflow::{ArtifactStore, FlowConfig};
use boomflow_bench::{banner, run_config, BENCH_SCALE};
use rtl_power::Component;
use rv_workloads::all;

fn main() {
    banner("Ablation: TAGE vs gshare vs bimodal (branch-predictor power, accuracy, IPC)");
    let workloads = all(BENCH_SCALE);
    let flow = FlowConfig::default();
    // One store for the whole sweep: all nine (config, predictor)
    // variants share each workload's profile/analysis/checkpoints.
    let store = ArtifactStore::new();
    let header: Vec<String> = [
        "Configuration",
        "TAGE BP mW",
        "gshare BP mW",
        "bimodal BP mW",
        "TAGE/gshare",
        "TAGE mis%",
        "gshare mis%",
        "bimodal mis%",
        "TAGE IPC",
        "gshare IPC",
        "bimodal IPC",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for base in BoomConfig::all_three() {
        let tage = run_config(&base, &workloads, &flow, &store);
        let gsh = run_config(
            &base.clone().with_predictor(PredictorKind::Gshare),
            &workloads,
            &flow,
            &store,
        );
        let bim = run_config(
            &base.clone().with_predictor(PredictorKind::Bimodal),
            &workloads,
            &flow,
            &store,
        );
        let n = workloads.len() as f64;
        let bp = |rs: &[boomflow::WorkloadResult]| -> f64 {
            rs.iter().map(|r| r.power.component(Component::BranchPredictor).total_mw()).sum::<f64>()
                / n
        };
        let mis = |rs: &[boomflow::WorkloadResult]| -> f64 {
            let (m, b) = rs.iter().fold((0u64, 0u64), |acc, r| {
                r.points
                    .iter()
                    .fold(acc, |(m, b), p| (m + p.stats.mispredicts, b + p.stats.branches))
            });
            100.0 * m as f64 / b.max(1) as f64
        };
        let ipc =
            |rs: &[boomflow::WorkloadResult]| -> f64 { rs.iter().map(|r| r.ipc).sum::<f64>() / n };
        let ratio = bp(&tage) / bp(&gsh);
        ratios.push(ratio);
        rows.push(vec![
            base.name.clone(),
            format!("{:.2}", bp(&tage)),
            format!("{:.2}", bp(&gsh)),
            format!("{:.2}", bp(&bim)),
            format!("{ratio:.2}x"),
            format!("{:.1}", mis(&tage)),
            format!("{:.1}", mis(&gsh)),
            format!("{:.1}", mis(&bim)),
            format!("{:.2}", ipc(&tage)),
            format!("{:.2}", ipc(&gsh)),
            format!("{:.2}", ipc(&bim)),
        ]);
    }
    print!("{}", render_table(&header, &rows));
    println!();
    let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("Mean TAGE/gshare power ratio: {mean_ratio:.2}x  (paper: ~2.5x)");
    println!("TAGE buys its power back in accuracy (lower misprediction rate) and IPC.");
}
