//! Fig. 11: performance per watt (IPC/W) for every benchmark and
//! configuration, plus the paper's headline efficiency claims.

use boomflow::report::render_metric;
use boomflow_bench::{banner, run_all, BENCH_SCALE, WORKLOAD_NAMES};

fn main() {
    banner("Fig. 11: performance per watt (IPC/W)");
    let all = run_all(BENCH_SCALE);
    let configs: Vec<(&str, Vec<f64>)> = all
        .iter()
        .map(|(cfg, results)| {
            let vals: Vec<f64> = results.iter().map(|r| r.perf_per_watt()).collect();
            (cfg.name.as_str(), vals)
        })
        .collect();
    print!("{}", render_metric("IPC/W", &WORKLOAD_NAMES, &configs));
    println!();

    // Per-workload winner (paper: MediumBOOM in 8/11; LargeBOOM takes
    // Matmult, Stringsearch, Tarfind).
    let mut medium_wins = 0;
    for name in WORKLOAD_NAMES {
        let per_cfg: Vec<(String, f64)> = all
            .iter()
            .map(|(cfg, results)| {
                let v = results.iter().find(|r| r.name == name).unwrap().perf_per_watt();
                (cfg.name.clone(), v)
            })
            .collect();
        let winner = per_cfg.iter().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap();
        if winner.0 == "MediumBOOM" {
            medium_wins += 1;
        }
        println!("  {name:14} best: {} ({:.1} IPC/W)", winner.0, winner.1);
    }
    println!();
    println!("MediumBOOM wins {medium_wins}/11 workloads (paper: 8/11).");
    let mean_ppw = |i: usize| -> f64 {
        let (_, results) = &all[i];
        results.iter().map(|r| r.perf_per_watt()).sum::<f64>() / results.len() as f64
    };
    println!(
        "Mean efficiency advantage of MediumBOOM over MegaBOOM: {:+.0}%  (paper: +52%)",
        100.0 * (mean_ppw(0) / mean_ppw(2) - 1.0)
    );
}
