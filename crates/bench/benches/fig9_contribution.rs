//! Fig. 9: fraction of total BOOM-tile power covered by the thirteen
//! analyzed components, per configuration (paper: 73% / 81% / 85%).

use boomflow::report::render_table;
use boomflow_bench::{banner, run_all, BENCH_SCALE, PAPER_ANALYZED_FRACTION, PAPER_TILE_MW};

fn main() {
    banner("Fig. 9: analyzed-component contribution to tile power");
    let all = run_all(BENCH_SCALE);
    let header: Vec<String> =
        ["Configuration", "13-component mW", "Tile mW", "Share", "Paper share", "Paper tile mW"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let mut rows = Vec::new();
    for (i, (cfg, results)) in all.iter().enumerate() {
        let n = results.len() as f64;
        let analyzed: f64 = results.iter().map(|r| r.power.analyzed_total_mw()).sum::<f64>() / n;
        let tile: f64 = results.iter().map(|r| r.tile_power_mw()).sum::<f64>() / n;
        rows.push(vec![
            cfg.name.clone(),
            format!("{analyzed:.2}"),
            format!("{tile:.2}"),
            format!("{:.0}%", 100.0 * analyzed / tile),
            format!("{:.0}%", 100.0 * PAPER_ANALYZED_FRACTION[i]),
            format!("{:.1}", PAPER_TILE_MW[i]),
        ]);
    }
    print!("{}", render_table(&header, &rows));
    println!();
    println!("Paper observation: the share grows with core size because the analyzed");
    println!("structures (register files, queues, ROB) scale up while decode/execute");
    println!("logic stays comparatively fixed.");
}
