//! Methodology ablation: SimPoint warm-up length.
//!
//! The paper warms caches and the branch predictor before measuring each
//! SimPoint "to mitigate inaccuracies resulting from the cold cache
//! memories and branch predictor". This bench quantifies that: IPC error
//! vs full simulation as a function of warm-up instructions.

use boom_uarch::BoomConfig;
use boomflow::report::render_table;
use boomflow::{run_simpoint_flow_with_store, ArtifactStore, FlowConfig};
use boomflow_bench::{banner, BENCH_SCALE};
use rv_workloads::by_name;

fn main() {
    banner("Ablation: SimPoint warm-up length (cold-start error)");
    let cfg = BoomConfig::large();
    let names = ["matmult", "dijkstra", "sha", "tarfind"];
    // Warm-up only keys the checkpoint stage, so one store profiles and
    // clusters each workload once across the whole sweep.
    let store = ArtifactStore::new();
    let fulls: Vec<f64> = names
        .iter()
        .map(|n| store.full_run(&cfg, &by_name(n, BENCH_SCALE).unwrap()).unwrap().ipc)
        .collect();

    let mut header = vec!["Warm-up insts".to_string()];
    header.extend(names.iter().map(|n| format!("{n} IPC err")));
    let mut rows = Vec::new();
    for warmup in [0u64, 1_000, 5_000, 20_000, 50_000] {
        let flow = FlowConfig { warmup_insts: warmup, ..FlowConfig::default() };
        let mut row = vec![warmup.to_string()];
        for (name, full) in names.iter().zip(&fulls) {
            let r = run_simpoint_flow_with_store(
                &cfg,
                &by_name(name, BENCH_SCALE).unwrap(),
                &flow,
                &store,
            )
            .expect("flow");
            row.push(format!("{:+.1}%", 100.0 * (r.ipc - full) / full));
        }
        rows.push(row);
    }
    print!("{}", render_table(&header, &rows));
    println!();
    println!("Cold starts bias cache-sensitive workloads pessimistic; a few thousand");
    println!("instructions of warm-up recover most of the accuracy (the paper's choice).");
}
