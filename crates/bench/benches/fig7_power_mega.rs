//! Fig. 7: per-component power of MegaBOOM across all eleven workloads.

use boom_uarch::BoomConfig;
use boomflow::report::render_component_power;
use boomflow::{ArtifactStore, FlowConfig};
use boomflow_bench::{banner, paper_mean_mw, run_config, BENCH_SCALE};
use rtl_power::Component;
use rv_workloads::all;

const CFG_INDEX: usize = 7 - 5;

fn main() {
    banner("Fig. 7: per-component power (mW), MegaBOOM, all workloads");
    let cfg = BoomConfig::mega();
    let results =
        run_config(&cfg, &all(BENCH_SCALE), &FlowConfig::default(), &ArtifactStore::new());
    print!("{}", render_component_power(&results));
    println!();
    println!("Measured vs paper per-component means (MegaBOOM):");
    for c in Component::ANALYZED {
        let mean: f64 = results.iter().map(|r| r.power.component(c).total_mw()).sum::<f64>()
            / results.len() as f64;
        let paper = paper_mean_mw(c)[CFG_INDEX];
        println!(
            "  {:18} measured {:6.2} mW   paper {:6.2} mW   ({:+.0}%)",
            c.name(),
            mean,
            paper,
            100.0 * (mean - paper) / paper
        );
    }
}
