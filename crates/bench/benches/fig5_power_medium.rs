//! Fig. 5: per-component power of MediumBOOM across all eleven workloads.

use boom_uarch::BoomConfig;
use boomflow::report::render_component_power;
use boomflow::{ArtifactStore, FlowConfig};
use boomflow_bench::{banner, paper_mean_mw, run_config, BENCH_SCALE};
use rtl_power::Component;
use rv_workloads::all;

/// MediumBOOM's column in the paper's per-component power table.
const CFG_INDEX: usize = 0;

fn main() {
    banner("Fig. 5: per-component power (mW), MediumBOOM, all workloads");
    let cfg = BoomConfig::medium();
    let results =
        run_config(&cfg, &all(BENCH_SCALE), &FlowConfig::default(), &ArtifactStore::new());
    print!("{}", render_component_power(&results));
    println!();
    println!("Measured vs paper per-component means (MediumBOOM):");
    for c in Component::ANALYZED {
        let mean: f64 = results.iter().map(|r| r.power.component(c).total_mw()).sum::<f64>()
            / results.len() as f64;
        let paper = paper_mean_mw(c)[CFG_INDEX];
        println!(
            "  {:18} measured {:6.2} mW   paper {:6.2} mW   ({:+.0}%)",
            c.name(),
            mean,
            paper,
            100.0 * (mean - paper) / paper
        );
    }
}
