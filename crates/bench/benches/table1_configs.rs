//! Table I: the three BOOM configurations used throughout the study.

use boom_uarch::BoomConfig;
use boomflow::report::render_table;
use boomflow_bench::banner;

fn main() {
    banner("Table I: BOOM configurations (Chipyard Medium/Large/MegaBoomConfig)");
    let cfgs = BoomConfig::all_three();
    let header: Vec<String> = std::iter::once("Parameter".to_string())
        .chain(cfgs.iter().map(|c| c.name.clone()))
        .collect();
    let row = |name: &str, f: &dyn Fn(&BoomConfig) -> String| -> Vec<String> {
        std::iter::once(name.to_string()).chain(cfgs.iter().map(f)).collect()
    };
    let rows = vec![
        row("Fetch width", &|c| c.fetch_width.to_string()),
        row("Decode width", &|c| c.decode_width.to_string()),
        row("ROB entries", &|c| c.rob_entries.to_string()),
        row("Int phys regs", &|c| c.int_phys_regs.to_string()),
        row("FP phys regs", &|c| c.fp_phys_regs.to_string()),
        row("IRF ports (R/W)", &|c| format!("{}/{}", c.irf_read_ports, c.irf_write_ports)),
        row("FP RF ports (R/W)", &|c| format!("{}/{}", c.frf_read_ports, c.frf_write_ports)),
        row("Issue slots (int/mem/fp)", &|c| {
            format!("{}/{}/{}", c.int_issue_slots, c.mem_issue_slots, c.fp_issue_slots)
        }),
        row("Mem exec units", &|c| c.mem_issue_width.to_string()),
        row("LDQ/STQ", &|c| format!("{}/{}", c.ldq_entries, c.stq_entries)),
        row("Fetch buffer", &|c| c.fetch_buffer_entries.to_string()),
        row("Branch snapshots", &|c| c.max_br_count.to_string()),
        row("L1I (KiB/ways)", &|c| {
            format!("{}/{}", c.icache.capacity_bytes() / 1024, c.icache.ways)
        }),
        row("L1D (KiB/ways)", &|c| {
            format!("{}/{}", c.dcache.capacity_bytes() / 1024, c.dcache.ways)
        }),
        row("D-cache MSHRs", &|c| c.dcache.mshrs.to_string()),
        row("Clock (MHz)", &|c| format!("{:.0}", c.clock_hz / 1e6)),
    ];
    print!("{}", render_table(&header, &rows));
}
