//! Fig. 8: per-slot power of MegaBOOM's 40-entry integer issue queue for
//! Dijkstra vs Sha.
//!
//! The paper's canonical occupancy contrast: Dijkstra's dependence-bound
//! code keeps all 40 slots burning power despite its lower IPC, while
//! high-ILP Sha drains the queue so only the low-order slots are active
//! (Key Takeaway #4).

use boom_uarch::BoomConfig;
use boomflow::{run_simpoint_flow_with_store, ArtifactStore, FlowConfig};
use boomflow_bench::{banner, BENCH_SCALE};
use rtl_power::PowerReport;
use rv_workloads::by_name;

fn slot_power(name: &str, store: &ArtifactStore) -> (PowerReport, f64, f64) {
    let w = by_name(name, BENCH_SCALE).expect("workload exists");
    let r = run_simpoint_flow_with_store(&BoomConfig::mega(), &w, &FlowConfig::default(), store)
        .expect("flow succeeds");
    let occ: f64 =
        r.points.iter().map(|p| p.weight * p.stats.int_iq.mean_occupancy(p.stats.cycles)).sum();
    (r.power, r.ipc, occ)
}

fn main() {
    banner("Fig. 8: per-slot integer issue-queue power (mW), MegaBOOM");
    let store = ArtifactStore::new();
    let (dijkstra, d_ipc, d_occ) = slot_power("dijkstra", &store);
    let (sha, s_ipc, s_occ) = slot_power("sha", &store);
    assert_eq!(dijkstra.int_issue_slot_mw.len(), 40, "MegaBOOM has 40 slots");

    println!("slot   Dijkstra      Sha");
    println!("--------------------------");
    for i in 0..40 {
        println!(
            "{:>4}   {:8.4}  {:8.4}",
            i, dijkstra.int_issue_slot_mw[i], sha.int_issue_slot_mw[i]
        );
    }
    let d_total: f64 = dijkstra.int_issue_slot_mw.iter().sum();
    let s_total: f64 = sha.int_issue_slot_mw.iter().sum();
    println!();
    println!("Dijkstra: IPC {d_ipc:.2}, mean IQ occupancy {d_occ:.1} slots, slot-power sum {d_total:.2} mW");
    println!("Sha:      IPC {s_ipc:.2}, mean IQ occupancy {s_occ:.1} slots, slot-power sum {s_total:.2} mW");
    println!();
    println!(
        "Paper claim check: Dijkstra occupies more slots than Sha ({d_occ:.1} vs {s_occ:.1}) \
         and burns more issue power ({d_total:.2} vs {s_total:.2} mW) despite lower IPC \
         ({d_ipc:.2} vs {s_ipc:.2}): {}",
        if d_occ > s_occ && d_total > s_total && d_ipc < s_ipc { "HOLDS" } else { "VIOLATED" }
    );
    // Count "hot" slots (above 20% of the hottest slot) per workload.
    let hot = |slots: &[f64]| {
        let max = slots.iter().cloned().fold(0.0, f64::max);
        slots.iter().filter(|&&s| s > 0.2 * max).count()
    };
    println!(
        "Hot slots (>20% of peak): Dijkstra {} / 40, Sha {} / 40",
        hot(&dijkstra.int_issue_slot_mw),
        hot(&sha.int_issue_slot_mw)
    );
}
