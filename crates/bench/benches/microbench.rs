//! Criterion microbenchmarks of the simulation substrates: functional
//! simulator throughput, cycle-level core throughput, SimPoint
//! clustering, and predictor lookup rates.

use boom_uarch::{BoomConfig, Core};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rv_isa::asm::Assembler;
use rv_isa::bbv::BbvCollector;
use rv_isa::cpu::Cpu;
use rv_isa::reg::Reg::*;
use rv_isa::Program;
use simpoint::{analyze, SimPointConfig};

fn mix_program(iters: i64) -> Program {
    let mut a = Assembler::new();
    a.la(S0, "buf");
    a.li(S1, iters);
    a.label("loop");
    a.ld(T0, S0, 0);
    a.addi(T0, T0, 3);
    a.mul(T1, T0, T0);
    a.xor(T1, T1, S1);
    a.sd(T1, S0, 8);
    a.andi(T2, T1, 7);
    a.beqz(T2, "skip");
    a.addi(A0, A0, 1);
    a.label("skip");
    a.addi(S1, S1, -1);
    a.bnez(S1, "loop");
    a.exit();
    a.data_label("buf");
    a.zeros(64);
    a.assemble().unwrap()
}

fn functional_sim(c: &mut Criterion) {
    let p = mix_program(10_000);
    let mut g = c.benchmark_group("functional_sim");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("mixed_10k_loop", |b| {
        b.iter(|| {
            let mut cpu = Cpu::new(&p);
            cpu.run(u64::MAX).unwrap()
        })
    });
    g.finish();
}

fn detailed_sim(c: &mut Criterion) {
    let p = mix_program(2_000);
    let mut g = c.benchmark_group("detailed_sim");
    g.throughput(Throughput::Elements(20_000));
    for cfg in BoomConfig::all_three() {
        g.bench_function(cfg.name.clone(), |b| {
            b.iter(|| {
                let mut core = Core::new(cfg.clone(), &p);
                core.run(u64::MAX)
            })
        });
    }
    g.finish();
}

fn simpoint_clustering(c: &mut Criterion) {
    let p = mix_program(200_000);
    let mut cpu = Cpu::new(&p);
    let mut collector = BbvCollector::new(1_000);
    cpu.run_with(u64::MAX, |r| collector.observe(r)).unwrap();
    let profile = collector.finish();
    c.bench_function("simpoint_analysis", |b| {
        b.iter(|| analyze(&profile, &SimPointConfig::default()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = functional_sim, detailed_sim, simpoint_clustering
}
criterion_main!(benches);
