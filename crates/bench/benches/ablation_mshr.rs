//! Key Takeaway #8 ablation: memory-level parallelism resources.
//!
//! MegaBOOM's second memory unit and doubled MSHRs buy concurrent cache
//! accesses at a power cost. This bench sweeps D-cache MSHR count (and
//! the second memory unit) on the memory-bound Matmult workload.

use boom_uarch::BoomConfig;
use boomflow::report::render_table;
use boomflow::{run_simpoint_flow_with_store, ArtifactStore, FlowConfig};
use boomflow_bench::{banner, BENCH_SCALE};
use rtl_power::Component;
use rv_workloads::by_name;

fn main() {
    banner("Ablation: MSHRs and memory units (Key Takeaway #8)");
    let flow = FlowConfig::default();
    // MSHR/memory-unit changes only touch detailed simulation; the sweep
    // shares Matmult's front-half artifacts through one store.
    let store = ArtifactStore::new();
    let matmult = by_name("matmult", BENCH_SCALE).unwrap();
    let header: Vec<String> =
        ["Mem units", "MSHRs", "Matmult IPC", "DCache mW", "Tile mW", "IPC/W"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let mut rows = Vec::new();
    for (units, mshrs) in [(1usize, 2usize), (1, 4), (1, 8), (2, 4), (2, 8), (2, 16)] {
        let mut cfg = BoomConfig::mega();
        cfg.mem_issue_width = units;
        cfg.dcache.mshrs = mshrs;
        let r = run_simpoint_flow_with_store(&cfg, &matmult, &flow, &store).expect("flow");
        rows.push(vec![
            units.to_string(),
            mshrs.to_string(),
            format!("{:.2}", r.ipc),
            format!("{:.2}", r.power.component(Component::DCache).total_mw()),
            format!("{:.1}", r.tile_power_mw()),
            format!("{:.1}", r.perf_per_watt()),
        ]);
    }
    print!("{}", render_table(&header, &rows));
    println!();
    println!("More MLP resources raise performance on miss-heavy code but the D-cache");
    println!("pays leakage for ports and MSHRs whether or not the workload uses them.");
}
