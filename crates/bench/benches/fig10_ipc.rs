//! Fig. 10: IPC for every benchmark and all three BOOM configurations.

use boomflow::report::render_metric;
use boomflow_bench::{banner, run_all, BENCH_SCALE, WORKLOAD_NAMES};

fn main() {
    banner("Fig. 10: instructions per cycle (IPC)");
    let all = run_all(BENCH_SCALE);
    let configs: Vec<(&str, Vec<f64>)> = all
        .iter()
        .map(|(cfg, results)| {
            let vals: Vec<f64> = results.iter().map(|r| r.ipc).collect();
            (cfg.name.as_str(), vals)
        })
        .collect();
    print!("{}", render_metric("IPC", &WORKLOAD_NAMES, &configs));
    println!();

    // Headline checks from the paper's text.
    let by_name = |cfg_i: usize, name: &str| -> f64 {
        let (_, results) = &all[cfg_i];
        results.iter().find(|r| r.name == name).map(|r| r.ipc).expect("workload present")
    };
    println!(
        "Sha IPC:     measured {:.2} / {:.2} / {:.2}  (paper: 1.83 / 2.6 / 3.5)",
        by_name(0, "Sha"),
        by_name(1, "Sha"),
        by_name(2, "Sha")
    );
    for (i, name) in ["MediumBOOM", "LargeBOOM", "MegaBOOM"].iter().enumerate() {
        let (_, results) = &all[i];
        let max = results.iter().max_by(|a, b| a.ipc.partial_cmp(&b.ipc).unwrap()).unwrap();
        let min = results.iter().min_by(|a, b| a.ipc.partial_cmp(&b.ipc).unwrap()).unwrap();
        println!("{name}: highest IPC = {} ({:.2}), lowest = {} ({:.2})  (paper: Sha highest, Tarfind lowest)",
            max.name, max.ipc, min.name, min.ipc);
    }
    let mean = |i: usize| -> f64 {
        let (_, results) = &all[i];
        results.iter().map(|r| r.ipc).sum::<f64>() / results.len() as f64
    };
    println!("Mean IPC ratio MegaBOOM/MediumBOOM: {:.2}x  (paper: 1.6x)", mean(2) / mean(0));
}
