//! Property-based tests for the ISA layer: encode/decode round-trips,
//! decoder totality, memory invariants, and checkpoint determinism.

use proptest::prelude::*;
use rv_isa::asm::Assembler;
use rv_isa::checkpoint::Checkpoint;
use rv_isa::cpu::Cpu;
use rv_isa::inst::{
    AluOp, BrCond, CvtInt, FmaOp, FpCmp, FpFmt, FpOp, Inst, LoadKind, MulOp, Rm, StoreKind,
};
use rv_isa::mem::Memory;
use rv_isa::reg::{FReg, Reg};
use rv_isa::{decode, encode};

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u32..32).prop_map(Reg::from_index)
}

fn any_freg() -> impl Strategy<Value = FReg> {
    (0u32..32).prop_map(FReg::from_index)
}

fn imm12() -> impl Strategy<Value = i32> {
    -2048i32..=2047
}

fn any_fmt() -> impl Strategy<Value = FpFmt> {
    prop_oneof![Just(FpFmt::S), Just(FpFmt::D)]
}

/// A strategy over every valid instruction form.
fn any_inst() -> impl Strategy<Value = Inst> {
    let alu_rr = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Addw),
        Just(AluOp::Subw),
        Just(AluOp::Sllw),
        Just(AluOp::Srlw),
        Just(AluOp::Sraw),
    ];
    let mul_op = prop_oneof![
        Just(MulOp::Mul),
        Just(MulOp::Mulh),
        Just(MulOp::Mulhsu),
        Just(MulOp::Mulhu),
        Just(MulOp::Div),
        Just(MulOp::Divu),
        Just(MulOp::Rem),
        Just(MulOp::Remu),
        Just(MulOp::Mulw),
        Just(MulOp::Divw),
        Just(MulOp::Divuw),
        Just(MulOp::Remw),
        Just(MulOp::Remuw),
    ];
    let br = prop_oneof![
        Just(BrCond::Eq),
        Just(BrCond::Ne),
        Just(BrCond::Lt),
        Just(BrCond::Ge),
        Just(BrCond::Ltu),
        Just(BrCond::Geu),
    ];
    let load = prop_oneof![
        Just(LoadKind::B),
        Just(LoadKind::H),
        Just(LoadKind::W),
        Just(LoadKind::D),
        Just(LoadKind::Bu),
        Just(LoadKind::Hu),
        Just(LoadKind::Wu),
    ];
    let store = prop_oneof![
        Just(StoreKind::B),
        Just(StoreKind::H),
        Just(StoreKind::W),
        Just(StoreKind::D),
    ];
    let fp_arith = prop_oneof![
        Just(FpOp::Add),
        Just(FpOp::Sub),
        Just(FpOp::Mul),
        Just(FpOp::Div),
        Just(FpOp::SgnJ),
        Just(FpOp::SgnJn),
        Just(FpOp::SgnJx),
        Just(FpOp::Min),
        Just(FpOp::Max),
    ];
    let fma =
        prop_oneof![Just(FmaOp::Madd), Just(FmaOp::Msub), Just(FmaOp::Nmsub), Just(FmaOp::Nmadd)];
    let cmp = prop_oneof![Just(FpCmp::Le), Just(FpCmp::Lt), Just(FpCmp::Eq)];
    let cvt = prop_oneof![Just(CvtInt::W), Just(CvtInt::Wu), Just(CvtInt::L), Just(CvtInt::Lu)];
    let rm = prop_oneof![Just(Rm::Rne), Just(Rm::Rtz)];

    prop_oneof![
        (any_reg(), (-0x80000i64..0x80000).prop_map(|v| v << 12))
            .prop_map(|(rd, imm)| Inst::Lui { rd, imm }),
        (any_reg(), (-0x80000i64..0x80000).prop_map(|v| v << 12))
            .prop_map(|(rd, imm)| Inst::Auipc { rd, imm }),
        (any_reg(), (-(1i32 << 19)..(1 << 19)).prop_map(|v| v * 2))
            .prop_map(|(rd, offset)| Inst::Jal { rd, offset }),
        (any_reg(), any_reg(), imm12()).prop_map(|(rd, rs1, offset)| Inst::Jalr {
            rd,
            rs1,
            offset
        }),
        (br, any_reg(), any_reg(), (-2048i32..2048).prop_map(|v| v * 2))
            .prop_map(|(cond, rs1, rs2, offset)| Inst::Branch { cond, rs1, rs2, offset }),
        (load, any_reg(), any_reg(), imm12()).prop_map(|(kind, rd, rs1, offset)| Inst::Load {
            kind,
            rd,
            rs1,
            offset
        }),
        (store, any_reg(), any_reg(), imm12()).prop_map(|(kind, rs1, rs2, offset)| Inst::Store {
            kind,
            rs1,
            rs2,
            offset
        }),
        (alu_rr.clone(), any_reg(), any_reg(), any_reg()).prop_map(|(op, rd, rs1, rs2)| Inst::Op {
            op,
            rd,
            rs1,
            rs2
        }),
        (mul_op, any_reg(), any_reg(), any_reg()).prop_map(|(op, rd, rs1, rs2)| Inst::MulDiv {
            op,
            rd,
            rs1,
            rs2
        }),
        // OpImm: non-shift forms with 12-bit immediates
        (any_reg(), any_reg(), imm12()).prop_map(|(rd, rs1, imm)| Inst::OpImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm
        }),
        (any_reg(), any_reg(), imm12()).prop_map(|(rd, rs1, imm)| Inst::OpImm {
            op: AluOp::Xor,
            rd,
            rs1,
            imm
        }),
        // shifts with constrained shamt
        (any_reg(), any_reg(), 0i32..64).prop_map(|(rd, rs1, imm)| Inst::OpImm {
            op: AluOp::Srl,
            rd,
            rs1,
            imm
        }),
        (any_reg(), any_reg(), 0i32..32).prop_map(|(rd, rs1, imm)| Inst::OpImm {
            op: AluOp::Sraw,
            rd,
            rs1,
            imm
        }),
        (any_fmt(), any_freg(), any_reg(), imm12())
            .prop_map(|(fmt, rd, rs1, offset)| Inst::FpLoad { fmt, rd, rs1, offset }),
        (any_fmt(), any_reg(), any_freg(), imm12())
            .prop_map(|(fmt, rs1, rs2, offset)| Inst::FpStore { fmt, rs1, rs2, offset }),
        (fp_arith, any_fmt(), any_freg(), any_freg(), any_freg())
            .prop_map(|(op, fmt, rd, rs1, rs2)| Inst::FpOp { op, fmt, rd, rs1, rs2 }),
        (any_fmt(), any_freg(), any_freg()).prop_map(|(fmt, rd, rs1)| Inst::FpOp {
            op: FpOp::Sqrt,
            fmt,
            rd,
            rs1,
            rs2: rs1
        }),
        (fma, any_fmt(), any_freg(), any_freg(), any_freg(), any_freg())
            .prop_map(|(op, fmt, rd, rs1, rs2, rs3)| Inst::FpFma { op, fmt, rd, rs1, rs2, rs3 }),
        (cmp, any_fmt(), any_reg(), any_freg(), any_freg())
            .prop_map(|(cmp, fmt, rd, rs1, rs2)| Inst::FpCmp { cmp, fmt, rd, rs1, rs2 }),
        (cvt.clone(), any_fmt(), any_reg(), any_freg(), rm)
            .prop_map(|(to, fmt, rd, rs1, rm)| Inst::FpCvtToInt { to, fmt, rd, rs1, rm }),
        (cvt, any_fmt(), any_freg(), any_reg())
            .prop_map(|(from, fmt, rd, rs1)| Inst::FpCvtFromInt { from, fmt, rd, rs1 }),
        (any_fmt(), any_freg(), any_freg()).prop_map(|(to, rd, rs1)| Inst::FpCvtFmt {
            to,
            rd,
            rs1
        }),
        (any_fmt(), any_reg(), any_freg()).prop_map(|(fmt, rd, rs1)| Inst::FpMvToInt {
            fmt,
            rd,
            rs1
        }),
        (any_fmt(), any_freg(), any_reg()).prop_map(|(fmt, rd, rs1)| Inst::FpMvFromInt {
            fmt,
            rd,
            rs1
        }),
        Just(Inst::Fence),
        Just(Inst::Ecall),
        Just(Inst::Ebreak),
    ]
}

proptest! {
    /// decode(encode(i)) == i for every constructible instruction.
    #[test]
    fn encode_decode_round_trip(inst in any_inst()) {
        let word = encode(inst);
        let back = decode(word).expect("canonical encoding must decode");
        prop_assert_eq!(back, inst);
    }

    /// The decoder never panics on arbitrary words, and anything it accepts
    /// re-encodes to a decodable word with identical meaning.
    #[test]
    fn decode_is_total_and_stable(word in any::<u32>()) {
        if let Ok(inst) = decode(word) {
            let re = encode(inst);
            let again = decode(re).expect("re-encoded word must decode");
            prop_assert_eq!(again, inst);
        }
    }

    /// Disassembly is never empty for any decodable word.
    #[test]
    fn disasm_nonempty(inst in any_inst()) {
        prop_assert!(!inst.to_string().is_empty());
    }

    /// Memory reads return exactly what was written, across page boundaries.
    #[test]
    fn memory_read_after_write(
        addr in 0u64..(1 << 40),
        value in any::<u64>(),
        size_sel in 0usize..4,
    ) {
        let size = [1u64, 2, 4, 8][size_sel];
        let mut m = Memory::new();
        m.write(addr, size, value);
        let mask = if size == 8 { u64::MAX } else { (1u64 << (8 * size)) - 1 };
        prop_assert_eq!(m.read(addr, size), value & mask);
    }

    /// Checkpoint + restore mid-run reproduces the exact final state of an
    /// uninterrupted run, for randomized arithmetic programs.
    #[test]
    fn checkpoint_restore_determinism(
        seed in any::<u64>(),
        iters in 10u32..200,
        split in 5u64..100,
    ) {
        let mut a = Assembler::new();
        a.li(Reg::A0, seed as i64);
        a.li(Reg::T0, iters as i64);
        a.label("loop");
        // xorshift-style mixing so state depends on every iteration
        a.slli(Reg::T1, Reg::A0, 13);
        a.xor(Reg::A0, Reg::A0, Reg::T1);
        a.srli(Reg::T1, Reg::A0, 7);
        a.xor(Reg::A0, Reg::A0, Reg::T1);
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, "loop");
        a.exit();
        let p = a.assemble().unwrap();

        let mut straight = Cpu::new(&p);
        straight.run(u64::MAX).unwrap();

        let mut first = Cpu::new(&p);
        let stop = first.run(split).unwrap();
        let mut resumed = if matches!(stop, rv_isa::cpu::StopReason::Exited(_)) {
            // The split fell past program exit; the checkpoint degenerates
            // to the final state.
            first
        } else {
            let ck = Checkpoint::capture(&first);
            let mut resumed = ck.restore();
            resumed.run(u64::MAX).unwrap();
            resumed
        };
        let _ = &mut resumed;

        prop_assert_eq!(straight.xregs(), resumed.xregs());
        prop_assert_eq!(straight.pc(), resumed.pc());
        prop_assert_eq!(straight.instret(), resumed.instret());
    }
}
