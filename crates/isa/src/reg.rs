//! Integer and floating-point architectural register names.

use std::fmt;

/// One of the 32 integer architectural registers (`x0`–`x31`).
///
/// The enum carries the numeric index as its discriminant; ABI aliases are
/// provided as associated constants via the variant names themselves
/// (`Reg::A0` is `x10`, etc.).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Reg {
    Zero = 0,
    Ra = 1,
    Sp = 2,
    Gp = 3,
    Tp = 4,
    T0 = 5,
    T1 = 6,
    T2 = 7,
    S0 = 8,
    S1 = 9,
    A0 = 10,
    A1 = 11,
    A2 = 12,
    A3 = 13,
    A4 = 14,
    A5 = 15,
    A6 = 16,
    A7 = 17,
    S2 = 18,
    S3 = 19,
    S4 = 20,
    S5 = 21,
    S6 = 22,
    S7 = 23,
    S8 = 24,
    S9 = 25,
    S10 = 26,
    S11 = 27,
    T3 = 28,
    T4 = 29,
    T5 = 30,
    T6 = 31,
}

impl Reg {
    /// All 32 integer registers in index order.
    pub const ALL: [Reg; 32] = {
        use Reg::*;
        [
            Zero, Ra, Sp, Gp, Tp, T0, T1, T2, S0, S1, A0, A1, A2, A3, A4, A5, A6, A7, S2, S3, S4,
            S5, S6, S7, S8, S9, S10, S11, T3, T4, T5, T6,
        ]
    };

    /// Constructs a register from its hardware index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 32`.
    #[inline]
    pub fn from_index(idx: u32) -> Reg {
        Self::ALL[idx as usize]
    }

    /// The hardware index (0–31) of this register.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The ABI name (`zero`, `ra`, `sp`, `a0`, …).
    pub fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        NAMES[self.index()]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

/// One of the 32 floating-point architectural registers (`f0`–`f31`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum FReg {
    Ft0 = 0,
    Ft1 = 1,
    Ft2 = 2,
    Ft3 = 3,
    Ft4 = 4,
    Ft5 = 5,
    Ft6 = 6,
    Ft7 = 7,
    Fs0 = 8,
    Fs1 = 9,
    Fa0 = 10,
    Fa1 = 11,
    Fa2 = 12,
    Fa3 = 13,
    Fa4 = 14,
    Fa5 = 15,
    Fa6 = 16,
    Fa7 = 17,
    Fs2 = 18,
    Fs3 = 19,
    Fs4 = 20,
    Fs5 = 21,
    Fs6 = 22,
    Fs7 = 23,
    Fs8 = 24,
    Fs9 = 25,
    Fs10 = 26,
    Fs11 = 27,
    Ft8 = 28,
    Ft9 = 29,
    Ft10 = 30,
    Ft11 = 31,
}

impl FReg {
    /// All 32 floating-point registers in index order.
    pub const ALL: [FReg; 32] = {
        use FReg::*;
        [
            Ft0, Ft1, Ft2, Ft3, Ft4, Ft5, Ft6, Ft7, Fs0, Fs1, Fa0, Fa1, Fa2, Fa3, Fa4, Fa5, Fa6,
            Fa7, Fs2, Fs3, Fs4, Fs5, Fs6, Fs7, Fs8, Fs9, Fs10, Fs11, Ft8, Ft9, Ft10, Ft11,
        ]
    };

    /// Constructs a register from its hardware index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 32`.
    #[inline]
    pub fn from_index(idx: u32) -> FReg {
        Self::ALL[idx as usize]
    }

    /// The hardware index (0–31) of this register.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The ABI name (`ft0`, `fa0`, `fs3`, …).
    pub fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7", "fs0", "fs1", "fa0", "fa1",
            "fa2", "fa3", "fa4", "fa5", "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
            "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
        ];
        NAMES[self.index()]
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_index_round_trip() {
        for i in 0..32 {
            assert_eq!(Reg::from_index(i).index(), i as usize);
            assert_eq!(FReg::from_index(i).index(), i as usize);
        }
    }

    #[test]
    fn abi_names_are_distinct() {
        let mut names: Vec<&str> = Reg::ALL.iter().map(|r| r.abi_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 32);
    }

    #[test]
    #[should_panic]
    fn out_of_range_index_panics() {
        let _ = Reg::from_index(32);
    }
}
