//! Typed RV64IMFD instructions with exact decode/encode round-tripping.
//!
//! The subset implemented here is everything the `rv-workloads` benchmarks
//! and the `boom-uarch` core model need: the full RV64I base integer ISA,
//! the M extension, and the F/D floating-point extensions minus `FCLASS`
//! and the CSR interface (the workloads are bare-metal and use an `ecall`
//! exit convention instead of counters).

use crate::reg::{FReg, Reg};
use std::fmt;

/// Branch comparison condition (`beq`, `bne`, `blt`, `bge`, `bltu`, `bgeu`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum BrCond {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

impl BrCond {
    /// Evaluates the condition on two 64-bit operand values.
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BrCond::Eq => a == b,
            BrCond::Ne => a != b,
            BrCond::Lt => (a as i64) < (b as i64),
            BrCond::Ge => (a as i64) >= (b as i64),
            BrCond::Ltu => a < b,
            BrCond::Geu => a >= b,
        }
    }

    fn funct3(self) -> u32 {
        match self {
            BrCond::Eq => 0b000,
            BrCond::Ne => 0b001,
            BrCond::Lt => 0b100,
            BrCond::Ge => 0b101,
            BrCond::Ltu => 0b110,
            BrCond::Geu => 0b111,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            BrCond::Eq => "beq",
            BrCond::Ne => "bne",
            BrCond::Lt => "blt",
            BrCond::Ge => "bge",
            BrCond::Ltu => "bltu",
            BrCond::Geu => "bgeu",
        }
    }
}

/// Width and sign-extension behaviour of an integer load.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum LoadKind {
    B,
    H,
    W,
    D,
    Bu,
    Hu,
    Wu,
}

impl LoadKind {
    /// Access size in bytes.
    #[inline]
    pub fn size(self) -> u64 {
        match self {
            LoadKind::B | LoadKind::Bu => 1,
            LoadKind::H | LoadKind::Hu => 2,
            LoadKind::W | LoadKind::Wu => 4,
            LoadKind::D => 8,
        }
    }

    fn funct3(self) -> u32 {
        match self {
            LoadKind::B => 0b000,
            LoadKind::H => 0b001,
            LoadKind::W => 0b010,
            LoadKind::D => 0b011,
            LoadKind::Bu => 0b100,
            LoadKind::Hu => 0b101,
            LoadKind::Wu => 0b110,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            LoadKind::B => "lb",
            LoadKind::H => "lh",
            LoadKind::W => "lw",
            LoadKind::D => "ld",
            LoadKind::Bu => "lbu",
            LoadKind::Hu => "lhu",
            LoadKind::Wu => "lwu",
        }
    }
}

/// Width of an integer store.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum StoreKind {
    B,
    H,
    W,
    D,
}

impl StoreKind {
    /// Access size in bytes.
    #[inline]
    pub fn size(self) -> u64 {
        match self {
            StoreKind::B => 1,
            StoreKind::H => 2,
            StoreKind::W => 4,
            StoreKind::D => 8,
        }
    }

    fn funct3(self) -> u32 {
        match self {
            StoreKind::B => 0b000,
            StoreKind::H => 0b001,
            StoreKind::W => 0b010,
            StoreKind::D => 0b011,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            StoreKind::B => "sb",
            StoreKind::H => "sh",
            StoreKind::W => "sw",
            StoreKind::D => "sd",
        }
    }
}

/// Single-cycle integer ALU operation (base ISA, both 64- and 32-bit forms).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Addw,
    Subw,
    Sllw,
    Srlw,
    Sraw,
}

impl AluOp {
    /// Whether the register-immediate form of this operation exists in the ISA.
    pub fn has_imm_form(self) -> bool {
        !matches!(self, AluOp::Sub | AluOp::Subw)
    }

    fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Sll => "sll",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Xor => "xor",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Or => "or",
            AluOp::And => "and",
            AluOp::Addw => "addw",
            AluOp::Subw => "subw",
            AluOp::Sllw => "sllw",
            AluOp::Srlw => "srlw",
            AluOp::Sraw => "sraw",
        }
    }
}

/// M-extension multiply/divide operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum MulOp {
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
    Mulw,
    Divw,
    Divuw,
    Remw,
    Remuw,
}

impl MulOp {
    /// True for the divide/remainder group (long-latency, unpipelined unit).
    pub fn is_div(self) -> bool {
        matches!(
            self,
            MulOp::Div
                | MulOp::Divu
                | MulOp::Rem
                | MulOp::Remu
                | MulOp::Divw
                | MulOp::Divuw
                | MulOp::Remw
                | MulOp::Remuw
        )
    }

    fn mnemonic(self) -> &'static str {
        match self {
            MulOp::Mul => "mul",
            MulOp::Mulh => "mulh",
            MulOp::Mulhsu => "mulhsu",
            MulOp::Mulhu => "mulhu",
            MulOp::Div => "div",
            MulOp::Divu => "divu",
            MulOp::Rem => "rem",
            MulOp::Remu => "remu",
            MulOp::Mulw => "mulw",
            MulOp::Divw => "divw",
            MulOp::Divuw => "divuw",
            MulOp::Remw => "remw",
            MulOp::Remuw => "remuw",
        }
    }
}

/// Floating-point precision (F = single, D = double).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum FpFmt {
    S,
    D,
}

impl FpFmt {
    fn bits(self) -> u32 {
        match self {
            FpFmt::S => 0b00,
            FpFmt::D => 0b01,
        }
    }

    fn suffix(self) -> &'static str {
        match self {
            FpFmt::S => "s",
            FpFmt::D => "d",
        }
    }
}

/// Two-operand (or sqrt) floating-point computational operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum FpOp {
    Add,
    Sub,
    Mul,
    Div,
    Sqrt,
    SgnJ,
    SgnJn,
    SgnJx,
    Min,
    Max,
}

impl FpOp {
    fn mnemonic(self) -> &'static str {
        match self {
            FpOp::Add => "fadd",
            FpOp::Sub => "fsub",
            FpOp::Mul => "fmul",
            FpOp::Div => "fdiv",
            FpOp::Sqrt => "fsqrt",
            FpOp::SgnJ => "fsgnj",
            FpOp::SgnJn => "fsgnjn",
            FpOp::SgnJx => "fsgnjx",
            FpOp::Min => "fmin",
            FpOp::Max => "fmax",
        }
    }
}

/// Fused multiply-add flavour.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum FmaOp {
    Madd,
    Msub,
    Nmsub,
    Nmadd,
}

impl FmaOp {
    fn opcode(self) -> u32 {
        match self {
            FmaOp::Madd => 0b1000011,
            FmaOp::Msub => 0b1000111,
            FmaOp::Nmsub => 0b1001011,
            FmaOp::Nmadd => 0b1001111,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            FmaOp::Madd => "fmadd",
            FmaOp::Msub => "fmsub",
            FmaOp::Nmsub => "fnmsub",
            FmaOp::Nmadd => "fnmadd",
        }
    }
}

/// Floating-point comparison predicate (writes an integer register).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum FpCmp {
    Le,
    Lt,
    Eq,
}

impl FpCmp {
    fn funct3(self) -> u32 {
        match self {
            FpCmp::Le => 0b000,
            FpCmp::Lt => 0b001,
            FpCmp::Eq => 0b010,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            FpCmp::Le => "fle",
            FpCmp::Lt => "flt",
            FpCmp::Eq => "feq",
        }
    }
}

/// Integer width/signedness selector for float↔int conversions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum CvtInt {
    W,
    Wu,
    L,
    Lu,
}

impl CvtInt {
    fn rs2_bits(self) -> u32 {
        match self {
            CvtInt::W => 0b00000,
            CvtInt::Wu => 0b00001,
            CvtInt::L => 0b00010,
            CvtInt::Lu => 0b00011,
        }
    }

    fn suffix(self) -> &'static str {
        match self {
            CvtInt::W => "w",
            CvtInt::Wu => "wu",
            CvtInt::L => "l",
            CvtInt::Lu => "lu",
        }
    }
}

/// Rounding mode for float→int conversions.
///
/// Computational FP operations are encoded with the dynamic rounding mode
/// and executed round-to-nearest-even; conversions honour `Rne`/`Rtz`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum Rm {
    Rne,
    Rtz,
}

impl Rm {
    fn bits(self) -> u32 {
        match self {
            Rm::Rne => 0b000,
            Rm::Rtz => 0b001,
        }
    }
}

/// A decoded RV64IMFD instruction.
///
/// Construct via [`decode`] or directly (the assembler in [`crate::asm`]
/// builds these). Every variant encodes back to exactly one 32-bit word via
/// [`encode`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum Inst {
    /// `lui rd, imm` — `imm` holds the already-shifted, sign-extended value.
    Lui {
        rd: Reg,
        imm: i64,
    },
    /// `auipc rd, imm` — `imm` holds the already-shifted, sign-extended value.
    Auipc {
        rd: Reg,
        imm: i64,
    },
    Jal {
        rd: Reg,
        offset: i32,
    },
    Jalr {
        rd: Reg,
        rs1: Reg,
        offset: i32,
    },
    Branch {
        cond: BrCond,
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    Load {
        kind: LoadKind,
        rd: Reg,
        rs1: Reg,
        offset: i32,
    },
    Store {
        kind: StoreKind,
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    /// Register-immediate ALU op. `op` must satisfy [`AluOp::has_imm_form`].
    OpImm {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Op {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    MulDiv {
        op: MulOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    FpLoad {
        fmt: FpFmt,
        rd: FReg,
        rs1: Reg,
        offset: i32,
    },
    FpStore {
        fmt: FpFmt,
        rs1: Reg,
        rs2: FReg,
        offset: i32,
    },
    FpOp {
        op: FpOp,
        fmt: FpFmt,
        rd: FReg,
        rs1: FReg,
        rs2: FReg,
    },
    FpFma {
        op: FmaOp,
        fmt: FpFmt,
        rd: FReg,
        rs1: FReg,
        rs2: FReg,
        rs3: FReg,
    },
    FpCmp {
        cmp: FpCmp,
        fmt: FpFmt,
        rd: Reg,
        rs1: FReg,
        rs2: FReg,
    },
    FpCvtToInt {
        to: CvtInt,
        fmt: FpFmt,
        rd: Reg,
        rs1: FReg,
        rm: Rm,
    },
    FpCvtFromInt {
        from: CvtInt,
        fmt: FpFmt,
        rd: FReg,
        rs1: Reg,
    },
    /// `fcvt.s.d` (`to == S`) or `fcvt.d.s` (`to == D`).
    FpCvtFmt {
        to: FpFmt,
        rd: FReg,
        rs1: FReg,
    },
    /// `fmv.x.w` / `fmv.x.d`.
    FpMvToInt {
        fmt: FpFmt,
        rd: Reg,
        rs1: FReg,
    },
    /// `fmv.w.x` / `fmv.d.x`.
    FpMvFromInt {
        fmt: FpFmt,
        rd: FReg,
        rs1: Reg,
    },
    Fence,
    Ecall,
    Ebreak,
}

/// Error returned by [`decode`] for a word that is not a supported instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IllegalInst(pub u32);

impl fmt::Display for IllegalInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal or unsupported instruction word {:#010x}", self.0)
    }
}

impl std::error::Error for IllegalInst {}

#[inline]
fn bits(word: u32, hi: u32, lo: u32) -> u32 {
    (word >> lo) & ((1 << (hi - lo + 1)) - 1)
}

#[inline]
fn rd(word: u32) -> Reg {
    Reg::from_index(bits(word, 11, 7))
}

#[inline]
fn rs1(word: u32) -> Reg {
    Reg::from_index(bits(word, 19, 15))
}

#[inline]
fn rs2(word: u32) -> Reg {
    Reg::from_index(bits(word, 24, 20))
}

#[inline]
fn frd(word: u32) -> FReg {
    FReg::from_index(bits(word, 11, 7))
}

#[inline]
fn frs1(word: u32) -> FReg {
    FReg::from_index(bits(word, 19, 15))
}

#[inline]
fn frs2(word: u32) -> FReg {
    FReg::from_index(bits(word, 24, 20))
}

#[inline]
fn frs3(word: u32) -> FReg {
    FReg::from_index(bits(word, 31, 27))
}

#[inline]
fn imm_i(word: u32) -> i32 {
    (word as i32) >> 20
}

#[inline]
fn imm_s(word: u32) -> i32 {
    (((word & 0xfe00_0000) as i32) >> 20) | bits(word, 11, 7) as i32
}

#[inline]
fn imm_b(word: u32) -> i32 {
    (((word & 0x8000_0000) as i32) >> 19)
        | ((bits(word, 7, 7) as i32) << 11)
        | ((bits(word, 30, 25) as i32) << 5)
        | ((bits(word, 11, 8) as i32) << 1)
}

#[inline]
fn imm_u(word: u32) -> i64 {
    ((word & 0xffff_f000) as i32) as i64
}

#[inline]
fn imm_j(word: u32) -> i32 {
    (((word & 0x8000_0000) as i32) >> 11)
        | ((bits(word, 19, 12) as i32) << 12)
        | ((bits(word, 20, 20) as i32) << 11)
        | ((bits(word, 30, 21) as i32) << 1)
}

/// Decodes a 32-bit instruction word.
///
/// # Errors
///
/// Returns [`IllegalInst`] if the word is not a valid encoding of the
/// supported RV64IMFD subset.
pub fn decode(word: u32) -> Result<Inst, IllegalInst> {
    let ill = Err(IllegalInst(word));
    let opcode = bits(word, 6, 0);
    let funct3 = bits(word, 14, 12);
    let funct7 = bits(word, 31, 25);
    Ok(match opcode {
        0b0110111 => Inst::Lui { rd: rd(word), imm: imm_u(word) },
        0b0010111 => Inst::Auipc { rd: rd(word), imm: imm_u(word) },
        0b1101111 => Inst::Jal { rd: rd(word), offset: imm_j(word) },
        0b1100111 => {
            if funct3 != 0 {
                return ill;
            }
            Inst::Jalr { rd: rd(word), rs1: rs1(word), offset: imm_i(word) }
        }
        0b1100011 => {
            let cond = match funct3 {
                0b000 => BrCond::Eq,
                0b001 => BrCond::Ne,
                0b100 => BrCond::Lt,
                0b101 => BrCond::Ge,
                0b110 => BrCond::Ltu,
                0b111 => BrCond::Geu,
                _ => return ill,
            };
            Inst::Branch { cond, rs1: rs1(word), rs2: rs2(word), offset: imm_b(word) }
        }
        0b0000011 => {
            let kind = match funct3 {
                0b000 => LoadKind::B,
                0b001 => LoadKind::H,
                0b010 => LoadKind::W,
                0b011 => LoadKind::D,
                0b100 => LoadKind::Bu,
                0b101 => LoadKind::Hu,
                0b110 => LoadKind::Wu,
                _ => return ill,
            };
            Inst::Load { kind, rd: rd(word), rs1: rs1(word), offset: imm_i(word) }
        }
        0b0100011 => {
            let kind = match funct3 {
                0b000 => StoreKind::B,
                0b001 => StoreKind::H,
                0b010 => StoreKind::W,
                0b011 => StoreKind::D,
                _ => return ill,
            };
            Inst::Store { kind, rs1: rs1(word), rs2: rs2(word), offset: imm_s(word) }
        }
        0b0010011 => {
            let (op, imm) = match funct3 {
                0b000 => (AluOp::Add, imm_i(word)),
                0b010 => (AluOp::Slt, imm_i(word)),
                0b011 => (AluOp::Sltu, imm_i(word)),
                0b100 => (AluOp::Xor, imm_i(word)),
                0b110 => (AluOp::Or, imm_i(word)),
                0b111 => (AluOp::And, imm_i(word)),
                0b001 => {
                    if bits(word, 31, 26) != 0 {
                        return ill;
                    }
                    (AluOp::Sll, bits(word, 25, 20) as i32)
                }
                0b101 => match bits(word, 31, 26) {
                    0b000000 => (AluOp::Srl, bits(word, 25, 20) as i32),
                    0b010000 => (AluOp::Sra, bits(word, 25, 20) as i32),
                    _ => return ill,
                },
                _ => return ill,
            };
            Inst::OpImm { op, rd: rd(word), rs1: rs1(word), imm }
        }
        0b0011011 => {
            let (op, imm) = match funct3 {
                0b000 => (AluOp::Addw, imm_i(word)),
                0b001 => {
                    if funct7 != 0 {
                        return ill;
                    }
                    (AluOp::Sllw, bits(word, 24, 20) as i32)
                }
                0b101 => match funct7 {
                    0b0000000 => (AluOp::Srlw, bits(word, 24, 20) as i32),
                    0b0100000 => (AluOp::Sraw, bits(word, 24, 20) as i32),
                    _ => return ill,
                },
                _ => return ill,
            };
            Inst::OpImm { op, rd: rd(word), rs1: rs1(word), imm }
        }
        0b0110011 => {
            let (rd, rs1, rs2) = (rd(word), rs1(word), rs2(word));
            match funct7 {
                0b0000000 => {
                    let op = match funct3 {
                        0b000 => AluOp::Add,
                        0b001 => AluOp::Sll,
                        0b010 => AluOp::Slt,
                        0b011 => AluOp::Sltu,
                        0b100 => AluOp::Xor,
                        0b101 => AluOp::Srl,
                        0b110 => AluOp::Or,
                        0b111 => AluOp::And,
                        _ => return ill,
                    };
                    Inst::Op { op, rd, rs1, rs2 }
                }
                0b0100000 => {
                    let op = match funct3 {
                        0b000 => AluOp::Sub,
                        0b101 => AluOp::Sra,
                        _ => return ill,
                    };
                    Inst::Op { op, rd, rs1, rs2 }
                }
                0b0000001 => {
                    let op = match funct3 {
                        0b000 => MulOp::Mul,
                        0b001 => MulOp::Mulh,
                        0b010 => MulOp::Mulhsu,
                        0b011 => MulOp::Mulhu,
                        0b100 => MulOp::Div,
                        0b101 => MulOp::Divu,
                        0b110 => MulOp::Rem,
                        0b111 => MulOp::Remu,
                        _ => return ill,
                    };
                    Inst::MulDiv { op, rd, rs1, rs2 }
                }
                _ => return ill,
            }
        }
        0b0111011 => {
            let (rd, rs1, rs2) = (rd(word), rs1(word), rs2(word));
            match (funct7, funct3) {
                (0b0000000, 0b000) => Inst::Op { op: AluOp::Addw, rd, rs1, rs2 },
                (0b0000000, 0b001) => Inst::Op { op: AluOp::Sllw, rd, rs1, rs2 },
                (0b0000000, 0b101) => Inst::Op { op: AluOp::Srlw, rd, rs1, rs2 },
                (0b0100000, 0b000) => Inst::Op { op: AluOp::Subw, rd, rs1, rs2 },
                (0b0100000, 0b101) => Inst::Op { op: AluOp::Sraw, rd, rs1, rs2 },
                (0b0000001, 0b000) => Inst::MulDiv { op: MulOp::Mulw, rd, rs1, rs2 },
                (0b0000001, 0b100) => Inst::MulDiv { op: MulOp::Divw, rd, rs1, rs2 },
                (0b0000001, 0b101) => Inst::MulDiv { op: MulOp::Divuw, rd, rs1, rs2 },
                (0b0000001, 0b110) => Inst::MulDiv { op: MulOp::Remw, rd, rs1, rs2 },
                (0b0000001, 0b111) => Inst::MulDiv { op: MulOp::Remuw, rd, rs1, rs2 },
                _ => return ill,
            }
        }
        0b0001111 => {
            if funct3 != 0 {
                return ill;
            }
            Inst::Fence
        }
        0b1110011 => {
            if funct3 != 0 || bits(word, 11, 7) != 0 || bits(word, 19, 15) != 0 {
                return ill;
            }
            match bits(word, 31, 20) {
                0 => Inst::Ecall,
                1 => Inst::Ebreak,
                _ => return ill,
            }
        }
        0b0000111 => {
            let fmt = match funct3 {
                0b010 => FpFmt::S,
                0b011 => FpFmt::D,
                _ => return ill,
            };
            Inst::FpLoad { fmt, rd: frd(word), rs1: rs1(word), offset: imm_i(word) }
        }
        0b0100111 => {
            let fmt = match funct3 {
                0b010 => FpFmt::S,
                0b011 => FpFmt::D,
                _ => return ill,
            };
            Inst::FpStore { fmt, rs1: rs1(word), rs2: frs2(word), offset: imm_s(word) }
        }
        0b1000011 | 0b1000111 | 0b1001011 | 0b1001111 => {
            let op = match opcode {
                0b1000011 => FmaOp::Madd,
                0b1000111 => FmaOp::Msub,
                0b1001011 => FmaOp::Nmsub,
                _ => FmaOp::Nmadd,
            };
            let fmt = match bits(word, 26, 25) {
                0b00 => FpFmt::S,
                0b01 => FpFmt::D,
                _ => return ill,
            };
            Inst::FpFma {
                op,
                fmt,
                rd: frd(word),
                rs1: frs1(word),
                rs2: frs2(word),
                rs3: frs3(word),
            }
        }
        0b1010011 => {
            let fmt = match bits(word, 26, 25) {
                0b00 => FpFmt::S,
                0b01 => FpFmt::D,
                _ => return ill,
            };
            let f5 = bits(word, 31, 27);
            match f5 {
                0b00000..=0b00011 => {
                    let op = match f5 {
                        0b00000 => FpOp::Add,
                        0b00001 => FpOp::Sub,
                        0b00010 => FpOp::Mul,
                        _ => FpOp::Div,
                    };
                    Inst::FpOp { op, fmt, rd: frd(word), rs1: frs1(word), rs2: frs2(word) }
                }
                0b01011 => {
                    if bits(word, 24, 20) != 0 {
                        return ill;
                    }
                    Inst::FpOp {
                        op: FpOp::Sqrt,
                        fmt,
                        rd: frd(word),
                        rs1: frs1(word),
                        rs2: frs1(word),
                    }
                }
                0b00100 => {
                    let op = match funct3 {
                        0b000 => FpOp::SgnJ,
                        0b001 => FpOp::SgnJn,
                        0b010 => FpOp::SgnJx,
                        _ => return ill,
                    };
                    Inst::FpOp { op, fmt, rd: frd(word), rs1: frs1(word), rs2: frs2(word) }
                }
                0b00101 => {
                    let op = match funct3 {
                        0b000 => FpOp::Min,
                        0b001 => FpOp::Max,
                        _ => return ill,
                    };
                    Inst::FpOp { op, fmt, rd: frd(word), rs1: frs1(word), rs2: frs2(word) }
                }
                0b01000 => match (fmt, bits(word, 24, 20)) {
                    (FpFmt::S, 0b00001) => {
                        Inst::FpCvtFmt { to: FpFmt::S, rd: frd(word), rs1: frs1(word) }
                    }
                    (FpFmt::D, 0b00000) => {
                        Inst::FpCvtFmt { to: FpFmt::D, rd: frd(word), rs1: frs1(word) }
                    }
                    _ => return ill,
                },
                0b10100 => {
                    let cmp = match funct3 {
                        0b000 => FpCmp::Le,
                        0b001 => FpCmp::Lt,
                        0b010 => FpCmp::Eq,
                        _ => return ill,
                    };
                    Inst::FpCmp { cmp, fmt, rd: rd(word), rs1: frs1(word), rs2: frs2(word) }
                }
                0b11000 => {
                    let to = match bits(word, 24, 20) {
                        0b00000 => CvtInt::W,
                        0b00001 => CvtInt::Wu,
                        0b00010 => CvtInt::L,
                        0b00011 => CvtInt::Lu,
                        _ => return ill,
                    };
                    let rm = match funct3 {
                        0b000 => Rm::Rne,
                        0b001 => Rm::Rtz,
                        _ => return ill,
                    };
                    Inst::FpCvtToInt { to, fmt, rd: rd(word), rs1: frs1(word), rm }
                }
                0b11010 => {
                    let from = match bits(word, 24, 20) {
                        0b00000 => CvtInt::W,
                        0b00001 => CvtInt::Wu,
                        0b00010 => CvtInt::L,
                        0b00011 => CvtInt::Lu,
                        _ => return ill,
                    };
                    Inst::FpCvtFromInt { from, fmt, rd: frd(word), rs1: rs1(word) }
                }
                0b11100 => {
                    if funct3 != 0 || bits(word, 24, 20) != 0 {
                        return ill;
                    }
                    Inst::FpMvToInt { fmt, rd: rd(word), rs1: frs1(word) }
                }
                0b11110 => {
                    if funct3 != 0 || bits(word, 24, 20) != 0 {
                        return ill;
                    }
                    Inst::FpMvFromInt { fmt, rd: frd(word), rs1: rs1(word) }
                }
                _ => return ill,
            }
        }
        _ => return ill,
    })
}

fn enc_r(opcode: u32, funct3: u32, funct7: u32, rd: u32, rs1: u32, rs2: u32) -> u32 {
    opcode | (rd << 7) | (funct3 << 12) | (rs1 << 15) | (rs2 << 20) | (funct7 << 25)
}

fn enc_i(opcode: u32, funct3: u32, rd: u32, rs1: u32, imm: i32) -> u32 {
    debug_assert!((-2048..=2047).contains(&imm), "I-immediate out of range: {imm}");
    opcode | (rd << 7) | (funct3 << 12) | (rs1 << 15) | (((imm as u32) & 0xfff) << 20)
}

fn enc_s(opcode: u32, funct3: u32, rs1: u32, rs2: u32, imm: i32) -> u32 {
    debug_assert!((-2048..=2047).contains(&imm), "S-immediate out of range: {imm}");
    let imm = imm as u32;
    opcode
        | ((imm & 0x1f) << 7)
        | (funct3 << 12)
        | (rs1 << 15)
        | (rs2 << 20)
        | (((imm >> 5) & 0x7f) << 25)
}

fn enc_b(opcode: u32, funct3: u32, rs1: u32, rs2: u32, imm: i32) -> u32 {
    debug_assert!(
        (-4096..=4095).contains(&imm) && imm % 2 == 0,
        "B-immediate out of range or odd: {imm}"
    );
    let imm = imm as u32;
    opcode
        | (((imm >> 11) & 1) << 7)
        | (((imm >> 1) & 0xf) << 8)
        | (funct3 << 12)
        | (rs1 << 15)
        | (rs2 << 20)
        | (((imm >> 5) & 0x3f) << 25)
        | (((imm >> 12) & 1) << 31)
}

fn enc_u(opcode: u32, rd: u32, imm: i64) -> u32 {
    debug_assert_eq!(imm & 0xfff, 0, "U-immediate has low bits set: {imm:#x}");
    debug_assert!(
        (-(1i64 << 31)..(1i64 << 31)).contains(&imm),
        "U-immediate out of range: {imm:#x}"
    );
    opcode | (rd << 7) | ((imm as u32) & 0xffff_f000)
}

fn enc_j(opcode: u32, rd: u32, imm: i32) -> u32 {
    debug_assert!(
        (-(1 << 20)..(1 << 20)).contains(&imm) && imm % 2 == 0,
        "J-immediate out of range or odd: {imm}"
    );
    let imm = imm as u32;
    opcode
        | (rd << 7)
        | (((imm >> 12) & 0xff) << 12)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 20) & 1) << 31)
}

/// Dynamic rounding-mode bits used when encoding computational FP ops.
const RM_DYN: u32 = 0b111;

/// Encodes an instruction to its canonical 32-bit word.
///
/// # Panics
///
/// Panics (in debug builds) if an immediate is out of range for its encoding
/// or if an `OpImm` carries an operation with no immediate form; the
/// assembler validates these before constructing [`Inst`] values.
pub fn encode(inst: Inst) -> u32 {
    match inst {
        Inst::Lui { rd, imm } => enc_u(0b0110111, rd.index() as u32, imm),
        Inst::Auipc { rd, imm } => enc_u(0b0010111, rd.index() as u32, imm),
        Inst::Jal { rd, offset } => enc_j(0b1101111, rd.index() as u32, offset),
        Inst::Jalr { rd, rs1, offset } => {
            enc_i(0b1100111, 0, rd.index() as u32, rs1.index() as u32, offset)
        }
        Inst::Branch { cond, rs1, rs2, offset } => {
            enc_b(0b1100011, cond.funct3(), rs1.index() as u32, rs2.index() as u32, offset)
        }
        Inst::Load { kind, rd, rs1, offset } => {
            enc_i(0b0000011, kind.funct3(), rd.index() as u32, rs1.index() as u32, offset)
        }
        Inst::Store { kind, rs1, rs2, offset } => {
            enc_s(0b0100011, kind.funct3(), rs1.index() as u32, rs2.index() as u32, offset)
        }
        Inst::OpImm { op, rd, rs1, imm } => {
            let (rd, rs1) = (rd.index() as u32, rs1.index() as u32);
            match op {
                AluOp::Add => enc_i(0b0010011, 0b000, rd, rs1, imm),
                AluOp::Slt => enc_i(0b0010011, 0b010, rd, rs1, imm),
                AluOp::Sltu => enc_i(0b0010011, 0b011, rd, rs1, imm),
                AluOp::Xor => enc_i(0b0010011, 0b100, rd, rs1, imm),
                AluOp::Or => enc_i(0b0010011, 0b110, rd, rs1, imm),
                AluOp::And => enc_i(0b0010011, 0b111, rd, rs1, imm),
                AluOp::Sll => {
                    debug_assert!((0..64).contains(&imm));
                    enc_i(0b0010011, 0b001, rd, rs1, imm)
                }
                AluOp::Srl => {
                    debug_assert!((0..64).contains(&imm));
                    enc_i(0b0010011, 0b101, rd, rs1, imm)
                }
                AluOp::Sra => {
                    debug_assert!((0..64).contains(&imm));
                    enc_i(0b0010011, 0b101, rd, rs1, imm | (0b010000 << 6))
                }
                AluOp::Addw => enc_i(0b0011011, 0b000, rd, rs1, imm),
                AluOp::Sllw => {
                    debug_assert!((0..32).contains(&imm));
                    enc_i(0b0011011, 0b001, rd, rs1, imm)
                }
                AluOp::Srlw => {
                    debug_assert!((0..32).contains(&imm));
                    enc_i(0b0011011, 0b101, rd, rs1, imm)
                }
                AluOp::Sraw => {
                    debug_assert!((0..32).contains(&imm));
                    enc_i(0b0011011, 0b101, rd, rs1, imm | (0b0100000 << 5))
                }
                AluOp::Sub | AluOp::Subw => {
                    unreachable!("sub/subw have no immediate form")
                }
            }
        }
        Inst::Op { op, rd, rs1, rs2 } => {
            let (rd, rs1, rs2) = (rd.index() as u32, rs1.index() as u32, rs2.index() as u32);
            let (opcode, funct3, funct7) = match op {
                AluOp::Add => (0b0110011, 0b000, 0b0000000),
                AluOp::Sub => (0b0110011, 0b000, 0b0100000),
                AluOp::Sll => (0b0110011, 0b001, 0b0000000),
                AluOp::Slt => (0b0110011, 0b010, 0b0000000),
                AluOp::Sltu => (0b0110011, 0b011, 0b0000000),
                AluOp::Xor => (0b0110011, 0b100, 0b0000000),
                AluOp::Srl => (0b0110011, 0b101, 0b0000000),
                AluOp::Sra => (0b0110011, 0b101, 0b0100000),
                AluOp::Or => (0b0110011, 0b110, 0b0000000),
                AluOp::And => (0b0110011, 0b111, 0b0000000),
                AluOp::Addw => (0b0111011, 0b000, 0b0000000),
                AluOp::Subw => (0b0111011, 0b000, 0b0100000),
                AluOp::Sllw => (0b0111011, 0b001, 0b0000000),
                AluOp::Srlw => (0b0111011, 0b101, 0b0000000),
                AluOp::Sraw => (0b0111011, 0b101, 0b0100000),
            };
            enc_r(opcode, funct3, funct7, rd, rs1, rs2)
        }
        Inst::MulDiv { op, rd, rs1, rs2 } => {
            let (rd, rs1, rs2) = (rd.index() as u32, rs1.index() as u32, rs2.index() as u32);
            let (opcode, funct3) = match op {
                MulOp::Mul => (0b0110011, 0b000),
                MulOp::Mulh => (0b0110011, 0b001),
                MulOp::Mulhsu => (0b0110011, 0b010),
                MulOp::Mulhu => (0b0110011, 0b011),
                MulOp::Div => (0b0110011, 0b100),
                MulOp::Divu => (0b0110011, 0b101),
                MulOp::Rem => (0b0110011, 0b110),
                MulOp::Remu => (0b0110011, 0b111),
                MulOp::Mulw => (0b0111011, 0b000),
                MulOp::Divw => (0b0111011, 0b100),
                MulOp::Divuw => (0b0111011, 0b101),
                MulOp::Remw => (0b0111011, 0b110),
                MulOp::Remuw => (0b0111011, 0b111),
            };
            enc_r(opcode, funct3, 0b0000001, rd, rs1, rs2)
        }
        Inst::FpLoad { fmt, rd, rs1, offset } => {
            let funct3 = if fmt == FpFmt::S { 0b010 } else { 0b011 };
            enc_i(0b0000111, funct3, rd.index() as u32, rs1.index() as u32, offset)
        }
        Inst::FpStore { fmt, rs1, rs2, offset } => {
            let funct3 = if fmt == FpFmt::S { 0b010 } else { 0b011 };
            enc_s(0b0100111, funct3, rs1.index() as u32, rs2.index() as u32, offset)
        }
        Inst::FpOp { op, fmt, rd, rs1, rs2 } => {
            let (rd, r1, r2) = (rd.index() as u32, rs1.index() as u32, rs2.index() as u32);
            let (f5, funct3, rs2_field) = match op {
                FpOp::Add => (0b00000, RM_DYN, r2),
                FpOp::Sub => (0b00001, RM_DYN, r2),
                FpOp::Mul => (0b00010, RM_DYN, r2),
                FpOp::Div => (0b00011, RM_DYN, r2),
                FpOp::Sqrt => (0b01011, RM_DYN, 0),
                FpOp::SgnJ => (0b00100, 0b000, r2),
                FpOp::SgnJn => (0b00100, 0b001, r2),
                FpOp::SgnJx => (0b00100, 0b010, r2),
                FpOp::Min => (0b00101, 0b000, r2),
                FpOp::Max => (0b00101, 0b001, r2),
            };
            enc_r(0b1010011, funct3, (f5 << 2) | fmt.bits(), rd, r1, rs2_field)
        }
        Inst::FpFma { op, fmt, rd, rs1, rs2, rs3 } => {
            op.opcode()
                | ((rd.index() as u32) << 7)
                | (RM_DYN << 12)
                | ((rs1.index() as u32) << 15)
                | ((rs2.index() as u32) << 20)
                | (fmt.bits() << 25)
                | ((rs3.index() as u32) << 27)
        }
        Inst::FpCmp { cmp, fmt, rd, rs1, rs2 } => enc_r(
            0b1010011,
            cmp.funct3(),
            (0b10100 << 2) | fmt.bits(),
            rd.index() as u32,
            rs1.index() as u32,
            rs2.index() as u32,
        ),
        Inst::FpCvtToInt { to, fmt, rd, rs1, rm } => enc_r(
            0b1010011,
            rm.bits(),
            (0b11000 << 2) | fmt.bits(),
            rd.index() as u32,
            rs1.index() as u32,
            to.rs2_bits(),
        ),
        Inst::FpCvtFromInt { from, fmt, rd, rs1 } => enc_r(
            0b1010011,
            RM_DYN,
            (0b11010 << 2) | fmt.bits(),
            rd.index() as u32,
            rs1.index() as u32,
            from.rs2_bits(),
        ),
        Inst::FpCvtFmt { to, rd, rs1 } => {
            let (fmt_bits, rs2_field, funct3) = match to {
                FpFmt::S => (FpFmt::S.bits(), 0b00001, RM_DYN),
                FpFmt::D => (FpFmt::D.bits(), 0b00000, 0b000),
            };
            enc_r(
                0b1010011,
                funct3,
                (0b01000 << 2) | fmt_bits,
                rd.index() as u32,
                rs1.index() as u32,
                rs2_field,
            )
        }
        Inst::FpMvToInt { fmt, rd, rs1 } => enc_r(
            0b1010011,
            0b000,
            (0b11100 << 2) | fmt.bits(),
            rd.index() as u32,
            rs1.index() as u32,
            0,
        ),
        Inst::FpMvFromInt { fmt, rd, rs1 } => enc_r(
            0b1010011,
            0b000,
            (0b11110 << 2) | fmt.bits(),
            rd.index() as u32,
            rs1.index() as u32,
            0,
        ),
        Inst::Fence => 0x0ff0_000f,
        Inst::Ecall => 0x0000_0073,
        Inst::Ebreak => 0x0010_0073,
    }
}

impl Inst {
    /// True if this instruction may redirect control flow (branch/jal/jalr).
    #[inline]
    pub fn is_control_flow(&self) -> bool {
        matches!(self, Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Branch { .. })
    }

    /// True for a conditional branch.
    #[inline]
    pub fn is_branch(&self) -> bool {
        matches!(self, Inst::Branch { .. })
    }

    /// True for loads (integer or floating-point).
    #[inline]
    pub fn is_load(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::FpLoad { .. })
    }

    /// True for stores (integer or floating-point).
    #[inline]
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::Store { .. } | Inst::FpStore { .. })
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", (imm >> 12) & 0xfffff),
            Inst::Auipc { rd, imm } => write!(f, "auipc {rd}, {:#x}", (imm >> 12) & 0xfffff),
            Inst::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Inst::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Inst::Branch { cond, rs1, rs2, offset } => {
                write!(f, "{} {rs1}, {rs2}, {offset}", cond.mnemonic())
            }
            Inst::Load { kind, rd, rs1, offset } => {
                write!(f, "{} {rd}, {offset}({rs1})", kind.mnemonic())
            }
            Inst::Store { kind, rs1, rs2, offset } => {
                write!(f, "{} {rs2}, {offset}({rs1})", kind.mnemonic())
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                let m = op.mnemonic();
                // Shift-immediates and word ops keep their mnemonic; the rest
                // get the conventional `i` suffix (addi, xori, ...).
                match op {
                    AluOp::Sll | AluOp::Srl | AluOp::Sra => write!(f, "{m}i {rd}, {rs1}, {imm}"),
                    AluOp::Sllw | AluOp::Srlw | AluOp::Sraw | AluOp::Addw => {
                        let base = &m[..m.len() - 1];
                        write!(f, "{base}iw {rd}, {rs1}, {imm}")
                    }
                    _ => write!(f, "{m}i {rd}, {rs1}, {imm}"),
                }
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Inst::MulDiv { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Inst::FpLoad { fmt, rd, rs1, offset } => {
                let m = if fmt == FpFmt::S { "flw" } else { "fld" };
                write!(f, "{m} {rd}, {offset}({rs1})")
            }
            Inst::FpStore { fmt, rs1, rs2, offset } => {
                let m = if fmt == FpFmt::S { "fsw" } else { "fsd" };
                write!(f, "{m} {rs2}, {offset}({rs1})")
            }
            Inst::FpOp { op, fmt, rd, rs1, rs2 } => {
                if op == FpOp::Sqrt {
                    write!(f, "fsqrt.{} {rd}, {rs1}", fmt.suffix())
                } else {
                    write!(f, "{}.{} {rd}, {rs1}, {rs2}", op.mnemonic(), fmt.suffix())
                }
            }
            Inst::FpFma { op, fmt, rd, rs1, rs2, rs3 } => {
                write!(f, "{}.{} {rd}, {rs1}, {rs2}, {rs3}", op.mnemonic(), fmt.suffix())
            }
            Inst::FpCmp { cmp, fmt, rd, rs1, rs2 } => {
                write!(f, "{}.{} {rd}, {rs1}, {rs2}", cmp.mnemonic(), fmt.suffix())
            }
            Inst::FpCvtToInt { to, fmt, rd, rs1, rm } => {
                let rm = if rm == Rm::Rtz { ", rtz" } else { "" };
                write!(f, "fcvt.{}.{} {rd}, {rs1}{rm}", to.suffix(), fmt.suffix())
            }
            Inst::FpCvtFromInt { from, fmt, rd, rs1 } => {
                write!(f, "fcvt.{}.{} {rd}, {rs1}", fmt.suffix(), from.suffix())
            }
            Inst::FpCvtFmt { to, rd, rs1 } => {
                let from = if to == FpFmt::S { "d" } else { "s" };
                write!(f, "fcvt.{}.{from} {rd}, {rs1}", to.suffix())
            }
            Inst::FpMvToInt { fmt, rd, rs1 } => {
                let s = if fmt == FpFmt::S { "w" } else { "d" };
                write!(f, "fmv.x.{s} {rd}, {rs1}")
            }
            Inst::FpMvFromInt { fmt, rd, rs1 } => {
                let s = if fmt == FpFmt::S { "w" } else { "d" };
                write!(f, "fmv.{s}.x {rd}, {rs1}")
            }
            Inst::Fence => write!(f, "fence"),
            Inst::Ecall => write!(f, "ecall"),
            Inst::Ebreak => write!(f, "ebreak"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_known_words() {
        // addi a0, a0, 1
        assert_eq!(
            decode(0x0015_0513).unwrap(),
            Inst::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A0, imm: 1 }
        );
        // ret == jalr x0, 0(ra)
        assert_eq!(
            decode(0x0000_8067).unwrap(),
            Inst::Jalr { rd: Reg::Zero, rs1: Reg::Ra, offset: 0 }
        );
        // sd s0, 8(sp)
        assert_eq!(
            decode(0x0081_3423).unwrap(),
            Inst::Store { kind: StoreKind::D, rs1: Reg::Sp, rs2: Reg::S0, offset: 8 }
        );
        // mul a0, a1, a2
        assert_eq!(
            decode(0x02c5_8533).unwrap(),
            Inst::MulDiv { op: MulOp::Mul, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 }
        );
        // ecall
        assert_eq!(decode(0x0000_0073).unwrap(), Inst::Ecall);
    }

    #[test]
    fn decode_negative_immediates() {
        // addi sp, sp, -16
        assert_eq!(
            decode(0xff01_0113).unwrap(),
            Inst::OpImm { op: AluOp::Add, rd: Reg::Sp, rs1: Reg::Sp, imm: -16 }
        );
        // beq a0, zero, -8 (backwards branch)
        let w = encode(Inst::Branch { cond: BrCond::Eq, rs1: Reg::A0, rs2: Reg::Zero, offset: -8 });
        assert_eq!(
            decode(w).unwrap(),
            Inst::Branch { cond: BrCond::Eq, rs1: Reg::A0, rs2: Reg::Zero, offset: -8 }
        );
    }

    #[test]
    fn fp_round_trip_samples() {
        let insts = [
            Inst::FpOp {
                op: FpOp::Add,
                fmt: FpFmt::D,
                rd: FReg::Fa0,
                rs1: FReg::Fa1,
                rs2: FReg::Fa2,
            },
            Inst::FpOp {
                op: FpOp::Sqrt,
                fmt: FpFmt::S,
                rd: FReg::Ft0,
                rs1: FReg::Ft1,
                rs2: FReg::Ft1,
            },
            Inst::FpFma {
                op: FmaOp::Madd,
                fmt: FpFmt::D,
                rd: FReg::Fa0,
                rs1: FReg::Fa1,
                rs2: FReg::Fa2,
                rs3: FReg::Fa3,
            },
            Inst::FpCmp {
                cmp: FpCmp::Lt,
                fmt: FpFmt::D,
                rd: Reg::A0,
                rs1: FReg::Fa0,
                rs2: FReg::Fa1,
            },
            Inst::FpCvtToInt {
                to: CvtInt::L,
                fmt: FpFmt::D,
                rd: Reg::A0,
                rs1: FReg::Fa0,
                rm: Rm::Rtz,
            },
            Inst::FpCvtFromInt { from: CvtInt::W, fmt: FpFmt::D, rd: FReg::Fa0, rs1: Reg::A0 },
            Inst::FpCvtFmt { to: FpFmt::S, rd: FReg::Fa0, rs1: FReg::Fa1 },
            Inst::FpCvtFmt { to: FpFmt::D, rd: FReg::Fa0, rs1: FReg::Fa1 },
            Inst::FpMvToInt { fmt: FpFmt::D, rd: Reg::A0, rs1: FReg::Fa0 },
            Inst::FpMvFromInt { fmt: FpFmt::S, rd: FReg::Fa0, rs1: Reg::A0 },
            Inst::FpLoad { fmt: FpFmt::D, rd: FReg::Fa0, rs1: Reg::Sp, offset: -24 },
            Inst::FpStore { fmt: FpFmt::S, rs1: Reg::Sp, rs2: FReg::Fa0, offset: 12 },
        ];
        for inst in insts {
            assert_eq!(decode(encode(inst)).unwrap(), inst, "{inst}");
        }
    }

    #[test]
    fn illegal_words_are_rejected() {
        for w in [0u32, 0xffff_ffff, 0x0000_0001, 0x8000_0000, 0x0000_707f] {
            assert!(decode(w).is_err(), "{w:#010x} should be illegal");
        }
    }

    #[test]
    fn shift_immediates_round_trip() {
        for sh in [0, 1, 31, 32, 63] {
            for op in [AluOp::Sll, AluOp::Srl, AluOp::Sra] {
                let inst = Inst::OpImm { op, rd: Reg::A0, rs1: Reg::A1, imm: sh };
                assert_eq!(decode(encode(inst)).unwrap(), inst);
            }
        }
        for sh in [0, 1, 15, 31] {
            for op in [AluOp::Sllw, AluOp::Srlw, AluOp::Sraw] {
                let inst = Inst::OpImm { op, rd: Reg::A0, rs1: Reg::A1, imm: sh };
                assert_eq!(decode(encode(inst)).unwrap(), inst);
            }
        }
    }

    #[test]
    fn disassembly_is_never_empty() {
        let inst = Inst::Fence;
        assert!(!inst.to_string().is_empty());
        assert_eq!(
            Inst::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::Sp, imm: -4 }.to_string(),
            "addi a0, sp, -4"
        );
    }
}
