//! Pure instruction semantics, shared by the functional simulator and the
//! cycle-level out-of-order core model.
//!
//! Keeping the semantics in one place means the golden-model co-simulation
//! tests in `boom-uarch` compare *pipeline behaviour* (ordering, forwarding,
//! squash correctness), not two independent interpretations of the ISA.

use crate::inst::{AluOp, CvtInt, FmaOp, FpCmp, FpFmt, FpOp, Inst, LoadKind, MulOp, Rm};

/// Source operand values for [`compute`]. Unused fields may be zero.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct Operands {
    /// Integer source 1 value.
    pub rs1: u64,
    /// Integer source 2 value.
    pub rs2: u64,
    /// FP source 1 raw bits.
    pub fs1: u64,
    /// FP source 2 raw bits.
    pub fs2: u64,
    /// FP source 3 raw bits (FMA only).
    pub fs3: u64,
}

/// Destination class of a load.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadUnit {
    /// Integer load: sign/zero-extension per [`LoadKind`].
    Int(LoadKind),
    /// FP load: NaN-boxing per [`FpFmt`].
    Fp(FpFmt),
}

impl LoadUnit {
    /// Access size in bytes.
    #[inline]
    pub fn size(self) -> u64 {
        match self {
            LoadUnit::Int(k) => k.size(),
            LoadUnit::Fp(FpFmt::S) => 4,
            LoadUnit::Fp(FpFmt::D) => 8,
        }
    }
}

/// The architectural effect of one instruction, as computed by [`compute`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Write `value` to the instruction's integer destination register.
    WriteInt(u64),
    /// Write raw `bits` to the instruction's FP destination register.
    WriteFp(u64),
    /// Memory load; feed the raw little-endian data to [`load_result`].
    Load {
        /// Effective address.
        addr: u64,
        /// Width and destination class.
        unit: LoadUnit,
    },
    /// Memory store of the low `size` bytes of `data` at `addr`.
    Store {
        /// Effective address.
        addr: u64,
        /// Access size in bytes.
        size: u64,
        /// Little-endian store data in the low bytes.
        data: u64,
    },
    /// Conditional branch resolved.
    Branch {
        /// Whether the branch is taken.
        taken: bool,
        /// Branch target (valid whether or not taken).
        target: u64,
    },
    /// Unconditional jump; `link` is written to the destination register.
    Jump {
        /// Jump target address.
        target: u64,
        /// Return address (`pc + 4`).
        link: u64,
    },
    /// Environment call (the simulator interprets the a7/a0 convention).
    Ecall,
    /// Breakpoint.
    Ebreak,
    /// No architectural effect (fence).
    Nop,
}

/// Value produced by completing a load.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Loaded {
    /// Write to the integer destination.
    Int(u64),
    /// Write raw bits to the FP destination.
    Fp(u64),
}

/// Computes the architectural effect of `inst` at `pc` given operand values.
pub fn compute(inst: &Inst, pc: u64, ops: Operands) -> Outcome {
    match *inst {
        Inst::Lui { imm, .. } => Outcome::WriteInt(imm as u64),
        Inst::Auipc { imm, .. } => Outcome::WriteInt(pc.wrapping_add(imm as u64)),
        Inst::Jal { offset, .. } => Outcome::Jump {
            target: pc.wrapping_add(offset as i64 as u64),
            link: pc.wrapping_add(4),
        },
        Inst::Jalr { offset, .. } => Outcome::Jump {
            target: ops.rs1.wrapping_add(offset as i64 as u64) & !1,
            link: pc.wrapping_add(4),
        },
        Inst::Branch { cond, offset, .. } => Outcome::Branch {
            taken: cond.eval(ops.rs1, ops.rs2),
            target: pc.wrapping_add(offset as i64 as u64),
        },
        Inst::Load { kind, offset, .. } => Outcome::Load {
            addr: ops.rs1.wrapping_add(offset as i64 as u64),
            unit: LoadUnit::Int(kind),
        },
        Inst::Store { kind, offset, .. } => Outcome::Store {
            addr: ops.rs1.wrapping_add(offset as i64 as u64),
            size: kind.size(),
            data: ops.rs2,
        },
        Inst::OpImm { op, imm, .. } => Outcome::WriteInt(alu(op, ops.rs1, imm as i64 as u64)),
        Inst::Op { op, .. } => Outcome::WriteInt(alu(op, ops.rs1, ops.rs2)),
        Inst::MulDiv { op, .. } => Outcome::WriteInt(muldiv(op, ops.rs1, ops.rs2)),
        Inst::FpLoad { fmt, offset, .. } => Outcome::Load {
            addr: ops.rs1.wrapping_add(offset as i64 as u64),
            unit: LoadUnit::Fp(fmt),
        },
        Inst::FpStore { fmt, offset, .. } => Outcome::Store {
            addr: ops.rs1.wrapping_add(offset as i64 as u64),
            size: if fmt == FpFmt::S { 4 } else { 8 },
            data: ops.fs2,
        },
        Inst::FpOp { op, fmt, .. } => Outcome::WriteFp(fp_op(op, fmt, ops.fs1, ops.fs2)),
        Inst::FpFma { op, fmt, .. } => Outcome::WriteFp(fp_fma(op, fmt, ops.fs1, ops.fs2, ops.fs3)),
        Inst::FpCmp { cmp, fmt, .. } => Outcome::WriteInt(fp_cmp(cmp, fmt, ops.fs1, ops.fs2)),
        Inst::FpCvtToInt { to, fmt, rm, .. } => {
            Outcome::WriteInt(fp_cvt_to_int(to, fmt, rm, ops.fs1))
        }
        Inst::FpCvtFromInt { from, fmt, .. } => {
            Outcome::WriteFp(fp_cvt_from_int(from, fmt, ops.rs1))
        }
        Inst::FpCvtFmt { to, .. } => Outcome::WriteFp(match to {
            FpFmt::S => box_s(unbox_d(ops.fs1) as f32),
            FpFmt::D => (unbox_s(ops.fs1) as f64).to_bits(),
        }),
        Inst::FpMvToInt { fmt, .. } => Outcome::WriteInt(match fmt {
            FpFmt::S => (ops.fs1 as u32) as i32 as i64 as u64,
            FpFmt::D => ops.fs1,
        }),
        Inst::FpMvFromInt { fmt, .. } => Outcome::WriteFp(match fmt {
            FpFmt::S => 0xffff_ffff_0000_0000 | (ops.rs1 & 0xffff_ffff),
            FpFmt::D => ops.rs1,
        }),
        Inst::Fence => Outcome::Nop,
        Inst::Ecall => Outcome::Ecall,
        Inst::Ebreak => Outcome::Ebreak,
    }
}

/// Converts raw little-endian load data into the destination register value.
#[inline]
pub fn load_result(unit: LoadUnit, raw: u64) -> Loaded {
    match unit {
        LoadUnit::Int(kind) => Loaded::Int(match kind {
            LoadKind::B => raw as u8 as i8 as i64 as u64,
            LoadKind::H => raw as u16 as i16 as i64 as u64,
            LoadKind::W => raw as u32 as i32 as i64 as u64,
            LoadKind::D => raw,
            LoadKind::Bu => raw as u8 as u64,
            LoadKind::Hu => raw as u16 as u64,
            LoadKind::Wu => raw as u32 as u64,
        }),
        LoadUnit::Fp(FpFmt::S) => Loaded::Fp(0xffff_ffff_0000_0000 | (raw & 0xffff_ffff)),
        LoadUnit::Fp(FpFmt::D) => Loaded::Fp(raw),
    }
}

/// Single-cycle integer ALU.
#[inline]
pub fn alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a << (b & 63),
        AluOp::Slt => ((a as i64) < (b as i64)) as u64,
        AluOp::Sltu => (a < b) as u64,
        AluOp::Xor => a ^ b,
        AluOp::Srl => a >> (b & 63),
        AluOp::Sra => ((a as i64) >> (b & 63)) as u64,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Addw => (a as i32).wrapping_add(b as i32) as i64 as u64,
        AluOp::Subw => (a as i32).wrapping_sub(b as i32) as i64 as u64,
        AluOp::Sllw => ((a as i32) << (b & 31)) as i64 as u64,
        AluOp::Srlw => (((a as u32) >> (b & 31)) as i32) as i64 as u64,
        AluOp::Sraw => ((a as i32) >> (b & 31)) as i64 as u64,
    }
}

/// M-extension multiply/divide with RISC-V division-by-zero and overflow
/// semantics (div by 0 → all-ones / dividend; `MIN / -1` → `MIN`).
#[inline]
pub fn muldiv(op: MulOp, a: u64, b: u64) -> u64 {
    match op {
        MulOp::Mul => a.wrapping_mul(b),
        MulOp::Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
        MulOp::Mulhsu => (((a as i64 as i128) * (b as u128 as i128)) >> 64) as u64,
        MulOp::Mulhu => (((a as u128) * (b as u128)) >> 64) as u64,
        MulOp::Div => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                u64::MAX
            } else if a == i64::MIN && b == -1 {
                a as u64
            } else {
                a.wrapping_div(b) as u64
            }
        }
        MulOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
        MulOp::Rem => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                a as u64
            } else if a == i64::MIN && b == -1 {
                0
            } else {
                a.wrapping_rem(b) as u64
            }
        }
        MulOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        MulOp::Mulw => (a as i32).wrapping_mul(b as i32) as i64 as u64,
        MulOp::Divw => {
            let (a, b) = (a as i32, b as i32);
            if b == 0 {
                u64::MAX
            } else if a == i32::MIN && b == -1 {
                a as i64 as u64
            } else {
                a.wrapping_div(b) as i64 as u64
            }
        }
        MulOp::Divuw => {
            let (a, b) = (a as u32, b as u32);
            a.checked_div(b).map_or(u64::MAX, |q| q as i32 as i64 as u64)
        }
        MulOp::Remw => {
            let (a, b) = (a as i32, b as i32);
            if b == 0 {
                a as i64 as u64
            } else if a == i32::MIN && b == -1 {
                0
            } else {
                a.wrapping_rem(b) as i64 as u64
            }
        }
        MulOp::Remuw => {
            let (a, b) = (a as u32, b as u32);
            if b == 0 {
                a as i32 as i64 as u64
            } else {
                ((a % b) as i32) as i64 as u64
            }
        }
    }
}

const CANONICAL_NAN_S: u32 = 0x7fc0_0000;
const CANONICAL_NAN_D: u64 = 0x7ff8_0000_0000_0000;
const BOX_MASK: u64 = 0xffff_ffff_0000_0000;

/// Unboxes a NaN-boxed single; an improperly boxed value reads as NaN.
#[inline]
pub fn unbox_s(bits: u64) -> f32 {
    if bits & BOX_MASK == BOX_MASK {
        f32::from_bits(bits as u32)
    } else {
        f32::from_bits(CANONICAL_NAN_S)
    }
}

/// NaN-boxes a single-precision value into 64 register bits.
#[inline]
pub fn box_s(v: f32) -> u64 {
    BOX_MASK | (canonicalize_s(v) as u64)
}

#[inline]
fn canonicalize_s(v: f32) -> u32 {
    if v.is_nan() {
        CANONICAL_NAN_S
    } else {
        v.to_bits()
    }
}

/// Interprets raw FP register bits as a double.
#[inline]
pub fn unbox_d(bits: u64) -> f64 {
    f64::from_bits(bits)
}

#[inline]
fn canonicalize_d(v: f64) -> u64 {
    if v.is_nan() {
        CANONICAL_NAN_D
    } else {
        v.to_bits()
    }
}

fn fp_op(op: FpOp, fmt: FpFmt, a_bits: u64, b_bits: u64) -> u64 {
    match fmt {
        FpFmt::S => {
            let (a, b) = (unbox_s(a_bits), unbox_s(b_bits));
            match op {
                FpOp::Add => box_s(a + b),
                FpOp::Sub => box_s(a - b),
                FpOp::Mul => box_s(a * b),
                FpOp::Div => box_s(a / b),
                FpOp::Sqrt => box_s(a.sqrt()),
                FpOp::SgnJ => BOX_MASK | sgnj32(a.to_bits(), b.to_bits(), |s| s) as u64,
                FpOp::SgnJn => BOX_MASK | sgnj32(a.to_bits(), b.to_bits(), |s| !s) as u64,
                FpOp::SgnJx => {
                    let sa = a.to_bits() >> 31;
                    BOX_MASK | sgnj32(a.to_bits(), b.to_bits(), |s| s ^ sa) as u64
                }
                FpOp::Min => BOX_MASK | fmin32(a, b) as u64,
                FpOp::Max => BOX_MASK | fmax32(a, b) as u64,
            }
        }
        FpFmt::D => {
            let (a, b) = (unbox_d(a_bits), unbox_d(b_bits));
            match op {
                FpOp::Add => canonicalize_d(a + b),
                FpOp::Sub => canonicalize_d(a - b),
                FpOp::Mul => canonicalize_d(a * b),
                FpOp::Div => canonicalize_d(a / b),
                FpOp::Sqrt => canonicalize_d(a.sqrt()),
                FpOp::SgnJ => sgnj64(a_bits, b_bits, |s| s),
                FpOp::SgnJn => sgnj64(a_bits, b_bits, |s| !s),
                FpOp::SgnJx => {
                    let sa = a_bits >> 63;
                    sgnj64(a_bits, b_bits, |s| s ^ sa)
                }
                FpOp::Min => fmin64(a, b),
                FpOp::Max => fmax64(a, b),
            }
        }
    }
}

#[inline]
fn sgnj32(a: u32, b: u32, f: impl Fn(u32) -> u32) -> u32 {
    (a & 0x7fff_ffff) | ((f(b >> 31) & 1) << 31)
}

#[inline]
fn sgnj64(a: u64, b: u64, f: impl Fn(u64) -> u64) -> u64 {
    (a & 0x7fff_ffff_ffff_ffff) | ((f(b >> 63) & 1) << 63)
}

fn fmin32(a: f32, b: f32) -> u32 {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => CANONICAL_NAN_S,
        (true, false) => b.to_bits(),
        (false, true) => a.to_bits(),
        (false, false) => {
            if a == 0.0 && b == 0.0 {
                // -0.0 is the minimum of {-0.0, +0.0}
                (a.to_bits() | b.to_bits()) & 0x8000_0000
            } else if a < b {
                a.to_bits()
            } else {
                b.to_bits()
            }
        }
    }
}

fn fmax32(a: f32, b: f32) -> u32 {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => CANONICAL_NAN_S,
        (true, false) => b.to_bits(),
        (false, true) => a.to_bits(),
        (false, false) => {
            if a == 0.0 && b == 0.0 {
                a.to_bits() & b.to_bits()
            } else if a > b {
                a.to_bits()
            } else {
                b.to_bits()
            }
        }
    }
}

fn fmin64(a: f64, b: f64) -> u64 {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => CANONICAL_NAN_D,
        (true, false) => b.to_bits(),
        (false, true) => a.to_bits(),
        (false, false) => {
            if a == 0.0 && b == 0.0 {
                (a.to_bits() | b.to_bits()) & 0x8000_0000_0000_0000
            } else if a < b {
                a.to_bits()
            } else {
                b.to_bits()
            }
        }
    }
}

fn fmax64(a: f64, b: f64) -> u64 {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => CANONICAL_NAN_D,
        (true, false) => b.to_bits(),
        (false, true) => a.to_bits(),
        (false, false) => {
            if a == 0.0 && b == 0.0 {
                a.to_bits() & b.to_bits()
            } else if a > b {
                a.to_bits()
            } else {
                b.to_bits()
            }
        }
    }
}

fn fp_fma(op: FmaOp, fmt: FpFmt, a_bits: u64, b_bits: u64, c_bits: u64) -> u64 {
    match fmt {
        FpFmt::S => {
            let (a, b, c) = (unbox_s(a_bits), unbox_s(b_bits), unbox_s(c_bits));
            let v = match op {
                FmaOp::Madd => a.mul_add(b, c),
                FmaOp::Msub => a.mul_add(b, -c),
                FmaOp::Nmsub => (-a).mul_add(b, c),
                FmaOp::Nmadd => (-a).mul_add(b, -c),
            };
            box_s(v)
        }
        FpFmt::D => {
            let (a, b, c) = (unbox_d(a_bits), unbox_d(b_bits), unbox_d(c_bits));
            let v = match op {
                FmaOp::Madd => a.mul_add(b, c),
                FmaOp::Msub => a.mul_add(b, -c),
                FmaOp::Nmsub => (-a).mul_add(b, c),
                FmaOp::Nmadd => (-a).mul_add(b, -c),
            };
            canonicalize_d(v)
        }
    }
}

fn fp_cmp(cmp: FpCmp, fmt: FpFmt, a_bits: u64, b_bits: u64) -> u64 {
    let (a, b) = match fmt {
        FpFmt::S => (unbox_s(a_bits) as f64, unbox_s(b_bits) as f64),
        FpFmt::D => (unbox_d(a_bits), unbox_d(b_bits)),
    };
    let r = match cmp {
        FpCmp::Le => a <= b,
        FpCmp::Lt => a < b,
        FpCmp::Eq => a == b,
    };
    r as u64
}

fn round(v: f64, rm: Rm) -> f64 {
    match rm {
        Rm::Rtz => v.trunc(),
        Rm::Rne => {
            // round-half-to-even
            let r = v.round();
            if (v - v.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
                r - v.signum()
            } else {
                r
            }
        }
    }
}

fn fp_cvt_to_int(to: CvtInt, fmt: FpFmt, rm: Rm, bits: u64) -> u64 {
    let v = match fmt {
        FpFmt::S => unbox_s(bits) as f64,
        FpFmt::D => unbox_d(bits),
    };
    if v.is_nan() {
        return match to {
            CvtInt::W => i32::MAX as i64 as u64,
            CvtInt::Wu => u32::MAX as u64,
            CvtInt::L => i64::MAX as u64,
            CvtInt::Lu => u64::MAX,
        };
    }
    let r = round(v, rm);
    match to {
        CvtInt::W => {
            let clamped = r.clamp(i32::MIN as f64, i32::MAX as f64);
            clamped as i32 as i64 as u64
        }
        CvtInt::Wu => {
            let clamped = r.clamp(0.0, u32::MAX as f64);
            (clamped as u32) as i32 as i64 as u64
        }
        CvtInt::L => {
            if r >= i64::MAX as f64 {
                i64::MAX as u64
            } else if r <= i64::MIN as f64 {
                i64::MIN as u64
            } else {
                r as i64 as u64
            }
        }
        CvtInt::Lu => {
            if r >= u64::MAX as f64 {
                u64::MAX
            } else if r <= 0.0 {
                0
            } else {
                r as u64
            }
        }
    }
}

fn fp_cvt_from_int(from: CvtInt, fmt: FpFmt, rs1: u64) -> u64 {
    let v = match from {
        CvtInt::W => rs1 as i32 as f64,
        CvtInt::Wu => rs1 as u32 as f64,
        CvtInt::L => rs1 as i64 as f64,
        CvtInt::Lu => rs1 as f64,
    };
    match fmt {
        FpFmt::S => box_s(v as f32),
        FpFmt::D => v.to_bits(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    #[test]
    fn alu_word_ops_sign_extend() {
        assert_eq!(alu(AluOp::Addw, 0x7fff_ffff, 1), 0xffff_ffff_8000_0000);
        assert_eq!(alu(AluOp::Subw, 0, 1), u64::MAX);
        assert_eq!(alu(AluOp::Sllw, 1, 31), 0xffff_ffff_8000_0000);
        assert_eq!(alu(AluOp::Srlw, 0x8000_0000, 1), 0x4000_0000);
        assert_eq!(alu(AluOp::Sraw, 0x8000_0000, 1), 0xffff_ffff_c000_0000);
    }

    #[test]
    fn alu_comparisons() {
        assert_eq!(alu(AluOp::Slt, (-1i64) as u64, 0), 1);
        assert_eq!(alu(AluOp::Sltu, (-1i64) as u64, 0), 0);
        assert_eq!(alu(AluOp::Slt, 3, 3), 0);
    }

    #[test]
    fn division_special_cases() {
        assert_eq!(muldiv(MulOp::Div, 7, 0), u64::MAX);
        assert_eq!(muldiv(MulOp::Rem, 7, 0), 7);
        assert_eq!(muldiv(MulOp::Div, i64::MIN as u64, (-1i64) as u64), i64::MIN as u64);
        assert_eq!(muldiv(MulOp::Rem, i64::MIN as u64, (-1i64) as u64), 0);
        assert_eq!(
            muldiv(MulOp::Divw, i32::MIN as u32 as u64, (-1i32) as u32 as u64),
            i32::MIN as i64 as u64
        );
        assert_eq!(muldiv(MulOp::Divu, 7, 2), 3);
        assert_eq!(muldiv(MulOp::Remuw, 0xffff_ffff, 10), (0xffff_ffffu32 % 10) as u64);
    }

    #[test]
    fn mulh_variants() {
        // (-1) * (-1) = 1 -> high bits 0
        assert_eq!(muldiv(MulOp::Mulh, u64::MAX, u64::MAX), 0);
        // unsigned: (2^64-1)^2 high word = 2^64 - 2
        assert_eq!(muldiv(MulOp::Mulhu, u64::MAX, u64::MAX), u64::MAX - 1);
        assert_eq!(muldiv(MulOp::Mulhsu, u64::MAX, u64::MAX), u64::MAX);
    }

    #[test]
    fn nan_boxing() {
        let boxed = box_s(1.5);
        assert_eq!(boxed >> 32, 0xffff_ffff);
        assert_eq!(unbox_s(boxed), 1.5);
        // improperly boxed single reads as NaN
        assert!(unbox_s(1.5f32.to_bits() as u64).is_nan());
    }

    #[test]
    fn fp_min_max_nan_and_zero() {
        // one NaN -> the other operand
        let nan = CANONICAL_NAN_D;
        assert_eq!(fp_op(FpOp::Min, FpFmt::D, nan, 2.0f64.to_bits()), 2.0f64.to_bits());
        assert_eq!(fp_op(FpOp::Max, FpFmt::D, 2.0f64.to_bits(), nan), 2.0f64.to_bits());
        // both NaN -> canonical NaN
        assert_eq!(fp_op(FpOp::Min, FpFmt::D, nan, nan), CANONICAL_NAN_D);
        // signed zeros
        let pz = 0.0f64.to_bits();
        let nz = (-0.0f64).to_bits();
        assert_eq!(fp_op(FpOp::Min, FpFmt::D, pz, nz), nz);
        assert_eq!(fp_op(FpOp::Max, FpFmt::D, pz, nz), pz);
    }

    #[test]
    fn fp_compare_nan_is_false() {
        let nan = CANONICAL_NAN_D;
        for cmp in [FpCmp::Le, FpCmp::Lt, FpCmp::Eq] {
            assert_eq!(fp_cmp(cmp, FpFmt::D, nan, 1.0f64.to_bits()), 0);
        }
        assert_eq!(fp_cmp(FpCmp::Le, FpFmt::D, 1.0f64.to_bits(), 1.0f64.to_bits()), 1);
    }

    #[test]
    fn cvt_saturation() {
        let big = 1e30f64.to_bits();
        assert_eq!(fp_cvt_to_int(CvtInt::W, FpFmt::D, Rm::Rtz, big), i32::MAX as i64 as u64);
        let neg = (-1e30f64).to_bits();
        assert_eq!(fp_cvt_to_int(CvtInt::Wu, FpFmt::D, Rm::Rtz, neg), 0);
        assert_eq!(fp_cvt_to_int(CvtInt::L, FpFmt::D, Rm::Rtz, big), i64::MAX as u64);
        let nan = CANONICAL_NAN_D;
        assert_eq!(fp_cvt_to_int(CvtInt::W, FpFmt::D, Rm::Rtz, nan), i32::MAX as i64 as u64);
    }

    #[test]
    fn cvt_rounding_modes() {
        let v = 2.5f64.to_bits();
        assert_eq!(fp_cvt_to_int(CvtInt::L, FpFmt::D, Rm::Rtz, v), 2);
        assert_eq!(fp_cvt_to_int(CvtInt::L, FpFmt::D, Rm::Rne, v), 2); // half-to-even
        let v = 3.5f64.to_bits();
        assert_eq!(fp_cvt_to_int(CvtInt::L, FpFmt::D, Rm::Rne, v), 4);
        let v = (-2.5f64).to_bits();
        assert_eq!(fp_cvt_to_int(CvtInt::L, FpFmt::D, Rm::Rtz, v), (-2i64) as u64);
        assert_eq!(fp_cvt_to_int(CvtInt::L, FpFmt::D, Rm::Rne, v), (-2i64) as u64);
    }

    #[test]
    fn load_extension() {
        assert_eq!(
            load_result(LoadUnit::Int(LoadKind::B), 0x80),
            Loaded::Int(0xffff_ffff_ffff_ff80)
        );
        assert_eq!(load_result(LoadUnit::Int(LoadKind::Bu), 0x80), Loaded::Int(0x80));
        assert_eq!(
            load_result(LoadUnit::Int(LoadKind::W), 0x8000_0000),
            Loaded::Int(0xffff_ffff_8000_0000)
        );
        assert_eq!(load_result(LoadUnit::Int(LoadKind::Wu), 0x8000_0000), Loaded::Int(0x8000_0000));
        match load_result(LoadUnit::Fp(FpFmt::S), 1.0f32.to_bits() as u64) {
            Loaded::Fp(bits) => assert_eq!(unbox_s(bits), 1.0),
            _ => panic!(),
        }
    }

    #[test]
    fn jalr_clears_low_bit() {
        let inst = Inst::Jalr { rd: Reg::Ra, rs1: Reg::A0, offset: 3 };
        match compute(&inst, 100, Operands { rs1: 0x1000, ..Default::default() }) {
            Outcome::Jump { target, link } => {
                assert_eq!(target, 0x1002);
                assert_eq!(link, 104);
            }
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn fma_is_fused() {
        // Choose values where fused and unfused differ.
        let a = 1.0 + f64::EPSILON;
        let b = 1.0 - f64::EPSILON;
        let c = -1.0;
        let fused = a.mul_add(b, c);
        let bits = fp_fma(FmaOp::Madd, FpFmt::D, a.to_bits(), b.to_bits(), c.to_bits());
        assert_eq!(f64::from_bits(bits), fused);
    }
}
