//! # rv-isa — RV64IMFD instruction set and functional simulation
//!
//! This crate is the instruction-set substrate of the `boomflow` workspace,
//! playing the role that Spike (the RISC-V ISA simulator) and gem5's
//! basic-block-vector profiling play in the paper *"SimPoint-Based
//! Microarchitectural Hotspot & Energy-Efficiency Analysis of RISC-V OoO
//! CPUs"* (ISPASS 2024).
//!
//! It provides:
//!
//! * [`inst::Inst`] — a typed representation of the RV64IMFD subset used by
//!   the workloads, with exact [`inst::decode`] / [`inst::encode`]
//!   round-tripping and a disassembler ([`Display`](std::fmt::Display)).
//! * [`exec`] — pure instruction semantics shared by the functional simulator
//!   *and* the cycle-level out-of-order core model (`boom-uarch`), so that
//!   golden-model co-simulation agrees by construction.
//! * [`mem::Memory`] — a physical memory with a contiguous flat fast-path
//!   region (program image + stack) backed by sparse overflow pages.
//! * [`image::DecodedImage`] — the text segment predecoded once at load,
//!   shared behind `Arc` by every simulator and worker thread.
//! * [`cpu::Cpu`] — a fast functional (architectural) simulator with syscall
//!   handling, run-length control, and instruction retirement hooks.
//! * [`asm::Assembler`] — a label-resolving macro-assembler DSL used to write
//!   the MiBench/Embench-style workloads in `rv-workloads`.
//! * [`checkpoint::Checkpoint`] — architectural checkpoints (the Spike role
//!   in the paper's Fig. 4) that can be restored into any simulator.
//! * [`bbv`] — per-interval basic-block vector collection (the gem5 role in
//!   the paper's Fig. 4), consumed by the `simpoint` crate.
//!
//! ## Example
//!
//! ```
//! use rv_isa::asm::Assembler;
//! use rv_isa::cpu::{Cpu, StopReason};
//! use rv_isa::reg::Reg;
//!
//! let mut a = Assembler::new();
//! a.li(Reg::A0, 0);
//! a.li(Reg::T0, 10);
//! a.label("loop");
//! a.add(Reg::A0, Reg::A0, Reg::T0);
//! a.addi(Reg::T0, Reg::T0, -1);
//! a.bnez(Reg::T0, "loop");
//! a.exit(); // ecall with a7 = 93, code in a0
//! let program = a.assemble().unwrap();
//!
//! let mut cpu = Cpu::new(&program);
//! let stop = cpu.run(1_000_000).unwrap();
//! assert_eq!(stop, StopReason::Exited(55));
//! ```

#![warn(missing_docs)]
pub mod asm;
pub mod bbv;
pub mod checkpoint;
pub mod codec;
pub mod cpu;
pub mod exec;
pub mod image;
pub mod inst;
pub mod mem;
pub mod program;
pub mod reg;

pub use inst::{decode, encode, Inst};
pub use program::Program;
pub use reg::{FReg, Reg};

/// Default load address for programs produced by the assembler.
///
/// Matches the conventional RISC-V DRAM base used by Spike and Chipyard.
pub const DEFAULT_BASE: u64 = 0x8000_0000;
