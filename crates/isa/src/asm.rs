//! A label-resolving macro-assembler DSL for RV64IMFD.
//!
//! The eleven MiBench/Embench-style workloads in `rv-workloads` are written
//! against this builder. It supports forward references, a data section with
//! typed emitters, and the usual pseudo-instructions (`li`, `la`, `mv`,
//! `call`, `ret`, `beqz`, …).
//!
//! ```
//! use rv_isa::asm::Assembler;
//! use rv_isa::reg::Reg::*;
//!
//! let mut a = Assembler::new();
//! a.la(A1, "table");
//! a.ld(A0, A1, 8);
//! a.exit();
//! a.data_label("table");
//! a.dwords(&[10, 20, 30]);
//! let program = a.assemble().unwrap();
//! assert_eq!(program.symbol("table").unwrap() % 8, 0);
//! ```

use crate::inst::{
    AluOp, BrCond, CvtInt, FmaOp, FpCmp, FpFmt, FpOp, Inst, LoadKind, MulOp, Rm, StoreKind,
};
use crate::program::Program;
use crate::reg::{FReg, Reg};
use crate::DEFAULT_BASE;
use std::collections::HashMap;
use std::fmt;

/// Default initial stack pointer: 16 MiB above the load base.
pub const DEFAULT_STACK_TOP: u64 = DEFAULT_BASE + 16 * 1024 * 1024;

/// Error produced by [`Assembler::assemble`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A conditional branch target is beyond ±4 KiB.
    BranchOutOfRange {
        /// The target label.
        label: String,
        /// The required byte offset.
        offset: i64,
    },
    /// A jump target is beyond ±1 MiB.
    JumpOutOfRange {
        /// The target label.
        label: String,
        /// The required byte offset.
        offset: i64,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::BranchOutOfRange { label, offset } => {
                write!(f, "branch to `{label}` out of range ({offset} bytes)")
            }
            AsmError::JumpOutOfRange { label, offset } => {
                write!(f, "jump to `{label}` out of range ({offset} bytes)")
            }
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Clone, Debug)]
enum Item {
    Inst(Inst),
    Branch {
        cond: BrCond,
        rs1: Reg,
        rs2: Reg,
        label: String,
    },
    Jal {
        rd: Reg,
        label: String,
    },
    /// `auipc rd, %hi` + `addi rd, rd, %lo` — always two words.
    La {
        rd: Reg,
        label: String,
    },
}

impl Item {
    fn words(&self) -> u64 {
        match self {
            Item::La { .. } => 2,
            _ => 1,
        }
    }
}

/// An incremental RV64IMFD program builder with label resolution.
///
/// Create with [`Assembler::new`], emit instructions and data, then call
/// [`Assembler::assemble`].
#[derive(Clone, Debug)]
pub struct Assembler {
    base: u64,
    stack_top: u64,
    items: Vec<Item>,
    text_words: u64,
    data: Vec<u8>,
    /// Label -> resolved address-space location.
    labels: HashMap<String, Loc>,
    /// Labels defined more than once, reported by [`Assembler::assemble`].
    duplicate_labels: Vec<String>,
}

#[derive(Clone, Copy, Debug)]
enum Loc {
    /// Word index into the text section.
    Text(u64),
    /// Byte offset into the data section.
    Data(u64),
}

impl Default for Assembler {
    fn default() -> Self {
        Self::new()
    }
}

impl Assembler {
    /// Creates an assembler targeting [`DEFAULT_BASE`].
    pub fn new() -> Assembler {
        Assembler {
            base: DEFAULT_BASE,
            stack_top: DEFAULT_STACK_TOP,
            items: Vec::new(),
            text_words: 0,
            data: Vec::new(),
            labels: HashMap::new(),
            duplicate_labels: Vec::new(),
        }
    }

    /// Current text position in words (useful for size assertions in tests).
    pub fn text_words(&self) -> u64 {
        self.text_words
    }

    fn push(&mut self, item: Item) {
        self.text_words += item.words();
        self.items.push(item);
    }

    /// Emits an already-constructed instruction.
    pub fn inst(&mut self, inst: Inst) {
        self.push(Item::Inst(inst));
    }

    /// Defines a code label at the current text position.
    ///
    /// Redefining a name keeps the first definition; the conflict is
    /// reported as [`AsmError::DuplicateLabel`] by [`Assembler::assemble`].
    pub fn label(&mut self, name: &str) {
        self.define(name, Loc::Text(self.text_words));
    }

    /// Defines a data label at the current (8-byte aligned) data position.
    ///
    /// Redefining a name keeps the first definition; the conflict is
    /// reported as [`AsmError::DuplicateLabel`] by [`Assembler::assemble`].
    pub fn data_label(&mut self, name: &str) {
        self.align_data(8);
        self.define(name, Loc::Data(self.data.len() as u64));
    }

    fn define(&mut self, name: &str, loc: Loc) {
        if self.labels.contains_key(name) {
            self.duplicate_labels.push(name.to_string());
        } else {
            self.labels.insert(name.to_string(), loc);
        }
    }

    /// Pads the data section to `align` bytes.
    pub fn align_data(&mut self, align: usize) {
        while !self.data.len().is_multiple_of(align) {
            self.data.push(0);
        }
    }

    /// Emits raw bytes into the data section.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Emits 32-bit little-endian words into the data section.
    pub fn words(&mut self, words: &[u32]) {
        for w in words {
            self.data.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Emits 64-bit little-endian double-words into the data section.
    pub fn dwords(&mut self, dwords: &[u64]) {
        for w in dwords {
            self.data.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Emits IEEE-754 doubles into the data section.
    pub fn doubles(&mut self, vals: &[f64]) {
        for v in vals {
            self.data.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    /// Reserves `n` zero bytes in the data section.
    pub fn zeros(&mut self, n: usize) {
        self.data.resize(self.data.len() + n, 0);
    }

    // ---- base integer instructions -------------------------------------

    /// `lui rd, imm20` (imm is the already-shifted value; low 12 bits zero).
    pub fn lui(&mut self, rd: Reg, imm: i64) {
        self.inst(Inst::Lui { rd, imm });
    }

    /// `jalr rd, offset(rs1)`.
    pub fn jalr(&mut self, rd: Reg, rs1: Reg, offset: i32) {
        self.inst(Inst::Jalr { rd, rs1, offset });
    }

    /// Conditional branch to a label.
    pub fn branch(&mut self, cond: BrCond, rs1: Reg, rs2: Reg, label: &str) {
        self.push(Item::Branch { cond, rs1, rs2, label: label.to_string() });
    }

    /// `jal rd, label`.
    pub fn jal(&mut self, rd: Reg, label: &str) {
        self.push(Item::Jal { rd, label: label.to_string() });
    }

    /// Loads the address of `label` into `rd` (`auipc` + `addi`).
    pub fn la(&mut self, rd: Reg, label: &str) {
        self.push(Item::La { rd, label: label.to_string() });
    }

    /// Loads an arbitrary 64-bit constant with the standard `li` expansion
    /// (`addi`, `lui`+`addiw`, or a recursive shift-and-add sequence).
    pub fn li(&mut self, rd: Reg, value: i64) {
        if (-2048..=2047).contains(&value) {
            self.addi(rd, Reg::Zero, value as i32);
        } else if (i32::MIN as i64..=i32::MAX as i64).contains(&value) {
            // lui + addiw; `hi` may wrap to -2^31 for values near i32::MAX,
            // which lui sign-extends and addiw then corrects in 32-bit space.
            let lo = (value << 52) >> 52; // sign-extended low 12 bits
            let hi = (value - lo) as i32 as i64;
            self.inst(Inst::Lui { rd, imm: hi });
            if lo != 0 || hi == 0 {
                self.inst(Inst::OpImm { op: AluOp::Addw, rd, rs1: rd, imm: lo as i32 });
            }
        } else {
            // General case: materialize the upper bits, then shift in the
            // sign-extended low 12 bits (GNU as `li` expansion).
            let lo = (value << 52) >> 52;
            let hi = (value - lo) >> 12;
            self.li(rd, hi);
            self.slli(rd, rd, 12);
            if lo != 0 {
                self.addi(rd, rd, lo as i32);
            }
        }
    }

    // ---- pseudo-instructions -------------------------------------------

    /// `nop`.
    pub fn nop(&mut self) {
        self.addi(Reg::Zero, Reg::Zero, 0);
    }

    /// `mv rd, rs`.
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.addi(rd, rs, 0);
    }

    /// `neg rd, rs`.
    pub fn neg(&mut self, rd: Reg, rs: Reg) {
        self.sub(rd, Reg::Zero, rs);
    }

    /// `not rd, rs`.
    pub fn not(&mut self, rd: Reg, rs: Reg) {
        self.xori(rd, rs, -1);
    }

    /// `seqz rd, rs` (`rd = rs == 0`).
    pub fn seqz(&mut self, rd: Reg, rs: Reg) {
        self.sltiu(rd, rs, 1);
    }

    /// `snez rd, rs` (`rd = rs != 0`).
    pub fn snez(&mut self, rd: Reg, rs: Reg) {
        self.sltu(rd, Reg::Zero, rs);
    }

    /// Unconditional jump to label.
    pub fn j(&mut self, label: &str) {
        self.jal(Reg::Zero, label);
    }

    /// Call a function label (link in `ra`).
    pub fn call(&mut self, label: &str) {
        self.jal(Reg::Ra, label);
    }

    /// Return (`jalr zero, 0(ra)`).
    pub fn ret(&mut self) {
        self.jalr(Reg::Zero, Reg::Ra, 0);
    }

    /// `beqz rs, label`.
    pub fn beqz(&mut self, rs: Reg, label: &str) {
        self.branch(BrCond::Eq, rs, Reg::Zero, label);
    }

    /// `bnez rs, label`.
    pub fn bnez(&mut self, rs: Reg, label: &str) {
        self.branch(BrCond::Ne, rs, Reg::Zero, label);
    }

    /// `bltz rs, label`.
    pub fn bltz(&mut self, rs: Reg, label: &str) {
        self.branch(BrCond::Lt, rs, Reg::Zero, label);
    }

    /// `bgez rs, label`.
    pub fn bgez(&mut self, rs: Reg, label: &str) {
        self.branch(BrCond::Ge, rs, Reg::Zero, label);
    }

    /// `bgtz rs, label` (`zero < rs`).
    pub fn bgtz(&mut self, rs: Reg, label: &str) {
        self.branch(BrCond::Lt, Reg::Zero, rs, label);
    }

    /// `blez rs, label` (`rs <= zero`, i.e. `zero >= rs`).
    pub fn blez(&mut self, rs: Reg, label: &str) {
        self.branch(BrCond::Ge, Reg::Zero, rs, label);
    }

    /// `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BrCond::Eq, rs1, rs2, label);
    }

    /// `bne rs1, rs2, label`.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BrCond::Ne, rs1, rs2, label);
    }

    /// `blt rs1, rs2, label`.
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BrCond::Lt, rs1, rs2, label);
    }

    /// `bge rs1, rs2, label`.
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BrCond::Ge, rs1, rs2, label);
    }

    /// `bltu rs1, rs2, label`.
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BrCond::Ltu, rs1, rs2, label);
    }

    /// `bgeu rs1, rs2, label`.
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BrCond::Geu, rs1, rs2, label);
    }

    /// `bgt rs1, rs2, label` (swapped `blt`).
    pub fn bgt(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BrCond::Lt, rs2, rs1, label);
    }

    /// `ble rs1, rs2, label` (swapped `bge`).
    pub fn ble(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BrCond::Ge, rs2, rs1, label);
    }

    /// `ecall` with the exit convention (`a7 = 93`); exit code read from `a0`.
    pub fn exit(&mut self) {
        self.li(Reg::A7, 93);
        self.inst(Inst::Ecall);
    }

    /// `fence`.
    pub fn fence(&mut self) {
        self.inst(Inst::Fence);
    }

    /// `fmv.d fd, fs` (sign-inject pseudo-move).
    pub fn fmv_d(&mut self, rd: FReg, rs: FReg) {
        self.inst(Inst::FpOp { op: FpOp::SgnJ, fmt: FpFmt::D, rd, rs1: rs, rs2: rs });
    }

    /// `fneg.d fd, fs`.
    pub fn fneg_d(&mut self, rd: FReg, rs: FReg) {
        self.inst(Inst::FpOp { op: FpOp::SgnJn, fmt: FpFmt::D, rd, rs1: rs, rs2: rs });
    }

    /// `fabs.d fd, fs`.
    pub fn fabs_d(&mut self, rd: FReg, rs: FReg) {
        self.inst(Inst::FpOp { op: FpOp::SgnJx, fmt: FpFmt::D, rd, rs1: rs, rs2: rs });
    }

    /// Assembles the program, resolving all labels.
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] for duplicate or undefined labels and
    /// out-of-range targets.
    pub fn assemble(&self) -> Result<Program, AsmError> {
        if let Some(name) = self.duplicate_labels.first() {
            return Err(AsmError::DuplicateLabel(name.clone()));
        }
        let text_len = (self.text_words * 4) as usize;
        let data_base_off = (text_len + 15) & !15; // 16-byte align the data section

        let addr_of = |loc: Loc| -> u64 {
            match loc {
                Loc::Text(w) => self.base + w * 4,
                Loc::Data(off) => self.base + data_base_off as u64 + off,
            }
        };
        let resolve = |label: &str| -> Result<u64, AsmError> {
            self.labels
                .get(label)
                .copied()
                .map(addr_of)
                .ok_or_else(|| AsmError::UndefinedLabel(label.to_string()))
        };

        let mut image = vec![0u8; data_base_off + self.data.len()];
        image[data_base_off..].copy_from_slice(&self.data);

        let mut pc = self.base;
        let emit = |image: &mut Vec<u8>, pc: &mut u64, inst: Inst| {
            let off = (*pc - self.base) as usize;
            image[off..off + 4].copy_from_slice(&crate::inst::encode(inst).to_le_bytes());
            *pc += 4;
        };

        for item in &self.items {
            match item {
                Item::Inst(inst) => emit(&mut image, &mut pc, *inst),
                Item::Branch { cond, rs1, rs2, label } => {
                    let target = resolve(label)?;
                    let offset = target as i64 - pc as i64;
                    if !(-4096..=4094).contains(&offset) {
                        return Err(AsmError::BranchOutOfRange { label: label.clone(), offset });
                    }
                    emit(
                        &mut image,
                        &mut pc,
                        Inst::Branch { cond: *cond, rs1: *rs1, rs2: *rs2, offset: offset as i32 },
                    );
                }
                Item::Jal { rd, label } => {
                    let target = resolve(label)?;
                    let offset = target as i64 - pc as i64;
                    if !(-(1 << 20)..(1 << 20)).contains(&offset) {
                        return Err(AsmError::JumpOutOfRange { label: label.clone(), offset });
                    }
                    emit(&mut image, &mut pc, Inst::Jal { rd: *rd, offset: offset as i32 });
                }
                Item::La { rd, label } => {
                    let target = resolve(label)?;
                    let delta = target.wrapping_sub(pc) as i64;
                    let hi = (delta + 0x800) >> 12 << 12;
                    let lo = (delta - hi) as i32;
                    emit(&mut image, &mut pc, Inst::Auipc { rd: *rd, imm: hi });
                    emit(
                        &mut image,
                        &mut pc,
                        Inst::OpImm { op: AluOp::Add, rd: *rd, rs1: *rd, imm: lo },
                    );
                }
            }
        }
        debug_assert_eq!(pc - self.base, text_len as u64);

        let symbols = self.labels.iter().map(|(name, loc)| (name.clone(), addr_of(*loc))).collect();
        Ok(Program::new(self.base, text_len, image, symbols, self.stack_top))
    }
}

macro_rules! r_type {
    ($($(#[$doc:meta])* $name:ident => $op:expr;)*) => {
        impl Assembler {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
                    self.inst(Inst::Op { op: $op, rd, rs1, rs2 });
                }
            )*
        }
    };
}

r_type! {
    /// `add rd, rs1, rs2`.
    add => AluOp::Add;
    /// `sub rd, rs1, rs2`.
    sub => AluOp::Sub;
    /// `sll rd, rs1, rs2`.
    sll => AluOp::Sll;
    /// `slt rd, rs1, rs2`.
    slt => AluOp::Slt;
    /// `sltu rd, rs1, rs2`.
    sltu => AluOp::Sltu;
    /// `xor rd, rs1, rs2`.
    xor => AluOp::Xor;
    /// `srl rd, rs1, rs2`.
    srl => AluOp::Srl;
    /// `sra rd, rs1, rs2`.
    sra => AluOp::Sra;
    /// `or rd, rs1, rs2`.
    or => AluOp::Or;
    /// `and rd, rs1, rs2`.
    and => AluOp::And;
    /// `addw rd, rs1, rs2`.
    addw => AluOp::Addw;
    /// `subw rd, rs1, rs2`.
    subw => AluOp::Subw;
    /// `sllw rd, rs1, rs2`.
    sllw => AluOp::Sllw;
    /// `srlw rd, rs1, rs2`.
    srlw => AluOp::Srlw;
    /// `sraw rd, rs1, rs2`.
    sraw => AluOp::Sraw;
}

macro_rules! m_type {
    ($($(#[$doc:meta])* $name:ident => $op:expr;)*) => {
        impl Assembler {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
                    self.inst(Inst::MulDiv { op: $op, rd, rs1, rs2 });
                }
            )*
        }
    };
}

m_type! {
    /// `mul rd, rs1, rs2`.
    mul => MulOp::Mul;
    /// `mulh rd, rs1, rs2`.
    mulh => MulOp::Mulh;
    /// `mulhu rd, rs1, rs2`.
    mulhu => MulOp::Mulhu;
    /// `div rd, rs1, rs2`.
    div => MulOp::Div;
    /// `divu rd, rs1, rs2`.
    divu => MulOp::Divu;
    /// `rem rd, rs1, rs2`.
    rem => MulOp::Rem;
    /// `remu rd, rs1, rs2`.
    remu => MulOp::Remu;
    /// `mulw rd, rs1, rs2`.
    mulw => MulOp::Mulw;
    /// `divw rd, rs1, rs2`.
    divw => MulOp::Divw;
    /// `remw rd, rs1, rs2`.
    remw => MulOp::Remw;
}

macro_rules! i_type {
    ($($(#[$doc:meta])* $name:ident => $op:expr;)*) => {
        impl Assembler {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, rd: Reg, rs1: Reg, imm: i32) {
                    self.inst(Inst::OpImm { op: $op, rd, rs1, imm });
                }
            )*
        }
    };
}

i_type! {
    /// `addi rd, rs1, imm`.
    addi => AluOp::Add;
    /// `slti rd, rs1, imm`.
    slti => AluOp::Slt;
    /// `sltiu rd, rs1, imm`.
    sltiu => AluOp::Sltu;
    /// `xori rd, rs1, imm`.
    xori => AluOp::Xor;
    /// `ori rd, rs1, imm`.
    ori => AluOp::Or;
    /// `andi rd, rs1, imm`.
    andi => AluOp::And;
    /// `slli rd, rs1, shamt`.
    slli => AluOp::Sll;
    /// `srli rd, rs1, shamt`.
    srli => AluOp::Srl;
    /// `srai rd, rs1, shamt`.
    srai => AluOp::Sra;
    /// `addiw rd, rs1, imm`.
    addiw => AluOp::Addw;
    /// `slliw rd, rs1, shamt`.
    slliw => AluOp::Sllw;
    /// `srliw rd, rs1, shamt`.
    srliw => AluOp::Srlw;
    /// `sraiw rd, rs1, shamt`.
    sraiw => AluOp::Sraw;
}

macro_rules! load_type {
    ($($(#[$doc:meta])* $name:ident => $kind:expr;)*) => {
        impl Assembler {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, rd: Reg, rs1: Reg, offset: i32) {
                    self.inst(Inst::Load { kind: $kind, rd, rs1, offset });
                }
            )*
        }
    };
}

load_type! {
    /// `lb rd, offset(rs1)`.
    lb => LoadKind::B;
    /// `lh rd, offset(rs1)`.
    lh => LoadKind::H;
    /// `lw rd, offset(rs1)`.
    lw => LoadKind::W;
    /// `ld rd, offset(rs1)`.
    ld => LoadKind::D;
    /// `lbu rd, offset(rs1)`.
    lbu => LoadKind::Bu;
    /// `lhu rd, offset(rs1)`.
    lhu => LoadKind::Hu;
    /// `lwu rd, offset(rs1)`.
    lwu => LoadKind::Wu;
}

macro_rules! store_type {
    ($($(#[$doc:meta])* $name:ident => $kind:expr;)*) => {
        impl Assembler {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, rs2: Reg, rs1: Reg, offset: i32) {
                    self.inst(Inst::Store { kind: $kind, rs1, rs2, offset });
                }
            )*
        }
    };
}

store_type! {
    /// `sb rs2, offset(rs1)`.
    sb => StoreKind::B;
    /// `sh rs2, offset(rs1)`.
    sh => StoreKind::H;
    /// `sw rs2, offset(rs1)`.
    sw => StoreKind::W;
    /// `sd rs2, offset(rs1)`.
    sd => StoreKind::D;
}

macro_rules! fp_r_type {
    ($($(#[$doc:meta])* $name:ident => ($op:expr, $fmt:expr);)*) => {
        impl Assembler {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, rd: FReg, rs1: FReg, rs2: FReg) {
                    self.inst(Inst::FpOp { op: $op, fmt: $fmt, rd, rs1, rs2 });
                }
            )*
        }
    };
}

fp_r_type! {
    /// `fadd.d rd, rs1, rs2`.
    fadd_d => (FpOp::Add, FpFmt::D);
    /// `fsub.d rd, rs1, rs2`.
    fsub_d => (FpOp::Sub, FpFmt::D);
    /// `fmul.d rd, rs1, rs2`.
    fmul_d => (FpOp::Mul, FpFmt::D);
    /// `fdiv.d rd, rs1, rs2`.
    fdiv_d => (FpOp::Div, FpFmt::D);
    /// `fmin.d rd, rs1, rs2`.
    fmin_d => (FpOp::Min, FpFmt::D);
    /// `fmax.d rd, rs1, rs2`.
    fmax_d => (FpOp::Max, FpFmt::D);
    /// `fadd.s rd, rs1, rs2`.
    fadd_s => (FpOp::Add, FpFmt::S);
    /// `fsub.s rd, rs1, rs2`.
    fsub_s => (FpOp::Sub, FpFmt::S);
    /// `fmul.s rd, rs1, rs2`.
    fmul_s => (FpOp::Mul, FpFmt::S);
    /// `fdiv.s rd, rs1, rs2`.
    fdiv_s => (FpOp::Div, FpFmt::S);
}

impl Assembler {
    /// `fsqrt.d rd, rs1`.
    pub fn fsqrt_d(&mut self, rd: FReg, rs1: FReg) {
        self.inst(Inst::FpOp { op: FpOp::Sqrt, fmt: FpFmt::D, rd, rs1, rs2: rs1 });
    }

    /// `fld rd, offset(rs1)`.
    pub fn fld(&mut self, rd: FReg, rs1: Reg, offset: i32) {
        self.inst(Inst::FpLoad { fmt: FpFmt::D, rd, rs1, offset });
    }

    /// `fsd rs2, offset(rs1)`.
    pub fn fsd(&mut self, rs2: FReg, rs1: Reg, offset: i32) {
        self.inst(Inst::FpStore { fmt: FpFmt::D, rs1, rs2, offset });
    }

    /// `flw rd, offset(rs1)`.
    pub fn flw(&mut self, rd: FReg, rs1: Reg, offset: i32) {
        self.inst(Inst::FpLoad { fmt: FpFmt::S, rd, rs1, offset });
    }

    /// `fsw rs2, offset(rs1)`.
    pub fn fsw(&mut self, rs2: FReg, rs1: Reg, offset: i32) {
        self.inst(Inst::FpStore { fmt: FpFmt::S, rs1, rs2, offset });
    }

    /// `fmadd.d rd, rs1, rs2, rs3` (`rd = rs1*rs2 + rs3`).
    pub fn fmadd_d(&mut self, rd: FReg, rs1: FReg, rs2: FReg, rs3: FReg) {
        self.inst(Inst::FpFma { op: FmaOp::Madd, fmt: FpFmt::D, rd, rs1, rs2, rs3 });
    }

    /// `fmsub.d rd, rs1, rs2, rs3` (`rd = rs1*rs2 - rs3`).
    pub fn fmsub_d(&mut self, rd: FReg, rs1: FReg, rs2: FReg, rs3: FReg) {
        self.inst(Inst::FpFma { op: FmaOp::Msub, fmt: FpFmt::D, rd, rs1, rs2, rs3 });
    }

    /// `fnmsub.d rd, rs1, rs2, rs3` (`rd = -(rs1*rs2) + rs3`).
    pub fn fnmsub_d(&mut self, rd: FReg, rs1: FReg, rs2: FReg, rs3: FReg) {
        self.inst(Inst::FpFma { op: FmaOp::Nmsub, fmt: FpFmt::D, rd, rs1, rs2, rs3 });
    }

    /// `feq.d rd, rs1, rs2`.
    pub fn feq_d(&mut self, rd: Reg, rs1: FReg, rs2: FReg) {
        self.inst(Inst::FpCmp { cmp: FpCmp::Eq, fmt: FpFmt::D, rd, rs1, rs2 });
    }

    /// `flt.d rd, rs1, rs2`.
    pub fn flt_d(&mut self, rd: Reg, rs1: FReg, rs2: FReg) {
        self.inst(Inst::FpCmp { cmp: FpCmp::Lt, fmt: FpFmt::D, rd, rs1, rs2 });
    }

    /// `fle.d rd, rs1, rs2`.
    pub fn fle_d(&mut self, rd: Reg, rs1: FReg, rs2: FReg) {
        self.inst(Inst::FpCmp { cmp: FpCmp::Le, fmt: FpFmt::D, rd, rs1, rs2 });
    }

    /// `fcvt.d.l rd, rs1` (signed 64-bit int → double).
    pub fn fcvt_d_l(&mut self, rd: FReg, rs1: Reg) {
        self.inst(Inst::FpCvtFromInt { from: CvtInt::L, fmt: FpFmt::D, rd, rs1 });
    }

    /// `fcvt.d.w rd, rs1` (signed 32-bit int → double).
    pub fn fcvt_d_w(&mut self, rd: FReg, rs1: Reg) {
        self.inst(Inst::FpCvtFromInt { from: CvtInt::W, fmt: FpFmt::D, rd, rs1 });
    }

    /// `fcvt.l.d rd, rs1, rtz` (double → signed 64-bit int, truncating).
    pub fn fcvt_l_d(&mut self, rd: Reg, rs1: FReg) {
        self.inst(Inst::FpCvtToInt { to: CvtInt::L, fmt: FpFmt::D, rd, rs1, rm: Rm::Rtz });
    }

    /// `fcvt.w.d rd, rs1, rtz` (double → signed 32-bit int, truncating).
    pub fn fcvt_w_d(&mut self, rd: Reg, rs1: FReg) {
        self.inst(Inst::FpCvtToInt { to: CvtInt::W, fmt: FpFmt::D, rd, rs1, rm: Rm::Rtz });
    }

    /// `fmv.x.d rd, rs1`.
    pub fn fmv_x_d(&mut self, rd: Reg, rs1: FReg) {
        self.inst(Inst::FpMvToInt { fmt: FpFmt::D, rd, rs1 });
    }

    /// `fmv.d.x rd, rs1`.
    pub fn fmv_d_x(&mut self, rd: FReg, rs1: Reg) {
        self.inst(Inst::FpMvFromInt { fmt: FpFmt::D, rd, rs1 });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::decode;
    use crate::mem::Memory;
    use crate::reg::Reg::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Assembler::new();
        a.label("start");
        a.beqz(A0, "end");
        a.j("start");
        a.label("end");
        a.exit();
        let p = a.assemble().unwrap();
        assert_eq!(p.symbol("start"), Some(p.base()));
        // first instruction branches forward by 8 bytes
        let w = u32::from_le_bytes(p.image()[0..4].try_into().unwrap());
        match decode(w).unwrap() {
            Inst::Branch { offset, .. } => assert_eq!(offset, 8),
            i => panic!("unexpected {i}"),
        }
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Assembler::new();
        a.j("nowhere");
        assert_eq!(a.assemble().unwrap_err(), AsmError::UndefinedLabel("nowhere".into()));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut a = Assembler::new();
        a.label("x");
        a.exit();
        a.data_label("x");
        a.dwords(&[1]);
        assert_eq!(a.assemble().unwrap_err(), AsmError::DuplicateLabel("x".into()));
    }

    #[test]
    fn la_points_at_data() {
        let mut a = Assembler::new();
        a.la(A0, "blob");
        a.exit();
        a.data_label("blob");
        a.dwords(&[0xDEAD_BEEF]);
        let p = a.assemble().unwrap();
        let addr = p.symbol("blob").unwrap();
        let mut mem = Memory::new();
        p.load(&mut mem);
        assert_eq!(mem.read(addr, 8), 0xDEAD_BEEF);
        assert!(addr >= p.base() + p.text_len() as u64);
        assert_eq!(addr % 8, 0);
    }

    #[test]
    fn branch_out_of_range_detected() {
        let mut a = Assembler::new();
        a.beqz(A0, "far");
        for _ in 0..2000 {
            a.nop();
        }
        a.label("far");
        a.exit();
        match a.assemble().unwrap_err() {
            AsmError::BranchOutOfRange { label, .. } => assert_eq!(label, "far"),
            e => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn all_emitted_words_decode() {
        let mut a = Assembler::new();
        a.li(A0, 0x1234_5678_9abc_def0u64 as i64);
        a.li(A1, -5);
        a.li(A2, 1 << 20);
        a.la(A3, "d");
        a.lw(A4, A3, 0);
        a.fld(FReg::Fa0, A3, 8);
        a.fadd_d(FReg::Fa1, FReg::Fa0, FReg::Fa0);
        a.exit();
        a.data_label("d");
        a.doubles(&[0.0, 3.25]);
        let p = a.assemble().unwrap();
        for chunk in p.image()[..p.text_len()].chunks_exact(4) {
            let w = u32::from_le_bytes(chunk.try_into().unwrap());
            decode(w).unwrap_or_else(|e| panic!("{e}"));
        }
    }
}
