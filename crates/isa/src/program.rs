//! Loadable program images produced by the assembler.

use crate::image::{DecodedImage, SharedImage};
use crate::mem::Memory;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// A position-fixed, bare-metal program image (text followed by data).
///
/// Produced by [`crate::asm::Assembler::assemble`]; loaded into a simulator
/// with [`Program::load`].
#[derive(Clone, Debug)]
pub struct Program {
    base: u64,
    text_len: usize,
    image: Vec<u8>,
    symbols: HashMap<String, u64>,
    stack_top: u64,
    /// Text segment predecoded on first use (clones share the `Arc`);
    /// excluded from [`Program::fingerprint`] — it is a pure function of
    /// the other fields.
    decoded: OnceLock<SharedImage>,
}

impl Program {
    pub(crate) fn new(
        base: u64,
        text_len: usize,
        image: Vec<u8>,
        symbols: HashMap<String, u64>,
        stack_top: u64,
    ) -> Program {
        Program { base, text_len, image, symbols, stack_top, decoded: OnceLock::new() }
    }

    /// Load address of the first text byte; also the entry point.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Entry-point address (equal to [`Program::base`]).
    pub fn entry(&self) -> u64 {
        self.base
    }

    /// Initial stack-pointer value simulators should install.
    pub fn stack_top(&self) -> u64 {
        self.stack_top
    }

    /// Size of the text (code) section in bytes.
    pub fn text_len(&self) -> usize {
        self.text_len
    }

    /// The full image (text + data) as raw bytes.
    pub fn image(&self) -> &[u8] {
        &self.image
    }

    /// Address of a label defined during assembly, if present.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Stable content fingerprint (FNV-1a over the image and load
    /// geometry), used as a cache key by artifact stores: two programs
    /// with the same fingerprint execute identically, so profiling and
    /// checkpoint artifacts derived from one are valid for the other.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(&self.base.to_le_bytes());
        eat(&(self.text_len as u64).to_le_bytes());
        eat(&self.stack_top.to_le_bytes());
        eat(&self.image);
        h
    }

    /// Copies the image into `mem` at its base address, first reserving a
    /// contiguous flat region covering the image and the stack so the hot
    /// read/write paths skip the overflow page table entirely.
    pub fn load(&self, mem: &mut Memory) {
        let image_end = self.base + self.image.len() as u64;
        mem.reserve_flat(self.base, self.stack_top.max(image_end));
        mem.write_bytes(self.base, &self.image);
    }

    /// The text segment predecoded into a dense instruction table,
    /// computed once per program and shared behind [`Arc`] by every
    /// simulator (functional CPUs, detailed cores, checkpoints, worker
    /// threads).
    pub fn decoded_image(&self) -> SharedImage {
        self.decoded
            .get_or_init(|| {
                Arc::new(DecodedImage::decode_text(self.base, &self.image[..self.text_len]))
            })
            .clone()
    }

    /// Number of static instructions in the text section.
    pub fn inst_count(&self) -> usize {
        self.text_len / 4
    }
}
