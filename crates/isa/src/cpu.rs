//! Functional (architectural) RV64IMFD simulator — the Spike role.
//!
//! The functional CPU executes instructions one at a time with no timing
//! model. It is used to run workloads to completion, to collect
//! basic-block vectors for SimPoint, to create architectural checkpoints,
//! and as the golden model for co-simulation against the out-of-order core.

use crate::exec::{self, Loaded, Operands, Outcome};
use crate::inst::{decode, Inst};
use crate::mem::Memory;
use crate::program::Program;
use crate::reg::{FReg, Reg};
use std::fmt;

/// Why a [`Cpu::run`] call stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// The program executed the exit `ecall`; carries the exit code (`a0`).
    Exited(u64),
    /// The instruction budget was exhausted before the program exited.
    InstLimit,
    /// An `ebreak` was executed.
    Breakpoint,
}

/// Fatal simulation error.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimError {
    /// Fetched word does not decode.
    IllegalInst {
        /// Faulting program counter.
        pc: u64,
        /// The fetched word.
        word: u32,
    },
    /// `ecall` with an `a7` value the harness does not implement.
    UnsupportedSyscall {
        /// Faulting program counter.
        pc: u64,
        /// The `a7` syscall number.
        num: u64,
    },
    /// The executor produced a destination write for an instruction that
    /// has no destination of that class (a decode/execute disagreement —
    /// a model bug, not a guest-program fault).
    NoDestination {
        /// Program counter of the offending instruction.
        pc: u64,
        /// Register-file class of the attempted write.
        fp: bool,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::IllegalInst { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at pc {pc:#x}")
            }
            SimError::UnsupportedSyscall { pc, num } => {
                write!(f, "unsupported syscall {num} at pc {pc:#x}")
            }
            SimError::NoDestination { pc, fp } => {
                let class = if *fp { "FP" } else { "integer" };
                write!(f, "instruction at pc {pc:#x} has no {class} destination")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Information about one retired instruction, fed to profiling hooks.
#[derive(Clone, Copy, Debug)]
pub struct Retired {
    /// Address of the retired instruction.
    pub pc: u64,
    /// The instruction itself.
    pub inst: Inst,
    /// Address of the next instruction to execute.
    pub next_pc: u64,
    /// Set when this instruction was the exit `ecall`.
    pub exited: Option<u64>,
}

impl Retired {
    /// True if this instruction redirected (or could redirect) control flow.
    #[inline]
    pub fn ends_basic_block(&self) -> bool {
        self.inst.is_control_flow() || self.exited.is_some()
    }
}

/// Linux-style write syscall number accepted by the harness.
const SYS_WRITE: u64 = 64;
/// Linux-style exit syscall number accepted by the harness.
const SYS_EXIT: u64 = 93;

/// The functional simulator state.
#[derive(Clone, Debug)]
pub struct Cpu {
    pc: u64,
    x: [u64; 32],
    f: [u64; 32],
    /// The memory image (public: workload harnesses poke inputs directly).
    pub mem: Memory,
    instret: u64,
    console: Vec<u8>,
}

impl Cpu {
    /// Creates a CPU with `program` loaded and `sp` set to its stack top.
    pub fn new(program: &Program) -> Cpu {
        let mut mem = Memory::new();
        program.load(&mut mem);
        let mut cpu = Cpu {
            pc: program.entry(),
            x: [0; 32],
            f: [0; 32],
            mem,
            instret: 0,
            console: Vec::new(),
        };
        cpu.set_x(Reg::Sp, program.stack_top());
        cpu
    }

    /// Creates a CPU from raw architectural state (used by checkpoints).
    pub fn from_state(pc: u64, x: [u64; 32], f: [u64; 32], mem: Memory, instret: u64) -> Cpu {
        let mut cpu = Cpu { pc, x, f, mem, instret, console: Vec::new() };
        cpu.x[0] = 0;
        cpu
    }

    /// Current program counter.
    #[inline]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Number of instructions retired so far.
    #[inline]
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// Reads integer register `r`.
    #[inline]
    pub fn x(&self, r: Reg) -> u64 {
        self.x[r.index()]
    }

    /// Writes integer register `r` (writes to `zero` are ignored).
    #[inline]
    pub fn set_x(&mut self, r: Reg, v: u64) {
        if r != Reg::Zero {
            self.x[r.index()] = v;
        }
    }

    /// Reads the raw bits of FP register `r`.
    #[inline]
    pub fn fbits(&self, r: FReg) -> u64 {
        self.f[r.index()]
    }

    /// Writes the raw bits of FP register `r`.
    #[inline]
    pub fn set_fbits(&mut self, r: FReg, v: u64) {
        self.f[r.index()] = v;
    }

    /// All integer registers (for golden-model comparison).
    pub fn xregs(&self) -> &[u64; 32] {
        &self.x
    }

    /// All FP registers (for golden-model comparison).
    pub fn fregs(&self) -> &[u64; 32] {
        &self.f
    }

    /// Bytes written via the write syscall so far.
    pub fn console(&self) -> &[u8] {
        &self.console
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on an illegal instruction or unsupported syscall.
    pub fn step(&mut self) -> Result<Retired, SimError> {
        let pc = self.pc;
        let word = self.mem.fetch(pc);
        let inst = decode(word).map_err(|_| SimError::IllegalInst { pc, word })?;
        self.execute(pc, inst)
    }

    fn execute(&mut self, pc: u64, inst: Inst) -> Result<Retired, SimError> {
        let ops = self.operands(&inst);
        let mut next_pc = pc.wrapping_add(4);
        let mut exited = None;
        match exec::compute(&inst, pc, ops) {
            Outcome::WriteInt(v) => self.write_int_dest(pc, &inst, v)?,
            Outcome::WriteFp(v) => self.write_fp_dest(pc, &inst, v)?,
            Outcome::Load { addr, unit } => {
                let raw = self.mem.read(addr, unit.size());
                match exec::load_result(unit, raw) {
                    Loaded::Int(v) => self.write_int_dest(pc, &inst, v)?,
                    Loaded::Fp(v) => self.write_fp_dest(pc, &inst, v)?,
                }
            }
            Outcome::Store { addr, size, data } => self.mem.write(addr, size, data),
            Outcome::Branch { taken, target } => {
                if taken {
                    next_pc = target;
                }
            }
            Outcome::Jump { target, link } => {
                self.write_int_dest(pc, &inst, link)?;
                next_pc = target;
            }
            Outcome::Ecall => match self.x(Reg::A7) {
                SYS_EXIT => exited = Some(self.x(Reg::A0)),
                SYS_WRITE => {
                    let buf = self.x(Reg::A1);
                    let len = self.x(Reg::A2) as usize;
                    let bytes = self.mem.read_bytes(buf, len.min(1 << 20));
                    self.console.extend_from_slice(&bytes);
                    self.set_x(Reg::A0, len as u64);
                }
                num => return Err(SimError::UnsupportedSyscall { pc, num }),
            },
            Outcome::Ebreak | Outcome::Nop => {}
        }
        self.pc = next_pc;
        self.instret += 1;
        Ok(Retired { pc, inst, next_pc, exited })
    }

    #[inline]
    fn operands(&self, inst: &Inst) -> Operands {
        // Over-approximating reads (filling all operand slots the variant
        // names) is fine: `compute` only looks at the fields it needs.
        let mut ops = Operands::default();
        match *inst {
            Inst::Jalr { rs1, .. } | Inst::Load { rs1, .. } | Inst::FpLoad { rs1, .. } => {
                ops.rs1 = self.x(rs1);
            }
            Inst::Branch { rs1, rs2, .. } | Inst::Store { rs1, rs2, .. } => {
                ops.rs1 = self.x(rs1);
                ops.rs2 = self.x(rs2);
            }
            Inst::OpImm { rs1, .. } => ops.rs1 = self.x(rs1),
            Inst::Op { rs1, rs2, .. } | Inst::MulDiv { rs1, rs2, .. } => {
                ops.rs1 = self.x(rs1);
                ops.rs2 = self.x(rs2);
            }
            Inst::FpStore { rs1, rs2, .. } => {
                ops.rs1 = self.x(rs1);
                ops.fs2 = self.fbits(rs2);
            }
            Inst::FpOp { rs1, rs2, .. } => {
                ops.fs1 = self.fbits(rs1);
                ops.fs2 = self.fbits(rs2);
            }
            Inst::FpFma { rs1, rs2, rs3, .. } => {
                ops.fs1 = self.fbits(rs1);
                ops.fs2 = self.fbits(rs2);
                ops.fs3 = self.fbits(rs3);
            }
            Inst::FpCmp { rs1, rs2, .. } => {
                ops.fs1 = self.fbits(rs1);
                ops.fs2 = self.fbits(rs2);
            }
            Inst::FpCvtToInt { rs1, .. } | Inst::FpMvToInt { rs1, .. } => {
                ops.fs1 = self.fbits(rs1);
            }
            Inst::FpCvtFromInt { rs1, .. } | Inst::FpMvFromInt { rs1, .. } => {
                ops.rs1 = self.x(rs1);
            }
            Inst::FpCvtFmt { rs1, .. } => ops.fs1 = self.fbits(rs1),
            Inst::Lui { .. }
            | Inst::Auipc { .. }
            | Inst::Jal { .. }
            | Inst::Fence
            | Inst::Ecall
            | Inst::Ebreak => {}
        }
        ops
    }

    #[inline]
    fn write_int_dest(&mut self, pc: u64, inst: &Inst, v: u64) -> Result<(), SimError> {
        let rd = match *inst {
            Inst::Lui { rd, .. }
            | Inst::Auipc { rd, .. }
            | Inst::Jal { rd, .. }
            | Inst::Jalr { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::OpImm { rd, .. }
            | Inst::Op { rd, .. }
            | Inst::MulDiv { rd, .. }
            | Inst::FpCmp { rd, .. }
            | Inst::FpCvtToInt { rd, .. }
            | Inst::FpMvToInt { rd, .. } => rd,
            _ => return Err(SimError::NoDestination { pc, fp: false }),
        };
        self.set_x(rd, v);
        Ok(())
    }

    #[inline]
    fn write_fp_dest(&mut self, pc: u64, inst: &Inst, v: u64) -> Result<(), SimError> {
        let rd = match *inst {
            Inst::FpLoad { rd, .. }
            | Inst::FpOp { rd, .. }
            | Inst::FpFma { rd, .. }
            | Inst::FpCvtFromInt { rd, .. }
            | Inst::FpCvtFmt { rd, .. }
            | Inst::FpMvFromInt { rd, .. } => rd,
            _ => return Err(SimError::NoDestination { pc, fp: true }),
        };
        self.set_fbits(rd, v);
        Ok(())
    }

    /// Runs up to `max_insts` instructions.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`] encountered.
    pub fn run(&mut self, max_insts: u64) -> Result<StopReason, SimError> {
        self.run_with(max_insts, |_| {})
    }

    /// Runs up to `max_insts` instructions, invoking `hook` after each one.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`] encountered.
    pub fn run_with(
        &mut self,
        max_insts: u64,
        mut hook: impl FnMut(&Retired),
    ) -> Result<StopReason, SimError> {
        for _ in 0..max_insts {
            let r = self.step()?;
            hook(&r);
            if let Some(code) = r.exited {
                return Ok(StopReason::Exited(code));
            }
            if matches!(r.inst, Inst::Ebreak) {
                return Ok(StopReason::Breakpoint);
            }
        }
        Ok(StopReason::InstLimit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::reg::Reg::*;

    fn run_program(build: impl FnOnce(&mut Assembler)) -> Cpu {
        let mut a = Assembler::new();
        build(&mut a);
        let p = a.assemble().expect("assembly failed");
        let mut cpu = Cpu::new(&p);
        let stop = cpu.run(10_000_000).expect("sim error");
        assert!(matches!(stop, StopReason::Exited(_)), "did not exit: {stop:?}");
        cpu
    }

    #[test]
    fn arithmetic_loop() {
        let cpu = run_program(|a| {
            a.li(A0, 0);
            a.li(T0, 100);
            a.label("loop");
            a.add(A0, A0, T0);
            a.addi(T0, T0, -1);
            a.bnez(T0, "loop");
            a.exit();
        });
        assert_eq!(cpu.x(A0), 5050);
    }

    #[test]
    fn memory_store_load() {
        let cpu = run_program(|a| {
            a.la(A1, "buf");
            a.li(T0, 0x1122_3344_5566_7788);
            a.sd(T0, A1, 0);
            a.lw(A0, A1, 4); // upper word, sign-extended
            a.exit();
            a.data_label("buf");
            a.zeros(16);
        });
        assert_eq!(cpu.x(A0), 0x1122_3344);
    }

    #[test]
    fn function_call_and_return() {
        let cpu = run_program(|a| {
            a.li(A0, 20);
            a.call("double");
            a.call("double");
            a.exit();
            a.label("double");
            a.add(A0, A0, A0);
            a.ret();
        });
        assert_eq!(cpu.x(A0), 80);
    }

    #[test]
    fn fp_pipeline() {
        let cpu = run_program(|a| {
            a.la(T0, "vals");
            a.fld(crate::reg::FReg::Fa0, T0, 0);
            a.fld(crate::reg::FReg::Fa1, T0, 8);
            a.fmul_d(crate::reg::FReg::Fa2, crate::reg::FReg::Fa0, crate::reg::FReg::Fa1);
            a.fsqrt_d(crate::reg::FReg::Fa3, crate::reg::FReg::Fa2);
            a.fcvt_l_d(A0, crate::reg::FReg::Fa3);
            a.exit();
            a.data_label("vals");
            a.doubles(&[2.0, 8.0]);
        });
        assert_eq!(cpu.x(A0), 4);
    }

    #[test]
    fn console_write_syscall() {
        let cpu = run_program(|a| {
            a.la(A1, "msg");
            a.li(A2, 5);
            a.li(A0, 1);
            a.li(A7, 64);
            a.inst(crate::inst::Inst::Ecall);
            a.exit();
            a.data_label("msg");
            a.bytes(b"hello");
        });
        assert_eq!(cpu.console(), b"hello");
    }

    #[test]
    fn writes_to_zero_are_discarded() {
        let cpu = run_program(|a| {
            a.li(T0, 42);
            a.add(Zero, T0, T0);
            a.mv(A0, Zero);
            a.exit();
        });
        assert_eq!(cpu.x(A0), 0);
    }

    #[test]
    fn illegal_instruction_reported() {
        let mut a = Assembler::new();
        a.nop();
        let p = a.assemble().unwrap();
        let mut cpu = Cpu::new(&p);
        cpu.step().unwrap();
        // next fetch reads zeroed memory -> illegal
        let err = cpu.step().unwrap_err();
        assert!(matches!(err, SimError::IllegalInst { word: 0, .. }));
    }

    #[test]
    fn instret_counts() {
        let cpu = run_program(|a| {
            a.li(A0, 7); // 1 inst
            a.exit(); // li a7 + ecall = 2 insts
        });
        assert_eq!(cpu.instret(), 3);
    }
}
