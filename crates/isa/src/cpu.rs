//! Functional (architectural) RV64IMFD simulator — the Spike role.
//!
//! The functional CPU executes instructions one at a time with no timing
//! model. It is used to run workloads to completion, to collect
//! basic-block vectors for SimPoint, to create architectural checkpoints,
//! and as the golden model for co-simulation against the out-of-order core.

use crate::exec::{self, Loaded, Operands, Outcome};
use crate::image::SharedImage;
use crate::inst::{decode, Inst, LoadKind, StoreKind};
use crate::mem::Memory;
use crate::program::Program;
use crate::reg::{FReg, Reg};
use std::fmt;
use std::sync::Arc;

/// Why a [`Cpu::run`] call stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// The program executed the exit `ecall`; carries the exit code (`a0`).
    Exited(u64),
    /// The instruction budget was exhausted before the program exited.
    InstLimit,
    /// An `ebreak` was executed.
    Breakpoint,
}

/// Fatal simulation error.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimError {
    /// Fetched word does not decode.
    IllegalInst {
        /// Faulting program counter.
        pc: u64,
        /// The fetched word.
        word: u32,
    },
    /// `ecall` with an `a7` value the harness does not implement.
    UnsupportedSyscall {
        /// Faulting program counter.
        pc: u64,
        /// The `a7` syscall number.
        num: u64,
    },
    /// The executor produced a destination write for an instruction that
    /// has no destination of that class (a decode/execute disagreement —
    /// a model bug, not a guest-program fault).
    NoDestination {
        /// Program counter of the offending instruction.
        pc: u64,
        /// Register-file class of the attempted write.
        fp: bool,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::IllegalInst { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at pc {pc:#x}")
            }
            SimError::UnsupportedSyscall { pc, num } => {
                write!(f, "unsupported syscall {num} at pc {pc:#x}")
            }
            SimError::NoDestination { pc, fp } => {
                let class = if *fp { "FP" } else { "integer" };
                write!(f, "instruction at pc {pc:#x} has no {class} destination")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Information about one retired instruction, fed to profiling hooks.
#[derive(Clone, Copy, Debug)]
pub struct Retired {
    /// Address of the retired instruction.
    pub pc: u64,
    /// The instruction itself.
    pub inst: Inst,
    /// Address of the next instruction to execute.
    pub next_pc: u64,
    /// Set when this instruction was the exit `ecall`.
    pub exited: Option<u64>,
}

impl Retired {
    /// True if this instruction redirected (or could redirect) control flow.
    #[inline]
    pub fn ends_basic_block(&self) -> bool {
        self.inst.is_control_flow() || self.exited.is_some()
    }
}

/// Linux-style write syscall number accepted by the harness.
const SYS_WRITE: u64 = 64;
/// Linux-style exit syscall number accepted by the harness.
const SYS_EXIT: u64 = 93;

/// The functional simulator state.
#[derive(Clone, Debug)]
pub struct Cpu {
    pc: u64,
    x: [u64; 32],
    f: [u64; 32],
    /// The memory image (public: workload harnesses poke inputs directly).
    pub mem: Memory,
    instret: u64,
    console: Vec<u8>,
    /// Predecoded text (the hot fetch path); `None` falls back to
    /// fetch + decode from memory on every step.
    image: Option<SharedImage>,
    /// Cached image range for the store-side SMC guard (both zero when
    /// no image is attached, so the guard never fires).
    text_base: u64,
    text_end: u64,
    /// Bumped whenever `image` changes (attach, detach, SMC
    /// invalidation) so [`Cpu::run_with`] knows its hoisted view of the
    /// image table is stale and must be re-derived.
    image_epoch: u64,
}

impl Cpu {
    /// Creates a CPU with `program` loaded and `sp` set to its stack top.
    pub fn new(program: &Program) -> Cpu {
        let mut mem = Memory::new();
        program.load(&mut mem);
        let mut cpu = Cpu {
            pc: program.entry(),
            x: [0; 32],
            f: [0; 32],
            mem,
            instret: 0,
            console: Vec::new(),
            image: None,
            text_base: 0,
            text_end: 0,
            image_epoch: 0,
        };
        cpu.set_x(Reg::Sp, program.stack_top());
        cpu.attach_image(program.decoded_image());
        cpu
    }

    /// Creates a CPU from raw architectural state (used by checkpoints).
    /// No predecoded image is attached; use [`Cpu::attach_image`] to
    /// restore the fast fetch path.
    pub fn from_state(pc: u64, x: [u64; 32], f: [u64; 32], mem: Memory, instret: u64) -> Cpu {
        let mut cpu = Cpu {
            pc,
            x,
            f,
            mem,
            instret,
            console: Vec::new(),
            image: None,
            text_base: 0,
            text_end: 0,
            image_epoch: 0,
        };
        cpu.x[0] = 0;
        cpu
    }

    /// Attaches a predecoded text image, enabling the fast fetch path.
    ///
    /// The image must agree with this CPU's memory contents over its
    /// range (it normally comes from the same [`Program`] that memory was
    /// loaded from, possibly via a checkpoint); execution results are
    /// identical with or without it.
    pub fn attach_image(&mut self, image: SharedImage) {
        self.text_base = image.base();
        self.text_end = image.end();
        self.image = Some(image);
        self.image_epoch += 1;
    }

    /// Detaches the predecoded image, forcing fetch + decode from memory
    /// on every step (the reference path; used by equivalence tests).
    pub fn detach_image(&mut self) {
        self.image = None;
        self.text_base = 0;
        self.text_end = 0;
        self.image_epoch += 1;
    }

    /// The attached predecoded image, if any (checkpoints carry it along).
    pub fn image(&self) -> Option<&SharedImage> {
        self.image.as_ref()
    }

    /// Current program counter.
    #[inline]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Number of instructions retired so far.
    #[inline]
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// Reads integer register `r`.
    #[inline]
    pub fn x(&self, r: Reg) -> u64 {
        self.x[r.index()]
    }

    /// Writes integer register `r` (writes to `zero` are ignored).
    #[inline]
    pub fn set_x(&mut self, r: Reg, v: u64) {
        if r != Reg::Zero {
            self.x[r.index()] = v;
        }
    }

    /// Reads the raw bits of FP register `r`.
    #[inline]
    pub fn fbits(&self, r: FReg) -> u64 {
        self.f[r.index()]
    }

    /// Writes the raw bits of FP register `r`.
    #[inline]
    pub fn set_fbits(&mut self, r: FReg, v: u64) {
        self.f[r.index()] = v;
    }

    /// All integer registers (for golden-model comparison).
    pub fn xregs(&self) -> &[u64; 32] {
        &self.x
    }

    /// All FP registers (for golden-model comparison).
    pub fn fregs(&self) -> &[u64; 32] {
        &self.f
    }

    /// Bytes written via the write syscall so far.
    pub fn console(&self) -> &[u8] {
        &self.console
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on an illegal instruction or unsupported syscall.
    #[inline]
    pub fn step(&mut self) -> Result<Retired, SimError> {
        let pc = self.pc;
        let inst = match self.image.as_ref().and_then(|image| image.lookup(pc)) {
            Some(inst) => inst,
            None => {
                let word = self.mem.fetch(pc);
                decode(word).map_err(|_| SimError::IllegalInst { pc, word })?
            }
        };
        match self.execute_hot(pc, inst) {
            Some(r) => {
                self.pc = r.next_pc;
                self.instret += 1;
                Ok(r)
            }
            None => self.execute_generic(pc, inst),
        }
    }

    /// Executes the hot integer variants with a single dispatch on the
    /// instruction, calling the same semantic helpers (`exec::alu`,
    /// `exec::load_result`-equivalent extensions, `BrCond::eval`) as the
    /// generic path — this fuses the operand-read / compute / outcome /
    /// destination matches into one, and the lockstep co-simulation
    /// tests in `boom-uarch` (core: generic `exec::compute`; golden
    /// model: this path) cross-check the two on every workload.
    ///
    /// Returns `None` for everything else (FP, ecall, …), which callers
    /// route to [`Cpu::execute_generic`]. The hot arms cannot fault and
    /// do **not** touch `self.pc` / `self.instret`: [`Cpu::run_with`]
    /// carries both in locals so the inter-instruction dependency is a
    /// register, not a store/load round trip — callers own the
    /// write-back.
    #[inline]
    fn execute_hot(&mut self, pc: u64, inst: Inst) -> Option<Retired> {
        let mut next_pc = pc.wrapping_add(4);
        match inst {
            Inst::OpImm { op, rd, rs1, imm } => {
                let v = exec::alu(op, self.x(rs1), imm as i64 as u64);
                self.set_x(rd, v);
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                let v = exec::alu(op, self.x(rs1), self.x(rs2));
                self.set_x(rd, v);
            }
            Inst::MulDiv { op, rd, rs1, rs2 } => {
                let v = exec::muldiv(op, self.x(rs1), self.x(rs2));
                self.set_x(rd, v);
            }
            Inst::Branch { cond, rs1, rs2, offset } => {
                if cond.eval(self.x(rs1), self.x(rs2)) {
                    next_pc = pc.wrapping_add(offset as i64 as u64);
                }
            }
            Inst::Load { kind, rd, rs1, offset } => {
                let addr = self.x(rs1).wrapping_add(offset as i64 as u64);
                // Dispatch on `kind` once: the constant size folds into
                // `Memory::read`'s width match and the sign extension
                // happens inline, matching `exec::load_result` exactly.
                let v = match kind {
                    LoadKind::B => self.mem.read(addr, 1) as i8 as i64 as u64,
                    LoadKind::H => self.mem.read(addr, 2) as i16 as i64 as u64,
                    LoadKind::W => self.mem.read(addr, 4) as i32 as i64 as u64,
                    LoadKind::D => self.mem.read(addr, 8),
                    LoadKind::Bu => self.mem.read(addr, 1),
                    LoadKind::Hu => self.mem.read(addr, 2),
                    LoadKind::Wu => self.mem.read(addr, 4),
                };
                self.set_x(rd, v);
            }
            Inst::Store { kind, rs1, rs2, offset } => {
                let addr = self.x(rs1).wrapping_add(offset as i64 as u64);
                let data = self.x(rs2);
                // As with loads, dispatch on `kind` once so the width is
                // a constant in each `Memory::write` call.
                let size = match kind {
                    StoreKind::B => {
                        self.mem.write(addr, 1, data);
                        1
                    }
                    StoreKind::H => {
                        self.mem.write(addr, 2, data);
                        2
                    }
                    StoreKind::W => {
                        self.mem.write(addr, 4, data);
                        4
                    }
                    StoreKind::D => {
                        self.mem.write(addr, 8, data);
                        8
                    }
                };
                if addr < self.text_end && addr.wrapping_add(size) > self.text_base {
                    self.invalidate_text(addr, size);
                }
            }
            Inst::Jal { rd, offset } => {
                self.set_x(rd, pc.wrapping_add(4));
                next_pc = pc.wrapping_add(offset as i64 as u64);
            }
            Inst::Jalr { rd, rs1, offset } => {
                // Read `rs1` before linking: `jalr ra, ra, 0` must jump to
                // the old value.
                let target = self.x(rs1).wrapping_add(offset as i64 as u64) & !1;
                self.set_x(rd, pc.wrapping_add(4));
                next_pc = target;
            }
            _ => return None,
        }
        Some(Retired { pc, inst, next_pc, exited: None })
    }

    fn execute_generic(&mut self, pc: u64, inst: Inst) -> Result<Retired, SimError> {
        let ops = self.operands(&inst);
        let mut next_pc = pc.wrapping_add(4);
        let mut exited = None;
        match exec::compute(&inst, pc, ops) {
            Outcome::WriteInt(v) => self.write_int_dest(pc, &inst, v)?,
            Outcome::WriteFp(v) => self.write_fp_dest(pc, &inst, v)?,
            Outcome::Load { addr, unit } => {
                let raw = self.mem.read(addr, unit.size());
                match exec::load_result(unit, raw) {
                    Loaded::Int(v) => self.write_int_dest(pc, &inst, v)?,
                    Loaded::Fp(v) => self.write_fp_dest(pc, &inst, v)?,
                }
            }
            Outcome::Store { addr, size, data } => {
                self.mem.write(addr, size, data);
                if addr < self.text_end && addr.wrapping_add(size) > self.text_base {
                    self.invalidate_text(addr, size);
                }
            }
            Outcome::Branch { taken, target } => {
                if taken {
                    next_pc = target;
                }
            }
            Outcome::Jump { target, link } => {
                self.write_int_dest(pc, &inst, link)?;
                next_pc = target;
            }
            Outcome::Ecall => match self.x(Reg::A7) {
                SYS_EXIT => exited = Some(self.x(Reg::A0)),
                SYS_WRITE => {
                    let buf = self.x(Reg::A1);
                    let len = self.x(Reg::A2) as usize;
                    let bytes = self.mem.read_bytes(buf, len.min(1 << 20));
                    self.console.extend_from_slice(&bytes);
                    self.set_x(Reg::A0, len as u64);
                }
                num => return Err(SimError::UnsupportedSyscall { pc, num }),
            },
            Outcome::Ebreak | Outcome::Nop => {}
        }
        self.pc = next_pc;
        self.instret += 1;
        Ok(Retired { pc, inst, next_pc, exited })
    }

    /// Self-modifying code: a store hit the text range, so the stale
    /// predecoded slots must answer `None` from now on. Copy-on-write:
    /// other sharers of the image keep the pristine version.
    #[cold]
    fn invalidate_text(&mut self, addr: u64, size: u64) {
        if let Some(image) = &mut self.image {
            Arc::make_mut(image).invalidate(addr, size);
            self.image_epoch += 1;
        }
    }

    #[inline]
    fn operands(&self, inst: &Inst) -> Operands {
        // Over-approximating reads (filling all operand slots the variant
        // names) is fine: `compute` only looks at the fields it needs.
        let mut ops = Operands::default();
        match *inst {
            Inst::Jalr { rs1, .. } | Inst::Load { rs1, .. } | Inst::FpLoad { rs1, .. } => {
                ops.rs1 = self.x(rs1);
            }
            Inst::Branch { rs1, rs2, .. } | Inst::Store { rs1, rs2, .. } => {
                ops.rs1 = self.x(rs1);
                ops.rs2 = self.x(rs2);
            }
            Inst::OpImm { rs1, .. } => ops.rs1 = self.x(rs1),
            Inst::Op { rs1, rs2, .. } | Inst::MulDiv { rs1, rs2, .. } => {
                ops.rs1 = self.x(rs1);
                ops.rs2 = self.x(rs2);
            }
            Inst::FpStore { rs1, rs2, .. } => {
                ops.rs1 = self.x(rs1);
                ops.fs2 = self.fbits(rs2);
            }
            Inst::FpOp { rs1, rs2, .. } => {
                ops.fs1 = self.fbits(rs1);
                ops.fs2 = self.fbits(rs2);
            }
            Inst::FpFma { rs1, rs2, rs3, .. } => {
                ops.fs1 = self.fbits(rs1);
                ops.fs2 = self.fbits(rs2);
                ops.fs3 = self.fbits(rs3);
            }
            Inst::FpCmp { rs1, rs2, .. } => {
                ops.fs1 = self.fbits(rs1);
                ops.fs2 = self.fbits(rs2);
            }
            Inst::FpCvtToInt { rs1, .. } | Inst::FpMvToInt { rs1, .. } => {
                ops.fs1 = self.fbits(rs1);
            }
            Inst::FpCvtFromInt { rs1, .. } | Inst::FpMvFromInt { rs1, .. } => {
                ops.rs1 = self.x(rs1);
            }
            Inst::FpCvtFmt { rs1, .. } => ops.fs1 = self.fbits(rs1),
            Inst::Lui { .. }
            | Inst::Auipc { .. }
            | Inst::Jal { .. }
            | Inst::Fence
            | Inst::Ecall
            | Inst::Ebreak => {}
        }
        ops
    }

    #[inline]
    fn write_int_dest(&mut self, pc: u64, inst: &Inst, v: u64) -> Result<(), SimError> {
        let rd = match *inst {
            Inst::Lui { rd, .. }
            | Inst::Auipc { rd, .. }
            | Inst::Jal { rd, .. }
            | Inst::Jalr { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::OpImm { rd, .. }
            | Inst::Op { rd, .. }
            | Inst::MulDiv { rd, .. }
            | Inst::FpCmp { rd, .. }
            | Inst::FpCvtToInt { rd, .. }
            | Inst::FpMvToInt { rd, .. } => rd,
            _ => return Err(SimError::NoDestination { pc, fp: false }),
        };
        self.set_x(rd, v);
        Ok(())
    }

    #[inline]
    fn write_fp_dest(&mut self, pc: u64, inst: &Inst, v: u64) -> Result<(), SimError> {
        let rd = match *inst {
            Inst::FpLoad { rd, .. }
            | Inst::FpOp { rd, .. }
            | Inst::FpFma { rd, .. }
            | Inst::FpCvtFromInt { rd, .. }
            | Inst::FpCvtFmt { rd, .. }
            | Inst::FpMvFromInt { rd, .. } => rd,
            _ => return Err(SimError::NoDestination { pc, fp: true }),
        };
        self.set_fbits(rd, v);
        Ok(())
    }

    /// Runs up to `max_insts` instructions.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`] encountered.
    pub fn run(&mut self, max_insts: u64) -> Result<StopReason, SimError> {
        self.run_with(max_insts, |_| {})
    }

    /// Runs up to `max_insts` instructions, invoking `hook` after each one.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`] encountered.
    pub fn run_with(
        &mut self,
        max_insts: u64,
        mut hook: impl FnMut(&Retired),
    ) -> Result<StopReason, SimError> {
        let mut remaining = max_insts;
        // The two hot per-instruction dependencies live in locals:
        //
        //  * `pc` (and a pending `instret` delta in `done`) — carrying
        //    them in registers instead of `self` fields turns the
        //    inter-instruction dependency into a register move rather
        //    than a store/load round trip. `self.pc`/`self.instret` are
        //    stale inside the loop and synced on every exit path and
        //    around the generic-path calls (which maintain them
        //    directly).
        //  * the image table — `guard` keeps the allocation alive while
        //    `base`/`slots` sit in registers, reducing the fetch to a
        //    subtract, an alignment mask, and one indexed load.
        //    `image_epoch` says when the hoisted view went stale (SMC
        //    invalidation swaps the Arc via copy-on-write), in which
        //    case the outer loop re-derives it.
        let mut pc = self.pc;
        let mut done = 0u64;
        'reimage: loop {
            let guard = self.image.clone();
            let epoch = self.image_epoch;
            let (base, slots) = guard.as_ref().map_or((0, &[][..]), |i| (i.base(), i.slots()));
            while remaining > 0 {
                remaining -= 1;
                let off = pc.wrapping_sub(base);
                let slot = if off & 3 == 0 {
                    slots.get((off >> 2) as usize).copied().flatten()
                } else {
                    None
                };
                let inst = match slot {
                    Some(inst) => inst,
                    None => {
                        let word = self.mem.fetch(pc);
                        match decode(word) {
                            Ok(inst) => inst,
                            Err(_) => {
                                self.pc = pc;
                                self.instret += done;
                                return Err(SimError::IllegalInst { pc, word });
                            }
                        }
                    }
                };
                let r = match self.execute_hot(pc, inst) {
                    Some(r) => {
                        done += 1;
                        r
                    }
                    None => {
                        // Generic path: hand the architectural counters
                        // back to `self` (execute_generic faults with
                        // `self.pc` at the failing instruction and
                        // advances pc/instret itself on success).
                        self.pc = pc;
                        self.instret += done;
                        done = 0;
                        self.execute_generic(pc, inst)?
                    }
                };
                pc = r.next_pc;
                hook(&r);
                if let Some(code) = r.exited {
                    self.pc = pc;
                    self.instret += done;
                    return Ok(StopReason::Exited(code));
                }
                if matches!(r.inst, Inst::Ebreak) {
                    self.pc = pc;
                    self.instret += done;
                    return Ok(StopReason::Breakpoint);
                }
                if self.image_epoch != epoch {
                    continue 'reimage;
                }
            }
            self.pc = pc;
            self.instret += done;
            return Ok(StopReason::InstLimit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::reg::Reg::*;

    fn run_program(build: impl FnOnce(&mut Assembler)) -> Cpu {
        let mut a = Assembler::new();
        build(&mut a);
        let p = a.assemble().expect("assembly failed");
        let mut cpu = Cpu::new(&p);
        let stop = cpu.run(10_000_000).expect("sim error");
        assert!(matches!(stop, StopReason::Exited(_)), "did not exit: {stop:?}");
        cpu
    }

    #[test]
    fn arithmetic_loop() {
        let cpu = run_program(|a| {
            a.li(A0, 0);
            a.li(T0, 100);
            a.label("loop");
            a.add(A0, A0, T0);
            a.addi(T0, T0, -1);
            a.bnez(T0, "loop");
            a.exit();
        });
        assert_eq!(cpu.x(A0), 5050);
    }

    #[test]
    fn memory_store_load() {
        let cpu = run_program(|a| {
            a.la(A1, "buf");
            a.li(T0, 0x1122_3344_5566_7788);
            a.sd(T0, A1, 0);
            a.lw(A0, A1, 4); // upper word, sign-extended
            a.exit();
            a.data_label("buf");
            a.zeros(16);
        });
        assert_eq!(cpu.x(A0), 0x1122_3344);
    }

    #[test]
    fn function_call_and_return() {
        let cpu = run_program(|a| {
            a.li(A0, 20);
            a.call("double");
            a.call("double");
            a.exit();
            a.label("double");
            a.add(A0, A0, A0);
            a.ret();
        });
        assert_eq!(cpu.x(A0), 80);
    }

    #[test]
    fn fp_pipeline() {
        let cpu = run_program(|a| {
            a.la(T0, "vals");
            a.fld(crate::reg::FReg::Fa0, T0, 0);
            a.fld(crate::reg::FReg::Fa1, T0, 8);
            a.fmul_d(crate::reg::FReg::Fa2, crate::reg::FReg::Fa0, crate::reg::FReg::Fa1);
            a.fsqrt_d(crate::reg::FReg::Fa3, crate::reg::FReg::Fa2);
            a.fcvt_l_d(A0, crate::reg::FReg::Fa3);
            a.exit();
            a.data_label("vals");
            a.doubles(&[2.0, 8.0]);
        });
        assert_eq!(cpu.x(A0), 4);
    }

    #[test]
    fn console_write_syscall() {
        let cpu = run_program(|a| {
            a.la(A1, "msg");
            a.li(A2, 5);
            a.li(A0, 1);
            a.li(A7, 64);
            a.inst(crate::inst::Inst::Ecall);
            a.exit();
            a.data_label("msg");
            a.bytes(b"hello");
        });
        assert_eq!(cpu.console(), b"hello");
    }

    #[test]
    fn writes_to_zero_are_discarded() {
        let cpu = run_program(|a| {
            a.li(T0, 42);
            a.add(Zero, T0, T0);
            a.mv(A0, Zero);
            a.exit();
        });
        assert_eq!(cpu.x(A0), 0);
    }

    #[test]
    fn illegal_instruction_reported() {
        let mut a = Assembler::new();
        a.nop();
        let p = a.assemble().unwrap();
        let mut cpu = Cpu::new(&p);
        cpu.step().unwrap();
        // next fetch reads zeroed memory -> illegal
        let err = cpu.step().unwrap_err();
        assert!(matches!(err, SimError::IllegalInst { word: 0, .. }));
    }

    #[test]
    fn instret_counts() {
        let cpu = run_program(|a| {
            a.li(A0, 7); // 1 inst
            a.exit(); // li a7 + ecall = 2 insts
        });
        assert_eq!(cpu.instret(), 3);
    }
}
