//! Basic-block vector (BBV) collection — the gem5 profiling role in the
//! paper's SimPoint flow (Fig. 4).
//!
//! A basic block is a single-entry, single-exit straight-line code
//! sequence; execution is partitioned into fixed-size *intervals* of
//! dynamic instructions, and each interval is summarized by a vector of
//! per-block execution weights (block executions × block length). The
//! `simpoint` crate clusters these vectors to find program phases.

use crate::codec::{ByteReader, ByteWriter, CodecError};
use crate::cpu::Retired;
use crate::program::Program;
use std::collections::HashMap;

/// One profiling interval: a sparse basic-block weight vector.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Interval {
    /// Sparse `(block_id, dynamic_instruction_weight)` pairs, id-sorted.
    pub weights: Vec<(usize, u64)>,
    /// Total dynamic instructions attributed to this interval.
    pub len: u64,
}

/// A complete BBV profile of one program execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BbvProfile {
    /// Per-interval sparse vectors, in execution order.
    pub intervals: Vec<Interval>,
    /// Number of distinct static basic blocks observed (vector dimension).
    pub dim: usize,
    /// Interval size in dynamic instructions used during collection.
    pub interval_size: u64,
    /// Total dynamic instructions profiled.
    pub total_insts: u64,
}

impl BbvProfile {
    /// Instruction index (into the dynamic stream) where `interval` begins.
    ///
    /// O(interval) per call; when mapping many intervals, use
    /// [`BbvProfile::interval_starts`] once instead.
    pub fn interval_start(&self, interval: usize) -> u64 {
        self.intervals[..interval].iter().map(|iv| iv.len).sum()
    }

    /// Instruction index where each interval begins — one prefix-sum pass
    /// over the interval lengths, so mapping every selected SimPoint back
    /// to its dynamic position is linear instead of quadratic.
    pub fn interval_starts(&self) -> Vec<u64> {
        let mut starts = Vec::with_capacity(self.intervals.len());
        let mut acc = 0u64;
        for iv in &self.intervals {
            starts.push(acc);
            acc += iv.len;
        }
        starts
    }

    /// Serializes the profile for the disk artifact cache.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.dim);
        w.put_u64(self.interval_size);
        w.put_u64(self.total_insts);
        w.put_usize(self.intervals.len());
        for iv in &self.intervals {
            w.put_u64(iv.len);
            w.put_usize(iv.weights.len());
            for &(id, weight) in &iv.weights {
                w.put_usize(id);
                w.put_u64(weight);
            }
        }
    }

    /// Decodes a profile produced by [`BbvProfile::encode`].
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or a length field the buffer cannot
    /// hold (bit flip) — never a panic or an oversized allocation.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<BbvProfile, CodecError> {
        let dim = r.usize()?;
        let interval_size = r.u64()?;
        let total_insts = r.u64()?;
        let n = r.seq_len(16)?;
        let mut intervals = Vec::with_capacity(n);
        for _ in 0..n {
            let len = r.u64()?;
            let k = r.seq_len(16)?;
            let mut weights = Vec::with_capacity(k);
            for _ in 0..k {
                let id = r.usize()?;
                let weight = r.u64()?;
                weights.push((id, weight));
            }
            intervals.push(Interval { weights, len });
        }
        Ok(BbvProfile { intervals, dim, interval_size, total_insts })
    }
}

/// Streaming BBV collector; feed every [`Retired`] instruction to
/// [`BbvCollector::observe`], then call [`BbvCollector::finish`].
///
/// Block ids are assigned in first-seen order of each block's *ending*
/// pc (unique per static block: a block has exactly one terminating
/// instruction), so the resulting [`BbvProfile`] is identical whether
/// the id table is the dense text-indexed one installed by
/// [`BbvCollector::for_program`] or the pure-HashMap fallback of
/// [`BbvCollector::new`].
#[derive(Debug)]
pub struct BbvCollector {
    interval_size: u64,
    /// Base address of the dense id table (the program's text base).
    base: u64,
    /// Dense block-id table indexed by text word, `u32::MAX` = unassigned.
    text_ids: Vec<u32>,
    /// Fallback ids for block-ending pcs outside the table (and the
    /// synthetic truncated-block key, `u64::MAX`).
    extra_ids: HashMap<u64, u32>,
    next_id: u32,
    /// Current interval's running weight per block id.
    counts: Vec<u64>,
    /// Ids with a nonzero count this interval.
    touched: Vec<u32>,
    intervals: Vec<Interval>,
    block_len: u64,
    interval_len: u64,
}

impl BbvCollector {
    /// Creates a collector with the given interval size (dynamic
    /// instructions per interval; the paper uses 1M–2M, scaled workloads
    /// here typically use 10k–100k). Block ids resolve through a HashMap;
    /// prefer [`BbvCollector::for_program`] on hot paths.
    ///
    /// # Panics
    ///
    /// Panics if `interval_size` is zero.
    pub fn new(interval_size: u64) -> BbvCollector {
        assert!(interval_size > 0, "interval size must be positive");
        BbvCollector {
            interval_size,
            base: 0,
            text_ids: Vec::new(),
            extra_ids: HashMap::new(),
            next_id: 0,
            counts: Vec::new(),
            touched: Vec::new(),
            intervals: Vec::new(),
            block_len: 0,
            interval_len: 0,
        }
    }

    /// Creates a collector whose block-id table is a dense vector indexed
    /// by `program` text word, so the per-block bookkeeping on the hot
    /// retirement path is two vector indexes instead of two HashMap ops.
    /// Produces a profile identical to [`BbvCollector::new`]'s.
    ///
    /// # Panics
    ///
    /// Panics if `interval_size` is zero.
    pub fn for_program(interval_size: u64, program: &Program) -> BbvCollector {
        let mut c = BbvCollector::new(interval_size);
        c.base = program.base();
        c.text_ids = vec![u32::MAX; program.inst_count()];
        c
    }

    /// Id of the block ending at `pc`, assigned in first-seen order.
    #[inline]
    fn block_id(&mut self, pc: u64) -> u32 {
        let off = pc.wrapping_sub(self.base);
        if off & 3 == 0 {
            if let Some(slot) = self.text_ids.get_mut((off >> 2) as usize) {
                if *slot == u32::MAX {
                    *slot = self.next_id;
                    self.next_id += 1;
                }
                return *slot;
            }
        }
        if let Some(&id) = self.extra_ids.get(&pc) {
            id
        } else {
            let id = self.next_id;
            self.next_id += 1;
            self.extra_ids.insert(pc, id);
            id
        }
    }

    /// Adds `weight` to block `id` in the current interval.
    #[inline]
    fn bump(&mut self, id: u32, weight: u64) {
        let idx = id as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        if self.counts[idx] == 0 {
            self.touched.push(id);
        }
        self.counts[idx] += weight;
    }

    /// Records one retired instruction.
    #[inline]
    pub fn observe(&mut self, r: &Retired) {
        self.block_len += 1;
        self.interval_len += 1;
        if r.ends_basic_block() {
            let id = self.block_id(r.pc);
            let weight = self.block_len;
            self.bump(id, weight);
            self.block_len = 0;
            if self.interval_len >= self.interval_size {
                self.flush_interval();
            }
        }
    }

    fn flush_interval(&mut self) {
        self.touched.sort_unstable();
        let mut weights = Vec::with_capacity(self.touched.len());
        for &id in &self.touched {
            let idx = id as usize;
            weights.push((idx, std::mem::take(&mut self.counts[idx])));
        }
        self.touched.clear();
        self.intervals.push(Interval { weights, len: self.interval_len });
        self.interval_len = 0;
    }

    /// Finalizes the profile, flushing any partial last interval.
    pub fn finish(mut self) -> BbvProfile {
        // Attribute a trailing partial block to a synthetic block id (rare:
        // only when the run was truncated mid-block). `u64::MAX` can never
        // collide with a real ending pc nor alias into the dense table.
        if self.block_len > 0 {
            let id = self.block_id(u64::MAX);
            let weight = self.block_len;
            self.bump(id, weight);
        }
        if !self.touched.is_empty() || self.interval_len > 0 {
            self.flush_interval();
        }
        let total_insts = self.intervals.iter().map(|iv| iv.len).sum();
        BbvProfile {
            intervals: self.intervals,
            dim: self.next_id as usize,
            interval_size: self.interval_size,
            total_insts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::cpu::Cpu;
    use crate::reg::Reg::*;

    fn profile_of(build: impl FnOnce(&mut Assembler), interval: u64) -> BbvProfile {
        let mut a = Assembler::new();
        build(&mut a);
        let p = a.assemble().unwrap();
        let mut cpu = Cpu::new(&p);
        let mut c = BbvCollector::new(interval);
        cpu.run_with(100_000_000, |r| c.observe(r)).unwrap();
        c.finish()
    }

    #[test]
    fn total_instructions_conserved() {
        let prof = profile_of(
            |a| {
                a.li(A0, 0);
                a.li(T0, 500);
                a.label("loop");
                a.addi(A0, A0, 2);
                a.addi(T0, T0, -1);
                a.bnez(T0, "loop");
                a.exit();
            },
            100,
        );
        // weights in each interval must sum to the interval length
        for iv in &prof.intervals {
            let sum: u64 = iv.weights.iter().map(|&(_, w)| w).sum();
            assert_eq!(sum, iv.len);
        }
        let total: u64 = prof.intervals.iter().map(|iv| iv.len).sum();
        assert_eq!(total, prof.total_insts);
        assert!(prof.total_insts > 1500);
    }

    #[test]
    fn phase_change_creates_distinct_vectors() {
        let prof = profile_of(
            |a| {
                // phase 1: tight add loop; phase 2: tight xor loop
                a.li(T0, 300);
                a.label("p1");
                a.addi(A0, A0, 1);
                a.addi(T0, T0, -1);
                a.bnez(T0, "p1");
                a.li(T0, 300);
                a.label("p2");
                a.xori(A1, A1, 1);
                a.addi(T0, T0, -1);
                a.bnez(T0, "p2");
                a.exit();
            },
            150,
        );
        assert!(prof.intervals.len() >= 4);
        // The dominant block of an early interval differs from a late one.
        let dominant = |iv: &Interval| iv.weights.iter().max_by_key(|&&(_, w)| w).unwrap().0;
        let first = dominant(&prof.intervals[0]);
        let last = dominant(&prof.intervals[prof.intervals.len() - 2]);
        assert_ne!(first, last);
    }

    #[test]
    fn interval_boundaries_respect_size() {
        let prof = profile_of(
            |a| {
                a.li(T0, 1000);
                a.label("l");
                a.addi(T0, T0, -1);
                a.bnez(T0, "l");
                a.exit();
            },
            128,
        );
        // Every non-final interval must be >= the nominal size (blocks are
        // only attributed at their ends) and < size + max block length.
        for iv in &prof.intervals[..prof.intervals.len() - 1] {
            assert!(iv.len >= 128 && iv.len < 160, "interval len {}", iv.len);
        }
    }

    #[test]
    fn dense_and_fallback_collectors_agree() {
        let mut a = Assembler::new();
        a.li(T0, 400);
        a.label("l");
        a.addi(A0, A0, 3);
        a.addi(T0, T0, -1);
        a.bnez(T0, "l");
        a.exit();
        let p = a.assemble().unwrap();
        let run = |mut c: BbvCollector| {
            let mut cpu = Cpu::new(&p);
            cpu.run_with(100_000_000, |r| c.observe(r)).unwrap();
            c.finish()
        };
        let dense = run(BbvCollector::for_program(100, &p));
        let fallback = run(BbvCollector::new(100));
        assert_eq!(dense, fallback);
    }

    #[test]
    fn interval_starts_are_prefix_sums() {
        let prof = profile_of(
            |a| {
                a.li(T0, 1000);
                a.label("l");
                a.addi(T0, T0, -1);
                a.bnez(T0, "l");
                a.exit();
            },
            128,
        );
        let starts = prof.interval_starts();
        assert_eq!(starts.len(), prof.intervals.len());
        for (i, &s) in starts.iter().enumerate() {
            assert_eq!(s, prof.interval_start(i));
        }
    }

    #[test]
    fn profile_encode_decode_round_trips_exactly() {
        let prof = profile_of(
            |a| {
                a.li(T0, 800);
                a.label("l");
                a.addi(A0, A0, 1);
                a.addi(T0, T0, -1);
                a.bnez(T0, "l");
                a.exit();
            },
            100,
        );
        let mut w = ByteWriter::new();
        prof.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let decoded = BbvProfile::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(decoded, prof);
        // Every strict prefix is corrupt, never a panic.
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(BbvProfile::decode(&mut r).and_then(|_| r.finish()).is_err());
        }
    }

    #[test]
    fn dimension_counts_static_blocks() {
        let prof = profile_of(
            |a| {
                a.li(T0, 10);
                a.label("l");
                a.addi(T0, T0, -1);
                a.bnez(T0, "l");
                a.exit();
            },
            1000,
        );
        // Exactly two block-terminators execute: the loop branch and ecall
        // (the final ecall ends the program's only other block).
        assert_eq!(prof.dim, 2);
    }
}
