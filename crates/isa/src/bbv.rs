//! Basic-block vector (BBV) collection — the gem5 profiling role in the
//! paper's SimPoint flow (Fig. 4).
//!
//! A basic block is a single-entry, single-exit straight-line code
//! sequence; execution is partitioned into fixed-size *intervals* of
//! dynamic instructions, and each interval is summarized by a vector of
//! per-block execution weights (block executions × block length). The
//! `simpoint` crate clusters these vectors to find program phases.

use crate::cpu::Retired;
use std::collections::HashMap;

/// One profiling interval: a sparse basic-block weight vector.
#[derive(Clone, Debug, Default)]
pub struct Interval {
    /// Sparse `(block_id, dynamic_instruction_weight)` pairs, id-sorted.
    pub weights: Vec<(usize, u64)>,
    /// Total dynamic instructions attributed to this interval.
    pub len: u64,
}

/// A complete BBV profile of one program execution.
#[derive(Clone, Debug)]
pub struct BbvProfile {
    /// Per-interval sparse vectors, in execution order.
    pub intervals: Vec<Interval>,
    /// Number of distinct static basic blocks observed (vector dimension).
    pub dim: usize,
    /// Interval size in dynamic instructions used during collection.
    pub interval_size: u64,
    /// Total dynamic instructions profiled.
    pub total_insts: u64,
}

impl BbvProfile {
    /// Instruction index (into the dynamic stream) where `interval` begins.
    pub fn interval_start(&self, interval: usize) -> u64 {
        self.intervals[..interval].iter().map(|iv| iv.len).sum()
    }
}

/// Streaming BBV collector; feed every [`Retired`] instruction to
/// [`BbvCollector::observe`], then call [`BbvCollector::finish`].
#[derive(Debug)]
pub struct BbvCollector {
    interval_size: u64,
    block_ids: HashMap<u64, usize>,
    current: HashMap<usize, u64>,
    intervals: Vec<Interval>,
    block_len: u64,
    interval_len: u64,
}

impl BbvCollector {
    /// Creates a collector with the given interval size (dynamic
    /// instructions per interval; the paper uses 1M–2M, scaled workloads
    /// here typically use 10k–100k).
    ///
    /// # Panics
    ///
    /// Panics if `interval_size` is zero.
    pub fn new(interval_size: u64) -> BbvCollector {
        assert!(interval_size > 0, "interval size must be positive");
        BbvCollector {
            interval_size,
            block_ids: HashMap::new(),
            current: HashMap::new(),
            intervals: Vec::new(),
            block_len: 0,
            interval_len: 0,
        }
    }

    /// Records one retired instruction.
    #[inline]
    pub fn observe(&mut self, r: &Retired) {
        self.block_len += 1;
        self.interval_len += 1;
        if r.ends_basic_block() {
            // Identify the block by its *ending* pc: unique per static block
            // because a block has exactly one terminating instruction.
            let next_id = self.block_ids.len();
            let id = *self.block_ids.entry(r.pc).or_insert(next_id);
            *self.current.entry(id).or_insert(0) += self.block_len;
            self.block_len = 0;
            if self.interval_len >= self.interval_size {
                self.flush_interval();
            }
        }
    }

    fn flush_interval(&mut self) {
        let mut weights: Vec<(usize, u64)> = self.current.drain().collect();
        weights.sort_unstable_by_key(|&(id, _)| id);
        self.intervals.push(Interval { weights, len: self.interval_len });
        self.interval_len = 0;
    }

    /// Finalizes the profile, flushing any partial last interval.
    pub fn finish(mut self) -> BbvProfile {
        // Attribute a trailing partial block to a synthetic block id keyed
        // by block start (rare: only when the run was truncated mid-block).
        if self.block_len > 0 {
            let next_id = self.block_ids.len();
            let id = *self.block_ids.entry(u64::MAX).or_insert(next_id);
            *self.current.entry(id).or_insert(0) += self.block_len;
        }
        if !self.current.is_empty() || self.interval_len > 0 {
            self.flush_interval();
        }
        let total_insts = self.intervals.iter().map(|iv| iv.len).sum();
        BbvProfile {
            intervals: self.intervals,
            dim: self.block_ids.len(),
            interval_size: self.interval_size,
            total_insts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::cpu::Cpu;
    use crate::reg::Reg::*;

    fn profile_of(build: impl FnOnce(&mut Assembler), interval: u64) -> BbvProfile {
        let mut a = Assembler::new();
        build(&mut a);
        let p = a.assemble().unwrap();
        let mut cpu = Cpu::new(&p);
        let mut c = BbvCollector::new(interval);
        cpu.run_with(100_000_000, |r| c.observe(r)).unwrap();
        c.finish()
    }

    #[test]
    fn total_instructions_conserved() {
        let prof = profile_of(
            |a| {
                a.li(A0, 0);
                a.li(T0, 500);
                a.label("loop");
                a.addi(A0, A0, 2);
                a.addi(T0, T0, -1);
                a.bnez(T0, "loop");
                a.exit();
            },
            100,
        );
        // weights in each interval must sum to the interval length
        for iv in &prof.intervals {
            let sum: u64 = iv.weights.iter().map(|&(_, w)| w).sum();
            assert_eq!(sum, iv.len);
        }
        let total: u64 = prof.intervals.iter().map(|iv| iv.len).sum();
        assert_eq!(total, prof.total_insts);
        assert!(prof.total_insts > 1500);
    }

    #[test]
    fn phase_change_creates_distinct_vectors() {
        let prof = profile_of(
            |a| {
                // phase 1: tight add loop; phase 2: tight xor loop
                a.li(T0, 300);
                a.label("p1");
                a.addi(A0, A0, 1);
                a.addi(T0, T0, -1);
                a.bnez(T0, "p1");
                a.li(T0, 300);
                a.label("p2");
                a.xori(A1, A1, 1);
                a.addi(T0, T0, -1);
                a.bnez(T0, "p2");
                a.exit();
            },
            150,
        );
        assert!(prof.intervals.len() >= 4);
        // The dominant block of an early interval differs from a late one.
        let dominant = |iv: &Interval| iv.weights.iter().max_by_key(|&&(_, w)| w).unwrap().0;
        let first = dominant(&prof.intervals[0]);
        let last = dominant(&prof.intervals[prof.intervals.len() - 2]);
        assert_ne!(first, last);
    }

    #[test]
    fn interval_boundaries_respect_size() {
        let prof = profile_of(
            |a| {
                a.li(T0, 1000);
                a.label("l");
                a.addi(T0, T0, -1);
                a.bnez(T0, "l");
                a.exit();
            },
            128,
        );
        // Every non-final interval must be >= the nominal size (blocks are
        // only attributed at their ends) and < size + max block length.
        for iv in &prof.intervals[..prof.intervals.len() - 1] {
            assert!(iv.len >= 128 && iv.len < 160, "interval len {}", iv.len);
        }
    }

    #[test]
    fn dimension_counts_static_blocks() {
        let prof = profile_of(
            |a| {
                a.li(T0, 10);
                a.label("l");
                a.addi(T0, T0, -1);
                a.bnez(T0, "l");
                a.exit();
            },
            1000,
        );
        // Exactly two block-terminators execute: the loop branch and ecall
        // (the final ecall ends the program's only other block).
        assert_eq!(prof.dim, 2);
    }
}
