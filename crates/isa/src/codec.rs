//! Minimal byte-level codec for crash-safe artifact persistence.
//!
//! The disk-backed artifact cache and the campaign journal (see the
//! `boomflow` crate) serialize profiles, analyses, and checkpoints with
//! this codec instead of a general serialization framework: every value
//! is written little-endian in a fixed field order, floats are stored by
//! bit pattern (so a round trip is bit-identical, which the resume tests
//! diff on), and every length read from an untrusted buffer is validated
//! against the bytes actually present before anything is allocated — a
//! bit-flipped length field must yield [`CodecError`], never an
//! allocation bomb or a panic.

use std::fmt;

/// Why a serialized artifact failed to decode.
///
/// Decoders treat both variants the same way — the artifact is corrupt
/// and must be quarantined and recomputed — but the distinction makes
/// the fault-injection tests precise about *what* the reader detected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete (torn write).
    Truncated,
    /// A structurally invalid value: bad tag, absurd length, non-UTF-8
    /// string, or trailing bytes (bit flip or format drift).
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated artifact"),
            CodecError::Invalid(what) => write!(f, "invalid artifact ({what})"),
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a 64-bit hash — the workspace's standard fingerprint/checksum
/// primitive (the same constants every cache key in the flow uses).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian append-only buffer writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the serialized bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` by exact bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends raw bytes with no length prefix (fixed-size fields).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u64` length prefix followed by the bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.put_raw(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// Cursor reader over a serialized artifact.
///
/// Every accessor validates against the remaining bytes before touching
/// them; decoding a corrupt buffer yields [`CodecError`], never a panic.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if n > self.remaining() {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of buffer.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of buffer.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of buffer.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a `usize` stored as a `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of buffer;
    /// [`CodecError::Invalid`] when the value does not fit `usize`.
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.u64()?).map_err(|_| CodecError::Invalid("usize overflow"))
    }

    /// Reads an `f64` by exact bit pattern.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of buffer.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool (strictly 0 or 1).
    ///
    /// # Errors
    ///
    /// [`CodecError::Invalid`] on any other byte value.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool tag")),
        }
    }

    /// Reads an element count whose elements occupy at least
    /// `min_elem_bytes` each, rejecting counts the remaining buffer
    /// cannot possibly hold — the guard that turns a bit-flipped length
    /// into [`CodecError`] instead of a gigabyte allocation.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when the count cannot fit in the bytes
    /// that remain.
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.usize()?;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(CodecError::Truncated);
        }
        Ok(n)
    }

    /// Reads a `u64`-length-prefixed byte slice.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when the prefix exceeds the bytes that
    /// remain.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.seq_len(1)?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`CodecError::Invalid`] on non-UTF-8 contents.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| CodecError::Invalid("utf-8"))
    }

    /// Asserts the buffer was fully consumed — decoders call this last so
    /// a value followed by garbage is rejected, not silently accepted.
    ///
    /// # Errors
    ///
    /// [`CodecError::Invalid`] when bytes remain.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::Invalid("trailing bytes"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_every_primitive() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_usize(42);
        w.put_f64(-0.0); // distinguishable from +0.0 only by bits
        w.put_bool(true);
        w.put_bool(false);
        w.put_bytes(b"hello");
        w.put_str("wörld");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.usize().unwrap(), 42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.str().unwrap(), "wörld");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_detected_at_every_prefix() {
        let mut w = ByteWriter::new();
        w.put_u64(1);
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            let ok = r.u64().and_then(|_| r.bytes().map(|b| b.to_vec()));
            assert!(ok.is_err(), "cut at {cut} must not decode");
        }
    }

    #[test]
    fn absurd_length_is_rejected_without_allocating() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // length prefix far beyond the buffer
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.bytes(), Err(CodecError::Truncated));
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.seq_len(8), Err(CodecError::Truncated));
    }

    #[test]
    fn bad_bool_and_trailing_bytes_are_invalid() {
        let mut r = ByteReader::new(&[2]);
        assert!(matches!(r.bool(), Err(CodecError::Invalid(_))));
        let r = ByteReader::new(&[0]);
        assert!(matches!(r.finish(), Err(CodecError::Invalid(_))));
    }

    #[test]
    fn fnv1a_matches_reference_values() {
        // FNV-1a of the empty string is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
