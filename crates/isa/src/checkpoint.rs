//! Architectural checkpoints — the Spike checkpoint role in the paper's
//! SimPoint flow (Fig. 4).
//!
//! A [`Checkpoint`] captures the full architectural state (pc, integer and
//! FP register files, and the sparse memory image) at an instruction
//! boundary. Checkpoints restore into the functional simulator or seed the
//! cycle-level out-of-order model in `boom-uarch`.

use crate::codec::{ByteReader, ByteWriter, CodecError};
use crate::cpu::{Cpu, SimError};
use crate::image::{DecodedImage, SharedImage};
use crate::mem::{Memory, FLAT_MAX};
use crate::program::Program;
use std::sync::Arc;

/// A checkpoint shared across consumers without cloning its memory image.
///
/// Checkpoints are configuration-independent: the same architectural
/// snapshot seeds the detailed model for *every* microarchitectural
/// configuration, so campaign drivers hold them behind `Arc` and hand the
/// same allocation to many worker threads.
pub type SharedCheckpoint = Arc<Checkpoint>;

/// A complete architectural snapshot at an instruction boundary.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Program counter of the next instruction to execute.
    pub pc: u64,
    /// Integer register file.
    pub x: [u64; 32],
    /// FP register file (raw bits).
    pub f: [u64; 32],
    /// Full sparse memory image.
    pub mem: Memory,
    /// Dynamic instruction count at which the snapshot was taken.
    pub instret: u64,
    /// Predecoded text image carried from the captured CPU (an `Arc`
    /// share, not a copy), so every simulator seeded from this
    /// checkpoint keeps the fast fetch path.
    pub image: Option<SharedImage>,
}

impl Checkpoint {
    /// Snapshots a functional CPU.
    ///
    /// The captured memory image is immediately frozen into
    /// copy-on-write mode ([`Memory::freeze_flat`]): a checkpoint seeds
    /// one simulator per (config, SimPoint) work item, and freezing makes
    /// each of those per-consumer `mem.clone()` calls O(dirty pages)
    /// instead of a copy of the whole workload footprint.
    pub fn capture(cpu: &Cpu) -> Checkpoint {
        let mut mem = cpu.mem.clone();
        mem.freeze_flat();
        Checkpoint {
            pc: cpu.pc(),
            x: *cpu.xregs(),
            f: *cpu.fregs(),
            mem,
            instret: cpu.instret(),
            image: cpu.image().cloned(),
        }
    }

    /// Restores this snapshot into a fresh functional CPU (re-attaching
    /// the predecoded image, if the captured CPU had one).
    pub fn restore(&self) -> Cpu {
        let mut cpu = Cpu::from_state(self.pc, self.x, self.f, self.mem.clone(), self.instret);
        if let Some(image) = &self.image {
            cpu.attach_image(image.clone());
        }
        cpu
    }

    /// Approximate in-memory footprint in bytes (for reporting).
    pub fn size_bytes(&self) -> usize {
        self.mem.footprint_bytes() + 2 * 32 * 8 + 16
    }

    /// Serializes the snapshot for the disk artifact cache.
    ///
    /// The predecoded text image is *not* written out instruction by
    /// instruction: its bytes are already present in the memory image, so
    /// only its geometry (base, byte length) is recorded and
    /// [`Checkpoint::decode`] re-predecodes those bytes — the restored
    /// checkpoint is semantically identical and keeps the fast fetch path.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.pc);
        for &x in &self.x {
            w.put_u64(x);
        }
        for &f in &self.f {
            w.put_u64(f);
        }
        w.put_u64(self.instret);
        self.mem.encode(w);
        match &self.image {
            None => w.put_bool(false),
            Some(img) => {
                w.put_bool(true);
                w.put_u64(img.base());
                w.put_u64(img.len() as u64 * 4);
            }
        }
    }

    /// Decodes a snapshot produced by [`Checkpoint::encode`].
    ///
    /// # Errors
    ///
    /// [`CodecError`] on any truncation, bad tag, or absurd length — the
    /// cache layer treats every such error as corruption and recomputes.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Checkpoint, CodecError> {
        let pc = r.u64()?;
        let mut x = [0u64; 32];
        for slot in &mut x {
            *slot = r.u64()?;
        }
        let mut f = [0u64; 32];
        for slot in &mut f {
            *slot = r.u64()?;
        }
        let instret = r.u64()?;
        let mem = Memory::decode(r)?;
        let image = if r.bool()? {
            let base = r.u64()?;
            let len = r.u64()?;
            if len == 0 || len % 4 != 0 || len > FLAT_MAX {
                return Err(CodecError::Invalid("image geometry"));
            }
            let text = mem.read_bytes(base, len as usize);
            Some(Arc::new(DecodedImage::decode_text(base, &text)))
        } else {
            None
        };
        Ok(Checkpoint { pc, x, f, mem, instret, image })
    }
}

/// Runs `program` and captures a checkpoint at each instruction count in
/// `points` (which must be sorted ascending).
///
/// This is the batch form used by the SimPoint flow: one functional pass
/// produces every checkpoint.
///
/// # Errors
///
/// Propagates simulator errors; a point past program exit yields a
/// checkpoint at the exit boundary (the remaining points all alias it).
///
/// # Panics
///
/// Panics if `points` is not sorted ascending.
pub fn checkpoints_at(program: &Program, points: &[u64]) -> Result<Vec<Checkpoint>, SimError> {
    assert!(points.windows(2).all(|w| w[0] <= w[1]), "points must be sorted");
    let mut cpu = Cpu::new(program);
    let mut out = Vec::with_capacity(points.len());
    for &target in points {
        let remaining = target.saturating_sub(cpu.instret());
        if remaining > 0 {
            cpu.run(remaining)?;
        }
        out.push(Checkpoint::capture(&cpu));
    }
    Ok(out)
}

/// [`checkpoints_at`], but each checkpoint is returned behind an [`Arc`]
/// so campaign drivers can share one capture pass across every
/// configuration and worker thread without cloning memory images.
///
/// # Errors
///
/// Propagates simulator errors, as [`checkpoints_at`].
///
/// # Panics
///
/// Panics if `points` is not sorted ascending.
pub fn checkpoints_at_shared(
    program: &Program,
    points: &[u64],
) -> Result<Vec<SharedCheckpoint>, SimError> {
    Ok(checkpoints_at(program, points)?.into_iter().map(Arc::new).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::cpu::StopReason;
    use crate::reg::Reg::*;

    fn counting_program() -> Program {
        let mut a = Assembler::new();
        a.li(A0, 0);
        a.li(T0, 1000);
        a.label("loop");
        a.addi(A0, A0, 1);
        a.addi(T0, T0, -1);
        a.bnez(T0, "loop");
        a.exit();
        a.assemble().unwrap()
    }

    #[test]
    fn restore_resumes_identically() {
        let p = counting_program();
        let mut reference = Cpu::new(&p);
        reference.run(500).unwrap();
        let ck = Checkpoint::capture(&reference);

        // Continue both the original and the restored copy to completion.
        let mut restored = ck.restore();
        let r1 = reference.run(u64::MAX).unwrap();
        let r2 = restored.run(u64::MAX).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(reference.xregs(), restored.xregs());
        assert_eq!(reference.instret(), restored.instret());
        assert!(matches!(r1, StopReason::Exited(_)));
    }

    #[test]
    fn batch_checkpoints_match_single_runs() {
        let p = counting_program();
        let cks = checkpoints_at(&p, &[100, 600, 1500]).unwrap();
        assert_eq!(cks.len(), 3);
        for (i, target) in [100u64, 600, 1500].iter().enumerate() {
            let mut cpu = Cpu::new(&p);
            cpu.run(*target).unwrap();
            assert_eq!(cks[i].pc, cpu.pc(), "checkpoint {i}");
            assert_eq!(&cks[i].x, cpu.xregs());
            assert_eq!(cks[i].instret, cpu.instret());
        }
    }

    #[test]
    fn checkpoint_past_exit_saturates() {
        let p = counting_program();
        let cks = checkpoints_at(&p, &[1_000_000]).unwrap();
        // The loop runs 1000 iterations * 3 insts + prologue/epilogue.
        assert!(cks[0].instret < 4000);
    }

    #[test]
    fn captured_memory_is_frozen_and_restores_identically() {
        let p = counting_program();
        let mut cpu = Cpu::new(&p);
        cpu.run(500).unwrap();
        let ck = Checkpoint::capture(&cpu);
        assert!(ck.mem.is_frozen(), "capture freezes the image for CoW sharing");
        // Two restores diverge independently and match a never-frozen run.
        let mut a = ck.restore();
        let mut b = ck.restore();
        let ra = a.run(u64::MAX).unwrap();
        let rb = b.run(u64::MAX).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(a.xregs(), b.xregs());
        let mut reference = Cpu::new(&p);
        reference.run(u64::MAX).unwrap();
        assert_eq!(a.xregs(), reference.xregs());
    }

    #[test]
    fn encode_decode_round_trips_and_resumes_identically() {
        let p = counting_program();
        let mut cpu = Cpu::new(&p);
        cpu.attach_image(p.decoded_image());
        cpu.run(500).unwrap();
        let ck = Checkpoint::capture(&cpu);
        assert!(ck.image.is_some(), "capture carries the predecoded image");

        let mut w = ByteWriter::new();
        ck.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let decoded = Checkpoint::decode(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(decoded.pc, ck.pc);
        assert_eq!(decoded.x, ck.x);
        assert_eq!(decoded.f, ck.f);
        assert_eq!(decoded.instret, ck.instret);
        assert!(decoded.image.is_some(), "image geometry restores the fast path");
        assert!(decoded.mem.is_frozen(), "decoded memory stays CoW-shareable");

        let mut a = ck.restore();
        let mut b = decoded.restore();
        let ra = a.run(u64::MAX).unwrap();
        let rb = b.run(u64::MAX).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(a.xregs(), b.xregs());
        assert_eq!(a.instret(), b.instret());
    }

    #[test]
    fn decode_rejects_corrupt_image_geometry() {
        let p = counting_program();
        let ck = checkpoints_at(&p, &[100]).unwrap().remove(0);
        let mut w = ByteWriter::new();
        ck.encode(&mut w);
        let bytes = w.into_bytes();
        // Every strict prefix must fail, never panic or mis-decode.
        for cut in (0..bytes.len()).step_by(97) {
            let mut r = ByteReader::new(&bytes[..cut]);
            let res = Checkpoint::decode(&mut r).and_then(|_| r.finish());
            assert!(res.is_err(), "cut at {cut} must not decode");
        }
    }

    #[test]
    fn size_reporting_nonzero() {
        let p = counting_program();
        let cks = checkpoints_at(&p, &[10]).unwrap();
        assert!(cks[0].size_bytes() > 4096);
    }
}
