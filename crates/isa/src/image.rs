//! Predecoded instruction images — the hot-loop fast path shared by the
//! functional simulator and the cycle-level front end.
//!
//! Both simulation kernels used to re-decode every dynamic instruction
//! from raw memory words. A [`DecodedImage`] decodes the text segment
//! *once* at program load into a dense table indexed by
//! `(pc - base) / 4`, and is handed out behind [`Arc`] so every CPU,
//! core, checkpoint, and worker thread in a campaign shares a single
//! decode of each program (the same reuse gem5 gets from its cached
//! static instructions).
//!
//! The contract (see DESIGN.md "Hot loops"):
//!
//! * **Coverage** — exactly the text segment `[base, base + 4·len)`.
//!   [`DecodedImage::lookup`] answers `None` for any PC outside that
//!   range, misaligned, or whose word did not decode at build time;
//!   callers then fall back to a raw fetch + [`decode`], preserving
//!   error semantics exactly.
//! * **Self-modifying code** — a store that overlaps the text range must
//!   call [`DecodedImage::invalidate`] (via `Arc::make_mut`, so sharers
//!   with unmodified memories keep the pristine image). Invalidated
//!   slots answer `None`, which routes those PCs back through the
//!   memory-accurate fallback path forever after — golden-model
//!   semantics stay exact.

use crate::inst::{decode, Inst};
use std::sync::Arc;

/// A program's text segment, decoded once into a dense instruction table.
#[derive(Clone, Debug)]
pub struct DecodedImage {
    base: u64,
    /// One slot per text word; `None` means "decode from memory" (the
    /// word was illegal at build time, or a store invalidated it).
    insts: Vec<Option<Inst>>,
}

/// A decoded image shared across simulators and worker threads.
pub type SharedImage = Arc<DecodedImage>;

impl DecodedImage {
    /// Decodes `text` (little-endian instruction words loaded at `base`)
    /// into a dense table. Words that fail to decode get `None` slots so
    /// executing them still reports the exact illegal word via the
    /// fallback path.
    pub fn decode_text(base: u64, text: &[u8]) -> DecodedImage {
        let insts = text
            .chunks_exact(4)
            .map(|w| decode(u32::from_le_bytes([w[0], w[1], w[2], w[3]])).ok())
            .collect();
        DecodedImage { base, insts }
    }

    /// First address covered by the image.
    #[inline]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// One-past-the-last address covered by the image.
    #[inline]
    pub fn end(&self) -> u64 {
        self.base + (self.insts.len() as u64) * 4
    }

    /// Number of instruction slots.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when the image covers no words.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The raw slot table, one entry per text word. Hot loops hoist this
    /// slice (plus [`DecodedImage::base`]) into locals so the per-step
    /// lookup is a subtract, a mask, and one indexed load — see
    /// `Cpu::run_with`.
    #[inline]
    pub fn slots(&self) -> &[Option<Inst>] {
        &self.insts
    }

    /// The predecoded instruction at `pc`, or `None` when `pc` is out of
    /// range, misaligned, or its slot was invalidated — callers must
    /// then fetch and [`decode`] from memory.
    #[inline(always)]
    pub fn lookup(&self, pc: u64) -> Option<Inst> {
        let off = pc.wrapping_sub(self.base);
        if off & 3 == 0 {
            if let Some(slot) = self.insts.get((off >> 2) as usize) {
                return *slot;
            }
        }
        None
    }

    /// Self-modifying-code guard: marks every word overlapping the byte
    /// range `[addr, addr + size)` as requiring a fresh decode from
    /// memory. Callers detect the overlap with [`DecodedImage::base`] /
    /// [`DecodedImage::end`] before paying for this (rare) path.
    pub fn invalidate(&mut self, addr: u64, size: u64) {
        let end = addr.saturating_add(size.max(1));
        let n = self.insts.len();
        let first = ((addr.saturating_sub(self.base) / 4) as usize).min(n);
        let last = ((end.saturating_sub(self.base)).div_ceil(4) as usize).min(n);
        for slot in &mut self.insts[first..last] {
            *slot = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::encode;
    use crate::reg::Reg;

    fn sample_image() -> DecodedImage {
        let words: Vec<u32> = vec![
            encode(Inst::OpImm { op: crate::inst::AluOp::Add, rd: Reg::A0, rs1: Reg::A0, imm: 1 }),
            encode(Inst::Ecall),
            0xFFFF_FFFF, // does not decode
        ];
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        DecodedImage::decode_text(0x8000_0000, &bytes)
    }

    #[test]
    fn lookup_covers_exactly_the_text_range() {
        let img = sample_image();
        assert_eq!(img.base(), 0x8000_0000);
        assert_eq!(img.end(), 0x8000_000C);
        assert!(img.lookup(0x8000_0000).is_some());
        assert!(matches!(img.lookup(0x8000_0004), Some(Inst::Ecall)));
        assert!(img.lookup(0x8000_0008).is_none(), "illegal word has no entry");
        assert!(img.lookup(0x8000_000C).is_none(), "one past the end");
        assert!(img.lookup(0x7FFF_FFFC).is_none(), "below base");
        assert!(img.lookup(0x8000_0002).is_none(), "misaligned");
    }

    #[test]
    fn invalidate_clears_overlapping_words_only() {
        let mut img = sample_image();
        // A one-byte store into the middle of word 1.
        img.invalidate(0x8000_0005, 1);
        assert!(img.lookup(0x8000_0000).is_some(), "word 0 untouched");
        assert!(img.lookup(0x8000_0004).is_none(), "word 1 invalidated");

        // An 8-byte store straddling words 0-1 of a fresh image.
        let mut img = sample_image();
        img.invalidate(0x8000_0002, 8);
        assert!(img.lookup(0x8000_0000).is_none());
        assert!(img.lookup(0x8000_0004).is_none());
    }

    #[test]
    fn invalidate_outside_range_is_harmless() {
        let mut img = sample_image();
        img.invalidate(0x1000, 8);
        img.invalidate(u64::MAX - 4, 8);
        assert!(img.lookup(0x8000_0000).is_some());
    }
}
