//! Physical memory shared by the functional and cycle-level simulators:
//! a contiguous flat fast-path region backed by sparse overflow pages.
//!
//! [`Program::load`](crate::program::Program::load) reserves one flat
//! region covering the program image and the stack — the footprint of
//! every bundled workload — so the hot read/write/fetch routines reduce
//! to a bounds check plus a slice copy. Accesses outside the region fall
//! back to 4 KiB overflow pages (with a one-entry last-page cache), which
//! preserves the sparse 64-bit address space and the zeroed-DRAM
//! convention: reads of untouched memory return zero everywhere.

use crate::codec::{ByteReader, ByteWriter, CodecError};
use std::collections::HashMap;
use std::sync::Arc;

/// Size of one backing page in bytes.
pub const PAGE_SIZE: u64 = 4096;
const PAGE_MASK: u64 = PAGE_SIZE - 1;

/// Upper bound on the flat region (guards against absurd reservations;
/// the bundled workloads need 16 MiB). Also the sanity cap the artifact
/// decoders apply to serialized flat-region and image lengths.
pub(crate) const FLAT_MAX: u64 = 64 * 1024 * 1024;

/// Minimum *allocation* size for the flat buffer (its logical length is
/// unaffected). Sized just above glibc's mmap-threshold cap (32 MiB) so
/// `alloc_zeroed` is always served by fresh `mmap` pages — the kernel
/// hands them out pre-zeroed, making a 16 MiB reservation cost
/// microseconds instead of a ~0.8 ms memset of recycled heap memory.
/// Virtual-only: untouched pages never become resident, and a fresh CPU
/// per SimPoint is the common case in campaigns. On allocators without
/// the heuristic this degrades to a slightly larger memset, nothing
/// worse.
const FLAT_ALLOC_FLOOR: usize = 33 * 1024 * 1024;

type Page = [u8; PAGE_SIZE as usize];

/// A sparse 64-bit physical address space: one contiguous flat region for
/// the program's footprint, 4 KiB overflow pages everywhere else.
///
/// Reads of untouched memory return zero, matching the zeroed-DRAM
/// convention the bare-metal workloads rely on. All accesses are
/// little-endian and may be misaligned (accesses that straddle the flat
/// boundary or a page boundary fall back to a byte-wise path).
#[derive(Debug)]
pub struct Memory {
    /// Base address of the flat region (page-aligned); meaningless while
    /// `flat` is empty.
    flat_base: u64,
    /// Flat backing store for `[flat_base, flat_base + flat.len())`.
    /// A `Vec` so the allocation can be padded to [`FLAT_ALLOC_FLOOR`]
    /// while the logical length stays the reserved size (clones copy
    /// only the logical length).
    flat: Vec<u8>,
    /// Overflow page table: page number → index into `page_store`.
    page_index: HashMap<u64, u32>,
    /// Page storage; indices stay stable so `last_page` and clones remain
    /// valid (pages migrated into the flat region are orphaned in place).
    page_store: Vec<Box<Page>>,
    /// One-entry cache `(page_number, page_store index)` for the last
    /// overflow page touched by a `&mut` access.
    last_page: (u64, u32),
    /// Copy-on-write base for the flat region. `None` is *owned* mode:
    /// `flat` is authoritative and accesses behave exactly as before CoW
    /// existed. [`Memory::freeze_flat`] moves the flat contents behind
    /// this `Arc`; from then on `flat` is a same-length local overlay and
    /// only pages whose bit is set in `cow_dirty` have been copied into
    /// it. Checkpoints freeze once after capture so every per-SimPoint
    /// clone shares the base instead of copying the whole footprint.
    cow_base: Option<Arc<Vec<u8>>>,
    /// One bit per flat page (only meaningful in CoW mode): set ⇒ the
    /// page lives in `flat`, clear ⇒ read it from `cow_base`.
    cow_dirty: Vec<u64>,
}

/// Sentinel page number that can never match a real address (addresses
/// divide by `PAGE_SIZE`, so `u64::MAX` is unreachable).
const NO_PAGE: (u64, u32) = (u64::MAX, 0);

/// Allocates a zero-filled flat buffer of logical length `len`, padded to
/// [`FLAT_ALLOC_FLOOR`] so `alloc_zeroed` stays on the untouched-mmap
/// path (see the constant's doc comment).
fn zeroed_flat(len: usize) -> Vec<u8> {
    let mut flat = vec![0u8; len.max(FLAT_ALLOC_FLOOR)];
    flat.truncate(len);
    flat
}

/// Iterator over the set bit positions (page indices) of a dirty bitmap.
struct DirtyPages<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl<'a> DirtyPages<'a> {
    fn new(words: &'a [u64]) -> DirtyPages<'a> {
        DirtyPages { words, word_idx: 0, current: words.first().copied().unwrap_or(0) }
    }
}

impl Iterator for DirtyPages<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            self.current = *self.words.get(self.word_idx)?;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * 64 + bit)
    }
}

impl Clone for Memory {
    /// Clones with a *sparse* copy of the flat region: the fresh buffer
    /// comes back from the kernel already zeroed (see
    /// [`FLAT_ALLOC_FLOOR`]), so all-zero source pages are skipped
    /// rather than copied. Checkpoints clone one `Memory` per SimPoint;
    /// skipping untouched pages keeps each clone's resident size at the
    /// workload's real footprint instead of the full flat reservation.
    fn clone(&self) -> Memory {
        let flat = if self.flat.is_empty() {
            Vec::new()
        } else if self.cow_base.is_some() {
            // CoW mode: the shared base carries the image; only pages
            // dirtied since the freeze live in `flat`, so the clone
            // copies those and nothing else. Cost is O(dirty pages +
            // bitmap), independent of the workload footprint.
            let mut flat = zeroed_flat(self.flat.len());
            for page in DirtyPages::new(&self.cow_dirty) {
                let off = page * PAGE_SIZE as usize;
                flat[off..off + PAGE_SIZE as usize]
                    .copy_from_slice(&self.flat[off..off + PAGE_SIZE as usize]);
            }
            flat
        } else {
            let mut flat = zeroed_flat(self.flat.len());
            const ZERO_PAGE: [u8; PAGE_SIZE as usize] = [0; PAGE_SIZE as usize];
            for (i, chunk) in self.flat.chunks(PAGE_SIZE as usize).enumerate() {
                if chunk != &ZERO_PAGE[..chunk.len()] {
                    flat[i * PAGE_SIZE as usize..][..chunk.len()].copy_from_slice(chunk);
                }
            }
            flat
        };
        Memory {
            flat_base: self.flat_base,
            flat,
            page_index: self.page_index.clone(),
            page_store: self.page_store.clone(),
            last_page: self.last_page,
            cow_base: self.cow_base.clone(),
            cow_dirty: self.cow_dirty.clone(),
        }
    }
}

impl Default for Memory {
    fn default() -> Memory {
        Memory {
            flat_base: 0,
            flat: Vec::new(),
            page_index: HashMap::new(),
            page_store: Vec::new(),
            last_page: NO_PAGE,
            cow_base: None,
            cow_dirty: Vec::new(),
        }
    }
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// One past the last flat-region address (equals `flat_base` when no
    /// region is reserved).
    #[inline]
    fn flat_end(&self) -> u64 {
        self.flat_base + self.flat.len() as u64
    }

    /// Reserves a zero-filled flat backing region covering `[start, end)`
    /// (page-aligned outward, capped at 64 MiB). Existing overflow pages
    /// inside the region migrate into it, so this is safe to call after
    /// writes. A second call is a no-op: the single region is sized for
    /// the program footprint at load and never moves, which keeps clones
    /// and checkpoints layout-compatible.
    pub fn reserve_flat(&mut self, start: u64, end: u64) {
        if !self.flat.is_empty() || end <= start {
            return;
        }
        let start = start & !PAGE_MASK;
        let end = end.checked_add(PAGE_MASK).map_or(!PAGE_MASK, |e| e & !PAGE_MASK);
        let len = (end - start).min(FLAT_MAX);
        self.flat_base = start;
        // `vec![0; n]` lowers to `alloc_zeroed`; padding the request past
        // FLAT_ALLOC_FLOOR keeps it on the untouched-mmap path (see the
        // constant's doc comment). `truncate` only adjusts the length.
        self.flat = zeroed_flat(len as usize);
        // Migrate overlapping overflow pages; their `page_store` slots are
        // orphaned (not freed) so other indices stay valid.
        let first_pn = start / PAGE_SIZE;
        let last_pn = first_pn + len / PAGE_SIZE;
        for pn in first_pn..last_pn {
            if let Some(idx) = self.page_index.remove(&pn) {
                let dst = ((pn - first_pn) * PAGE_SIZE) as usize;
                self.flat[dst..dst + PAGE_SIZE as usize]
                    .copy_from_slice(&self.page_store[idx as usize][..]);
            }
        }
        self.last_page = NO_PAGE;
    }

    /// Converts the flat region from owned to copy-on-write: the current
    /// contents move behind a shared `Arc` and `flat` becomes an all-zero
    /// same-length overlay with an empty dirty bitmap. Subsequent clones
    /// share the base and copy only pages dirtied after the freeze, so a
    /// clone's cost is O(dirty pages) instead of O(footprint).
    ///
    /// Reads and writes behave identically before and after freezing
    /// (writes materialize the touched page from the base first), so
    /// freezing a checkpoint's memory cannot change simulation results.
    /// A no-op when already frozen or when no flat region exists.
    pub fn freeze_flat(&mut self) {
        if self.cow_base.is_some() || self.flat.is_empty() {
            return;
        }
        let len = self.flat.len();
        let base = std::mem::replace(&mut self.flat, zeroed_flat(len));
        self.cow_dirty = vec![0u64; len.div_ceil(PAGE_SIZE as usize).div_ceil(64)];
        self.cow_base = Some(Arc::new(base));
    }

    /// Whether the flat region is in copy-on-write mode (see
    /// [`Memory::freeze_flat`]).
    pub fn is_frozen(&self) -> bool {
        self.cow_base.is_some()
    }

    /// Number of flat pages copied out of the CoW base by writes since
    /// the freeze (0 in owned mode).
    pub fn dirty_page_count(&self) -> usize {
        self.cow_dirty.iter().map(|w| w.count_ones() as usize).sum()
    }

    #[inline]
    fn page_is_dirty(&self, page: usize) -> bool {
        (self.cow_dirty[page / 64] >> (page % 64)) & 1 != 0
    }

    /// Ensures every flat page overlapping `[off, off + len)` (flat
    /// offsets) is materialized in the local overlay; only called in CoW
    /// mode. The already-dirty case (the steady state) stays inline; the
    /// once-per-page copy is out of line.
    #[inline]
    fn materialize(&mut self, off: u64, len: u64) {
        let first = (off / PAGE_SIZE) as usize;
        let last = ((off + len - 1) / PAGE_SIZE) as usize;
        for page in first..=last {
            if !self.page_is_dirty(page) {
                self.copy_page_from_base(page);
            }
        }
    }

    #[cold]
    fn copy_page_from_base(&mut self, page: usize) {
        let Some(base) = &self.cow_base else { return };
        let b = page * PAGE_SIZE as usize;
        let e = (b + PAGE_SIZE as usize).min(base.len());
        self.flat[b..e].copy_from_slice(&base[b..e]);
        self.cow_dirty[page / 64] |= 1 << (page % 64);
    }

    /// The buffer holding the authoritative copy of the flat page that
    /// contains flat offset `off` (local overlay if dirty or owned, the
    /// shared base otherwise).
    #[inline]
    fn flat_src(&self, off: u64) -> &[u8] {
        match &self.cow_base {
            None => &self.flat,
            Some(base) => {
                if self.page_is_dirty((off / PAGE_SIZE) as usize) {
                    &self.flat
                } else {
                    base
                }
            }
        }
    }

    /// Number of distinct overflow pages that have been written (the flat
    /// region is not counted).
    pub fn page_count(&self) -> usize {
        self.page_index.len()
    }

    /// Total bytes of backing storage (flat region + overflow pages).
    pub fn footprint_bytes(&self) -> usize {
        self.flat.len() + self.page_index.len() * PAGE_SIZE as usize
    }

    /// Iterates over `(page_base_address, page_bytes)` for all backed
    /// pages: the flat region in page-sized chunks, then overflow pages.
    pub fn pages(&self) -> impl Iterator<Item = (u64, &[u8])> {
        // In CoW mode each flat page reads from whichever buffer is
        // authoritative for it (reserve_flat page-aligns the region, so
        // chunks are always full pages).
        let flat = (0..self.flat.len() / PAGE_SIZE as usize).map(move |i| {
            let off = i as u64 * PAGE_SIZE;
            let src = self.flat_src(off);
            (self.flat_base + off, &src[off as usize..off as usize + PAGE_SIZE as usize])
        });
        let overflow = self
            .page_index
            .iter()
            .map(|(pn, &idx)| (pn * PAGE_SIZE, &self.page_store[idx as usize][..]));
        flat.chain(overflow)
    }

    #[inline]
    fn page(&self, addr: u64) -> Option<&Page> {
        let pn = addr / PAGE_SIZE;
        if self.last_page.0 == pn {
            return Some(&self.page_store[self.last_page.1 as usize]);
        }
        self.page_index.get(&pn).map(|&idx| &*self.page_store[idx as usize])
    }

    #[inline]
    fn page_mut(&mut self, addr: u64) -> &mut Page {
        let pn = addr / PAGE_SIZE;
        if self.last_page.0 != pn {
            let idx = match self.page_index.get(&pn) {
                Some(&idx) => idx,
                None => {
                    let idx = self.page_store.len() as u32;
                    self.page_store.push(Box::new([0; PAGE_SIZE as usize]));
                    self.page_index.insert(pn, idx);
                    idx
                }
            };
            self.last_page = (pn, idx);
        }
        &mut self.page_store[self.last_page.1 as usize]
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        let off = addr.wrapping_sub(self.flat_base);
        if off < self.flat.len() as u64 {
            return self.flat_src(off)[off as usize];
        }
        match self.page(addr) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let off = addr.wrapping_sub(self.flat_base);
        if off < self.flat.len() as u64 {
            if self.cow_base.is_some() {
                self.materialize(off, 1);
            }
            self.flat[off as usize] = value;
            return;
        }
        self.page_mut(addr)[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads `size` little-endian bytes starting at `addr` into a u64.
    #[inline]
    pub fn read(&self, addr: u64, size: u64) -> u64 {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        let off = addr.wrapping_sub(self.flat_base);
        let flen = self.flat.len() as u64;
        if off < flen && size <= flen - off {
            // In CoW mode a page-straddling access may span a dirty and a
            // clean page; fall back to the byte-wise path for those.
            if self.cow_base.is_some() && (off & PAGE_MASK) + size > PAGE_SIZE {
                let mut v = 0u64;
                for i in 0..size {
                    v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
                }
                return v;
            }
            let src = self.flat_src(off);
            let off = off as usize;
            // Fixed-width loads per size (a runtime-length copy_from_slice
            // would lower to an actual memcpy call on this hot path).
            return match size {
                1 => u64::from(src[off]),
                2 => {
                    u64::from(u16::from_le_bytes(src[off..off + 2].try_into().unwrap_or_default()))
                }
                4 => {
                    u64::from(u32::from_le_bytes(src[off..off + 4].try_into().unwrap_or_default()))
                }
                _ => u64::from_le_bytes(src[off..off + 8].try_into().unwrap_or_default()),
            };
        }
        self.read_overflow(addr, size)
    }

    fn read_overflow(&self, addr: u64, size: u64) -> u64 {
        let in_page = addr & PAGE_MASK;
        let overlaps_flat = addr < self.flat_end() && addr.wrapping_add(size) > self.flat_base;
        if !overlaps_flat && in_page + size <= PAGE_SIZE {
            let Some(p) = self.page(addr) else { return 0 };
            let off = in_page as usize;
            let mut buf = [0u8; 8];
            buf[..size as usize].copy_from_slice(&p[off..off + size as usize]);
            u64::from_le_bytes(buf)
        } else {
            let mut v = 0u64;
            for i in 0..size {
                v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
            }
            v
        }
    }

    /// Writes the low `size` bytes of `value` little-endian at `addr`.
    #[inline]
    pub fn write(&mut self, addr: u64, size: u64, value: u64) {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        let off = addr.wrapping_sub(self.flat_base);
        let flen = self.flat.len() as u64;
        if off < flen && size <= flen - off {
            if self.cow_base.is_some() {
                self.materialize(off, size);
            }
            let off = off as usize;
            // Fixed-width stores per size, as in [`Memory::read`].
            match size {
                1 => self.flat[off] = value as u8,
                2 => self.flat[off..off + 2].copy_from_slice(&(value as u16).to_le_bytes()),
                4 => self.flat[off..off + 4].copy_from_slice(&(value as u32).to_le_bytes()),
                _ => self.flat[off..off + 8].copy_from_slice(&value.to_le_bytes()),
            }
            return;
        }
        self.write_overflow(addr, size, value);
    }

    fn write_overflow(&mut self, addr: u64, size: u64, value: u64) {
        let in_page = addr & PAGE_MASK;
        let overlaps_flat = addr < self.flat_end() && addr.wrapping_add(size) > self.flat_base;
        if !overlaps_flat && in_page + size <= PAGE_SIZE {
            let p = self.page_mut(addr);
            let off = in_page as usize;
            p[off..off + size as usize].copy_from_slice(&value.to_le_bytes()[..size as usize]);
        } else {
            for i in 0..size {
                self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
            }
        }
    }

    /// Reads a 32-bit instruction word (must be 4-byte aligned for speed;
    /// falls back gracefully otherwise).
    #[inline]
    pub fn fetch(&self, pc: u64) -> u32 {
        self.read(pc, 4) as u32
    }

    /// Copies a byte slice into memory at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let mut addr = addr;
        let mut rest = bytes;
        while !rest.is_empty() {
            let fo = addr.wrapping_sub(self.flat_base);
            let flen = self.flat.len() as u64;
            let n = if fo < flen {
                let n = rest.len().min((flen - fo) as usize);
                if self.cow_base.is_some() {
                    self.materialize(fo, n as u64);
                }
                let fo = fo as usize;
                self.flat[fo..fo + n].copy_from_slice(&rest[..n]);
                n
            } else {
                let off = (addr & PAGE_MASK) as usize;
                let mut room = PAGE_SIZE as usize - off;
                if addr < self.flat_base {
                    // Stop at the flat region so the next chunk lands in it.
                    room = room.min((self.flat_base - addr) as usize);
                }
                let n = room.min(rest.len());
                self.page_mut(addr)[off..off + n].copy_from_slice(&rest[..n]);
                n
            };
            addr += n as u64;
            rest = &rest[n..];
        }
    }

    /// Copies `len` bytes out of memory starting at `addr`.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len as u64).map(|i| self.read_u8(addr.wrapping_add(i))).collect()
    }

    /// The flat region as `(base, one-past-end)`, or `None` when no
    /// region has been reserved.
    pub fn flat_range(&self) -> Option<(u64, u64)> {
        if self.flat.is_empty() {
            None
        } else {
            Some((self.flat_base, self.flat_end()))
        }
    }

    /// Serializes the full memory state: the flat-region geometry, the
    /// freeze flag, and every non-zero backed page. Zero pages are
    /// skipped — reads of unbacked memory return zero anyway, so the
    /// decoded memory reads identically at every address.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_bool(self.is_frozen());
        match self.flat_range() {
            None => w.put_bool(false),
            Some((base, end)) => {
                w.put_bool(true);
                w.put_u64(base);
                w.put_u64(end - base);
            }
        }
        const ZERO_PAGE: [u8; PAGE_SIZE as usize] = [0; PAGE_SIZE as usize];
        let mut pages: Vec<(u64, &[u8])> =
            self.pages().filter(|&(_, p)| p != &ZERO_PAGE[..]).collect();
        pages.sort_by_key(|&(base, _)| base);
        w.put_usize(pages.len());
        for (base, bytes) in pages {
            w.put_u64(base);
            w.put_raw(bytes);
        }
    }

    /// Decodes a memory serialized by [`Memory::encode`].
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or a structurally invalid buffer
    /// (absurd flat length, page count beyond the bytes present).
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Memory, CodecError> {
        let frozen = r.bool()?;
        let mut mem = Memory::new();
        if r.bool()? {
            let base = r.u64()?;
            let len = r.u64()?;
            let end = base.checked_add(len).ok_or(CodecError::Invalid("flat range"))?;
            if len == 0 || len > FLAT_MAX {
                return Err(CodecError::Invalid("flat length"));
            }
            mem.reserve_flat(base, end);
            if mem.flat_range() != Some((base, end)) {
                return Err(CodecError::Invalid("flat geometry"));
            }
        }
        let n = r.seq_len(8 + PAGE_SIZE as usize)?;
        for _ in 0..n {
            let base = r.u64()?;
            let bytes = r.take(PAGE_SIZE as usize)?;
            mem.write_bytes(base, bytes);
        }
        if frozen {
            mem.freeze_flat();
        }
        Ok(mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_by_default() {
        let m = Memory::new();
        assert_eq!(m.read(0x8000_0000, 8), 0);
        assert_eq!(m.read_u8(42), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn read_write_widths() {
        let mut m = Memory::new();
        m.write(0x1000, 8, 0x1122_3344_5566_7788);
        assert_eq!(m.read(0x1000, 8), 0x1122_3344_5566_7788);
        assert_eq!(m.read(0x1000, 4), 0x5566_7788);
        assert_eq!(m.read(0x1004, 4), 0x1122_3344);
        assert_eq!(m.read(0x1000, 2), 0x7788);
        assert_eq!(m.read(0x1000, 1), 0x88);
        m.write(0x1002, 2, 0xAABB);
        assert_eq!(m.read(0x1000, 8), 0x1122_3344_AABB_7788);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = PAGE_SIZE - 3; // 8-byte access straddles the boundary
        m.write(addr, 8, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(m.read(addr, 8), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn bulk_bytes_round_trip() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        m.write_bytes(PAGE_SIZE - 100, &data);
        assert_eq!(m.read_bytes(PAGE_SIZE - 100, data.len()), data);
    }

    #[test]
    fn flat_region_round_trip() {
        let mut m = Memory::new();
        m.reserve_flat(0x8000_0000, 0x8000_0000 + 2 * PAGE_SIZE);
        assert_eq!(m.read(0x8000_0000, 8), 0, "flat region starts zeroed");
        m.write(0x8000_0008, 8, 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read(0x8000_0008, 8), 0x0123_4567_89AB_CDEF);
        assert_eq!(m.page_count(), 0, "flat writes allocate no overflow pages");
        assert_eq!(m.footprint_bytes(), 2 * PAGE_SIZE as usize);
    }

    #[test]
    fn accesses_straddling_the_flat_boundary() {
        let mut m = Memory::new();
        m.reserve_flat(0x8000_0000, 0x8000_0000 + PAGE_SIZE);
        // Starts 4 bytes below the flat base, ends 4 bytes inside it.
        m.write(0x8000_0000 - 4, 8, 0xAABB_CCDD_EEFF_0011);
        assert_eq!(m.read(0x8000_0000 - 4, 8), 0xAABB_CCDD_EEFF_0011);
        assert_eq!(m.read(0x8000_0000, 4), 0xAABB_CCDD);
        // Starts 4 bytes before the flat end, ends 4 bytes past it.
        let end = 0x8000_0000 + PAGE_SIZE;
        m.write(end - 4, 8, 0x1122_3344_5566_7788);
        assert_eq!(m.read(end - 4, 8), 0x1122_3344_5566_7788);
        assert_eq!(m.read(end, 4), 0x1122_3344);
        assert_eq!(m.page_count(), 2, "both sides spill into overflow pages");
    }

    #[test]
    fn reserve_flat_migrates_existing_pages() {
        let mut m = Memory::new();
        m.write(0x8000_0010, 8, 0xDEAD_BEEF_1234_5678);
        m.write(0x7FFF_FFF8, 8, 0x0BAD_CAFE_0BAD_CAFE); // below the region
        assert_eq!(m.page_count(), 2);
        m.reserve_flat(0x8000_0000, 0x8000_0000 + PAGE_SIZE);
        assert_eq!(m.read(0x8000_0010, 8), 0xDEAD_BEEF_1234_5678, "page content migrated");
        assert_eq!(m.read(0x7FFF_FFF8, 8), 0x0BAD_CAFE_0BAD_CAFE, "outside page untouched");
        assert_eq!(m.page_count(), 1, "migrated page left the overflow table");
    }

    #[test]
    fn reserve_flat_is_idempotent_and_capped() {
        let mut m = Memory::new();
        m.reserve_flat(0, u64::MAX);
        assert_eq!(m.footprint_bytes() as u64, FLAT_MAX, "reservation capped");
        let before = m.footprint_bytes();
        m.reserve_flat(0x9000_0000, 0xA000_0000);
        assert_eq!(m.footprint_bytes(), before, "second reservation is a no-op");
    }

    #[test]
    fn clone_is_independent() {
        let mut m = Memory::new();
        m.reserve_flat(0x8000_0000, 0x8000_0000 + PAGE_SIZE);
        m.write(0x8000_0000, 8, 1);
        m.write(0x1000, 8, 2); // overflow page
        let mut c = m.clone();
        c.write(0x8000_0000, 8, 3);
        c.write(0x1000, 8, 4);
        c.write(0x2000, 8, 5); // new page only in the clone
        assert_eq!(m.read(0x8000_0000, 8), 1);
        assert_eq!(m.read(0x1000, 8), 2);
        assert_eq!(m.read(0x2000, 8), 0);
        assert_eq!(c.read(0x8000_0000, 8), 3);
        assert_eq!(c.read(0x1000, 8), 4);
        assert_eq!(c.read(0x2000, 8), 5);
    }

    #[test]
    fn sparse_clone_reproduces_every_flat_byte() {
        let mut m = Memory::new();
        m.reserve_flat(0x8000_0000, 0x8000_0000 + 8 * PAGE_SIZE);
        // Scattered writes, including across a page boundary and in the
        // last page, with zero pages in between (which the sparse clone
        // skips).
        m.write(0x8000_0000, 8, 0x0102_0304_0506_0708);
        m.write(0x8000_0000 + PAGE_SIZE - 3, 8, 0x1111_2222_3333_4444);
        m.write(0x8000_0000 + 7 * PAGE_SIZE + 8, 4, 0xDEAD_BEEF);
        let c = m.clone();
        for pn in 0..8 {
            for off in (0..PAGE_SIZE).step_by(8) {
                let addr = 0x8000_0000 + pn * PAGE_SIZE + off;
                assert_eq!(m.read(addr, 8), c.read(addr, 8), "mismatch at {addr:#x}");
            }
        }
    }

    /// A scattered-content memory used by the CoW tests.
    fn seeded() -> Memory {
        let mut m = Memory::new();
        m.reserve_flat(0x8000_0000, 0x8000_0000 + 4 * PAGE_SIZE);
        m.write(0x8000_0000, 8, 0x0102_0304_0506_0708);
        m.write(0x8000_0000 + PAGE_SIZE - 3, 8, 0x1111_2222_3333_4444);
        m.write(0x8000_0000 + 3 * PAGE_SIZE + 8, 4, 0xDEAD_BEEF);
        m.write(0x1000, 8, 0xABCD); // overflow page
        m
    }

    #[test]
    fn freeze_preserves_every_byte() {
        let owned = seeded();
        let mut frozen = seeded();
        frozen.freeze_flat();
        assert!(frozen.is_frozen() && !owned.is_frozen());
        for off in (0..4 * PAGE_SIZE).step_by(4) {
            let addr = 0x8000_0000 + off;
            assert_eq!(owned.read(addr, 4), frozen.read(addr, 4), "mismatch at {addr:#x}");
        }
        assert_eq!(frozen.read(0x1000, 8), 0xABCD);
        assert_eq!(frozen.footprint_bytes(), owned.footprint_bytes());
    }

    #[test]
    fn frozen_clones_share_the_base_and_write_independently() {
        let mut m = seeded();
        m.freeze_flat();
        let mut a = m.clone();
        let mut b = m.clone();
        assert_eq!(a.dirty_page_count(), 0, "fresh clone has no private pages");
        a.write(0x8000_0000, 8, 111);
        b.write(0x8000_0000, 8, 222);
        assert_eq!(m.read(0x8000_0000, 8), 0x0102_0304_0506_0708);
        assert_eq!(a.read(0x8000_0000, 8), 111);
        assert_eq!(b.read(0x8000_0000, 8), 222);
        assert_eq!(a.dirty_page_count(), 1);
        // Reads around the written word still come from the base.
        assert_eq!(a.read(0x8000_0000 + PAGE_SIZE - 3, 8), 0x1111_2222_3333_4444);
    }

    #[test]
    fn cow_write_materializes_the_rest_of_the_page() {
        let mut m = seeded();
        m.freeze_flat();
        let mut c = m.clone();
        // Write one byte into page 0: the other bytes of that page must
        // be copied from the base, not zeroed.
        c.write_u8(0x8000_0000 + 100, 7);
        assert_eq!(c.read(0x8000_0000, 8), 0x0102_0304_0506_0708);
        assert_eq!(c.read_u8(0x8000_0000 + 100), 7);
    }

    #[test]
    fn cow_straddling_access_spans_dirty_and_clean_pages() {
        let mut m = seeded();
        m.freeze_flat();
        let mut c = m.clone();
        let boundary = 0x8000_0000 + PAGE_SIZE;
        // Dirty page 1 only; page 0 stays in the base. The seeded value
        // straddles the 0/1 boundary, so a read mixes both sources.
        c.write(boundary + 16, 8, 1);
        assert_eq!(c.read(0x8000_0000 + PAGE_SIZE - 3, 8), 0x1111_2222_3333_4444);
        // A straddling write must materialize both pages.
        let mut d = m.clone();
        d.write(boundary - 4, 8, 0x9999_8888_7777_6666);
        assert_eq!(d.read(boundary - 4, 8), 0x9999_8888_7777_6666);
        assert_eq!(d.dirty_page_count(), 2);
        assert_eq!(d.read(0x8000_0000, 8), 0x0102_0304_0506_0708, "rest of page 0 intact");
    }

    #[test]
    fn cow_clone_of_a_dirty_clone_carries_private_pages() {
        let mut m = seeded();
        m.freeze_flat();
        let mut a = m.clone();
        a.write(0x8000_0000 + 2 * PAGE_SIZE, 8, 0xFEED);
        let b = a.clone();
        assert_eq!(b.read(0x8000_0000 + 2 * PAGE_SIZE, 8), 0xFEED);
        assert_eq!(b.read(0x8000_0000, 8), 0x0102_0304_0506_0708);
        assert_eq!(b.dirty_page_count(), 1);
    }

    #[test]
    fn frozen_pages_iterator_matches_owned() {
        let owned = seeded();
        let mut frozen = seeded();
        frozen.freeze_flat();
        let collect = |m: &Memory| {
            let mut v: Vec<(u64, Vec<u8>)> = m.pages().map(|(b, p)| (b, p.to_vec())).collect();
            v.sort_by_key(|(b, _)| *b);
            v
        };
        assert_eq!(collect(&owned), collect(&frozen));
        // Dirtied pages show their private contents.
        let mut c = frozen.clone();
        c.write(0x8000_0000, 8, 42);
        let pages = collect(&c);
        assert_eq!(u64::from_le_bytes(pages[1].1[..8].try_into().unwrap()), 42);
    }

    #[test]
    fn freeze_is_idempotent() {
        let mut m = seeded();
        m.freeze_flat();
        let base = m.cow_base.clone().unwrap();
        m.freeze_flat();
        assert!(Arc::ptr_eq(&base, m.cow_base.as_ref().unwrap()));
    }

    /// Reads every backed page of both memories and asserts bit equality.
    fn assert_reads_identical(a: &Memory, b: &Memory) {
        let collect = |m: &Memory| {
            let mut v: Vec<(u64, Vec<u8>)> = m
                .pages()
                .filter(|(_, p)| p.iter().any(|&x| x != 0))
                .map(|(base, p)| (base, p.to_vec()))
                .collect();
            v.sort_by_key(|(base, _)| *base);
            v
        };
        assert_eq!(collect(a), collect(b), "non-zero page contents must match");
        assert_eq!(a.flat_range(), b.flat_range());
        assert_eq!(a.is_frozen(), b.is_frozen());
    }

    #[test]
    fn encode_decode_round_trips_owned_and_frozen() {
        for freeze in [false, true] {
            let mut m = seeded();
            if freeze {
                m.freeze_flat();
            }
            let mut w = ByteWriter::new();
            m.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            let d = Memory::decode(&mut r).unwrap();
            r.finish().unwrap();
            assert_reads_identical(&m, &d);
            assert_eq!(d.read(0x1000, 8), 0xABCD, "overflow page restored");
            assert_eq!(d.read(0x8000_0000, 8), 0x0102_0304_0506_0708);
        }
    }

    #[test]
    fn decode_rejects_absurd_flat_and_page_lengths() {
        let mut w = ByteWriter::new();
        w.put_bool(false);
        w.put_bool(true);
        w.put_u64(0x8000_0000);
        w.put_u64(u64::MAX - 0x8000_0000); // overflows FLAT_MAX
        let bytes = w.into_bytes();
        assert!(Memory::decode(&mut ByteReader::new(&bytes)).is_err());

        let mut w = ByteWriter::new();
        w.put_bool(false);
        w.put_bool(false);
        w.put_u64(u64::MAX); // page count with no bytes behind it
        let bytes = w.into_bytes();
        assert_eq!(
            Memory::decode(&mut ByteReader::new(&bytes)).map(|_| ()),
            Err(CodecError::Truncated)
        );
    }

    #[test]
    fn every_truncation_of_an_encoded_memory_errors() {
        let mut m = seeded();
        m.freeze_flat();
        let mut w = ByteWriter::new();
        m.encode(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            let res = Memory::decode(&mut r).and_then(|_| r.finish());
            assert!(res.is_err(), "cut at {cut} must not decode");
        }
    }

    #[test]
    fn pages_iterator_covers_flat_and_overflow() {
        let mut m = Memory::new();
        m.reserve_flat(0x8000_0000, 0x8000_0000 + 2 * PAGE_SIZE);
        m.write(0x1000, 1, 7);
        let mut bases: Vec<u64> = m.pages().map(|(b, _)| b).collect();
        bases.sort_unstable();
        assert_eq!(bases, vec![0x1000, 0x8000_0000, 0x8000_0000 + PAGE_SIZE]);
        assert!(m.pages().all(|(_, p)| p.len() == PAGE_SIZE as usize));
    }
}
