//! Sparse, paged physical memory shared by the functional and cycle-level
//! simulators.

use std::collections::HashMap;

/// Size of one backing page in bytes.
pub const PAGE_SIZE: u64 = 4096;
const PAGE_MASK: u64 = PAGE_SIZE - 1;

type Page = [u8; PAGE_SIZE as usize];

/// A sparse 64-bit physical address space backed by 4 KiB pages.
///
/// Reads of untouched memory return zero, matching the zeroed-DRAM
/// convention the bare-metal workloads rely on. All accesses are
/// little-endian and may be misaligned (split accesses fall back to a
/// byte-wise path).
#[derive(Clone, Default, Debug)]
pub struct Memory {
    pages: HashMap<u64, Box<Page>>,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of distinct pages that have been written.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Iterates over `(page_base_address, page_bytes)` for all touched pages.
    pub fn pages(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.pages.iter().map(|(k, v)| (k * PAGE_SIZE, &v[..]))
    }

    #[inline]
    fn page(&self, addr: u64) -> Option<&Page> {
        self.pages.get(&(addr / PAGE_SIZE)).map(|p| &**p)
    }

    #[inline]
    fn page_mut(&mut self, addr: u64) -> &mut Page {
        self.pages.entry(addr / PAGE_SIZE).or_insert_with(|| Box::new([0; PAGE_SIZE as usize]))
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.page_mut(addr)[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads `N` little-endian bytes starting at `addr` into a u64.
    #[inline]
    pub fn read(&self, addr: u64, size: u64) -> u64 {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        let off = addr & PAGE_MASK;
        if off + size <= PAGE_SIZE {
            let Some(p) = self.page(addr) else { return 0 };
            let off = off as usize;
            let mut buf = [0u8; 8];
            buf[..size as usize].copy_from_slice(&p[off..off + size as usize]);
            u64::from_le_bytes(buf)
        } else {
            let mut v = 0u64;
            for i in 0..size {
                v |= (self.read_u8(addr + i) as u64) << (8 * i);
            }
            v
        }
    }

    /// Writes the low `size` bytes of `value` little-endian at `addr`.
    #[inline]
    pub fn write(&mut self, addr: u64, size: u64, value: u64) {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        let off = addr & PAGE_MASK;
        if off + size <= PAGE_SIZE {
            let p = self.page_mut(addr);
            let off = off as usize;
            p[off..off + size as usize].copy_from_slice(&value.to_le_bytes()[..size as usize]);
        } else {
            for i in 0..size {
                self.write_u8(addr + i, (value >> (8 * i)) as u8);
            }
        }
    }

    /// Reads a 32-bit instruction word (must be 4-byte aligned for speed;
    /// falls back gracefully otherwise).
    #[inline]
    pub fn fetch(&self, pc: u64) -> u32 {
        self.read(pc, 4) as u32
    }

    /// Copies a byte slice into memory at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let mut addr = addr;
        let mut rest = bytes;
        while !rest.is_empty() {
            let off = (addr & PAGE_MASK) as usize;
            let room = (PAGE_SIZE as usize) - off;
            let n = room.min(rest.len());
            self.page_mut(addr)[off..off + n].copy_from_slice(&rest[..n]);
            addr += n as u64;
            rest = &rest[n..];
        }
    }

    /// Copies `len` bytes out of memory starting at `addr`.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len as u64).map(|i| self.read_u8(addr + i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_by_default() {
        let m = Memory::new();
        assert_eq!(m.read(0x8000_0000, 8), 0);
        assert_eq!(m.read_u8(42), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn read_write_widths() {
        let mut m = Memory::new();
        m.write(0x1000, 8, 0x1122_3344_5566_7788);
        assert_eq!(m.read(0x1000, 8), 0x1122_3344_5566_7788);
        assert_eq!(m.read(0x1000, 4), 0x5566_7788);
        assert_eq!(m.read(0x1004, 4), 0x1122_3344);
        assert_eq!(m.read(0x1000, 2), 0x7788);
        assert_eq!(m.read(0x1000, 1), 0x88);
        m.write(0x1002, 2, 0xAABB);
        assert_eq!(m.read(0x1000, 8), 0x1122_3344_AABB_7788);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = PAGE_SIZE - 3; // 8-byte access straddles the boundary
        m.write(addr, 8, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(m.read(addr, 8), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn bulk_bytes_round_trip() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        m.write_bytes(PAGE_SIZE - 100, &data);
        assert_eq!(m.read_bytes(PAGE_SIZE - 100, data.len()), data);
    }
}
