//! Bounded work-stealing scheduler for supervised campaigns.
//!
//! The campaign driver schedules *simulation points* — not whole cells —
//! as the unit of work: after a per-workload artifact-preparation phase
//! (memoized by [`ArtifactStore`], so profiling / clustering /
//! checkpointing run exactly once per workload no matter how many
//! configurations share it), every (cell, point) pair across the whole
//! configuration × workload matrix goes into one work pool drained by
//! `--jobs` workers. Small cells therefore never serialize behind big
//! ones, and the detailed-simulation phase saturates the machine at any
//! matrix shape.
//!
//! Supervision semantics are exactly those of the sequential driver:
//! per-point retry and quarantine ([`run_point_timed`] →
//! `run_point_supervised`), per-cell `catch_unwind` isolation around
//! artifact preparation and result assembly, and deterministic
//! (configuration-major) cell ordering with points assembled in plan
//! order — a `--jobs 1` and a `--jobs N` campaign produce
//! [`CampaignReport`]s with identical cells.

use crate::artifacts::{config_fingerprint, ArtifactStore, CheckpointSet};
use crate::flow::{
    assemble_workload_result, escaped_panic, run_co_cell, run_point_batch, run_point_timed,
    supervision_fingerprint, FlowConfig, FlowError, PointOutcome,
};
use crate::journal::{CampaignJournal, JournalReplay};
use crate::pool::WorkPool;
use crate::supervisor::{
    panic_message, CampaignReport, CampaignStats, CellFailure, CellResult, CoRunCellResult,
    CoreRunResult, FailureKind, PointFailure,
};
use crate::sync::lock;
use boom_uarch::BoomConfig;
use rv_workloads::Workload;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Campaign-scheduler knobs.
#[derive(Clone, Debug)]
pub struct CampaignOptions {
    /// Worker threads draining the point pool (≥ 1). `1` reproduces the
    /// sequential driver exactly.
    pub jobs: usize,
    /// Write-ahead journal receiving every completed point, enabling
    /// `--resume` after a crash. `None` disables journaling.
    pub journal: Option<Arc<CampaignJournal>>,
    /// Outcomes recovered from a previous run's journal; matching
    /// points are replayed instead of re-simulated.
    pub replay: Option<Arc<JournalReplay>>,
    /// Dual-core co-run cells: pairs of workload indices that co-run on
    /// two cores sharing one L2, scheduled once per configuration after
    /// every single-core cell. The pair order is the core order.
    pub co_runs: Vec<(usize, usize)>,
    /// Configurations simulated per batched work item (≥ 1). With `N >
    /// 1`, up to `N` configurations' detailed simulations of the *same*
    /// SimPoint are grouped into one task that classifies the point's
    /// micro-op table once and shares it (plus the predecoded image)
    /// across the per-config lanes. Each lane's outcome, journal record,
    /// and report cell are bit-identical to an unbatched run. Chunks of
    /// ≤ 2 lanes auto-fall-back to the solo path — at that width the
    /// batching machinery costs more than the shared classification
    /// saves.
    pub batch_lanes: usize,
    /// Externally owned worker pool to drain this campaign's tasks
    /// instead of a private scoped pool — the campaign service points
    /// every admitted request at one process-wide [`WorkPool`] so its
    /// `--jobs` bound and round-robin fairness span requests. `None`
    /// (solo runs) keeps the private work-stealing pool.
    pub pool: Option<Arc<WorkPool>>,
    /// Route each solo-lane point through the store's cross-request
    /// single-flight map, so concurrent campaigns sharing the store
    /// coalesce overlapping points (one computation, both reports) and
    /// later campaigns reuse completed ones warm. Only the service
    /// enables it; outcomes are still journaled per request.
    pub share_points: bool,
    /// Progress callback invoked as `(done, total)` over the campaign's
    /// point outcomes (replayed points count as already done).
    pub progress: Option<ProgressHook>,
}

/// A cloneable `(done, total)` progress callback ([`CampaignOptions::progress`]).
#[derive(Clone)]
pub struct ProgressHook(pub Arc<dyn Fn(u64, u64) + Send + Sync>);

impl std::fmt::Debug for ProgressHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ProgressHook")
    }
}

impl Default for CampaignOptions {
    fn default() -> CampaignOptions {
        CampaignOptions {
            jobs: default_jobs(),
            journal: None,
            replay: None,
            co_runs: Vec::new(),
            batch_lanes: 1,
            pool: None,
            share_points: false,
            progress: None,
        }
    }
}

/// The default `--jobs`: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Why one workload's artifact preparation failed (shared by every cell
/// of that workload, exactly as each cell would fail when preparing the
/// same artifacts itself).
#[derive(Clone)]
pub(crate) enum PrepError {
    Flow(FlowError),
    Panicked(String),
}

/// One unit of work in the detailed-simulation pool.
enum PointTask {
    /// One SimPoint simulated for one or more configurations — the lanes
    /// of a batch ([`CampaignOptions::batch_lanes`]). All lanes share the
    /// workload and point index; a solo lane takes the exact unbatched
    /// code path.
    Lanes {
        /// Cell indices of the lanes, in configuration-major order.
        c_idxs: Vec<usize>,
        /// Point index within the workload's checkpoint set.
        p_idx: usize,
    },
    /// A dual-core co-run cell (index into the co-cell list).
    CoRun(usize),
}

/// Runs the supervised campaign over every (configuration, workload)
/// cell with the staged pipeline and the point-level work pool.
pub(crate) fn run_campaign(
    cfgs: &[BoomConfig],
    workloads: &[Workload],
    flow: &FlowConfig,
    store: &ArtifactStore,
    opts: &CampaignOptions,
) -> CampaignReport {
    let t0 = Instant::now();
    let jobs = opts.jobs.max(1);

    // Phase 1 — per-workload artifact preparation (profile → analysis →
    // checkpoints), each behind `catch_unwind`. The store memoizes, so
    // duplicate workloads and later phases all share one computation.
    let prep: Vec<OnceLock<Result<Arc<CheckpointSet>, PrepError>>> =
        workloads.iter().map(|_| OnceLock::new()).collect();
    exec_tasks(jobs, opts.pool.as_deref(), (0..workloads.len()).collect(), |w_idx| {
        let r = match catch_unwind(AssertUnwindSafe(|| store.checkpoints(&workloads[w_idx], flow)))
        {
            Ok(Ok(set)) => Ok(set),
            Ok(Err(e)) => Err(PrepError::Flow(e)),
            Err(payload) => Err(PrepError::Panicked(panic_message(payload.as_ref()))),
        };
        let _ = prep[w_idx].set(r);
    });
    let prep_of = |w_idx: usize| -> Result<Arc<CheckpointSet>, PrepError> {
        prep[w_idx]
            .get()
            .cloned()
            .unwrap_or_else(|| Err(PrepError::Panicked("artifact worker died".to_string())))
    };

    // Phase 2 — one work item per (cell, point) across the whole matrix,
    // drained by the work-stealing pool. Each item runs under the same
    // per-point supervision (retry, budget, quarantine) as the
    // single-cell flow.
    let cells: Vec<(&BoomConfig, usize)> =
        cfgs.iter().flat_map(|cfg| (0..workloads.len()).map(move |w_idx| (cfg, w_idx))).collect();
    let sets: Vec<Option<Arc<CheckpointSet>>> =
        cells.iter().map(|&(_, w_idx)| prep_of(w_idx).ok()).collect();
    let mut slots: Vec<Vec<OnceLock<PointOutcome>>> = sets
        .iter()
        .map(|set| set.as_ref().map_or(0, |s| s.points.len()))
        .map(|n| (0..n).map(|_| OnceLock::new()).collect())
        .collect();

    // Dual-core co-run cells, configuration-major like the single-core
    // cells and appended *after* all of them, so adding co-runs never
    // shifts an existing cell's journal index. Each co cell owns two
    // outcome slots (one per core) filled by a single co-run task.
    let co_cells: Vec<(&BoomConfig, (usize, usize))> =
        cfgs.iter().flat_map(|cfg| opts.co_runs.iter().map(move |&pair| (cfg, pair))).collect();
    for &(_, (a, b)) in &co_cells {
        assert!(
            a < workloads.len() && b < workloads.len(),
            "co-run workload index ({a}, {b}) out of range for {} workload(s)",
            workloads.len()
        );
    }
    let co_slots: Vec<[OnceLock<PointOutcome>; 2]> =
        co_cells.iter().map(|_| [OnceLock::new(), OnceLock::new()]).collect();

    // Replay: points already journaled by an interrupted run fill their
    // slots up front (including quarantined failures, so weight
    // re-normalization matches the original run exactly) and never
    // enter the work pool. Co-run cells live past the single-core index
    // range. Stale indices from a torn journal that somehow passed
    // validation are simply out of range and ignored.
    let mut replayed: u64 = 0;
    if let Some(replay) = &opts.replay {
        for (&(c_idx, p_idx), outcome) in &replay.outcomes {
            let slot = if c_idx < slots.len() {
                slots[c_idx].get(p_idx)
            } else {
                co_slots.get(c_idx - slots.len()).and_then(|cell| cell.get(p_idx))
            };
            if let Some(slot) = slot {
                if slot.set(outcome.clone()).is_ok() {
                    replayed += 1;
                }
            }
        }
    }

    // Batching: the unfilled (cell, point) pairs are grouped by
    // (workload, point) — the axis along which the checkpoint image and
    // micro-op table are shared — and chunked into `batch_lanes`-wide
    // tasks, configuration-major within each chunk. With `batch_lanes ==
    // 1` this degenerates to one task per (cell, point). Replay-filled
    // slots never enter a batch, so a resumed campaign only batches what
    // it actually simulates.
    let batch_lanes = opts.batch_lanes.max(1);
    let mut batched_points: u64 = 0;
    let mut point_tasks: Vec<PointTask> = Vec::new();
    for w_idx in 0..workloads.len() {
        let cell_of = |cfg_i: usize| cfg_i * workloads.len() + w_idx;
        let n_points = (0..cfgs.len())
            .find_map(|cfg_i| sets[cell_of(cfg_i)].as_ref().map(|s| s.points.len()))
            .unwrap_or(0);
        for p_idx in 0..n_points {
            let lanes: Vec<usize> = (0..cfgs.len())
                .map(cell_of)
                .filter(|&c_idx| slots[c_idx].get(p_idx).is_some_and(|s| s.get().is_none()))
                .collect();
            for chunk in lanes.chunks(batch_lanes) {
                if chunk.len() >= 3 {
                    batched_points += chunk.len() as u64;
                    point_tasks.push(PointTask::Lanes { c_idxs: chunk.to_vec(), p_idx });
                } else {
                    // ≤ 2 lanes: the batch set-up doesn't amortize, so
                    // each lane takes the (cheaper) solo path.
                    for &c_idx in chunk {
                        point_tasks.push(PointTask::Lanes { c_idxs: vec![c_idx], p_idx });
                    }
                }
            }
        }
    }
    // One task per co cell with any unfilled slot; one task simulates
    // both cores.
    point_tasks.extend(
        co_cells
            .iter()
            .enumerate()
            .filter(|&(k, _)| co_slots[k].iter().any(|s| s.get().is_none()))
            .map(|(k, _)| PointTask::CoRun(k)),
    );
    {
        let slots = &slots;
        let co_slots = &co_slots;
        let co_cells = &co_cells;
        let sets = &sets;
        let completed = &AtomicU64::new(0);
        // Progress: every point slot of the campaign, replays pre-counted.
        let total_points: u64 =
            slots.iter().map(|v| v.len() as u64).sum::<u64>() + 2 * co_slots.len() as u64;
        let done_points = &AtomicU64::new(replayed);
        let report_progress = |fresh: u64| {
            if let Some(hook) = &opts.progress {
                let done = done_points.fetch_add(fresh, Ordering::Relaxed) + fresh;
                (hook.0)(done, total_points);
            }
        };
        if let Some(hook) = &opts.progress {
            (hook.0)(replayed, total_points);
        }
        // Fault injection: die *after* journaling N fresh points, exactly
        // as an OOM kill or power cut would — the journal holds the
        // completed work, the process holds nothing.
        let charge_and_maybe_kill = |fresh: u64| {
            if let Some(kill_after) = flow.inject.kill_after_points {
                if fresh > 0 && completed.fetch_add(fresh, Ordering::Relaxed) + fresh >= kill_after
                {
                    std::process::abort();
                }
            }
        };
        exec_tasks(jobs, opts.pool.as_deref(), point_tasks, |task| {
            let (c_idxs, p_idx) = match task {
                PointTask::CoRun(k) => {
                    // Dual-core co-run cell: one task steps both cores to
                    // completion and fills both outcome slots.
                    let c_idx = cells.len() + k;
                    let (cfg, (a, b)) = co_cells[k];
                    let outcomes = match catch_unwind(AssertUnwindSafe(|| {
                        run_co_cell(cfg, [&workloads[a], &workloads[b]], &flow.inject)
                    })) {
                        Ok(o) => o,
                        Err(payload) => {
                            let f = PointFailure {
                                simpoint: 0,
                                interval: 0,
                                weight: 1.0,
                                attempts: 1,
                                kind: FailureKind::Panicked {
                                    message: panic_message(payload.as_ref()),
                                },
                            };
                            [Err(f.clone()), Err(f)]
                        }
                    };
                    let mut fresh = 0u64;
                    for (p, outcome) in outcomes.into_iter().enumerate() {
                        // A slot already filled by replay keeps the
                        // journaled outcome (identical anyway — the
                        // co-run is deterministic) and is not
                        // re-journaled.
                        if co_slots[k][p].get().is_some() {
                            continue;
                        }
                        if let Some(journal) = &opts.journal {
                            journal.append(c_idx, p, &outcome);
                        }
                        let _ = co_slots[k][p].set(outcome);
                        fresh += 1;
                    }
                    report_progress(fresh);
                    charge_and_maybe_kill(fresh);
                    return;
                }
                PointTask::Lanes { c_idxs, p_idx } => (c_idxs, p_idx),
            };
            let Some(set) = &sets[c_idxs[0]] else { return };
            let point = &set.points[p_idx];
            let outcomes: Vec<PointOutcome> = if let [c_idx] = c_idxs[..] {
                // Solo lane: the exact unbatched code path (private
                // micro-op classification).
                let (cfg, w_idx) = cells[c_idx];
                let compute = || match catch_unwind(AssertUnwindSafe(|| {
                    run_point_timed(cfg, point, flow, None, store)
                })) {
                    Ok(o) => o,
                    Err(payload) => Err(escaped_panic(point, payload.as_ref())),
                };
                vec![if opts.share_points {
                    // Cross-request single flight: concurrent campaigns
                    // sharing this store compute each (config, workload,
                    // point, supervision) exactly once; the outcome is
                    // deterministic, so every sharer's report is
                    // bit-identical to a private computation.
                    let key = (
                        crate::sweep::point_key(
                            config_fingerprint(cfg),
                            &workloads[w_idx],
                            flow,
                            0,
                            p_idx,
                        ),
                        supervision_fingerprint(flow),
                    );
                    store.singleflight_point(key, compute)
                } else {
                    compute()
                }]
            } else {
                let lane_cfgs: Vec<&BoomConfig> = c_idxs.iter().map(|&c| cells[c].0).collect();
                run_point_batch(&lane_cfgs, point, flow, store)
            };
            for (&c_idx, outcome) in c_idxs.iter().zip(outcomes) {
                if let Some(journal) = &opts.journal {
                    journal.append(c_idx, p_idx, &outcome);
                }
                let _ = slots[c_idx][p_idx].set(outcome);
                report_progress(1);
                charge_and_maybe_kill(1);
            }
        });
    }

    // Phase 3 — deterministic assembly, cell by cell in configuration-
    // major order, each behind `catch_unwind`.
    let mut results = Vec::with_capacity(cells.len());
    for ((&(cfg, w_idx), set), cell_slots) in cells.iter().zip(&sets).zip(slots.iter_mut()) {
        let workload = &workloads[w_idx];
        let outcome = match (prep_of(w_idx), set) {
            (Err(PrepError::Flow(e)), _) => Err(CellFailure::Flow(e)),
            (Err(PrepError::Panicked(m)), _) => Err(CellFailure::Panicked(m)),
            (Ok(_), None) => unreachable!("prep succeeded but no set recorded"),
            (Ok(_), Some(set)) => {
                let outcomes: Vec<PointOutcome> = set
                    .points
                    .iter()
                    .zip(std::mem::take(cell_slots))
                    .map(|(point, slot)| {
                        slot.into_inner().unwrap_or_else(|| {
                            Err(escaped_panic(point, &"point worker died".to_string()))
                        })
                    })
                    .collect();
                match catch_unwind(AssertUnwindSafe(|| {
                    assemble_workload_result(&cfg.name, workload, set, outcomes)
                })) {
                    Ok(Ok(r)) => Ok(Box::new(r)),
                    Ok(Err(e)) => Err(CellFailure::Flow(e)),
                    Err(payload) => Err(CellFailure::Panicked(panic_message(payload.as_ref()))),
                }
            }
        };
        results.push(CellResult { config: cfg.name.clone(), workload: workload.name, outcome });
    }

    // Co-run cells assemble from their two per-core slots; a failure on
    // either core (both slots carry the same record) fails the cell.
    let mut co_results = Vec::with_capacity(co_cells.len());
    for ((cfg, (a, b)), cell_slots) in co_cells.iter().zip(co_slots) {
        let names = [workloads[*a].name, workloads[*b].name];
        let [s0, s1] = cell_slots;
        let take = |slot: OnceLock<PointOutcome>| {
            slot.into_inner().unwrap_or_else(|| {
                Err(PointFailure {
                    simpoint: 0,
                    interval: 0,
                    weight: 1.0,
                    attempts: 1,
                    kind: FailureKind::Panicked { message: "co-run worker died".to_string() },
                })
            })
        };
        let outcome = match (take(s0), take(s1)) {
            (Ok((p0, _)), Ok((p1, _))) => Ok(Box::new([
                CoreRunResult { workload: names[0], ipc: p0.ipc, power: p0.power, stats: p0.stats },
                CoreRunResult { workload: names[1], ipc: p1.ipc, power: p1.power, stats: p1.stats },
            ])),
            (Err(f), _) | (_, Err(f)) => Err(CellFailure::Flow(f.into_flow_error())),
        };
        co_results.push(CoRunCellResult { config: cfg.name.clone(), workloads: names, outcome });
    }

    // Skip accounting is summed from the assembled results rather than
    // tracked live: replayed points correctly contribute 0 (a replay
    // skipped nothing in this process) and the sum is deterministic.
    let idle_cycles_skipped: u64 = results
        .iter()
        .filter_map(|c| c.outcome.as_ref().ok())
        .flat_map(|r| r.points.iter())
        .map(|p| p.stats.idle_cycles_skipped)
        .sum();
    let stats = CampaignStats {
        jobs,
        wall_ms: t0.elapsed().as_secs_f64() * 1000.0,
        cache: store.stats(),
        replayed_points: replayed,
        batched_points,
        idle_cycles_skipped,
    };
    CampaignReport { cells: results, co_cells: co_results, stats }
}

/// Drains `tasks` either on the caller-supplied shared [`WorkPool`]
/// (campaign-service mode: one process-wide `--jobs` bound, round-robin
/// across concurrent requests) or on a private [`run_tasks`] pool sized
/// by `jobs` (solo mode). On a cancelled shared pool the unstarted tasks
/// are dropped — their outcome slots stay unset and downstream assembly
/// degrades them, it never blocks.
pub(crate) fn exec_tasks<T: Send>(
    jobs: usize,
    pool: Option<&WorkPool>,
    tasks: Vec<T>,
    run: impl Fn(T) + Sync,
) {
    match pool {
        Some(pool) => pool.run_scoped(tasks, run),
        None => run_tasks(jobs, tasks, run),
    }
}

/// Runs every task on a bounded work-stealing pool of `jobs` workers.
///
/// Tasks are seeded round-robin across per-worker deques; a worker pops
/// from the front of its own deque and, when empty, steals from the back
/// of a victim's. No tasks are added after seeding, so an empty sweep
/// means the pool is drained. With `jobs == 1` the tasks run strictly
/// sequentially on the calling thread in seed order.
pub(crate) fn run_tasks<T: Send>(jobs: usize, tasks: Vec<T>, run: impl Fn(T) + Sync) {
    if tasks.is_empty() {
        return;
    }
    let jobs = jobs.max(1).min(tasks.len());
    if jobs == 1 {
        for t in tasks {
            run(t);
        }
        return;
    }
    let queues: Vec<Mutex<VecDeque<T>>> = (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, t) in tasks.into_iter().enumerate() {
        lock(&queues[i % jobs]).push_back(t);
    }
    let queues = &queues;
    let run = &run;
    std::thread::scope(|s| {
        for me in 0..jobs {
            s.spawn(move || {
                while let Some(task) = pop_or_steal(queues, me) {
                    run(task);
                }
            });
        }
    });
}

/// Pops the next task: front of the worker's own deque first, then the
/// back of each other deque in scan order.
fn pop_or_steal<T>(queues: &[Mutex<VecDeque<T>>], me: usize) -> Option<T> {
    if let Some(t) = lock(&queues[me]).pop_front() {
        return Some(t);
    }
    let n = queues.len();
    (1..n).find_map(|d| lock(&queues[(me + d) % n]).pop_back())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_every_task_exactly_once() {
        for jobs in [1usize, 2, 5, 32] {
            let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
            run_tasks(jobs, (0..hits.len()).collect(), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "jobs={jobs}: some task ran zero or multiple times"
            );
        }
    }

    #[test]
    fn pool_steals_imbalanced_work() {
        // One long task seeded on worker 0 plus many short ones: with
        // stealing, the short tasks complete even though their home
        // queue's owner is busy. (Completion itself is the assertion —
        // a non-stealing pool with a blocked worker would still finish,
        // but only after serializing; the exactly-once property above is
        // the correctness gate, this exercises the steal path.)
        let done = AtomicUsize::new(0);
        run_tasks(4, (0..64).collect::<Vec<usize>>(), |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            done.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(done.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
        assert!(CampaignOptions::default().jobs >= 1);
    }
}
