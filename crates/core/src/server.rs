//! The `boomflow serve` campaign service: a persistent process that
//! accepts campaign and sweep requests over a Unix or TCP socket,
//! executes them on one shared scheduler pool, and streams progress and
//! results back over the [`protocol`](crate::protocol) frames.
//!
//! Why a daemon: a solo `boomflow` run pays process start-up, loads the
//! disk cache cold, and can share nothing with concurrent runs. The
//! service keeps one process-wide [`ArtifactStore`] warm across requests
//! (memory *and* disk tiers), so overlapping requests coalesce through
//! the store's single-flight maps — two clients asking for overlapping
//! (config, workload, point) work trigger exactly one computation, and
//! later requests reuse completed points warm. The reuse is observable:
//! `inflight_dedup_hits` / `warm_store_hits` in each request's stage
//! summary.
//!
//! Scheduling: every admitted request drains its tasks through one
//! [`WorkPool`] bounded by `--jobs`, which serves submissions round-robin
//! — a small campaign admitted after a big one makes progress
//! immediately instead of queueing behind it. Admission control bounds
//! the number of active requests (`--max-active`); the rest are rejected
//! with a typed reason rather than silently queued without bound.
//!
//! Durability: each request's specification is persisted to the state
//! directory at admission and its points are journaled exactly as a solo
//! `--journal` run's would be. A killed server therefore resumes
//! cleanly: restart it on the same state directory and re-`attach` the
//! request id — the journal replays the finished points and the report
//! comes out byte-identical to an uninterrupted run. Graceful shutdown
//! cancels unstarted work (journals hold everything completed) before
//! the socket closes.

use crate::artifacts::ArtifactStore;
use crate::flow::FlowConfig;
use crate::journal::{campaign_fingerprint_with, CampaignJournal, JournalReplay};
use crate::pool::WorkPool;
use crate::protocol::{
    decode_client, encode_client, encode_server, read_frame, request_id, write_frame,
    CampaignRequest, ClientMsg, ProtocolError, Request, ServerMsg,
};
use crate::scheduler::{default_jobs, CampaignOptions, ProgressHook};
use crate::supervisor::FaultInjection;
use crate::supervisor::{panic_message, supervise_campaign, RetryPolicy};
use crate::sweep::{all_fixed_latency, run_sweep, SweepOptions, SweepSpec};
use crate::sync::lock;
use boom_uarch::BoomConfig;
use rv_workloads::{all, by_name, Workload};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};

/// A bidirectional byte stream between a client and the service (Unix
/// or TCP — the protocol does not care).
pub trait ServeStream: Read + Write + Send {}
impl<T: Read + Write + Send> ServeStream for T {}

/// Where the service listens (and where clients connect).
#[derive(Clone, Debug)]
pub enum ServeAddr {
    /// A Unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP address (`host:port`; port 0 binds an ephemeral port, and
    /// the bound [`Server::addr`] reports the real one).
    Tcp(String),
}

impl std::fmt::Display for ServeAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeAddr::Unix(p) => write!(f, "unix:{}", p.display()),
            ServeAddr::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// Connects a client to a listening service.
///
/// # Errors
///
/// Propagates connection failures.
pub fn connect(addr: &ServeAddr) -> std::io::Result<Box<dyn ServeStream>> {
    Ok(match addr {
        ServeAddr::Unix(path) => Box::new(UnixStream::connect(path)?),
        ServeAddr::Tcp(a) => Box::new(TcpStream::connect(a.as_str())?),
    })
}

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Global scheduler-pool width: detailed-simulation tasks from *all*
    /// admitted requests share these workers.
    pub jobs: usize,
    /// Admission bound: requests active at once before new submissions
    /// are rejected.
    pub max_active: usize,
    /// Disk tier of the shared artifact store (`None` = memory only).
    pub cache_dir: Option<PathBuf>,
    /// State directory holding each request's persisted specification
    /// and journal (created if needed) — the resume substrate.
    pub state_dir: PathBuf,
    /// Test-only: abort the whole server process after this many freshly
    /// journaled points, the service-side crash drill.
    pub kill_after_points: Option<u64>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            jobs: default_jobs(),
            max_active: 8,
            cache_dir: None,
            state_dir: PathBuf::from(".boomflow-serve"),
            kill_after_points: None,
        }
    }
}

/// One admitted request's shared state: its subscriber fan-out and its
/// terminal result.
struct RequestState {
    id: u64,
    /// Points replayed from the journal at launch (0 until the runner
    /// has opened it).
    replayed: AtomicU64,
    /// Live subscribers; pruned on send failure. Guarded together with
    /// `done` (set under this lock) so a subscriber can never miss the
    /// terminal message.
    subscribers: Mutex<Vec<mpsc::Sender<ServerMsg>>>,
    done: OnceLock<ServerMsg>,
}

impl RequestState {
    /// Sends `msg` to every live subscriber; a terminal message is also
    /// recorded for subscribers that attach later.
    fn publish(&self, msg: &ServerMsg, terminal: bool) {
        let mut subs = lock(&self.subscribers);
        if terminal {
            let _ = self.done.set(msg.clone());
        }
        subs.retain(|tx| tx.send(msg.clone()).is_ok());
        if terminal {
            subs.clear();
        }
    }

    /// Registers a subscriber, or returns the terminal message directly
    /// when the request already finished.
    fn subscribe(&self) -> Result<mpsc::Receiver<ServerMsg>, ServerMsg> {
        let mut subs = lock(&self.subscribers);
        if let Some(done) = self.done.get() {
            return Err(done.clone());
        }
        let (tx, rx) = mpsc::channel();
        subs.push(tx);
        Ok(rx)
    }
}

/// Process-wide service state shared by the accept loop, the connection
/// handlers, and the request runners.
struct ServerState {
    opts: ServeOptions,
    addr: ServeAddr,
    /// The cross-request artifact store — the service's perf core.
    store: ArtifactStore,
    /// The global, request-fair scheduler pool.
    pool: Arc<WorkPool>,
    requests: Mutex<HashMap<u64, Arc<RequestState>>>,
    active: AtomicU64,
    shutdown: AtomicBool,
    runners: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Box<dyn ServeStream>> {
        Ok(match self {
            Listener::Unix(l) => Box::new(l.accept()?.0),
            Listener::Tcp(l) => Box::new(l.accept()?.0),
        })
    }
}

/// The campaign service. Bind, then [`Server::run`] the accept loop
/// until a client sends [`ClientMsg::Shutdown`].
pub struct Server {
    listener: Listener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the service (Unix socket or TCP listener per `addr`),
    /// creating the state directory and opening the shared store's disk
    /// tier.
    ///
    /// # Errors
    ///
    /// Propagates bind and directory-creation failures.
    pub fn bind(addr: &ServeAddr, opts: ServeOptions) -> std::io::Result<Server> {
        std::fs::create_dir_all(&opts.state_dir)?;
        let store = match &opts.cache_dir {
            None => ArtifactStore::new(),
            Some(dir) => ArtifactStore::with_disk_cache(dir)?,
        };
        let (listener, addr) = match addr {
            ServeAddr::Unix(path) => {
                // A stale socket file from a killed server would fail the
                // bind; the state directory, not the socket, is the
                // durable state.
                let _ = std::fs::remove_file(path);
                (Listener::Unix(UnixListener::bind(path)?), ServeAddr::Unix(path.clone()))
            }
            ServeAddr::Tcp(a) => {
                let l = TcpListener::bind(a.as_str())?;
                let bound = ServeAddr::Tcp(l.local_addr()?.to_string());
                (Listener::Tcp(l), bound)
            }
        };
        let pool = Arc::new(WorkPool::new(opts.jobs.max(1)));
        let state = Arc::new(ServerState {
            opts,
            addr,
            store,
            pool,
            requests: Mutex::new(HashMap::new()),
            active: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            runners: Mutex::new(Vec::new()),
        });
        Ok(Server { listener, state })
    }

    /// The bound address (with the real port for `:0` TCP binds).
    pub fn addr(&self) -> &ServeAddr {
        &self.state.addr
    }

    /// Runs the accept loop until shutdown, then drains: joins every
    /// request runner (their journals flush as they unwind) and every
    /// connection handler before returning.
    ///
    /// # Errors
    ///
    /// Propagates accept failures.
    pub fn run(self) -> std::io::Result<()> {
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            let stream = self.listener.accept()?;
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let state = Arc::clone(&self.state);
            conns.push(std::thread::spawn(move || {
                // Connection errors (a client vanishing mid-stream) are
                // that connection's problem, never the service's.
                let _ = handle_conn(stream, &state);
            }));
            conns.retain(|h| !h.is_finished());
        }
        for h in lock(&self.state.runners).drain(..) {
            let _ = h.join();
        }
        for h in conns {
            let _ = h.join();
        }
        if let ServeAddr::Unix(path) = &self.state.addr {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// Handles one client connection: a single request frame, then (for
/// submit/attach) the event stream until the request's terminal message.
fn handle_conn(
    mut stream: Box<dyn ServeStream>,
    state: &Arc<ServerState>,
) -> Result<(), ProtocolError> {
    let reply = |stream: &mut Box<dyn ServeStream>, msg: &ServerMsg| {
        write_frame(stream, &encode_server(msg))
    };
    let msg = match read_frame(&mut stream).and_then(|p| decode_client(&p)) {
        Ok(msg) => msg,
        Err(e) => {
            // Reject malformed or version-mismatched clients with a
            // reason they can print, then drop the connection.
            let _ = reply(&mut stream, &ServerMsg::Rejected { reason: e.to_string() });
            return Err(e);
        }
    };
    match msg {
        ClientMsg::Shutdown => {
            state.shutdown.store(true, Ordering::SeqCst);
            // Drop queued-but-unstarted work; running points finish and
            // are journaled, so restart + attach resumes precisely.
            state.pool.cancel_pending();
            reply(&mut stream, &ServerMsg::Bye { active: state.active.load(Ordering::SeqCst) })?;
            // Unblock the accept loop so `run` can drain and exit.
            let _ = connect(&state.addr);
            Ok(())
        }
        ClientMsg::Submit(req) => {
            let rs = match admit(state, request_id(&req), Some(req)) {
                Ok(rs) => rs,
                Err(reason) => {
                    reply(&mut stream, &ServerMsg::Rejected { reason })?;
                    return Ok(());
                }
            };
            stream_events(stream, state, &rs)
        }
        ClientMsg::Attach(id) => {
            // In-memory first; otherwise relaunch from the persisted
            // specification — the resume path after a server crash.
            let known = lock(&state.requests).get(&id).cloned();
            let rs = match known {
                Some(rs) => rs,
                None => match admit(state, id, load_spec(state, id)) {
                    Ok(rs) => rs,
                    Err(reason) => {
                        reply(&mut stream, &ServerMsg::Rejected { reason })?;
                        return Ok(());
                    }
                },
            };
            stream_events(stream, state, &rs)
        }
    }
}

/// Admits request `id`: joins the in-flight run when one exists,
/// otherwise launches a runner for `spec` under the admission bound.
/// Returns a rejection reason when the queue is full, the server is
/// shutting down, or no specification is available.
fn admit(
    state: &Arc<ServerState>,
    id: u64,
    spec: Option<Request>,
) -> Result<Arc<RequestState>, String> {
    if state.shutdown.load(Ordering::SeqCst) {
        return Err("server is shutting down".to_string());
    }
    let mut requests = lock(&state.requests);
    if let Some(rs) = requests.get(&id) {
        // Coalesced: an identical request is already running (or done);
        // the caller just subscribes to it.
        return Ok(Arc::clone(rs));
    }
    let Some(req) = spec else {
        return Err(format!("unknown request id {id:016x}"));
    };
    let active = state.active.load(Ordering::SeqCst);
    if active >= state.opts.max_active as u64 {
        return Err(format!(
            "queue full: {active} active request(s) (max {})",
            state.opts.max_active
        ));
    }
    let rs = Arc::new(RequestState {
        id,
        replayed: AtomicU64::new(0),
        subscribers: Mutex::new(Vec::new()),
        done: OnceLock::new(),
    });
    requests.insert(id, Arc::clone(&rs));
    state.active.fetch_add(1, Ordering::SeqCst);
    drop(requests);
    store_spec(state, id, &req);
    let runner_state = Arc::clone(state);
    let runner_rs = Arc::clone(&rs);
    let handle = std::thread::spawn(move || run_request(&runner_state, &runner_rs, &req));
    lock(&state.runners).push(handle);
    Ok(rs)
}

/// Sends the admission event and forwards the request's event stream
/// until its terminal message (or until the client hangs up).
fn stream_events(
    mut stream: Box<dyn ServeStream>,
    state: &Arc<ServerState>,
    rs: &Arc<RequestState>,
) -> Result<(), ProtocolError> {
    let admitted = ServerMsg::Admitted {
        id: rs.id,
        replayed: rs.replayed.load(Ordering::SeqCst),
        active: state.active.load(Ordering::SeqCst),
    };
    write_frame(&mut stream, &encode_server(&admitted))?;
    match rs.subscribe() {
        Err(done) => write_frame(&mut stream, &encode_server(&done)),
        Ok(rx) => {
            while let Ok(msg) = rx.recv() {
                let terminal = matches!(msg, ServerMsg::Done { .. });
                write_frame(&mut stream, &encode_server(&msg))?;
                if terminal {
                    break;
                }
            }
            Ok(())
        }
    }
}

/// The persisted-specification file of request `id` (the full submit
/// frame payload, so it stays versioned like the wire).
fn spec_path(state: &ServerState, id: u64) -> PathBuf {
    state.opts.state_dir.join(format!("{id:016x}.req"))
}

fn store_spec(state: &ServerState, id: u64, req: &Request) {
    let bytes = encode_client(&ClientMsg::Submit(req.clone()));
    if let Err(e) = std::fs::write(spec_path(state, id), bytes) {
        eprintln!("boomflow serve: cannot persist request {id:016x}: {e}");
    }
}

fn load_spec(state: &ServerState, id: u64) -> Option<Request> {
    let bytes = std::fs::read(spec_path(state, id)).ok()?;
    match decode_client(&bytes) {
        Ok(ClientMsg::Submit(req)) if request_id(&req) == id => Some(req),
        _ => None,
    }
}

/// Executes one request end to end and publishes its terminal message.
fn run_request(state: &Arc<ServerState>, rs: &Arc<RequestState>, req: &Request) {
    let result = catch_unwind(AssertUnwindSafe(|| execute(state, rs, req)));
    let done = result.unwrap_or_else(|payload| ServerMsg::Done {
        id: rs.id,
        ok: false,
        report: Vec::new(),
        summary: format!("request runner panicked: {}", panic_message(payload.as_ref())),
        extra: String::new(),
    });
    rs.publish(&done, true);
    state.active.fetch_sub(1, Ordering::SeqCst);
}

/// Realizes a wire campaign request into the exact configuration,
/// workload, and flow objects a solo CLI run of the same flags builds —
/// the identity that makes served reports byte-comparable to solo ones.
///
/// # Errors
///
/// Returns a human-readable reason for unknown selections.
pub fn realize_campaign(
    req: &CampaignRequest,
) -> Result<(Vec<BoomConfig>, Vec<Workload>, FlowConfig), String> {
    let cfgs = match req.config.as_str() {
        "all" => BoomConfig::all_three(),
        "medium" => vec![BoomConfig::medium()],
        "large" => vec![BoomConfig::large()],
        "mega" => vec![BoomConfig::mega()],
        other => return Err(format!("unknown configuration selection '{other}'")),
    };
    let ws = realize_workloads(&req.workloads, req.scale)?;
    let flow = FlowConfig {
        warmup_insts: req.warmup,
        idle_skip: req.idle_skip,
        retry: RetryPolicy { max_attempts: req.retries.max(1), ..RetryPolicy::default() },
        ..FlowConfig::default()
    };
    Ok((cfgs, ws, flow))
}

fn realize_workloads(sel: &str, scale: rv_workloads::Scale) -> Result<Vec<Workload>, String> {
    if sel == "all" {
        return Ok(all(scale));
    }
    sel.split(',')
        .filter(|n| !n.is_empty())
        .map(|n| by_name(n, scale).ok_or_else(|| format!("unknown workload '{n}'")))
        .collect()
}

fn execute(state: &Arc<ServerState>, rs: &Arc<RequestState>, req: &Request) -> ServerMsg {
    let reject = |summary: String| ServerMsg::Done {
        id: rs.id,
        ok: false,
        report: Vec::new(),
        summary,
        extra: String::new(),
    };
    match req {
        Request::Campaign(c) => {
            let (cfgs, ws, mut flow) = match realize_campaign(c) {
                Ok(r) => r,
                Err(reason) => return reject(reason),
            };
            flow.inject = FaultInjection {
                kill_after_points: state.opts.kill_after_points,
                ..FaultInjection::default()
            };
            // Journal under the state directory, resumed when a previous
            // server life left one. The campaign fingerprint inside the
            // journal independently validates that the persisted spec
            // still describes the same matrix.
            let path = state.opts.state_dir.join(format!("{:016x}.bfj", rs.id));
            let fp = campaign_fingerprint_with(&cfgs, &ws, &flow, &[]);
            let (journal, replay): (Arc<CampaignJournal>, Option<Arc<JournalReplay>>) =
                if path.exists() {
                    match CampaignJournal::resume(&path, fp) {
                        Ok((j, r)) => (Arc::new(j), Some(Arc::new(r))),
                        Err(e) => return reject(format!("cannot resume journal: {e}")),
                    }
                } else {
                    match CampaignJournal::create(&path, fp) {
                        Ok(j) => (Arc::new(j), None),
                        Err(e) => return reject(format!("cannot create journal: {e}")),
                    }
                };
            rs.replayed.store(replay.as_ref().map_or(0, |r| r.len() as u64), Ordering::SeqCst);
            let progress_rs = Arc::clone(rs);
            let opts = CampaignOptions {
                jobs: state.opts.jobs,
                journal: Some(journal),
                replay,
                co_runs: Vec::new(),
                batch_lanes: c.batch_lanes.max(1),
                pool: Some(Arc::clone(&state.pool)),
                share_points: true,
                progress: Some(ProgressHook(Arc::new(move |done, total| {
                    progress_rs
                        .publish(&ServerMsg::Progress { id: progress_rs.id, done, total }, false);
                }))),
            };
            let report = supervise_campaign(&cfgs, &ws, &flow, &state.store, &opts);
            if state.shutdown.load(Ordering::SeqCst) {
                return reject(
                    "server shut down mid-campaign; completed points are journaled — \
                     restart the server and attach this id to resume"
                        .to_string(),
                );
            }
            let mut summary = report.stage_summary();
            if let Some(log) = report.failure_log() {
                summary.push('\n');
                summary.push_str(&log);
            }
            ServerMsg::Done {
                id: rs.id,
                ok: report.all_ok(),
                report: report.render_deterministic().into_bytes(),
                summary,
                extra: String::new(),
            }
        }
        Request::Sweep(s) => {
            let Some(mut spec) = SweepSpec::preset(&s.preset) else {
                return reject(format!("unknown grid preset '{}'", s.preset));
            };
            match s.base.as_str() {
                "" => {}
                "medium" => spec.base = BoomConfig::medium(),
                "large" => spec.base = BoomConfig::large(),
                "mega" => spec.base = BoomConfig::mega(),
                other => return reject(format!("unknown base configuration '{other}'")),
            }
            let cfgs = match spec.generate() {
                Ok(cfgs) => cfgs,
                Err(e) => return reject(format!("invalid sweep specification: {e}")),
            };
            let ws = match realize_workloads(&s.workloads, s.scale) {
                Ok(ws) => ws,
                Err(reason) => return reject(reason),
            };
            let flow = FlowConfig {
                warmup_insts: s.warmup,
                idle_skip: all_fixed_latency(&cfgs),
                inject: FaultInjection {
                    kill_after_points: state.opts.kill_after_points,
                    ..FaultInjection::default()
                },
                ..FlowConfig::default()
            };
            let path = state.opts.state_dir.join(format!("{:016x}.swj", rs.id));
            let opts = SweepOptions {
                jobs: state.opts.jobs,
                batch_lanes: s.batch_lanes.max(1),
                epsilon: s.epsilon,
                epsilon_decay: s.epsilon_decay,
                rung0_points: s.rung0_points.max(1),
                rung0_shift: s.rung0_shift,
                max_rungs: (s.max_rungs > 0).then_some(s.max_rungs),
                exhaustive: s.exhaustive,
                resume: path.exists(),
                journal_path: Some(path),
                pool: Some(Arc::clone(&state.pool)),
            };
            let report = match run_sweep(&cfgs, &ws, &flow, &state.store, &opts) {
                Ok(report) => report,
                Err(e) => return reject(format!("sweep failed: {e}")),
            };
            rs.replayed.store(report.stats.replayed_points, Ordering::SeqCst);
            if state.shutdown.load(Ordering::SeqCst) {
                return reject(
                    "server shut down mid-sweep; completed points are journaled — \
                     restart the server and attach this id to resume"
                        .to_string(),
                );
            }
            ServerMsg::Done {
                id: rs.id,
                ok: report.all_ok(),
                report: report.render_deterministic().into_bytes(),
                summary: report.stage_summary(),
                extra: report.render_frontier(),
            }
        }
    }
}

/// Convenience for in-process clients (tests, benches, the CLI): sends
/// one message and yields every server frame to `on_event` until the
/// stream ends, returning the terminal message if one arrived.
///
/// # Errors
///
/// Propagates stream and decode failures ([`ProtocolError::Io`] EOF
/// before a terminal frame means the server died mid-request).
pub fn request_events(
    addr: &ServeAddr,
    msg: &ClientMsg,
    mut on_event: impl FnMut(&ServerMsg),
) -> Result<Option<ServerMsg>, ProtocolError> {
    let mut stream = connect(addr)?;
    write_frame(&mut stream, &encode_client(msg))?;
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(ProtocolError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Ok(None)
            }
            Err(e) => return Err(e),
        };
        let msg = crate::protocol::decode_server(&payload)?;
        on_event(&msg);
        match msg {
            ServerMsg::Done { .. } | ServerMsg::Rejected { .. } | ServerMsg::Bye { .. } => {
                return Ok(Some(msg))
            }
            _ => {}
        }
    }
}
