//! `boomflow` — command-line front end for the SimPoint power/performance
//! analysis flow.
//!
//! ```text
//! boomflow [--workload NAME[,NAME...]|all] [--config medium|large|mega|all]
//!          [--scale test|small|full] [--predictor tage|gshare]
//!          [--iq collapsing|noncollapsing] [--full] [--warmup N]
//!          [--retries N] [--cycle-budget N] [--jobs N]
//! ```
//!
//! The matrix is run under the fault-tolerant supervisor as a staged
//! campaign: the configuration-independent stages (profiling, SimPoint
//! clustering, checkpoint capture) run exactly once per workload and are
//! shared across every configuration, then detailed simulation of the
//! individual points is spread over `--jobs` worker threads (default:
//! all cores). A hang or panic in one (configuration, workload) cell is
//! reported — including the pipeline watchdog's diagnostic snapshot —
//! and the remaining cells still run. The process exits non-zero only if
//! some cell failed after per-point retries.
//!
//! Examples:
//!
//! ```sh
//! cargo run --release -p boomflow --bin boomflow -- --workload sha --config mega
//! cargo run --release -p boomflow --bin boomflow -- --workload all --config all --scale full
//! cargo run --release -p boomflow --bin boomflow -- --workload dijkstra --full
//! ```

use boom_uarch::{BoomConfig, IssueQueueKind, PredictorKind};
use boomflow::report::render_table;
use boomflow::{
    default_jobs, run_full, supervise_matrix_with, CampaignOptions, FaultInjection, FlowConfig,
    RetryPolicy, WorkloadResult,
};
use rtl_power::Component;
use rv_workloads::{all, by_name, Scale, Workload};
use std::process::exit;

struct Args {
    workload: String,
    config: String,
    scale: Scale,
    predictor: PredictorKind,
    iq: IssueQueueKind,
    full: bool,
    warmup: u64,
    retries: u32,
    cycle_budget: Option<u64>,
    jobs: usize,
    /// Hidden: freeze commit on simulation point N (watchdog demo/tests).
    inject_hang: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: boomflow [--workload NAME[,NAME...]|all] [--config medium|large|mega|all]\n\
         \x20               [--scale test|small|full] [--predictor tage|gshare]\n\
         \x20               [--iq collapsing|noncollapsing] [--full] [--warmup N]\n\
         \x20               [--retries N] [--cycle-budget N] [--jobs N]\n\
         workloads: basicmath stringsearch fft ifft bitcount qsort dijkstra\n\
         \x20          patricia matmult sha tarfind"
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        workload: "all".to_string(),
        config: "all".to_string(),
        scale: Scale::Small,
        predictor: PredictorKind::Tage,
        iq: IssueQueueKind::Collapsing,
        full: false,
        warmup: 5_000,
        retries: RetryPolicy::default().max_attempts,
        cycle_budget: None,
        jobs: default_jobs(),
        inject_hang: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--workload" | "-w" => args.workload = value().to_lowercase(),
            "--config" | "-c" => args.config = value().to_lowercase(),
            "--scale" | "-s" => {
                args.scale = match value().to_lowercase().as_str() {
                    "test" => Scale::Test,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    _ => usage(),
                }
            }
            "--predictor" | "-p" => {
                args.predictor = match value().to_lowercase().as_str() {
                    "tage" => PredictorKind::Tage,
                    "gshare" => PredictorKind::Gshare,
                    _ => usage(),
                }
            }
            "--iq" => {
                args.iq = match value().to_lowercase().as_str() {
                    "collapsing" => IssueQueueKind::Collapsing,
                    "noncollapsing" | "non-collapsing" => IssueQueueKind::NonCollapsing,
                    _ => usage(),
                }
            }
            "--full" => args.full = true,
            "--warmup" => args.warmup = value().parse().unwrap_or_else(|_| usage()),
            "--retries" => args.retries = value().parse().unwrap_or_else(|_| usage()),
            "--cycle-budget" => {
                args.cycle_budget = Some(value().parse().unwrap_or_else(|_| usage()))
            }
            "--jobs" | "-j" => {
                args.jobs = value().parse().unwrap_or_else(|_| usage());
                if args.jobs == 0 {
                    usage()
                }
            }
            // Hidden fault-injection flag: exercises the watchdog and the
            // supervisor's quarantine path on a live run.
            "--inject-hang" => args.inject_hang = Some(value().parse().unwrap_or_else(|_| usage())),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn configs(sel: &str, predictor: PredictorKind, iq: IssueQueueKind) -> Vec<BoomConfig> {
    let base = match sel {
        "all" => BoomConfig::all_three(),
        "medium" => vec![BoomConfig::medium()],
        "large" => vec![BoomConfig::large()],
        "mega" => vec![BoomConfig::mega()],
        _ => usage(),
    };
    base.into_iter().map(|c| c.with_predictor(predictor).with_issue_queue(iq)).collect()
}

fn workloads(sel: &str, scale: Scale) -> Vec<Workload> {
    if sel == "all" {
        return all(scale);
    }
    sel.split(',')
        .filter(|n| !n.is_empty())
        .map(|n| by_name(n, scale).unwrap_or_else(|| usage()))
        .collect()
}

fn print_result(r: &WorkloadResult) {
    println!(
        "\n### {} on {} — IPC {:.2}, tile {:.2} mW, {:.1} IPC/W, {} SimPoints ({:.0}% coverage, {:.0}x reduction)",
        r.name,
        r.config,
        r.ipc,
        r.tile_power_mw(),
        r.perf_per_watt(),
        r.points.len(),
        100.0 * r.coverage,
        r.speedup,
    );
    if let Some(d) = &r.degradation {
        println!("    {d}");
    }
    let header: Vec<String> =
        ["Component", "Leakage mW", "Internal mW", "Switching mW", "Total mW", "Share"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let tile = r.tile_power_mw();
    let rows: Vec<Vec<String>> = Component::ALL
        .iter()
        .map(|c| {
            let p = r.power.component(*c);
            vec![
                c.name().to_string(),
                format!("{:.3}", p.leakage_mw),
                format!("{:.3}", p.internal_mw),
                format!("{:.3}", p.switching_mw),
                format!("{:.3}", p.total_mw()),
                format!("{:.1}%", 100.0 * p.total_mw() / tile),
            ]
        })
        .collect();
    print!("{}", render_table(&header, &rows));
}

fn main() {
    let args = parse_args();
    let flow = FlowConfig {
        warmup_insts: args.warmup,
        retry: RetryPolicy {
            max_attempts: args.retries,
            cycle_budget: args.cycle_budget,
            ..RetryPolicy::default()
        },
        inject: FaultInjection { hang_point: args.inject_hang, ..FaultInjection::default() },
        ..FlowConfig::default()
    };
    let cfgs = configs(&args.config, args.predictor, args.iq);
    let ws = workloads(&args.workload, args.scale);

    if args.full {
        // Full detailed simulation: one run per cell, no SimPoint. A hang
        // prints the watchdog snapshot and moves on to the next cell.
        let mut failures = 0u32;
        for cfg in &cfgs {
            for w in &ws {
                match run_full(cfg, w) {
                    Ok(full) => println!(
                        "{} on {} (full detailed simulation): IPC {:.3} over {} insts / {} cycles, tile {:.2} mW",
                        w.name, cfg.name, full.ipc, full.retired, full.cycles,
                        full.power.tile_total_mw()
                    ),
                    Err(e) => {
                        eprintln!("{} on {}: {e}", w.name, cfg.name);
                        failures += 1;
                    }
                }
            }
        }
        if failures > 0 {
            eprintln!("{failures} full-simulation cell(s) failed");
            exit(1);
        }
        return;
    }

    let opts = CampaignOptions { jobs: args.jobs };
    let report = supervise_matrix_with(&cfgs, &ws, &flow, &opts);
    for cell in &report.cells {
        if let Ok(r) = &cell.outcome {
            print_result(r);
        }
    }
    print!("\n{}", report.stage_summary());
    if let Some(log) = report.failure_log() {
        eprint!("\n{log}");
    }
    if !report.all_ok() {
        exit(1);
    }
}
