//! `boomflow` — command-line front end for the SimPoint power/performance
//! analysis flow.
//!
//! ```text
//! boomflow serve (--socket PATH|--tcp ADDR) [--jobs N] [--max-active N]
//!          [--cache-dir DIR] [--state-dir DIR]
//! boomflow submit (--socket PATH|--tcp ADDR) [campaign flags...]
//!          [--sweep-preset ref64|smoke16 [sweep flags...]] [--report-out FILE]
//! boomflow attach (--socket PATH|--tcp ADDR) --id HEX [--report-out FILE]
//! boomflow shutdown (--socket PATH|--tcp ADDR)
//! boomflow sweep [--grid-preset ref64|smoke16] [--grid KNOB=V1,V2,...]
//!          [--base medium|large|mega] [--random N --seed S]
//!          [--workload NAME[,NAME...]|all] [--scale test|small|full]
//!          [--warmup N] [--jobs N] [--batch-lanes N]
//!          [--idle-skip|--no-idle-skip] [--rungs N] [--rung0-points N]
//!          [--rung0-shift N] [--epsilon F] [--epsilon-decay F] [--exhaustive]
//!          [--cache-dir DIR] [--journal FILE [--resume]]
//!          [--report-out FILE] [--frontier-out FILE]
//! boomflow [--workload NAME[,NAME...]|all] [--config medium|large|mega|all]
//!          [--scale test|small|full] [--predictor tage|gshare]
//!          [--iq collapsing|noncollapsing] [--full] [--warmup N]
//!          [--retries N] [--cycle-budget N] [--jobs N]
//!          [--mem-backend fixed|hierarchy] [--l2 SETSxWAYSxLINE]
//!          [--l2-mshrs N] [--l2-latency N] [--dram-latency N]
//!          [--dram-burst N] [--dram-row-hit N] [--co-run A+B ...]
//!          [--batch-lanes N] [--idle-skip]
//!          [--cache-dir DIR] [--journal FILE [--resume]] [--report-out FILE]
//! ```
//!
//! The matrix is run under the fault-tolerant supervisor as a staged
//! campaign: the configuration-independent stages (profiling, SimPoint
//! clustering, checkpoint capture) run exactly once per workload and are
//! shared across every configuration, then detailed simulation of the
//! individual points is spread over `--jobs` worker threads (default:
//! all cores). A hang or panic in one (configuration, workload) cell is
//! reported — including the pipeline watchdog's diagnostic snapshot —
//! and the remaining cells still run. The process exits non-zero only if
//! some cell failed after per-point retries.
//!
//! With `--mem-backend hierarchy` (implied by any `--l2*`/`--dram*`
//! knob) every configuration's L1 misses go to a shared L2 + DRAM model
//! instead of the flat fixed-latency memory, and the power report gains
//! the L2 Cache and DRAM Interface components. `--co-run A+B` adds a
//! dual-core cell per configuration: workloads A and B co-run on two
//! cores sharing one L2, reported with per-core IPC/power plus the
//! interference counters (L2 contention stalls, DRAM bandwidth-wait
//! cycles).
//!
//! `--batch-lanes N` groups up to `N` configurations' detailed
//! simulations of the same SimPoint into one batched work item that
//! shares the predecoded image and the (configuration-independent)
//! micro-op table across the per-config lanes. `--idle-skip` turns on
//! event-driven idle-cycle skipping in the detailed core: provably idle
//! stretches are fast-forwarded in one step and charged analytically.
//! Both are pure wall-clock optimizations — every counter, journal
//! record, and report byte is identical to an unbatched, skip-off run.
//! Idle skipping requires the flat fixed-latency memory backend (the
//! shared-uncore hierarchy is never idle) and cannot combine with
//! `--co-run`.
//!
//! With `--cache-dir` the configuration-independent artifacts are also
//! persisted to a checksummed on-disk cache and reused by later runs.
//! With `--journal` every completed point is appended to a write-ahead
//! journal; after a crash, re-running with `--resume` replays the
//! finished points and only simulates the rest, producing a report
//! byte-identical (`--report-out`) to an uninterrupted run.
//!
//! `boomflow serve` runs the same campaigns as a persistent service: one
//! process-wide artifact store stays warm across requests, overlapping
//! requests deduplicate their points through it in flight, and all
//! admitted requests share one `--jobs`-bounded scheduler pool served
//! round-robin. `submit` sends a request (and streams its progress),
//! `attach` re-joins a request by id — including after a server crash,
//! when it resumes the request from its journal — and `shutdown` drains
//! the service gracefully. See `boomflow::server`.
//!
//! Examples:
//!
//! ```sh
//! cargo run --release -p boomflow --bin boomflow -- --workload sha --config mega
//! cargo run --release -p boomflow --bin boomflow -- --workload all --config all --scale full
//! cargo run --release -p boomflow --bin boomflow -- --workload dijkstra --full
//! cargo run --release -p boomflow --bin boomflow -- --cache-dir .boomflow-cache \
//!     --journal campaign.bfj --resume --report-out report.txt
//! ```

use boom_uarch::{
    BoomConfig, CacheParams, ConfigError, HierarchyParams, IssueQueueKind, PredictorKind,
};
use boomflow::report::render_table;
use boomflow::{
    all_fixed_latency, campaign_fingerprint_with, default_jobs, request_events, request_id,
    run_full, run_sweep, supervise_campaign, ArtifactStore, CacheStage, CampaignJournal,
    CampaignOptions, CampaignRequest, ClientMsg, DiskFaultInjection, FaultInjection, FlowConfig,
    JournalReplay, Request, RetryPolicy, ServeAddr, ServeOptions, Server, ServerMsg, SweepKnob,
    SweepOptions, SweepRequest, SweepSpec, WorkloadResult,
};
use rtl_power::Component;
use rv_workloads::{all, by_name, Scale, Workload};
use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;

struct Args {
    workload: String,
    config: String,
    scale: Scale,
    predictor: PredictorKind,
    iq: IssueQueueKind,
    full: bool,
    warmup: u64,
    retries: u32,
    cycle_budget: Option<u64>,
    jobs: usize,
    hierarchy: bool,
    l2: Option<String>,
    l2_mshrs: Option<usize>,
    l2_latency: Option<u64>,
    dram_latency: Option<u64>,
    dram_burst: Option<u64>,
    dram_row_hit: Option<u64>,
    co_run: Vec<String>,
    batch_lanes: usize,
    idle_skip: bool,
    cache_dir: Option<PathBuf>,
    journal: Option<PathBuf>,
    resume: bool,
    report_out: Option<PathBuf>,
    /// Hidden: freeze commit on simulation point N (watchdog demo/tests).
    inject_hang: Option<usize>,
    /// Hidden: tear the next disk-cache write of this stage.
    inject_torn_write: Option<CacheStage>,
    /// Hidden: corrupt the next disk-cache write of this stage.
    inject_corrupt: Option<CacheStage>,
    /// Hidden: abort the process after journaling N fresh points.
    inject_kill_after: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: boomflow [--workload NAME[,NAME...]|all] [--config medium|large|mega|all]\n\
         \x20               [--scale test|small|full] [--predictor tage|gshare]\n\
         \x20               [--iq collapsing|noncollapsing] [--full] [--warmup N]\n\
         \x20               [--retries N] [--cycle-budget N] [--jobs N]\n\
         \x20               [--mem-backend fixed|hierarchy] [--l2 SETSxWAYSxLINE]\n\
         \x20               [--l2-mshrs N] [--l2-latency N] [--dram-latency N]\n\
         \x20               [--dram-burst N] [--dram-row-hit N] [--co-run A+B ...]\n\
         \x20               [--batch-lanes N] [--idle-skip]\n\
         \x20               [--cache-dir DIR] [--journal FILE [--resume]]\n\
         \x20               [--report-out FILE]\n\
         workloads: basicmath stringsearch fft ifft bitcount qsort dijkstra\n\
         \x20          patricia matmult sha tarfind"
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        workload: "all".to_string(),
        config: "all".to_string(),
        scale: Scale::Small,
        predictor: PredictorKind::Tage,
        iq: IssueQueueKind::Collapsing,
        full: false,
        warmup: 5_000,
        retries: RetryPolicy::default().max_attempts,
        cycle_budget: None,
        jobs: default_jobs(),
        hierarchy: false,
        l2: None,
        l2_mshrs: None,
        l2_latency: None,
        dram_latency: None,
        dram_burst: None,
        dram_row_hit: None,
        co_run: Vec::new(),
        batch_lanes: 1,
        idle_skip: false,
        cache_dir: None,
        journal: None,
        resume: false,
        report_out: None,
        inject_hang: None,
        inject_torn_write: None,
        inject_corrupt: None,
        inject_kill_after: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--workload" | "-w" => args.workload = value().to_lowercase(),
            "--config" | "-c" => args.config = value().to_lowercase(),
            "--scale" | "-s" => {
                args.scale = match value().to_lowercase().as_str() {
                    "test" => Scale::Test,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    _ => usage(),
                }
            }
            "--predictor" | "-p" => {
                args.predictor = match value().to_lowercase().as_str() {
                    "tage" => PredictorKind::Tage,
                    "gshare" => PredictorKind::Gshare,
                    _ => usage(),
                }
            }
            "--iq" => {
                args.iq = match value().to_lowercase().as_str() {
                    "collapsing" => IssueQueueKind::Collapsing,
                    "noncollapsing" | "non-collapsing" => IssueQueueKind::NonCollapsing,
                    _ => usage(),
                }
            }
            "--full" => args.full = true,
            "--warmup" => args.warmup = value().parse().unwrap_or_else(|_| usage()),
            "--retries" => args.retries = value().parse().unwrap_or_else(|_| usage()),
            "--cycle-budget" => {
                args.cycle_budget = Some(value().parse().unwrap_or_else(|_| usage()))
            }
            "--jobs" | "-j" => {
                args.jobs = value().parse().unwrap_or_else(|_| usage());
                if args.jobs == 0 {
                    usage()
                }
            }
            "--mem-backend" => {
                args.hierarchy = match value().to_lowercase().as_str() {
                    "fixed" => false,
                    "hierarchy" => true,
                    _ => usage(),
                }
            }
            "--l2" => args.l2 = Some(value()),
            "--l2-mshrs" => args.l2_mshrs = Some(value().parse().unwrap_or_else(|_| usage())),
            "--l2-latency" => args.l2_latency = Some(value().parse().unwrap_or_else(|_| usage())),
            "--dram-latency" => {
                args.dram_latency = Some(value().parse().unwrap_or_else(|_| usage()))
            }
            "--dram-burst" => args.dram_burst = Some(value().parse().unwrap_or_else(|_| usage())),
            "--dram-row-hit" => {
                args.dram_row_hit = Some(value().parse().unwrap_or_else(|_| usage()))
            }
            "--co-run" => args.co_run.push(value().to_lowercase()),
            "--batch-lanes" => {
                args.batch_lanes = value().parse().unwrap_or_else(|_| usage());
                if args.batch_lanes == 0 {
                    usage()
                }
            }
            "--idle-skip" => args.idle_skip = true,
            "--cache-dir" => args.cache_dir = Some(PathBuf::from(value())),
            "--journal" => args.journal = Some(PathBuf::from(value())),
            "--resume" => args.resume = true,
            "--report-out" => args.report_out = Some(PathBuf::from(value())),
            // Hidden fault-injection flags: exercise the watchdog /
            // quarantine path, the disk-cache corruption handling, and
            // the journal resume protocol on a live run.
            "--inject-hang" => args.inject_hang = Some(value().parse().unwrap_or_else(|_| usage())),
            "--inject-torn-write" => {
                args.inject_torn_write =
                    Some(CacheStage::parse(&value()).unwrap_or_else(|| usage()))
            }
            "--inject-corrupt" => {
                args.inject_corrupt = Some(CacheStage::parse(&value()).unwrap_or_else(|| usage()))
            }
            "--inject-kill-after" => {
                args.inject_kill_after = Some(value().parse().unwrap_or_else(|_| usage()))
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn configs(sel: &str, predictor: PredictorKind, iq: IssueQueueKind) -> Vec<BoomConfig> {
    let base = match sel {
        "all" => BoomConfig::all_three(),
        "medium" => vec![BoomConfig::medium()],
        "large" => vec![BoomConfig::large()],
        "mega" => vec![BoomConfig::mega()],
        _ => usage(),
    };
    base.into_iter().map(|c| c.with_predictor(predictor).with_issue_queue(iq)).collect()
}

/// Parses `SETSxWAYSxLINE` (e.g. `512x8x64`) onto a base L2 geometry.
fn parse_l2_geometry(spec: &str, base: CacheParams) -> CacheParams {
    let parts: Vec<&str> = spec.split('x').collect();
    let [sets, ways, line] = parts.as_slice() else { usage() };
    CacheParams {
        sets: sets.parse().unwrap_or_else(|_| usage()),
        ways: ways.parse().unwrap_or_else(|_| usage()),
        line_bytes: line.parse().unwrap_or_else(|_| usage()),
        ..base
    }
}

/// Builds the uncore parameter block from the CLI knobs, starting from
/// the Table-I-style defaults.
fn uncore_params(args: &Args) -> HierarchyParams {
    let mut uncore = HierarchyParams::default_uncore();
    if let Some(spec) = &args.l2 {
        uncore.l2 = parse_l2_geometry(spec, uncore.l2);
    }
    if let Some(m) = args.l2_mshrs {
        uncore.l2.mshrs = m;
    }
    if let Some(l) = args.l2_latency {
        uncore.l2.hit_latency = l;
    }
    if let Some(l) = args.dram_latency {
        uncore.dram_latency = l;
    }
    if let Some(b) = args.dram_burst {
        uncore.dram_burst_cycles = b;
    }
    if let Some(r) = args.dram_row_hit {
        uncore.dram_row_hit_latency = r;
    }
    uncore
}

fn workloads(sel: &str, scale: Scale) -> Vec<Workload> {
    if sel == "all" {
        return all(scale);
    }
    sel.split(',')
        .filter(|n| !n.is_empty())
        .map(|n| by_name(n, scale).unwrap_or_else(|| usage()))
        .collect()
}

fn print_result(r: &WorkloadResult) {
    println!(
        "\n### {} on {} — IPC {:.2}, tile {:.2} mW, {:.1} IPC/W, {} SimPoints ({:.0}% coverage, {:.0}x reduction)",
        r.name,
        r.config,
        r.ipc,
        r.tile_power_mw(),
        r.perf_per_watt(),
        r.points.len(),
        100.0 * r.coverage,
        r.speedup,
    );
    if let Some(d) = &r.degradation {
        println!("    {d}");
    }
    let header: Vec<String> =
        ["Component", "Leakage mW", "Internal mW", "Switching mW", "Total mW", "Share"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let tile = r.tile_power_mw();
    let rows: Vec<Vec<String>> = Component::ALL
        .iter()
        .map(|c| {
            let p = r.power.component(*c);
            vec![
                c.name().to_string(),
                format!("{:.3}", p.leakage_mw),
                format!("{:.3}", p.internal_mw),
                format!("{:.3}", p.switching_mw),
                format!("{:.3}", p.total_mw()),
                format!("{:.1}%", 100.0 * p.total_mw() / tile),
            ]
        })
        .collect();
    print!("{}", render_table(&header, &rows));
}

/// Arguments of the `boomflow sweep` subcommand.
struct SweepArgs {
    preset: Option<String>,
    grid: Vec<String>,
    base: Option<String>,
    random: Option<usize>,
    seed: u64,
    workload: String,
    scale: Scale,
    warmup: u64,
    jobs: usize,
    batch_lanes: usize,
    /// `None` = auto-arm idle skipping when every config allows it.
    idle_skip: Option<bool>,
    rungs: Option<usize>,
    rung0_points: usize,
    rung0_shift: u32,
    epsilon: f64,
    epsilon_decay: f64,
    exhaustive: bool,
    cache_dir: Option<PathBuf>,
    journal: Option<PathBuf>,
    resume: bool,
    report_out: Option<PathBuf>,
    frontier_out: Option<PathBuf>,
    /// Hidden: abort the process after journaling N fresh points.
    inject_kill_after: Option<u64>,
}

fn sweep_usage() -> ! {
    eprintln!(
        "usage: boomflow sweep [--grid-preset ref64|smoke16] [--grid KNOB=V1,V2,...]\n\
         \x20               [--base medium|large|mega] [--random N --seed S]\n\
         \x20               [--workload NAME[,NAME...]|all] [--scale test|small|full]\n\
         \x20               [--warmup N] [--jobs N] [--batch-lanes N]\n\
         \x20               [--idle-skip|--no-idle-skip] [--rungs N] [--rung0-points N]\n\
         \x20               [--rung0-shift N] [--epsilon F] [--epsilon-decay F] [--exhaustive]\n\
         \x20               [--cache-dir DIR] [--journal FILE [--resume]]\n\
         \x20               [--report-out FILE] [--frontier-out FILE]\n\
         knobs: {}",
        SweepKnob::ALL.map(|k| k.key()).join(" ")
    );
    exit(2)
}

fn parse_sweep_args(argv: &[String]) -> SweepArgs {
    let mut args = SweepArgs {
        preset: None,
        grid: Vec::new(),
        base: None,
        random: None,
        seed: 0,
        workload: "all".to_string(),
        scale: Scale::Small,
        warmup: 5_000,
        jobs: default_jobs(),
        batch_lanes: 4,
        idle_skip: None,
        rungs: None,
        rung0_points: 1,
        rung0_shift: 3,
        epsilon: 0.05,
        epsilon_decay: 0.5,
        exhaustive: false,
        cache_dir: None,
        journal: None,
        resume: false,
        report_out: None,
        frontier_out: None,
        inject_kill_after: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| sweep_usage());
        match flag.as_str() {
            "--grid-preset" => args.preset = Some(value().to_lowercase()),
            "--grid" => args.grid.push(value().to_lowercase()),
            "--base" => args.base = Some(value().to_lowercase()),
            "--random" => args.random = Some(value().parse().unwrap_or_else(|_| sweep_usage())),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| sweep_usage()),
            "--workload" | "-w" => args.workload = value().to_lowercase(),
            "--scale" | "-s" => {
                args.scale = match value().to_lowercase().as_str() {
                    "test" => Scale::Test,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    _ => sweep_usage(),
                }
            }
            "--warmup" => args.warmup = value().parse().unwrap_or_else(|_| sweep_usage()),
            "--jobs" | "-j" => {
                args.jobs = value().parse().unwrap_or_else(|_| sweep_usage());
                if args.jobs == 0 {
                    sweep_usage()
                }
            }
            "--batch-lanes" => {
                args.batch_lanes = value().parse().unwrap_or_else(|_| sweep_usage());
                if args.batch_lanes == 0 {
                    sweep_usage()
                }
            }
            "--idle-skip" => args.idle_skip = Some(true),
            "--no-idle-skip" => args.idle_skip = Some(false),
            "--rungs" => args.rungs = Some(value().parse().unwrap_or_else(|_| sweep_usage())),
            "--rung0-points" => {
                args.rung0_points = value().parse().unwrap_or_else(|_| sweep_usage())
            }
            "--rung0-shift" => args.rung0_shift = value().parse().unwrap_or_else(|_| sweep_usage()),
            "--epsilon" => args.epsilon = value().parse().unwrap_or_else(|_| sweep_usage()),
            "--epsilon-decay" => {
                args.epsilon_decay = value().parse().unwrap_or_else(|_| sweep_usage())
            }
            "--exhaustive" => args.exhaustive = true,
            "--cache-dir" => args.cache_dir = Some(PathBuf::from(value())),
            "--journal" => args.journal = Some(PathBuf::from(value())),
            "--resume" => args.resume = true,
            "--report-out" => args.report_out = Some(PathBuf::from(value())),
            "--frontier-out" => args.frontier_out = Some(PathBuf::from(value())),
            "--inject-kill-after" => {
                args.inject_kill_after = Some(value().parse().unwrap_or_else(|_| sweep_usage()))
            }
            "--help" | "-h" => sweep_usage(),
            _ => sweep_usage(),
        }
    }
    args
}

/// Parses one `--grid KNOB=V1,V2,...` axis.
fn parse_grid_axis(spec: &str) -> (SweepKnob, Vec<u64>) {
    let Some((name, values)) = spec.split_once('=') else { sweep_usage() };
    let Some(knob) = SweepKnob::parse(name) else {
        eprintln!("boomflow sweep: unknown knob '{name}'");
        sweep_usage()
    };
    let values: Vec<u64> = values
        .split(',')
        .filter(|v| !v.is_empty())
        .map(|v| v.parse().unwrap_or_else(|_| sweep_usage()))
        .collect();
    (knob, values)
}

fn sweep_main(argv: &[String]) {
    let args = parse_sweep_args(argv);

    // Assemble the design-space specification: preset axes first, then
    // any explicit `--grid` axes appended in flag order.
    let mut spec = match &args.preset {
        Some(name) => SweepSpec::preset(name).unwrap_or_else(|| {
            eprintln!("boomflow sweep: unknown grid preset '{name}'");
            sweep_usage()
        }),
        None => SweepSpec { base: BoomConfig::medium(), axes: Vec::new(), random: None },
    };
    if let Some(base) = &args.base {
        spec.base = match base.as_str() {
            "medium" => BoomConfig::medium(),
            "large" => BoomConfig::large(),
            "mega" => BoomConfig::mega(),
            _ => sweep_usage(),
        };
    }
    for axis in &args.grid {
        spec.axes.push(parse_grid_axis(axis));
    }
    if let Some(n) = args.random {
        spec.random = Some((n, args.seed));
    }
    let cfgs = spec.generate().unwrap_or_else(|e| {
        eprintln!("boomflow sweep: invalid sweep specification: {e}");
        exit(2)
    });
    let ws = workloads(&args.workload, args.scale);

    // Idle-cycle skipping: auto-armed when every configuration sits on
    // the flat fixed-latency backend; an *explicit* `--idle-skip` over a
    // hierarchy config is a typed rejection, never a silent drop.
    let idle_skip = match args.idle_skip {
        Some(true) => {
            if !all_fixed_latency(&cfgs) {
                let e = ConfigError::IdleSkipUnsupported {
                    what: "sweep over memory-hierarchy configurations".to_string(),
                };
                eprintln!("boomflow sweep: {e}");
                exit(2);
            }
            true
        }
        Some(false) => false,
        None => all_fixed_latency(&cfgs),
    };

    let flow = FlowConfig {
        warmup_insts: args.warmup,
        idle_skip,
        inject: FaultInjection {
            kill_after_points: args.inject_kill_after,
            ..FaultInjection::default()
        },
        ..FlowConfig::default()
    };
    let store = match &args.cache_dir {
        None => ArtifactStore::new(),
        Some(dir) => ArtifactStore::with_disk_cache(dir).unwrap_or_else(|e| {
            eprintln!("boomflow sweep: cannot open cache dir {}: {e}", dir.display());
            exit(2);
        }),
    };
    if args.resume && args.journal.is_none() {
        eprintln!("boomflow sweep: --resume requires --journal");
        exit(2);
    }
    let resume = args.resume && args.journal.as_ref().is_some_and(|p| p.exists());
    let opts = SweepOptions {
        jobs: args.jobs,
        batch_lanes: args.batch_lanes,
        epsilon: args.epsilon,
        epsilon_decay: args.epsilon_decay,
        rung0_points: args.rung0_points,
        rung0_shift: args.rung0_shift,
        max_rungs: args.rungs,
        exhaustive: args.exhaustive,
        journal_path: args.journal.clone(),
        resume,
        pool: None,
    };

    let report = match run_sweep(&cfgs, &ws, &flow, &store, &opts) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("boomflow sweep: {e}");
            exit(2);
        }
    };
    if resume {
        eprintln!(
            "boomflow sweep: resumed, {} completed point(s) replayed",
            report.stats.replayed_points
        );
    }
    print!("{}", report.render_frontier());
    print!("\n{}", report.stage_summary());
    if let Some(path) = &args.report_out {
        if let Err(e) = std::fs::write(path, report.render_deterministic()) {
            eprintln!("boomflow sweep: cannot write report {}: {e}", path.display());
            exit(1);
        }
    }
    if let Some(path) = &args.frontier_out {
        if let Err(e) = std::fs::write(path, report.render_frontier()) {
            eprintln!("boomflow sweep: cannot write frontier {}: {e}", path.display());
            exit(1);
        }
    }
    if !report.all_ok() {
        exit(1);
    }
}

fn serve_usage() -> ! {
    eprintln!(
        "usage: boomflow serve (--socket PATH|--tcp ADDR) [--jobs N] [--max-active N]\n\
         \x20               [--cache-dir DIR] [--state-dir DIR]\n\
         \x20      boomflow submit (--socket PATH|--tcp ADDR)\n\
         \x20               [--workload NAME[,NAME...]|all] [--config medium|large|mega|all]\n\
         \x20               [--scale test|small|full] [--warmup N] [--retries N]\n\
         \x20               [--batch-lanes N] [--idle-skip] [--report-out FILE]\n\
         \x20               [--sweep-preset ref64|smoke16 [--base medium|large|mega]\n\
         \x20                [--rungs N] [--rung0-points N] [--rung0-shift N]\n\
         \x20                [--epsilon F] [--epsilon-decay F] [--exhaustive]]\n\
         \x20      boomflow attach (--socket PATH|--tcp ADDR) --id HEX [--report-out FILE]\n\
         \x20      boomflow shutdown (--socket PATH|--tcp ADDR)"
    );
    exit(2)
}

/// Collects the shared `--socket`/`--tcp` address flag, returning the
/// unconsumed flags.
fn parse_addr(argv: &[String]) -> (ServeAddr, Vec<String>) {
    let mut addr = None;
    let mut rest = Vec::new();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--socket" => {
                addr = Some(ServeAddr::Unix(PathBuf::from(
                    it.next().cloned().unwrap_or_else(|| serve_usage()),
                )))
            }
            "--tcp" => {
                addr = Some(ServeAddr::Tcp(it.next().cloned().unwrap_or_else(|| serve_usage())))
            }
            other => rest.push(other.to_string()),
        }
    }
    match addr {
        Some(addr) => (addr, rest),
        None => serve_usage(),
    }
}

fn serve_main(argv: &[String]) {
    let (addr, rest) = parse_addr(argv);
    let mut opts = ServeOptions::default();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| serve_usage());
        match flag.as_str() {
            "--jobs" | "-j" => {
                opts.jobs = value().parse().unwrap_or_else(|_| serve_usage());
                if opts.jobs == 0 {
                    serve_usage()
                }
            }
            "--max-active" => {
                opts.max_active = value().parse().unwrap_or_else(|_| serve_usage());
                if opts.max_active == 0 {
                    serve_usage()
                }
            }
            "--cache-dir" => opts.cache_dir = Some(PathBuf::from(value())),
            "--state-dir" => opts.state_dir = PathBuf::from(value()),
            "--inject-kill-after" => {
                opts.kill_after_points = Some(value().parse().unwrap_or_else(|_| serve_usage()))
            }
            _ => serve_usage(),
        }
    }
    let server = Server::bind(&addr, opts).unwrap_or_else(|e| {
        eprintln!("boomflow serve: cannot bind {addr}: {e}");
        exit(2);
    });
    eprintln!("boomflow serve: listening on {}", server.addr());
    if let Err(e) = server.run() {
        eprintln!("boomflow serve: {e}");
        exit(1);
    }
}

/// Runs one client request against the service and exits with the
/// request's status: progress to stderr, the result summary to stdout,
/// the deterministic report bytes to `report_out`.
fn client_main(addr: &ServeAddr, msg: &ClientMsg, report_out: Option<&PathBuf>) -> ! {
    let sub = match msg {
        ClientMsg::Shutdown => "shutdown",
        ClientMsg::Attach(_) => "attach",
        ClientMsg::Submit(_) => "submit",
    };
    let terminal = request_events(addr, msg, |event| match event {
        ServerMsg::Admitted { id, replayed, active } => {
            eprintln!(
                "boomflow {sub}: request {id:016x} admitted ({replayed} point(s) replayed, \
                 {active} active)"
            );
        }
        ServerMsg::Progress { done, total, .. } => eprintln!("boomflow {sub}: {done}/{total}"),
        _ => {}
    });
    match terminal {
        Ok(Some(ServerMsg::Done { ok, report, summary, extra, .. })) => {
            if !extra.is_empty() {
                println!("{extra}");
            }
            print!("{summary}");
            if let Some(path) = report_out {
                if let Err(e) = std::fs::write(path, &report) {
                    eprintln!("boomflow {sub}: cannot write report {}: {e}", path.display());
                    exit(1);
                }
            }
            exit(if ok { 0 } else { 1 })
        }
        Ok(Some(ServerMsg::Rejected { reason })) => {
            eprintln!("boomflow {sub}: rejected: {reason}");
            exit(2)
        }
        Ok(Some(ServerMsg::Bye { active })) => {
            eprintln!("boomflow {sub}: server shutting down ({active} request(s) draining)");
            exit(0)
        }
        Ok(_) => {
            eprintln!("boomflow {sub}: server closed the stream before finishing (killed?)");
            exit(1)
        }
        Err(e) => {
            eprintln!("boomflow {sub}: {e}");
            exit(1)
        }
    }
}

fn submit_main(argv: &[String]) {
    let (addr, rest) = parse_addr(argv);
    let mut campaign = CampaignRequest {
        workloads: "all".to_string(),
        config: "all".to_string(),
        scale: Scale::Small,
        warmup: 5_000,
        retries: RetryPolicy::default().max_attempts,
        batch_lanes: 1,
        idle_skip: false,
    };
    let mut sweep: Option<SweepRequest> = None;
    let mut report_out: Option<PathBuf> = None;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| serve_usage());
        match flag.as_str() {
            "--workload" | "-w" => campaign.workloads = value().to_lowercase(),
            "--config" | "-c" => campaign.config = value().to_lowercase(),
            "--scale" | "-s" => {
                campaign.scale = match value().to_lowercase().as_str() {
                    "test" => Scale::Test,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    _ => serve_usage(),
                }
            }
            "--warmup" => campaign.warmup = value().parse().unwrap_or_else(|_| serve_usage()),
            "--retries" => campaign.retries = value().parse().unwrap_or_else(|_| serve_usage()),
            "--batch-lanes" => {
                campaign.batch_lanes = value().parse().unwrap_or_else(|_| serve_usage());
                if campaign.batch_lanes == 0 {
                    serve_usage()
                }
            }
            "--idle-skip" => campaign.idle_skip = true,
            "--report-out" => report_out = Some(PathBuf::from(value())),
            "--sweep-preset" => {
                sweep = Some(SweepRequest {
                    preset: value().to_lowercase(),
                    base: String::new(),
                    workloads: String::new(),
                    scale: Scale::Small,
                    warmup: 5_000,
                    max_rungs: 0,
                    rung0_points: 1,
                    rung0_shift: 3,
                    epsilon: 0.05,
                    epsilon_decay: 0.5,
                    exhaustive: false,
                    batch_lanes: 1,
                })
            }
            "--base" => match &mut sweep {
                Some(s) => s.base = value().to_lowercase(),
                None => serve_usage(),
            },
            "--rungs" => match &mut sweep {
                Some(s) => s.max_rungs = value().parse().unwrap_or_else(|_| serve_usage()),
                None => serve_usage(),
            },
            "--rung0-points" => match &mut sweep {
                Some(s) => s.rung0_points = value().parse().unwrap_or_else(|_| serve_usage()),
                None => serve_usage(),
            },
            "--rung0-shift" => match &mut sweep {
                Some(s) => s.rung0_shift = value().parse().unwrap_or_else(|_| serve_usage()),
                None => serve_usage(),
            },
            "--epsilon" => match &mut sweep {
                Some(s) => s.epsilon = value().parse().unwrap_or_else(|_| serve_usage()),
                None => serve_usage(),
            },
            "--epsilon-decay" => match &mut sweep {
                Some(s) => s.epsilon_decay = value().parse().unwrap_or_else(|_| serve_usage()),
                None => serve_usage(),
            },
            "--exhaustive" => match &mut sweep {
                Some(s) => s.exhaustive = true,
                None => serve_usage(),
            },
            _ => serve_usage(),
        }
    }
    let request = match sweep {
        Some(mut s) => {
            // The sweep rides the shared workload/scale/warmup/batching
            // flags; they were parsed into the campaign skeleton.
            s.workloads = campaign.workloads.clone();
            s.scale = campaign.scale;
            s.warmup = campaign.warmup;
            s.batch_lanes = campaign.batch_lanes;
            Request::Sweep(s)
        }
        None => Request::Campaign(campaign),
    };
    eprintln!("boomflow submit: request id {:016x}", request_id(&request));
    client_main(&addr, &ClientMsg::Submit(request), report_out.as_ref())
}

fn attach_main(argv: &[String]) {
    let (addr, rest) = parse_addr(argv);
    let mut id: Option<u64> = None;
    let mut report_out: Option<PathBuf> = None;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| serve_usage());
        match flag.as_str() {
            "--id" => {
                let raw = value();
                let raw = raw.trim_start_matches("0x");
                id = Some(u64::from_str_radix(raw, 16).unwrap_or_else(|_| serve_usage()));
            }
            "--report-out" => report_out = Some(PathBuf::from(value())),
            _ => serve_usage(),
        }
    }
    let Some(id) = id else { serve_usage() };
    client_main(&addr, &ClientMsg::Attach(id), report_out.as_ref())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("sweep") => {
            sweep_main(&argv[1..]);
            return;
        }
        Some("serve") => {
            serve_main(&argv[1..]);
            return;
        }
        Some("submit") => submit_main(&argv[1..]),
        Some("attach") => attach_main(&argv[1..]),
        Some("shutdown") => {
            let (addr, rest) = parse_addr(&argv[1..]);
            if !rest.is_empty() {
                serve_usage()
            }
            client_main(&addr, &ClientMsg::Shutdown, None)
        }
        _ => {}
    }
    let args = parse_args();
    let flow = FlowConfig {
        warmup_insts: args.warmup,
        idle_skip: args.idle_skip,
        retry: RetryPolicy {
            max_attempts: args.retries,
            cycle_budget: args.cycle_budget,
            ..RetryPolicy::default()
        },
        inject: FaultInjection {
            hang_point: args.inject_hang,
            kill_after_points: args.inject_kill_after,
            ..FaultInjection::default()
        },
        ..FlowConfig::default()
    };
    let mut cfgs = configs(&args.config, args.predictor, args.iq);
    let ws = workloads(&args.workload, args.scale);

    // Memory hierarchy: any L2/DRAM knob implies `--mem-backend
    // hierarchy`. Validation is typed — a bad geometry is reported next
    // to the offending knob instead of panicking mid-campaign.
    let knobs_given = args.l2.is_some()
        || args.l2_mshrs.is_some()
        || args.l2_latency.is_some()
        || args.dram_latency.is_some()
        || args.dram_burst.is_some()
        || args.dram_row_hit.is_some();
    if args.hierarchy || knobs_given {
        let uncore = uncore_params(&args);
        cfgs = cfgs.into_iter().map(|c| c.with_hierarchy(uncore)).collect();
    }
    for cfg in &cfgs {
        if let Err(e) = cfg.validate() {
            eprintln!("boomflow: invalid configuration {}: {e}", cfg.name);
            exit(2);
        }
    }

    // Dual-core co-run cells: resolve `--co-run A+B` names against the
    // selected workload set.
    let mut co_runs: Vec<(usize, usize)> = Vec::new();
    for spec in &args.co_run {
        let Some((a, b)) = spec.split_once('+') else { usage() };
        let idx = |n: &str| {
            ws.iter().position(|w| w.name.eq_ignore_ascii_case(n)).unwrap_or_else(|| {
                eprintln!("boomflow: co-run workload '{n}' is not in the selected workload set");
                exit(2)
            })
        };
        co_runs.push((idx(a), idx(b)));
    }
    if args.full && !co_runs.is_empty() {
        eprintln!("boomflow: --co-run is a campaign cell type; it cannot combine with --full");
        exit(2);
    }
    // Idle skipping is rejected — not silently dropped — for co-run
    // cells: the strict cycle interleave over a shared uncore must
    // observe every cycle of both cores.
    if args.idle_skip && !co_runs.is_empty() {
        let e = ConfigError::IdleSkipUnsupported { what: "--co-run dual-core cells".to_string() };
        eprintln!("boomflow: {e}");
        exit(2);
    }

    if args.full {
        // Full detailed simulation: one run per cell, no SimPoint. A hang
        // prints the watchdog snapshot and moves on to the next cell.
        let mut failures = 0u32;
        for cfg in &cfgs {
            for w in &ws {
                match run_full(cfg, w) {
                    Ok(full) => println!(
                        "{} on {} (full detailed simulation): IPC {:.3} over {} insts / {} cycles, tile {:.2} mW",
                        w.name, cfg.name, full.ipc, full.retired, full.cycles,
                        full.power.tile_total_mw()
                    ),
                    Err(e) => {
                        eprintln!("{} on {}: {e}", w.name, cfg.name);
                        failures += 1;
                    }
                }
            }
        }
        if failures > 0 {
            eprintln!("{failures} full-simulation cell(s) failed");
            exit(1);
        }
        return;
    }

    // Disk-backed artifact store. The I/O fault injectors only make
    // sense against a real cache directory.
    let faults = DiskFaultInjection {
        torn_write: args.inject_torn_write,
        corrupt_write: args.inject_corrupt,
    };
    if args.cache_dir.is_none() && (faults.torn_write.is_some() || faults.corrupt_write.is_some()) {
        eprintln!("boomflow: --inject-torn-write/--inject-corrupt require --cache-dir");
        exit(2);
    }
    let store = match &args.cache_dir {
        None => ArtifactStore::new(),
        Some(dir) => ArtifactStore::with_disk_cache_injected(dir, faults).unwrap_or_else(|e| {
            eprintln!("boomflow: cannot open cache dir {}: {e}", dir.display());
            exit(2);
        }),
    };

    // Resumable campaign journal, keyed by the campaign fingerprint so a
    // journal from a different matrix or flow setup is refused.
    if args.resume && args.journal.is_none() {
        eprintln!("boomflow: --resume requires --journal");
        exit(2);
    }
    let mut journal: Option<Arc<CampaignJournal>> = None;
    let mut replay: Option<Arc<JournalReplay>> = None;
    if let Some(path) = &args.journal {
        let fp = campaign_fingerprint_with(&cfgs, &ws, &flow, &co_runs);
        if args.resume && path.exists() {
            match CampaignJournal::resume(path, fp) {
                Ok((j, r)) => {
                    eprintln!(
                        "boomflow: resuming, {} completed point(s) replayed from {}",
                        r.len(),
                        path.display()
                    );
                    journal = Some(Arc::new(j));
                    replay = Some(Arc::new(r));
                }
                Err(e) => {
                    eprintln!("boomflow: cannot resume journal {}: {e}", path.display());
                    exit(2);
                }
            }
        } else {
            match CampaignJournal::create(path, fp) {
                Ok(j) => journal = Some(Arc::new(j)),
                Err(e) => {
                    eprintln!("boomflow: cannot create journal {}: {e}", path.display());
                    exit(2);
                }
            }
        }
    }

    let opts = CampaignOptions {
        jobs: args.jobs,
        journal,
        replay,
        co_runs,
        batch_lanes: args.batch_lanes,
        pool: None,
        share_points: false,
        progress: None,
    };
    let report = supervise_campaign(&cfgs, &ws, &flow, &store, &opts);
    for cell in &report.cells {
        if let Ok(r) = &cell.outcome {
            print_result(r);
        }
    }
    for cell in &report.co_cells {
        if let Ok(cores) = &cell.outcome {
            println!(
                "\n### co-run {}+{} on {} (two cores, shared L2)",
                cell.workloads[0], cell.workloads[1], cell.config
            );
            for (i, r) in cores.iter().enumerate() {
                println!(
                    "    core {i} {}: IPC {:.2} over {} insts / {} cycles, tile {:.2} mW, \
                     L2 contention stalls {}, DRAM bandwidth-wait cycles {}",
                    r.workload,
                    r.ipc,
                    r.stats.retired,
                    r.stats.cycles,
                    r.power.tile_total_mw(),
                    r.l2_contention_stalls(),
                    r.dram_bw_wait_cycles()
                );
            }
        }
    }
    print!("\n{}", report.stage_summary());
    if let Some(log) = report.failure_log() {
        eprint!("\n{log}");
    }
    if let Some(path) = &args.report_out {
        if let Err(e) = std::fs::write(path, report.render_deterministic()) {
            eprintln!("boomflow: cannot write report {}: {e}", path.display());
            exit(1);
        }
    }
    if !report.all_ok() {
        exit(1);
    }
}
