//! Persistent worker pool with per-submission queues and round-robin
//! fairness.
//!
//! Two consumers share this machinery:
//!
//! * **Batched lanes** ([`run_point_batch`](crate::flow)) — one global
//!   [`lane_pool`] replaces the scoped thread spawned per lane per
//!   batched work item: threads are created once per process, not once
//!   per (point × config), and the submitting worker helps drain its own
//!   batch so a saturated pool can never stall a batch behind another.
//! * **The campaign service** (`boomflow serve`) — one [`WorkPool`]
//!   bounded by `--jobs` drains point tasks from *all* admitted requests.
//!   Each submission gets its own queue and the workers take one job
//!   from each non-empty queue in turn, so a small campaign never
//!   starves behind a big one that was admitted first.
//!
//! Submissions are *scoped*: [`WorkPool::run_scoped`] accepts closures
//! borrowing the caller's stack and blocks until every task of the
//! submission has run (or been cancelled), which is what makes the
//! lifetime erasure inside sound. Task panics are caught and contained
//! to the task; the submission still completes.

use crate::sync::lock;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A type-erased, lifetime-erased task. Safety: see [`WorkPool::run_scoped`].
type Job = Box<dyn FnOnce() + Send>;

/// Completion tracker of one submission: queued-plus-running task count
/// and the condvar the submitter blocks on.
struct Done {
    remaining: Mutex<usize>,
    cv: Condvar,
}

impl Done {
    /// Marks one task finished (run, skipped, or dropped) and wakes the
    /// submitter when the submission is drained.
    fn complete_one(&self) {
        let mut g = lock(&self.remaining);
        *g -= 1;
        if *g == 0 {
            self.cv.notify_all();
        }
    }
}

/// One submission's pending jobs plus its completion tracker.
struct BatchSlot {
    jobs: VecDeque<Job>,
    done: Arc<Done>,
}

/// The pool's shared queue state: submissions in round-robin order.
struct Inner {
    batches: VecDeque<BatchSlot>,
    shutdown: bool,
}

/// Persistent worker pool. See the module docs for the two use cases.
pub struct WorkPool {
    inner: Arc<PoolShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

struct PoolShared {
    state: Mutex<Inner>,
    work_cv: Condvar,
    /// When set, queued-but-unstarted jobs are dropped (their
    /// submissions still complete) — the graceful-shutdown drain.
    cancelled: AtomicBool,
}

impl std::fmt::Debug for WorkPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkPool").field("workers", &lock(&self.workers).len()).finish()
    }
}

impl WorkPool {
    /// Spawns a pool of `workers` persistent threads (at least 1).
    pub fn new(workers: usize) -> WorkPool {
        let inner = Arc::new(PoolShared {
            state: Mutex::new(Inner { batches: VecDeque::new(), shutdown: false }),
            work_cv: Condvar::new(),
            cancelled: AtomicBool::new(false),
        });
        let workers = (1..=workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        WorkPool { inner, workers: Mutex::new(workers) }
    }

    /// Drops every queued-but-unstarted job across all submissions:
    /// running jobs finish, skipped jobs count as complete, and every
    /// blocked submitter returns. Used by the server's graceful
    /// shutdown — completed points are already journaled, so the
    /// skipped remainder is exactly what a resume re-simulates.
    pub fn cancel_pending(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
        let mut g = lock(&self.inner.state);
        for batch in &mut g.batches {
            while let Some(job) = batch.jobs.pop_front() {
                drop(job);
                batch.done.complete_one();
            }
        }
        g.batches.clear();
        self.inner.work_cv.notify_all();
    }

    /// Whether [`WorkPool::cancel_pending`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// Runs every task on the pool and blocks until all of them have
    /// finished. Tasks may borrow from the caller's stack: the pool
    /// erases the closure lifetimes internally, which is sound because
    /// this call does not return until every erased closure has been
    /// consumed (run, or dropped by [`WorkPool::cancel_pending`]) — a
    /// task panic is caught per task and still counts as consumed.
    pub fn run_scoped<T: Send>(&self, tasks: Vec<T>, run: impl Fn(T) + Sync) {
        self.submit(tasks, &run, false);
    }

    /// [`WorkPool::run_scoped`], with the submitting thread also
    /// draining jobs from its own submission while it waits. Used by
    /// the batched-lane path: the submitter is a scheduler worker that
    /// would otherwise idle, and its participation guarantees the batch
    /// makes progress even when every pool worker is busy elsewhere.
    pub fn run_scoped_helping<T: Send>(&self, tasks: Vec<T>, run: impl Fn(T) + Sync) {
        self.submit(tasks, &run, true);
    }

    fn submit<T: Send>(&self, tasks: Vec<T>, run: &(dyn Fn(T) + Sync), help: bool) {
        if tasks.is_empty() {
            return;
        }
        if self.is_cancelled() {
            // Late submission during shutdown: consume without running.
            return;
        }
        let done = Arc::new(Done { remaining: Mutex::new(tasks.len()), cv: Condvar::new() });
        let jobs: VecDeque<Job> = tasks
            .into_iter()
            .map(|t| {
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || run(t));
                // SAFETY: `submit` blocks below until `done.remaining`
                // reaches 0, and the count only reaches 0 once every job
                // has been consumed (executed or dropped). The borrows
                // captured by `job` — `run` and the task values — are
                // therefore live for as long as any erased closure
                // exists. The transmute only erases the lifetime; the
                // vtable and layout are unchanged.
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) }
            })
            .collect();
        {
            let mut g = lock(&self.inner.state);
            g.batches.push_back(BatchSlot { jobs, done: Arc::clone(&done) });
        }
        self.inner.work_cv.notify_all();

        if help {
            // Drain jobs from *this* submission (identified by its
            // tracker) alongside the pool workers.
            loop {
                let job = {
                    let mut g = lock(&self.inner.state);
                    let Some(batch) = g.batches.iter_mut().find(|b| Arc::ptr_eq(&b.done, &done))
                    else {
                        break;
                    };
                    match batch.jobs.pop_front() {
                        Some(job) => job,
                        None => break,
                    }
                };
                run_job(job, &done);
            }
        }

        let mut g = lock(&done.remaining);
        while *g > 0 {
            g = match done.cv.wait(g) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        drop(g);
        // Empty batch slots are garbage-collected by the workers; a slot
        // whose submission completed while the pool was idle is removed
        // here so it cannot accumulate.
        lock(&self.inner.state).batches.retain(|b| !b.jobs.is_empty());
    }
}

/// Runs one job under `catch_unwind` and marks it complete even when it
/// panics — a panicking task must never strand its submitter.
fn run_job(job: Job, done: &Arc<Done>) {
    let _ = catch_unwind(AssertUnwindSafe(job));
    done.complete_one();
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let mut g = lock(&shared.state);
        let (job, done) = 'find: loop {
            // Round-robin: take one job from the front batch, then
            // rotate that batch to the back so the next take serves the
            // next submission. Drained slots are dropped in passing.
            while let Some(mut batch) = g.batches.pop_front() {
                if let Some(job) = batch.jobs.pop_front() {
                    let done = Arc::clone(&batch.done);
                    if !batch.jobs.is_empty() {
                        g.batches.push_back(batch);
                    }
                    break 'find (job, done);
                }
            }
            if g.shutdown {
                return;
            }
            g = match shared.work_cv.wait(g) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        };
        drop(g);
        run_job(job, &done);
    }
}

impl Drop for WorkPool {
    fn drop(&mut self) {
        lock(&self.inner.state).shutdown = true;
        self.inner.work_cv.notify_all();
        for h in lock(&self.workers).drain(..) {
            let _ = h.join();
        }
    }
}

/// The process-wide lane pool used by batched point simulation, sized to
/// the machine's parallelism and created on first use.
pub(crate) fn lane_pool() -> &'static WorkPool {
    static POOL: OnceLock<WorkPool> = OnceLock::new();
    POOL.get_or_init(|| WorkPool::new(crate::scheduler::default_jobs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scoped_tasks_all_run_exactly_once() {
        let pool = WorkPool::new(3);
        for n in [1usize, 2, 7, 64] {
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.run_scoped((0..n).collect(), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1), "n={n}");
        }
    }

    #[test]
    fn helping_submitter_participates() {
        // Saturate a 1-worker pool with a long job from another
        // submission, then verify a helping submission still completes
        // promptly via the submitter itself.
        let pool = Arc::new(WorkPool::new(1));
        let blocker = Arc::clone(&pool);
        let gate = Arc::new(AtomicBool::new(false));
        let gate2 = Arc::clone(&gate);
        let t = std::thread::spawn(move || {
            blocker.run_scoped(vec![()], |()| {
                while !gate2.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            });
        });
        // The single worker is (about to be) blocked on the gate; the
        // helping submission must drain on the submitting thread.
        let ran = AtomicUsize::new(0);
        pool.run_scoped_helping((0..8).collect::<Vec<usize>>(), |_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 8);
        gate.store(true, Ordering::Release);
        t.join().expect("blocker thread");
    }

    #[test]
    fn panicking_task_does_not_strand_submission() {
        let pool = WorkPool::new(2);
        let ok = AtomicUsize::new(0);
        pool.run_scoped((0..6).collect::<Vec<usize>>(), |i| {
            if i % 2 == 0 {
                panic!("task {i} dies");
            }
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn round_robin_interleaves_submissions() {
        // Two submissions of slow tasks on one worker: the completion
        // order must alternate between them rather than finishing all of
        // one first.
        let pool = Arc::new(WorkPool::new(1));
        let order = Arc::new(Mutex::new(Vec::<(u8, usize)>::new()));
        let mut handles = Vec::new();
        for tag in 0u8..2 {
            let pool = Arc::clone(&pool);
            let order = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                // Stagger the second submission so both are queued while
                // the worker drains.
                if tag == 1 {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                pool.run_scoped((0..4).collect::<Vec<usize>>(), |i| {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    lock(&order).push((tag, i));
                });
            }));
        }
        for h in handles {
            h.join().expect("submitter");
        }
        let order = lock(&order).clone();
        assert_eq!(order.len(), 8);
        // Fairness: within the first half of completions, both
        // submissions must appear (a FIFO pool would finish all of tag 0
        // first).
        let first_half: Vec<u8> = order.iter().take(4).map(|&(t, _)| t).collect();
        assert!(
            first_half.contains(&0) && first_half.contains(&1),
            "round-robin must interleave submissions, got order {order:?}"
        );
    }

    #[test]
    fn cancel_pending_unblocks_submitters() {
        let pool = Arc::new(WorkPool::new(1));
        let gate = Arc::new(AtomicBool::new(false));
        let (p2, g2) = (Arc::clone(&pool), Arc::clone(&gate));
        let slow = std::thread::spawn(move || {
            p2.run_scoped(vec![()], |()| {
                while !g2.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            });
        });
        // Queue a second submission behind the blocked worker, then
        // cancel: it must return without running its task.
        let (p3, ran) = (Arc::clone(&pool), Arc::new(AtomicUsize::new(0)));
        let ran2 = Arc::clone(&ran);
        let waiter = std::thread::spawn(move || {
            p3.run_scoped(vec![()], |()| {
                ran2.fetch_add(1, Ordering::Relaxed);
            });
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        pool.cancel_pending();
        waiter.join().expect("cancelled submitter returns");
        assert_eq!(ran.load(Ordering::Relaxed), 0, "cancelled job must not run");
        gate.store(true, Ordering::Release);
        slow.join().expect("blocked submitter returns");
    }
}
