//! Adaptive design-space sweep: successive halving over a grid of
//! [`BoomConfig`] points at a fraction of the exhaustive detailed-sim
//! cost.
//!
//! The sweep runs in *rungs*. Rung 0 simulates every admitted
//! configuration on a deliberately tiny budget — the fewest SimPoints,
//! with the measured interval and warm-up truncated by a right-shift —
//! and each subsequent rung re-ranks the survivors on a doubled budget,
//! keeping only configurations within an ε-band of the current
//! perf-per-watt Pareto frontier. The final rung always runs the full
//! point budget at shift 0, so every surviving configuration's report is
//! bit-identical to what an exhaustive campaign would have produced.
//!
//! Three mechanisms compound to make this cheap:
//!
//! 1. The configuration-independent front half of the flow
//!    (Profile → SimPoint → Checkpoint) is computed once for the entire
//!    sweep through the shared [`ArtifactStore`], exactly as in a
//!    campaign.
//! 2. Every completed (configuration, point, budget) measurement is
//!    memoized in the store's point-outcome memo, so a configuration
//!    promoted from rung *N* to rung *N+1* never resimulates a point it
//!    already ran at the same budget — only the *new* points of the
//!    larger budget cost anything.
//! 3. Fresh points are batched [`run_point_batch`]-style: lanes of up to
//!    `batch_lanes` configurations share the predecoded image and the
//!    per-text-word micro-op table of the point they simulate.
//!
//! Determinism contract: [`SweepReport::render_deterministic`] and
//! [`SweepReport::render_frontier`] are byte-identical across `jobs`
//! settings and across a kill + [`SweepOptions::resume`] — the journal
//! replays finished points at (rung, config, point) granularity, and
//! rung elimination is a pure function of the (deterministic) point
//! outcomes. Resume-variant accounting (fresh/reused splits, wall
//! clock) lives only in [`SweepReport::stage_summary`].

use crate::artifacts::{
    config_fingerprint, ArtifactStore, CacheStats, CheckpointSet, PlannedPoint, PointKey,
};
use crate::flow::{
    assemble_workload_result, escaped_panic, run_point_batch, run_point_timed, weighted_estimate,
    FlowConfig, PointOutcome,
};
use crate::journal::{sweep_fingerprint, CampaignJournal, JournalError};
use crate::report::render_table;
use crate::scheduler::{exec_tasks, PrepError};
use crate::supervisor::{
    fb, panic_message, render_cell_body, CellFailure, CellResult, FailureKind, PointFailure,
};
use boom_uarch::{BoomConfig, ConfigError, MemBackendKind};
use rv_workloads::Workload;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A sweepable microarchitectural knob — the Table-I axes of the paper's
/// design space. Each knob knows its CLI spelling, the short code used
/// in generated configuration names, and how to read/write its
/// [`BoomConfig`] field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SweepKnob {
    /// Fetch width (instructions per cycle from the i-cache).
    FetchWidth,
    /// Decode/rename/dispatch width.
    DecodeWidth,
    /// Integer-ALU issue width.
    IntIssueWidth,
    /// Load/store issue width.
    MemIssueWidth,
    /// Floating-point issue width.
    FpIssueWidth,
    /// Re-order buffer entries.
    Rob,
    /// Integer physical register file size.
    IntRegs,
    /// Floating-point physical register file size.
    FpRegs,
    /// Integer issue-queue slots.
    IntIq,
    /// Load/store issue-queue slots.
    MemIq,
    /// Floating-point issue-queue slots.
    FpIq,
    /// Load-queue entries.
    Ldq,
    /// Store-queue entries.
    Stq,
    /// I-cache associativity.
    IcacheWays,
    /// D-cache associativity.
    DcacheWays,
    /// I-cache MSHRs (outstanding misses).
    IcacheMshrs,
    /// D-cache MSHRs (outstanding misses).
    DcacheMshrs,
    /// BTB sets (rounded up to a power of two).
    BtbSets,
    /// Return-address-stack entries.
    RasEntries,
    /// Branch-predictor table size shift (log2 scaling of the tables).
    BpShift,
}

impl SweepKnob {
    /// Every sweepable knob, in canonical (name-generation) order.
    pub const ALL: [SweepKnob; 20] = [
        SweepKnob::FetchWidth,
        SweepKnob::DecodeWidth,
        SweepKnob::IntIssueWidth,
        SweepKnob::MemIssueWidth,
        SweepKnob::FpIssueWidth,
        SweepKnob::Rob,
        SweepKnob::IntRegs,
        SweepKnob::FpRegs,
        SweepKnob::IntIq,
        SweepKnob::MemIq,
        SweepKnob::FpIq,
        SweepKnob::Ldq,
        SweepKnob::Stq,
        SweepKnob::IcacheWays,
        SweepKnob::DcacheWays,
        SweepKnob::IcacheMshrs,
        SweepKnob::DcacheMshrs,
        SweepKnob::BtbSets,
        SweepKnob::RasEntries,
        SweepKnob::BpShift,
    ];

    /// The CLI spelling (`--grid <key>=v1,v2,...`).
    pub fn key(self) -> &'static str {
        match self {
            SweepKnob::FetchWidth => "fetch-width",
            SweepKnob::DecodeWidth => "decode-width",
            SweepKnob::IntIssueWidth => "int-issue-width",
            SweepKnob::MemIssueWidth => "mem-issue-width",
            SweepKnob::FpIssueWidth => "fp-issue-width",
            SweepKnob::Rob => "rob",
            SweepKnob::IntRegs => "int-regs",
            SweepKnob::FpRegs => "fp-regs",
            SweepKnob::IntIq => "int-iq",
            SweepKnob::MemIq => "mem-iq",
            SweepKnob::FpIq => "fp-iq",
            SweepKnob::Ldq => "ldq",
            SweepKnob::Stq => "stq",
            SweepKnob::IcacheWays => "icache-ways",
            SweepKnob::DcacheWays => "dcache-ways",
            SweepKnob::IcacheMshrs => "icache-mshrs",
            SweepKnob::DcacheMshrs => "dcache-mshrs",
            SweepKnob::BtbSets => "btb-sets",
            SweepKnob::RasEntries => "ras",
            SweepKnob::BpShift => "bp-shift",
        }
    }

    /// The short code used in generated configuration names
    /// (`sw-f4-d2-rob64-dcw8`).
    pub fn code(self) -> &'static str {
        match self {
            SweepKnob::FetchWidth => "f",
            SweepKnob::DecodeWidth => "d",
            SweepKnob::IntIssueWidth => "xi",
            SweepKnob::MemIssueWidth => "xm",
            SweepKnob::FpIssueWidth => "xf",
            SweepKnob::Rob => "rob",
            SweepKnob::IntRegs => "pi",
            SweepKnob::FpRegs => "pf",
            SweepKnob::IntIq => "qi",
            SweepKnob::MemIq => "qm",
            SweepKnob::FpIq => "qf",
            SweepKnob::Ldq => "ldq",
            SweepKnob::Stq => "stq",
            SweepKnob::IcacheWays => "icw",
            SweepKnob::DcacheWays => "dcw",
            SweepKnob::IcacheMshrs => "icm",
            SweepKnob::DcacheMshrs => "dcm",
            SweepKnob::BtbSets => "btb",
            SweepKnob::RasEntries => "ras",
            SweepKnob::BpShift => "bp",
        }
    }

    /// Parses a CLI spelling back into the knob.
    pub fn parse(name: &str) -> Option<SweepKnob> {
        SweepKnob::ALL.into_iter().find(|k| k.key() == name)
    }

    /// Writes raw value `v` into the knob's field (clamping and
    /// consistency repair happen later, in one pass over the whole
    /// configuration).
    pub fn apply(self, cfg: &mut BoomConfig, v: u64) {
        let u = v as usize;
        match self {
            SweepKnob::FetchWidth => cfg.fetch_width = u,
            SweepKnob::DecodeWidth => cfg.decode_width = u,
            SweepKnob::IntIssueWidth => cfg.int_issue_width = u,
            SweepKnob::MemIssueWidth => cfg.mem_issue_width = u,
            SweepKnob::FpIssueWidth => cfg.fp_issue_width = u,
            SweepKnob::Rob => cfg.rob_entries = u,
            SweepKnob::IntRegs => cfg.int_phys_regs = u,
            SweepKnob::FpRegs => cfg.fp_phys_regs = u,
            SweepKnob::IntIq => cfg.int_issue_slots = u,
            SweepKnob::MemIq => cfg.mem_issue_slots = u,
            SweepKnob::FpIq => cfg.fp_issue_slots = u,
            SweepKnob::Ldq => cfg.ldq_entries = u,
            SweepKnob::Stq => cfg.stq_entries = u,
            SweepKnob::IcacheWays => cfg.icache.ways = u,
            SweepKnob::DcacheWays => cfg.dcache.ways = u,
            SweepKnob::IcacheMshrs => cfg.icache.mshrs = u,
            SweepKnob::DcacheMshrs => cfg.dcache.mshrs = u,
            SweepKnob::BtbSets => cfg.btb_sets = u,
            SweepKnob::RasEntries => cfg.ras_entries = u,
            SweepKnob::BpShift => cfg.bp_table_shift = v as u32,
        }
    }

    /// Reads the knob's current (post-clamp) value.
    pub fn get(self, cfg: &BoomConfig) -> u64 {
        match self {
            SweepKnob::FetchWidth => cfg.fetch_width as u64,
            SweepKnob::DecodeWidth => cfg.decode_width as u64,
            SweepKnob::IntIssueWidth => cfg.int_issue_width as u64,
            SweepKnob::MemIssueWidth => cfg.mem_issue_width as u64,
            SweepKnob::FpIssueWidth => cfg.fp_issue_width as u64,
            SweepKnob::Rob => cfg.rob_entries as u64,
            SweepKnob::IntRegs => cfg.int_phys_regs as u64,
            SweepKnob::FpRegs => cfg.fp_phys_regs as u64,
            SweepKnob::IntIq => cfg.int_issue_slots as u64,
            SweepKnob::MemIq => cfg.mem_issue_slots as u64,
            SweepKnob::FpIq => cfg.fp_issue_slots as u64,
            SweepKnob::Ldq => cfg.ldq_entries as u64,
            SweepKnob::Stq => cfg.stq_entries as u64,
            SweepKnob::IcacheWays => cfg.icache.ways as u64,
            SweepKnob::DcacheWays => cfg.dcache.ways as u64,
            SweepKnob::IcacheMshrs => cfg.icache.mshrs as u64,
            SweepKnob::DcacheMshrs => cfg.dcache.mshrs as u64,
            SweepKnob::BtbSets => cfg.btb_sets as u64,
            SweepKnob::RasEntries => cfg.ras_entries as u64,
            SweepKnob::BpShift => cfg.bp_table_shift as u64,
        }
    }
}

/// A declarative sweep specification: a base configuration, the axes to
/// vary, and an optional random-sampling mode.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// The configuration every grid point starts from.
    pub base: BoomConfig,
    /// The axes, in name-generation order: each knob with its candidate
    /// values.
    pub axes: Vec<(SweepKnob, Vec<u64>)>,
    /// `Some((n, seed))` draws `n` random points (one value per axis,
    /// seeded splitmix64) instead of the full cross product.
    pub random: Option<(usize, u64)>,
}

impl SweepSpec {
    /// A named reference grid.
    ///
    /// * `ref64` — 64 unique configurations over fetch width, decode
    ///   width, ROB size, and D-cache associativity (the benchmarked
    ///   reference grid).
    /// * `smoke16` — a 16-configuration subset for smoke tests and CI.
    pub fn preset(name: &str) -> Option<SweepSpec> {
        let axes = match name {
            "ref64" => vec![
                (SweepKnob::FetchWidth, vec![4, 8]),
                (SweepKnob::DecodeWidth, vec![2, 4]),
                (SweepKnob::Rob, vec![32, 64, 96, 128]),
                (SweepKnob::DcacheWays, vec![1, 2, 4, 8]),
            ],
            "smoke16" => vec![
                (SweepKnob::FetchWidth, vec![4, 8]),
                (SweepKnob::DecodeWidth, vec![2, 4]),
                (SweepKnob::Rob, vec![64, 128]),
                (SweepKnob::DcacheWays, vec![4, 8]),
            ],
            _ => return None,
        };
        Some(SweepSpec { base: BoomConfig::medium(), axes, random: None })
    }

    /// Enumerates the specification into validated configurations.
    ///
    /// Grid mode walks the full cross product of the axes; random mode
    /// draws [`SweepSpec::random`] points with one seeded-splitmix64
    /// value choice per axis. Every point is clamped into a consistent
    /// configuration ([`finalize_config`]), named from its *post-clamp*
    /// axis values (so clamp-collided grid points get identical names and
    /// identical fingerprints, which [`admit`] folds), and validated
    /// through the standard [`BoomConfig::validate`] path.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Zero`] when the spec has no axes or an axis has no
    /// values; any [`ConfigError`] a generated point fails validation
    /// with.
    pub fn generate(&self) -> Result<Vec<BoomConfig>, ConfigError> {
        if self.axes.is_empty() {
            return Err(ConfigError::Zero { what: "sweep axes".to_string() });
        }
        for (knob, values) in &self.axes {
            if values.is_empty() {
                return Err(ConfigError::Zero {
                    what: format!("sweep axis {} values", knob.key()),
                });
            }
        }
        let assignments: Vec<Vec<u64>> = match self.random {
            Some((n, seed)) => {
                let mut state = seed;
                (0..n)
                    .map(|_| {
                        self.axes
                            .iter()
                            .map(|(_, values)| {
                                values[(splitmix64(&mut state) % values.len() as u64) as usize]
                            })
                            .collect()
                    })
                    .collect()
            }
            None => {
                let total: usize = self.axes.iter().map(|(_, v)| v.len()).product();
                let mut out = Vec::with_capacity(total);
                let mut odometer = vec![0usize; self.axes.len()];
                loop {
                    out.push(
                        self.axes
                            .iter()
                            .zip(&odometer)
                            .map(|((_, values), &i)| values[i])
                            .collect(),
                    );
                    // Advance the odometer, most-significant axis first.
                    let mut axis = self.axes.len();
                    loop {
                        if axis == 0 {
                            break;
                        }
                        axis -= 1;
                        odometer[axis] += 1;
                        if odometer[axis] < self.axes[axis].1.len() {
                            break;
                        }
                        odometer[axis] = 0;
                    }
                    if odometer.iter().all(|&i| i == 0) {
                        break;
                    }
                }
                out
            }
        };

        let mut cfgs = Vec::with_capacity(assignments.len());
        for values in assignments {
            let mut cfg = self.base.clone();
            for ((knob, _), &v) in self.axes.iter().zip(&values) {
                knob.apply(&mut cfg, v);
            }
            finalize_config(&mut cfg);
            let mut name = String::from("sw");
            for (knob, _) in &self.axes {
                name.push('-');
                name.push_str(knob.code());
                name.push_str(&knob.get(&cfg).to_string());
            }
            cfg.name = name;
            cfg.validate()?;
            cfgs.push(cfg);
        }
        Ok(cfgs)
    }
}

/// Clamps a raw grid point into a self-consistent configuration and
/// re-derives the dependent resources ([`BoomConfig::derive_ports`]).
///
/// The repairs mirror the constraints the hand-written presets satisfy:
/// decode never exceeds fetch, issue widths never exceed decode, issue
/// queues hold at least two instructions per issue slot, the ROB is a
/// multiple of the decode width, the physical register files cover the
/// architectural registers plus rename headroom, and power-of-two /
/// nonzero structural floors hold.
pub fn finalize_config(cfg: &mut BoomConfig) {
    cfg.fetch_width = cfg.fetch_width.max(1);
    cfg.decode_width = cfg.decode_width.clamp(1, cfg.fetch_width);
    cfg.int_issue_width = cfg.int_issue_width.clamp(1, cfg.decode_width);
    cfg.mem_issue_width = cfg.mem_issue_width.clamp(1, cfg.decode_width);
    cfg.fp_issue_width = cfg.fp_issue_width.clamp(1, cfg.decode_width);
    cfg.int_issue_slots = cfg.int_issue_slots.max(2 * cfg.int_issue_width);
    cfg.mem_issue_slots = cfg.mem_issue_slots.max(2 * cfg.mem_issue_width);
    cfg.fp_issue_slots = cfg.fp_issue_slots.max(2 * cfg.fp_issue_width);
    cfg.rob_entries =
        cfg.rob_entries.max(cfg.decode_width).div_ceil(cfg.decode_width) * cfg.decode_width;
    cfg.int_phys_regs = cfg.int_phys_regs.max(32 + 4 * cfg.decode_width).max(48);
    cfg.fp_phys_regs = cfg.fp_phys_regs.max(32 + 4 * cfg.decode_width).max(48);
    cfg.ldq_entries = cfg.ldq_entries.max(2);
    cfg.stq_entries = cfg.stq_entries.max(2);
    cfg.icache.ways = cfg.icache.ways.max(1);
    cfg.dcache.ways = cfg.dcache.ways.max(1);
    cfg.icache.mshrs = cfg.icache.mshrs.max(1);
    cfg.dcache.mshrs = cfg.dcache.mshrs.max(1);
    cfg.btb_sets = cfg.btb_sets.max(1).next_power_of_two();
    cfg.ras_entries = cfg.ras_entries.max(1);
    cfg.bp_table_shift = cfg.bp_table_shift.min(4);
    cfg.derive_ports();
}

/// Deduplicates configurations by fingerprint, preserving
/// first-occurrence order. Returns the admitted list and how many
/// duplicates were folded away — clamping can collide distinct grid
/// points onto the same final configuration, and simulating the
/// collision twice would waste the whole rung-0 budget advantage.
pub fn admit(cfgs: Vec<BoomConfig>) -> (Vec<BoomConfig>, usize) {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(cfgs.len());
    let mut folded = 0usize;
    for cfg in cfgs {
        if seen.insert(config_fingerprint(&cfg)) {
            out.push(cfg);
        } else {
            folded += 1;
        }
    }
    (out, folded)
}

/// Whether every configuration uses the flat fixed-latency memory
/// backend — the precondition for auto-arming event-driven idle-cycle
/// skipping across a sweep.
pub fn all_fixed_latency(cfgs: &[BoomConfig]) -> bool {
    cfgs.iter().all(|c| matches!(c.mem_backend, MemBackendKind::FixedLatency))
}

/// One rung's simulation budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RungSpec {
    /// SimPoints simulated per (configuration, workload) — capped by the
    /// workload's actual selected-point count.
    pub points: usize,
    /// Right-shift applied to each point's measured interval length and
    /// warm-up (0 = full length). The interval never truncates below
    /// 100 instructions (or its own full length, whichever is smaller).
    pub shift: u32,
}

/// Builds the successive-halving rung schedule for a sweep whose largest
/// workload selected `max_points` SimPoints.
///
/// `exhaustive` collapses the schedule to a single full-budget rung with
/// no elimination — the baseline the adaptive sweep is compared against.
/// Otherwise the schedule is: one truncated prefilter rung at
/// (`rung0_points`, `rung0_shift`), then full-length rungs doubling the
/// point budget from `rung0_points`, always ending at
/// (`max_points`, shift 0); consecutive duplicates are folded. `cap`
/// keeps the first `cap − 1` rungs plus the final full rung.
pub fn rung_schedule(
    max_points: usize,
    rung0_points: usize,
    rung0_shift: u32,
    cap: Option<usize>,
    exhaustive: bool,
) -> Vec<RungSpec> {
    let max_points = max_points.max(1);
    if exhaustive {
        return vec![RungSpec { points: max_points, shift: 0 }];
    }
    let r0 = rung0_points.clamp(1, max_points);
    let mut rungs = vec![RungSpec { points: r0, shift: rung0_shift }];
    let mut p = r0;
    while p < max_points {
        rungs.push(RungSpec { points: p, shift: 0 });
        p *= 2;
    }
    rungs.push(RungSpec { points: max_points, shift: 0 });
    rungs.dedup();
    if let Some(cap) = cap {
        let cap = cap.max(1);
        if rungs.len() > cap {
            let last = rungs[rungs.len() - 1];
            rungs.truncate(cap - 1);
            rungs.push(last);
        }
    }
    rungs
}

/// Sweep execution parameters.
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Worker threads for the point pool (1 = strictly sequential).
    pub jobs: usize,
    /// Maximum configurations per batched point lane group.
    pub batch_lanes: usize,
    /// The ε-band of the elimination rule: configuration *c* is
    /// eliminated from a rung when, on every workload where it has an
    /// estimate, some other configuration is better than *c* by more
    /// than a factor of (1 + ε) in **both** CPI and tile milliwatts.
    pub epsilon: f64,
    /// Per-rung multiplicative decay of the ε band: rung *r* eliminates
    /// with `epsilon · epsilon_decay^r`. Early rungs judge from
    /// truncated, high-variance estimates and need a wide band; later
    /// rungs aggregate more full-length points, so the band can tighten
    /// without risking a frontier configuration. `1.0` keeps the band
    /// constant.
    pub epsilon_decay: f64,
    /// Point budget of the truncated prefilter rung.
    pub rung0_points: usize,
    /// Interval/warm-up right-shift of the prefilter rung.
    pub rung0_shift: u32,
    /// Cap on the rung count (first `n − 1` rungs plus the final full
    /// rung); `None` keeps the natural doubling schedule.
    pub max_rungs: Option<usize>,
    /// Run a single full-budget rung with no elimination (the exhaustive
    /// baseline).
    pub exhaustive: bool,
    /// Journal file recording every completed point for crash-safe
    /// resume; `None` disables journaling.
    pub journal_path: Option<PathBuf>,
    /// Resume from an existing journal at [`SweepOptions::journal_path`]
    /// instead of creating a fresh one.
    pub resume: bool,
    /// Externally owned worker pool (the campaign service's shared,
    /// request-fair pool) instead of a private per-sweep pool; `None`
    /// keeps the private pool. See
    /// [`CampaignOptions::pool`](crate::CampaignOptions::pool).
    pub pool: Option<Arc<crate::pool::WorkPool>>,
}

impl Default for SweepOptions {
    fn default() -> SweepOptions {
        SweepOptions {
            jobs: 1,
            batch_lanes: 4,
            epsilon: 0.05,
            epsilon_decay: 0.5,
            rung0_points: 1,
            rung0_shift: 3,
            max_rungs: None,
            exhaustive: false,
            journal_path: None,
            resume: false,
            pool: None,
        }
    }
}

/// Per-rung accounting in a [`SweepReport`].
#[derive(Clone, Copy, Debug)]
pub struct RungSummary {
    /// The rung's point budget.
    pub points: usize,
    /// The rung's interval/warm-up truncation shift.
    pub shift: u32,
    /// Configurations that entered the rung.
    pub entered: usize,
    /// Configurations promoted to the next rung (equals `entered` on the
    /// final rung, which never eliminates).
    pub promoted: usize,
    /// Configurations eliminated by the ε-band Pareto rule.
    pub eliminated: usize,
    /// Points simulated fresh in this rung (resume-variant).
    pub fresh_points: u64,
    /// Point lookups served from the memo — lower-rung reuse plus
    /// journal replay (resume-variant).
    pub reused_points: u64,
    /// Fresh points that ran as lanes of a shared-predecode batch
    /// (resume-variant).
    pub batched_points: u64,
    /// Detailed-sim cycles spent on this rung's fresh points
    /// (resume-variant).
    pub detailed_cycles: u64,
}

/// One point of a per-workload perf-per-watt Pareto frontier.
#[derive(Clone, Debug)]
pub struct FrontierPoint {
    /// Workload name.
    pub workload: &'static str,
    /// Configuration name.
    pub config: String,
    /// Cycles per instruction (lower is better).
    pub cpi: f64,
    /// Tile power in milliwatts (lower is better).
    pub mw: f64,
}

/// Resume-variant sweep accounting (the analogue of `CampaignStats`).
#[derive(Clone, Debug)]
pub struct SweepStats {
    /// Worker threads used.
    pub jobs: usize,
    /// Wall-clock of the whole sweep, in milliseconds.
    pub wall_ms: u128,
    /// Artifact-store counters at sweep end (includes the point memo).
    pub cache: CacheStats,
    /// Points prefilled from the resume journal.
    pub replayed_points: u64,
    /// Fresh points that ran as lanes of a shared-predecode batch.
    pub batched_points: u64,
    /// Idle cycles fast-forwarded by event-driven skipping across all
    /// fresh points.
    pub idle_cycles_skipped: u64,
    /// Total detailed-sim cycles across all fresh points — the sweep's
    /// cost metric (what successive halving reduces versus exhaustive).
    pub detailed_cycles: u64,
}

/// Everything a sweep produced: the admitted design space, the rung
/// history, the surviving cells' full results, and the per-workload
/// Pareto frontiers.
#[derive(Debug)]
pub struct SweepReport {
    /// Admitted configurations: (name, fingerprint), in admission order.
    pub configs: Vec<(String, u64)>,
    /// Duplicate configurations folded away at admission.
    pub folded: usize,
    /// Workload names, in sweep order.
    pub workloads: Vec<&'static str>,
    /// Per-rung budget and elimination accounting.
    pub rungs: Vec<RungSummary>,
    /// Full results of every configuration that survived to the final
    /// rung, configuration-major like a campaign report.
    pub cells: Vec<CellResult>,
    /// The per-workload (CPI, mW) Pareto frontiers over the surviving
    /// cells, each sorted by (mW, CPI, name).
    pub frontier: Vec<FrontierPoint>,
    /// Resume-variant accounting.
    pub stats: SweepStats,
}

impl SweepReport {
    /// Whether every surviving cell produced a result.
    pub fn all_ok(&self) -> bool {
        self.cells.iter().all(|c| c.outcome.is_ok())
    }

    /// The deterministic sweep report: admitted configurations, rung
    /// budgets and elimination counts, every surviving cell's full
    /// result (floats with exact bit patterns), and the Pareto
    /// frontiers. Byte-identical across `jobs` settings and across
    /// kill + resume.
    pub fn render_deterministic(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("sweep configs {} folded {}\n", self.configs.len(), self.folded));
        for (name, fp) in &self.configs {
            out.push_str(&format!("config {name} {fp:016x}\n"));
        }
        out.push_str(&format!("rungs {}\n", self.rungs.len()));
        for (i, r) in self.rungs.iter().enumerate() {
            out.push_str(&format!(
                "rung {i} points {} shift {} entered {} promoted {} eliminated {}\n",
                r.points, r.shift, r.entered, r.promoted, r.eliminated
            ));
        }
        out.push_str(&format!("cells {}\n", self.cells.len()));
        for c in &self.cells {
            match &c.outcome {
                Ok(r) => {
                    out.push_str(&format!("cell {} {} ok\n", c.config, c.workload));
                    render_cell_body(&mut out, r);
                }
                Err(e) => {
                    out.push_str(&format!("cell {} {} failed: {e}\n", c.config, c.workload));
                }
            }
        }
        out.push_str(&self.render_frontier());
        out
    }

    /// Just the Pareto-frontier section — the byte string the adaptive
    /// sweep must reproduce exactly from the exhaustive baseline.
    pub fn render_frontier(&self) -> String {
        let mut out = String::new();
        for &w in &self.workloads {
            let pts: Vec<&FrontierPoint> =
                self.frontier.iter().filter(|p| p.workload == w).collect();
            out.push_str(&format!("frontier {w} {}\n", pts.len()));
            for p in pts {
                out.push_str(&format!("  {} cpi {} mw {}\n", p.config, fb(p.cpi), fb(p.mw)));
            }
        }
        out
    }

    /// Human-readable stage summary: per-rung budget/elimination/reuse
    /// table plus store and journal counters. Resume-variant — for
    /// operators, never for byte comparison.
    pub fn stage_summary(&self) -> String {
        let header: Vec<String> = [
            "Rung",
            "Points",
            "Shift",
            "Entered",
            "Promoted",
            "Eliminated",
            "Fresh",
            "Reused",
            "Batched",
            "Kcycles",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let rows: Vec<Vec<String>> = self
            .rungs
            .iter()
            .enumerate()
            .map(|(i, r)| {
                vec![
                    i.to_string(),
                    r.points.to_string(),
                    r.shift.to_string(),
                    r.entered.to_string(),
                    r.promoted.to_string(),
                    r.eliminated.to_string(),
                    r.fresh_points.to_string(),
                    r.reused_points.to_string(),
                    r.batched_points.to_string(),
                    (r.detailed_cycles / 1000).to_string(),
                ]
            })
            .collect();
        let mut out = render_table(&header, &rows);
        let s = &self.stats;
        out.push_str(&format!(
            "Point memo: {} hit(s), {} stored\n",
            s.cache.sweep_point_hits, s.cache.sweep_point_stored
        ));
        out.push_str(&format!("Detailed cycles (fresh): {}\n", s.detailed_cycles));
        if s.replayed_points > 0 {
            out.push_str(&format!("Journal: {} point(s) replayed\n", s.replayed_points));
        }
        if s.batched_points > 0 {
            out.push_str(&format!(
                "Batched lanes: {} point(s) shared a predecode\n",
                s.batched_points
            ));
        }
        if s.idle_cycles_skipped > 0 {
            out.push_str(&format!(
                "Idle skip: {} cycle(s) fast-forwarded\n",
                s.idle_cycles_skipped
            ));
        }
        out.push_str(&format!("Sweep wall: {} ms on {} job(s)\n", s.wall_ms, s.jobs));
        out
    }
}

/// The point-memo key for (configuration, workload, budget, point).
/// Also the first half of the campaign service's cross-request
/// shared-point key (shift 0 there — campaigns never truncate).
pub(crate) fn point_key(
    cfg_fp: u64,
    workload: &Workload,
    flow: &FlowConfig,
    shift: u32,
    p_idx: usize,
) -> PointKey {
    (
        cfg_fp,
        workload.program.fingerprint(),
        workload.interval_size,
        flow.warmup_insts,
        shift,
        p_idx as u32,
    )
}

/// A planned point with its measured interval truncated by `shift` (the
/// rung budget). Shift 0 is the identity; the interval never truncates
/// below 100 instructions (or its full length). The warm-up is
/// deliberately *not* truncated: warm-up exists to remove cold-start
/// bias, and shortening it would make early-rung rankings lie about
/// exactly the structures (caches, predictors) the sweep varies.
fn truncated(p: &PlannedPoint, shift: u32) -> PlannedPoint {
    let mut t = p.clone();
    if shift > 0 {
        t.interval_len = (p.interval_len >> shift).max(p.interval_len.min(100));
    }
    t
}

/// Splitmix64 — the deterministic stream behind random sampling (the
/// container has no `rand`; this is the standard 3-round mixer).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Strict-domination Pareto filter over (name, CPI, mW) candidates:
/// keeps every point no other point beats in one metric without losing
/// the other, sorted by (mW, CPI, name) for deterministic rendering.
fn pareto_filter(pts: &[(String, f64, f64)]) -> Vec<(String, f64, f64)> {
    let mut nd: Vec<(String, f64, f64)> = pts
        .iter()
        .filter(|a| !pts.iter().any(|b| (b.1 < a.1 && b.2 <= a.2) || (b.1 <= a.1 && b.2 < a.2)))
        .cloned()
        .collect();
    nd.sort_by(|a, b| a.2.total_cmp(&b.2).then(a.1.total_cmp(&b.1)).then(a.0.cmp(&b.0)));
    nd
}

/// Runs the adaptive successive-halving sweep.
///
/// `cfgs` is the raw generated design space — [`admit`] folds duplicate
/// fingerprints internally, so callers pass the grid as generated. The
/// front half of the flow is prepared once per workload through `store`;
/// every completed point is memoized there and (when
/// [`SweepOptions::journal_path`] is set) journaled for crash-safe
/// resume. See the module docs for the determinism contract.
///
/// # Errors
///
/// Journal I/O and validation errors ([`JournalError`]); per-point and
/// per-cell failures are *contained* (quarantine / failed cells in the
/// report), never returned.
pub fn run_sweep(
    cfgs: &[BoomConfig],
    workloads: &[Workload],
    flow: &FlowConfig,
    store: &ArtifactStore,
    opts: &SweepOptions,
) -> Result<SweepReport, JournalError> {
    let t0 = Instant::now();
    let jobs = opts.jobs.max(1);
    let lanes = opts.batch_lanes.max(1);
    let (cfgs, folded) = admit(cfgs.to_vec());
    let w = workloads.len();
    let fps: Vec<u64> = cfgs.iter().map(config_fingerprint).collect();

    // Phase 1 — per-workload artifact preparation (profile → analysis →
    // checkpoints), shared by every rung through the store.
    let prep: Vec<OnceLock<Result<Arc<CheckpointSet>, PrepError>>> =
        workloads.iter().map(|_| OnceLock::new()).collect();
    exec_tasks(jobs, opts.pool.as_deref(), (0..w).collect(), |w_idx| {
        let r = match catch_unwind(AssertUnwindSafe(|| store.checkpoints(&workloads[w_idx], flow)))
        {
            Ok(Ok(set)) => Ok(set),
            Ok(Err(e)) => Err(PrepError::Flow(e)),
            Err(payload) => Err(PrepError::Panicked(panic_message(payload.as_ref()))),
        };
        let _ = prep[w_idx].set(r);
    });
    let prep_of = |w_idx: usize| -> Result<Arc<CheckpointSet>, PrepError> {
        prep[w_idx]
            .get()
            .cloned()
            .unwrap_or_else(|| Err(PrepError::Panicked("artifact worker died".to_string())))
    };
    let sets: Vec<Option<Arc<CheckpointSet>>> = (0..w).map(|i| prep_of(i).ok()).collect();

    // The rung schedule depends on the largest selected-point count,
    // which the (deterministic, disk-cacheable) prep phase just fixed.
    let max_points = sets.iter().flatten().map(|s| s.points.len()).max().unwrap_or(0).max(1);
    let rungs_spec = rung_schedule(
        max_points,
        opts.rung0_points,
        opts.rung0_shift,
        opts.max_rungs,
        opts.exhaustive,
    );

    // Journal: the fingerprint covers the admitted configs, workloads,
    // flow, rung schedule, and ε — everything that determines record
    // indices and outcomes. Replayed records prefill the point memo, so
    // the rung loop below treats them exactly like lower-rung reuse.
    let rung_pairs: Vec<(usize, u32)> = rungs_spec.iter().map(|r| (r.points, r.shift)).collect();
    let sweep_fp =
        sweep_fingerprint(&cfgs, workloads, flow, &rung_pairs, opts.epsilon, opts.epsilon_decay);
    let mut replayed: u64 = 0;
    let journal: Option<CampaignJournal> = match &opts.journal_path {
        None => None,
        Some(path) if opts.resume => {
            let (j, replay) = CampaignJournal::resume(path, sweep_fp)?;
            for (&(c_enc, p_enc), outcome) in &replay.outcomes {
                let (Some(cfg_idx), Some(w_idx)) = (c_enc.checked_div(w), c_enc.checked_rem(w))
                else {
                    continue;
                };
                let (shift, p_idx) = ((p_enc >> 24) as u32, p_enc & 0x00FF_FFFF);
                if cfg_idx < cfgs.len() {
                    let key = point_key(fps[cfg_idx], &workloads[w_idx], flow, shift, p_idx);
                    store.record_point(key, outcome);
                    replayed += 1;
                }
            }
            Some(j)
        }
        Some(path) => Some(CampaignJournal::create(path, sweep_fp)?),
    };

    // Fresh points completed so far, for fault-injected kill drills.
    let completed = AtomicU64::new(0);
    let charge_and_maybe_kill = |fresh: u64| {
        if let Some(kill_after) = flow.inject.kill_after_points {
            if fresh > 0 && completed.fetch_add(fresh, Ordering::Relaxed) + fresh >= kill_after {
                std::process::abort();
            }
        }
    };

    // Phase 2 — the rungs.
    let mut alive: Vec<usize> = (0..cfgs.len()).collect();
    let mut rung_summaries: Vec<RungSummary> = Vec::new();
    let mut detailed_cycles_total: u64 = 0;
    let mut idle_skipped_total: u64 = 0;
    let mut batched_total: u64 = 0;
    let n_rungs = rungs_spec.len();
    for (r_idx, rung) in rungs_spec.iter().enumerate() {
        let entered = alive.len();
        // Per-workload effective budget: the rung's cap, bounded by what
        // the analysis actually selected.
        let actual: Vec<usize> = sets
            .iter()
            .map(|s| s.as_ref().map_or(0, |s| s.points.len().min(rung.points)))
            .collect();
        let slot_of =
            |a_pos: usize, w_idx: usize, p_idx: usize| (a_pos * w + w_idx) * rung.points + p_idx;
        let slots: Vec<OnceLock<PointOutcome>> =
            (0..alive.len() * w * rung.points).map(|_| OnceLock::new()).collect();

        // Prefill every point the memo already has (lower-rung reuse and
        // journal replay); whatever is left is this rung's fresh work.
        let mut fresh_idx: Vec<(usize, usize, usize)> = Vec::new();
        let mut reused: u64 = 0;
        for (a_pos, &cfg_idx) in alive.iter().enumerate() {
            for (w_idx, workload) in workloads.iter().enumerate() {
                for p_idx in 0..actual[w_idx] {
                    let key = point_key(fps[cfg_idx], workload, flow, rung.shift, p_idx);
                    if let Some(outcome) = store.cached_point(&key) {
                        let _ = slots[slot_of(a_pos, w_idx, p_idx)].set(outcome);
                        reused += 1;
                    } else {
                        fresh_idx.push((w_idx, p_idx, a_pos));
                    }
                }
            }
        }

        // Group fresh work by (workload, point) so lanes share the
        // point's predecoded image and micro-op table, then chunk each
        // group `batch_lanes` wide in alive order.
        fresh_idx.sort_unstable();
        let mut tasks: Vec<(usize, usize, Vec<usize>)> = Vec::new();
        let mut i = 0;
        while i < fresh_idx.len() {
            let (w_idx, p_idx, _) = fresh_idx[i];
            let mut group: Vec<usize> = Vec::new();
            while i < fresh_idx.len() && (fresh_idx[i].0, fresh_idx[i].1) == (w_idx, p_idx) {
                group.push(fresh_idx[i].2);
                i += 1;
            }
            for chunk in group.chunks(lanes) {
                tasks.push((w_idx, p_idx, chunk.to_vec()));
            }
        }

        let batched_this = AtomicU64::new(0);
        let slots_ref = &slots;
        let alive_ref = &alive;
        exec_tasks(
            jobs,
            opts.pool.as_deref(),
            tasks,
            |(w_idx, p_idx, a_positions): (usize, usize, Vec<usize>)| {
                let Some(set) = sets[w_idx].as_ref() else {
                    return;
                };
                let point = truncated(&set.points[p_idx], rung.shift);
                let outcomes: Vec<PointOutcome> = if a_positions.len() == 1 {
                    let cfg = &cfgs[alive_ref[a_positions[0]]];
                    vec![catch_unwind(AssertUnwindSafe(|| {
                        run_point_timed(cfg, &point, flow, None, store)
                    }))
                    .unwrap_or_else(|payload| Err(escaped_panic(&point, payload.as_ref())))]
                } else {
                    batched_this.fetch_add(a_positions.len() as u64, Ordering::Relaxed);
                    let lane_cfgs: Vec<&BoomConfig> =
                        a_positions.iter().map(|&a| &cfgs[alive_ref[a]]).collect();
                    run_point_batch(&lane_cfgs, &point, flow, store)
                };
                for (&a_pos, outcome) in a_positions.iter().zip(&outcomes) {
                    let cfg_idx = alive_ref[a_pos];
                    if let Some(j) = &journal {
                        let enc_p = ((rung.shift as usize) << 24) | p_idx;
                        j.append(cfg_idx * w + w_idx, enc_p, outcome);
                    }
                    let key = point_key(fps[cfg_idx], &workloads[w_idx], flow, rung.shift, p_idx);
                    store.record_point(key, outcome);
                    let _ = slots_ref[slot_of(a_pos, w_idx, p_idx)].set(outcome.clone());
                    charge_and_maybe_kill(1);
                }
            },
        );

        // Fresh-point accounting, iterated in deterministic order on the
        // coordinator thread.
        let mut fresh_points: u64 = 0;
        let mut rung_cycles: u64 = 0;
        for &(w_idx, p_idx, a_pos) in &fresh_idx {
            if let Some(outcome) = slots[slot_of(a_pos, w_idx, p_idx)].get() {
                fresh_points += 1;
                if let Ok((p, _)) = outcome {
                    rung_cycles += p.stats.cycles;
                    idle_skipped_total += p.stats.idle_cycles_skipped;
                }
            }
        }
        detailed_cycles_total += rung_cycles;

        // Elimination: ε-band Pareto retention on the rung's estimates.
        // The final rung never eliminates — its entrants are the report.
        let last = r_idx + 1 == n_rungs;
        let (promoted, eliminated) = if last {
            (entered, 0)
        } else {
            let ests: Vec<Vec<Option<(f64, f64)>>> = (0..alive.len())
                .map(|a_pos| {
                    (0..w)
                        .map(|w_idx| {
                            let refs: Vec<&PointOutcome> = (0..actual[w_idx])
                                .filter_map(|p_idx| slots[slot_of(a_pos, w_idx, p_idx)].get())
                                .collect();
                            weighted_estimate(&refs)
                        })
                        .collect()
                })
                .collect();
            let eps = (opts.epsilon * opts.epsilon_decay.max(0.0).powi(r_idx as i32)).max(0.0);
            // b ε-dominates a when it beats a by more than the ε band in
            // both metrics — or, on a bit-exact tie in one metric (the
            // common case for knobs the workload does not exercise, e.g.
            // a larger ROB that never fills), beats it by the band in
            // the other. Ties within the band in both metrics survive:
            // the exhaustive frontier keeps near-ties too, and the band
            // is what absorbs the truncated-budget estimate bias.
            let eps_dominates = |(bc, bm): (f64, f64), (cpi, mw): (f64, f64)| -> bool {
                let better_cpi = bc * (1.0 + eps) < cpi;
                let better_mw = bm * (1.0 + eps) < mw;
                ((bc == cpi || better_cpi) && better_mw) || (bm == mw && better_cpi)
            };
            let survives = |a_pos: usize| -> bool {
                (0..w).any(|w_idx| {
                    let Some(a) = ests[a_pos][w_idx] else {
                        return false;
                    };
                    !(0..alive.len()).any(|b| {
                        b != a_pos && ests[b][w_idx].is_some_and(|be| eps_dominates(be, a))
                    })
                })
            };
            let mut survivors: Vec<usize> = (0..alive.len()).filter(|&a| survives(a)).collect();
            if survivors.is_empty() {
                // Degenerate rung (every estimate missing, e.g. all prep
                // failed): promote everyone and let the final assembly
                // report the failures honestly.
                survivors = (0..alive.len()).collect();
            }
            let promoted = survivors.len();
            alive = survivors.into_iter().map(|a| alive[a]).collect();
            (promoted, entered - promoted)
        };
        let batched = batched_this.load(Ordering::Relaxed);
        batched_total += batched;
        rung_summaries.push(RungSummary {
            points: rung.points,
            shift: rung.shift,
            entered,
            promoted,
            eliminated,
            fresh_points,
            reused_points: reused,
            batched_points: batched,
            detailed_cycles: rung_cycles,
        });
    }

    // Phase 3 — assemble the survivors' full-budget results from the
    // memo (shift 0, every selected point: exactly what the final rung
    // just ran or reused) and derive the Pareto frontiers.
    let mut cells: Vec<CellResult> = Vec::with_capacity(alive.len() * w);
    for &cfg_idx in &alive {
        for (w_idx, workload) in workloads.iter().enumerate() {
            let outcome = match prep_of(w_idx) {
                Err(PrepError::Flow(e)) => Err(CellFailure::Flow(e)),
                Err(PrepError::Panicked(m)) => Err(CellFailure::Panicked(m)),
                Ok(set) => {
                    let outcomes: Vec<PointOutcome> = set
                        .points
                        .iter()
                        .enumerate()
                        .map(|(p_idx, p)| {
                            let key = point_key(fps[cfg_idx], workload, flow, 0, p_idx);
                            store.cached_point(&key).unwrap_or_else(|| {
                                Err(PointFailure {
                                    simpoint: p.sel_idx,
                                    interval: p.interval,
                                    weight: p.weight,
                                    attempts: 1,
                                    kind: FailureKind::Panicked {
                                        message: "sweep point missing from memo".to_string(),
                                    },
                                })
                            })
                        })
                        .collect();
                    let name = &cfgs[cfg_idx].name;
                    match catch_unwind(AssertUnwindSafe(|| {
                        assemble_workload_result(name, workload, &set, outcomes)
                    })) {
                        Ok(Ok(r)) => Ok(Box::new(r)),
                        Ok(Err(e)) => Err(CellFailure::Flow(e)),
                        Err(payload) => Err(CellFailure::Panicked(panic_message(payload.as_ref()))),
                    }
                }
            };
            cells.push(CellResult {
                config: cfgs[cfg_idx].name.clone(),
                workload: workload.name,
                outcome,
            });
        }
    }

    let mut frontier: Vec<FrontierPoint> = Vec::new();
    for workload in workloads {
        let candidates: Vec<(String, f64, f64)> = cells
            .iter()
            .filter(|c| c.workload == workload.name)
            .filter_map(|c| {
                let r = c.outcome.as_ref().ok()?;
                let cpi = 1.0 / r.ipc;
                cpi.is_finite().then(|| (c.config.clone(), cpi, r.tile_power_mw()))
            })
            .collect();
        for (config, cpi, mw) in pareto_filter(&candidates) {
            frontier.push(FrontierPoint { workload: workload.name, config, cpi, mw });
        }
    }

    Ok(SweepReport {
        configs: cfgs.iter().zip(&fps).map(|(c, &fp)| (c.name.clone(), fp)).collect(),
        folded,
        workloads: workloads.iter().map(|wl| wl.name).collect(),
        rungs: rung_summaries,
        cells,
        frontier,
        stats: SweepStats {
            jobs,
            wall_ms: t0.elapsed().as_millis(),
            cache: store.stats(),
            replayed_points: replayed,
            batched_points: batched_total,
            idle_cycles_skipped: idle_skipped_total,
            detailed_cycles: detailed_cycles_total,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(axes: Vec<(SweepKnob, Vec<u64>)>) -> SweepSpec {
        SweepSpec { base: BoomConfig::medium(), axes, random: None }
    }

    #[test]
    fn knob_keys_round_trip() {
        for k in SweepKnob::ALL {
            assert_eq!(SweepKnob::parse(k.key()), Some(k), "{}", k.key());
        }
        assert_eq!(SweepKnob::parse("no-such-knob"), None);
    }

    #[test]
    fn grid_cross_product_and_names() {
        let cfgs = spec(vec![(SweepKnob::FetchWidth, vec![4, 8]), (SweepKnob::Rob, vec![32, 64])])
            .generate()
            .expect("generate");
        assert_eq!(cfgs.len(), 4);
        let names: Vec<&str> = cfgs.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["sw-f4-rob32", "sw-f4-rob64", "sw-f8-rob32", "sw-f8-rob64"]);
        for cfg in &cfgs {
            cfg.validate().expect("valid");
        }
    }

    #[test]
    fn clamps_repair_inconsistent_points() {
        let cfgs = spec(vec![
            (SweepKnob::FetchWidth, vec![2]),
            (SweepKnob::DecodeWidth, vec![8]),
            (SweepKnob::Rob, vec![33]),
        ])
        .generate()
        .expect("generate");
        let cfg = &cfgs[0];
        // Decode clamps to fetch; the ROB rounds up to a decode multiple.
        assert_eq!(cfg.decode_width, 2);
        assert_eq!(cfg.rob_entries, 34);
        assert_eq!(cfg.name, "sw-f2-d2-rob34");
        // Derived resources follow the clamped widths.
        assert_eq!(cfg.fetch_buffer_entries, 4 * cfg.fetch_width);
        cfg.validate().expect("valid");
    }

    #[test]
    fn admit_folds_clamp_collisions() {
        // Decode 4 and 8 both clamp to fetch width 2 → identical configs.
        let cfgs =
            spec(vec![(SweepKnob::FetchWidth, vec![2]), (SweepKnob::DecodeWidth, vec![4, 8])])
                .generate()
                .expect("generate");
        assert_eq!(cfgs.len(), 2);
        assert_eq!(cfgs[0].name, cfgs[1].name);
        let (admitted, folded) = admit(cfgs);
        assert_eq!(admitted.len(), 1);
        assert_eq!(folded, 1);
    }

    #[test]
    fn random_sampling_is_seeded_and_in_range() {
        let s = SweepSpec {
            base: BoomConfig::medium(),
            axes: vec![(SweepKnob::Rob, vec![32, 64, 96]), (SweepKnob::DcacheWays, vec![2, 4])],
            random: Some((8, 7)),
        };
        let a = s.generate().expect("generate");
        let b = s.generate().expect("generate");
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name, "same seed, same draws");
            assert!([32, 64, 96].contains(&x.rob_entries));
            assert!([2, 4].contains(&x.dcache.ways));
        }
    }

    #[test]
    fn empty_axes_are_rejected() {
        assert!(matches!(spec(vec![]).generate(), Err(ConfigError::Zero { .. })));
        assert!(matches!(
            spec(vec![(SweepKnob::Rob, vec![])]).generate(),
            Err(ConfigError::Zero { .. })
        ));
    }

    #[test]
    fn presets_have_expected_sizes() {
        let ref64 = SweepSpec::preset("ref64").expect("ref64").generate().expect("generate");
        let (admitted, folded) = admit(ref64);
        assert_eq!((admitted.len(), folded), (64, 0));
        let smoke = SweepSpec::preset("smoke16").expect("smoke16").generate().expect("generate");
        let (admitted, folded) = admit(smoke);
        assert_eq!((admitted.len(), folded), (16, 0));
        assert!(SweepSpec::preset("nope").is_none());
    }

    #[test]
    fn schedule_shapes() {
        let pairs =
            |v: Vec<RungSpec>| v.into_iter().map(|r| (r.points, r.shift)).collect::<Vec<_>>();
        assert_eq!(
            pairs(rung_schedule(6, 1, 3, None, false)),
            [(1, 3), (1, 0), (2, 0), (4, 0), (6, 0)]
        );
        assert_eq!(pairs(rung_schedule(6, 1, 3, None, true)), [(6, 0)]);
        assert_eq!(pairs(rung_schedule(6, 1, 3, Some(3), false)), [(1, 3), (1, 0), (6, 0)]);
        // rung0 at shift 0 dedups against the first doubling rung.
        assert_eq!(pairs(rung_schedule(4, 2, 0, None, false)), [(2, 0), (4, 0)]);
        // A single-point workload collapses to one truncated prefilter
        // plus the full rung.
        assert_eq!(pairs(rung_schedule(1, 1, 3, None, false)), [(1, 3), (1, 0)]);
    }

    #[test]
    fn truncation_floors_hold() {
        let ckpt = Arc::new(rv_isa::checkpoint::Checkpoint {
            pc: 0,
            x: [0; 32],
            f: [0; 32],
            mem: rv_isa::mem::Memory::new(),
            instret: 0,
            image: None,
        });
        let p = PlannedPoint {
            sel_idx: 0,
            interval: 0,
            weight: 1.0,
            interval_len: 2000,
            warmup: 1000,
            checkpoint: ckpt,
        };
        let t = truncated(&p, 3);
        assert_eq!((t.interval_len, t.warmup), (250, 1000));
        let t = truncated(&p, 0);
        assert_eq!((t.interval_len, t.warmup), (2000, 1000));
        // Deep shifts floor at 100 instructions, not zero; the warm-up
        // is never truncated.
        let t = truncated(&p, 10);
        assert_eq!((t.interval_len, t.warmup), (100, 1000));
        let short = PlannedPoint { interval_len: 40, ..p };
        assert_eq!(truncated(&short, 4).interval_len, 40);
    }

    #[test]
    fn pareto_filter_keeps_nondominated_sorted() {
        let pts = vec![
            ("fast-hot".to_string(), 1.0, 9.0),
            ("slow-cool".to_string(), 3.0, 2.0),
            ("balanced".to_string(), 2.0, 4.0),
            ("dominated".to_string(), 2.5, 4.5),
            ("tie".to_string(), 2.0, 4.0),
        ];
        let nd = pareto_filter(&pts);
        let names: Vec<&str> = nd.iter().map(|p| p.0.as_str()).collect();
        // Ties are both kept (neither strictly dominates), sorted by
        // (mW, CPI, name).
        assert_eq!(names, ["slow-cool", "balanced", "tie", "fast-hot"]);
    }

    #[test]
    fn fixed_latency_detection() {
        let medium = BoomConfig::medium();
        assert!(all_fixed_latency(std::slice::from_ref(&medium)));
        let mut hier = medium;
        hier.mem_backend = MemBackendKind::Hierarchy(boom_uarch::HierarchyParams::default_uncore());
        assert!(!all_fixed_latency(&[hier]));
    }
}
