//! Text-table rendering for the paper's figures and tables.
//!
//! The bench harness regenerates every evaluation artifact as an aligned
//! text table; these helpers keep the formatting consistent.

use crate::flow::WorkloadResult;
use rtl_power::Component;

/// Renders an aligned table: a header row plus data rows.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), header.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            // Left-align the first column, right-align the rest.
            if i == 0 {
                line.push_str(&format!("{cell:<w$}"));
            } else {
                line.push_str(&format!("{cell:>w$}"));
            }
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(header, &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Renders the per-component power table of one configuration across
/// workloads (the data behind paper Figs. 5/6/7): one row per component,
/// one column per workload, plus the mean.
pub fn render_component_power(results: &[WorkloadResult]) -> String {
    let mut header = vec!["Component (mW)".to_string()];
    header.extend(results.iter().map(|r| r.name.to_string()));
    header.push("Mean".to_string());

    let mut rows = Vec::new();
    for c in Component::ANALYZED {
        let mut row = vec![c.name().to_string()];
        let mut sum = 0.0;
        for r in results {
            let mw = r.power.component(c).total_mw();
            sum += mw;
            row.push(format!("{mw:.2}"));
        }
        row.push(format!("{:.2}", sum / results.len().max(1) as f64));
        rows.push(row);
    }
    // Tile totals.
    let mut row = vec!["BOOM tile total".to_string()];
    let mut sum = 0.0;
    for r in results {
        let mw = r.tile_power_mw();
        sum += mw;
        row.push(format!("{mw:.2}"));
    }
    row.push(format!("{:.2}", sum / results.len().max(1) as f64));
    rows.push(row);
    render_table(&header, &rows)
}

/// Renders one metric (IPC or perf/W) across workloads × configurations
/// (the data behind paper Figs. 10/11).
pub fn render_metric(title: &str, workload_names: &[&str], configs: &[(&str, Vec<f64>)]) -> String {
    let mut header = vec![title.to_string()];
    header.extend(workload_names.iter().map(|n| n.to_string()));
    header.push("Mean".to_string());
    let rows: Vec<Vec<String>> = configs
        .iter()
        .map(|(cfg, vals)| {
            let mut row = vec![cfg.to_string()];
            row.extend(vals.iter().map(|v| format!("{v:.2}")));
            let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
            row.push(format!("{mean:.2}"));
            row
        })
        .collect();
    render_table(&header, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["A".into(), "Bee".into()],
            &[vec!["x".into(), "1".into()], vec!["long-name".into(), "22.5".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        let width = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == width), "{t}");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = render_table(&["A".into()], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn metric_table_contains_means() {
        let t = render_metric("IPC", &["w1", "w2"], &[("Cfg", vec![1.0, 3.0])]);
        assert!(t.contains("2.00"), "{t}");
    }
}
