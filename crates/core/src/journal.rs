//! Write-ahead campaign journal for crash-safe, resumable campaigns.
//!
//! [`run_campaign`](crate::scheduler) records every completed
//! `(cell, point)` outcome — success *or* quarantined failure — as one
//! appended journal record. If the campaign process dies (crash, OOM
//! kill, `--inject-kill-after`), a restart with `--resume` replays the
//! finished points from the journal and only simulates the remainder,
//! producing a [`CampaignReport`](crate::supervisor::CampaignReport)
//! bit-identical to an uninterrupted run.
//!
//! ## On-disk format
//!
//! ```text
//! header:  magic "BFJL" | version u32 | campaign fingerprint u64
//! record:  payload len u32 | payload | fnv1a-64(payload)
//! payload: cell index u64 | point index u64 | encoded PointOutcome
//! ```
//!
//! All integers are little-endian. Records are appended with a single
//! `write_all`; a crash mid-append leaves a *torn tail* that fails the
//! length or checksum check on resume, at which point the journal is
//! truncated back to its last valid record and the campaign recomputes
//! the lost points. A journal can therefore never replay a wrong
//! outcome — the worst corruption can do is cost recomputation.
//!
//! The header's campaign fingerprint ([`campaign_fingerprint`]) covers
//! everything that determines point outcomes: the configuration matrix,
//! the workloads (program fingerprints and interval sizes), and the
//! [`FlowConfig`] knobs. It deliberately *excludes* scheduling and
//! fault-injection knobs (`--jobs`, disk I/O faults, kill-after) so a
//! journal written by a killed injection run resumes cleanly into a
//! clean run. Resuming against a journal whose fingerprint differs is
//! refused ([`JournalError::FingerprintMismatch`]) rather than silently
//! replaying stale results.

use crate::artifacts::config_fingerprint;
use crate::flow::{FlowConfig, PointOutcome, PointResult};
use crate::supervisor::{FailureKind, PointFailure};
use crate::sync::lock;
use boom_uarch::rob::UopState;
use boom_uarch::stats::{
    CacheStats, IssueQueueStats, MemSysStats, PredictorStats, RenameStats, Stats,
};
use boom_uarch::watchdog::{
    IssueQueueView, LsuView, MshrView, OldestEntryView, RobHeadView, WatchdogSnapshot,
};
use boom_uarch::BoomConfig;
use rtl_power::{Component, PowerBreakdown, PowerReport};
use rv_isa::codec::{fnv1a, ByteReader, ByteWriter, CodecError};
use rv_workloads::Workload;
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

const MAGIC: &[u8; 4] = b"BFJL";
/// Version 2: stats records carry the memory-system (L2/DRAM) counters
/// and watchdog snapshots carry L2 MSHRs. Version-1 journals are
/// rejected on resume (the campaign restarts from scratch) rather than
/// misdecoded.
const VERSION: u32 = 2;
/// magic + version + campaign fingerprint.
const HEADER_LEN: usize = 4 + 4 + 8;

/// Why a journal could not be created or resumed.
#[derive(Debug)]
pub enum JournalError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The file exists but is not a journal (bad magic, bad version, or
    /// shorter than a header).
    BadHeader,
    /// The journal was written by a campaign with different
    /// configurations, workloads, or flow parameters.
    FingerprintMismatch {
        /// Fingerprint of the campaign being resumed.
        expected: u64,
        /// Fingerprint recorded in the journal header.
        found: u64,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::BadHeader => write!(f, "not a campaign journal (bad header)"),
            JournalError::FingerprintMismatch { expected, found } => write!(
                f,
                "journal belongs to a different campaign \
                 (expected fingerprint {expected:016x}, found {found:016x})"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> JournalError {
        JournalError::Io(e)
    }
}

/// Outcomes recovered from a journal, keyed by `(cell index, point
/// index)` in the campaign's deterministic cell order.
#[derive(Debug, Default)]
pub struct JournalReplay {
    pub(crate) outcomes: HashMap<(usize, usize), PointOutcome>,
}

impl JournalReplay {
    /// Number of completed points recovered from the journal.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the journal held no completed points.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }
}

/// An append-only write-ahead log of completed campaign points.
///
/// Cloneable across scheduler workers via `Arc`; appends serialize on
/// an internal poison-recovering mutex.
#[derive(Debug)]
pub struct CampaignJournal {
    path: PathBuf,
    file: Mutex<File>,
}

impl CampaignJournal {
    /// Starts a fresh journal at `path` (truncating any existing file)
    /// for the campaign identified by `fingerprint`.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] if the file cannot be created or
    /// the header cannot be written.
    pub fn create(path: &Path, fingerprint: u64) -> Result<CampaignJournal, JournalError> {
        let mut file = File::create(path)?;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&fingerprint.to_le_bytes());
        file.write_all(&header)?;
        file.sync_all()?;
        Ok(CampaignJournal { path: path.to_path_buf(), file: Mutex::new(file) })
    }

    /// Reopens the journal at `path`, replaying every valid record and
    /// truncating a torn tail left by a crash mid-append.
    ///
    /// Returns the journal (positioned to append after the last valid
    /// record) together with the recovered outcomes.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::BadHeader`] if the file is not a
    /// journal, [`JournalError::FingerprintMismatch`] if it belongs to
    /// a different campaign, and [`JournalError::Io`] on read/reopen
    /// failures.
    pub fn resume(
        path: &Path,
        fingerprint: u64,
    ) -> Result<(CampaignJournal, JournalReplay), JournalError> {
        let bytes = std::fs::read(path)?;
        if bytes.len() < HEADER_LEN || &bytes[..4] != MAGIC {
            return Err(JournalError::BadHeader);
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != VERSION {
            return Err(JournalError::BadHeader);
        }
        let mut fp = [0u8; 8];
        fp.copy_from_slice(&bytes[8..16]);
        let found = u64::from_le_bytes(fp);
        if found != fingerprint {
            return Err(JournalError::FingerprintMismatch { expected: fingerprint, found });
        }

        let mut replay = JournalReplay::default();
        let mut pos = HEADER_LEN;
        // A record that is incomplete, fails its checksum, or does not
        // decode marks the torn tail: everything before `pos` is
        // durable, everything after is discarded.
        while let Some(end) = scan_record(&bytes, pos, &mut replay) {
            pos = end;
        }

        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(pos as u64)?;
        file.seek(SeekFrom::End(0))?;
        Ok((CampaignJournal { path: path.to_path_buf(), file: Mutex::new(file) }, replay))
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one completed point. Best-effort: an I/O failure here
    /// only means the point is recomputed after a crash, so it is
    /// swallowed rather than aborting the campaign.
    pub fn append(&self, c_idx: usize, p_idx: usize, outcome: &PointOutcome) {
        let payload = encode_record(c_idx, p_idx, outcome);
        let mut framed = Vec::with_capacity(4 + payload.len() + 8);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&payload);
        framed.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        // One write_all per record: a crash can tear the tail record
        // (caught by the checksum on resume) but never interleave two.
        let _ = lock(&self.file).write_all(&framed);
    }
}

/// Parses the record starting at `pos`, adding it to `replay`. Returns
/// the offset just past the record, or `None` at the torn tail / EOF.
fn scan_record(bytes: &[u8], pos: usize, replay: &mut JournalReplay) -> Option<usize> {
    let len_end = pos.checked_add(4)?;
    if len_end > bytes.len() {
        return None;
    }
    let mut len4 = [0u8; 4];
    len4.copy_from_slice(&bytes[pos..len_end]);
    let len = u32::from_le_bytes(len4) as usize;
    let payload_end = len_end.checked_add(len)?;
    let rec_end = payload_end.checked_add(8)?;
    if rec_end > bytes.len() {
        return None;
    }
    let payload = &bytes[len_end..payload_end];
    let mut sum = [0u8; 8];
    sum.copy_from_slice(&bytes[payload_end..rec_end]);
    if fnv1a(payload) != u64::from_le_bytes(sum) {
        return None;
    }
    let (c_idx, p_idx, outcome) = decode_record(payload).ok()?;
    replay.outcomes.insert((c_idx, p_idx), outcome);
    Some(rec_end)
}

/// Fingerprint of everything that determines campaign point outcomes:
/// the configuration matrix, the workloads, and the flow parameters.
///
/// Scheduling and fault-injection knobs that do not change outcomes
/// (`--jobs`, disk-cache I/O faults, `--inject-kill-after`) are
/// deliberately excluded so a journal written under injection resumes
/// into a clean run.
pub fn campaign_fingerprint(cfgs: &[BoomConfig], workloads: &[Workload], flow: &FlowConfig) -> u64 {
    campaign_fingerprint_with(cfgs, workloads, flow, &[])
}

/// [`campaign_fingerprint`] for campaigns that also schedule dual-core
/// co-run cells (pairs of workload indices sharing an L2). The co-run
/// schedule shifts cell indices, so it must be part of the identity a
/// journal resumes against.
pub fn campaign_fingerprint_with(
    cfgs: &[BoomConfig],
    workloads: &[Workload],
    flow: &FlowConfig,
    co_runs: &[(usize, usize)],
) -> u64 {
    let mut w = ByteWriter::new();
    w.put_usize(cfgs.len());
    for cfg in cfgs {
        w.put_u64(config_fingerprint(cfg));
    }
    w.put_usize(workloads.len());
    for wl in workloads {
        w.put_str(wl.name);
        w.put_u64(wl.program.fingerprint());
        w.put_u64(wl.interval_size);
    }
    w.put_u64(flow.simpoint.cache_fingerprint());
    w.put_u64(flow.warmup_insts);
    w.put_u64(flow.max_profile_insts);
    w.put_u32(flow.retry.max_attempts);
    w.put_f64(flow.retry.warmup_perturb);
    put_opt_u64(&mut w, flow.retry.cycle_budget);
    w.put_f64(flow.retry.budget_backoff);
    put_opt_u64(&mut w, flow.retry.wall_clock.map(|d| d.as_millis() as u64));
    put_opt_u64(&mut w, flow.inject.hang_point.map(|p| p as u64));
    w.put_bool(flow.inject.hang_every_point);
    put_opt_u64(&mut w, flow.inject.panic_point.map(|p| p as u64));
    // Single-core campaigns hash exactly as before version 2: the co-run
    // block is appended only when present.
    if !co_runs.is_empty() {
        w.put_usize(co_runs.len());
        for &(a, b) in co_runs {
            w.put_usize(a);
            w.put_usize(b);
        }
    }
    fnv1a(&w.into_bytes())
}

/// Fingerprint of everything that determines *sweep* point outcomes and
/// record indices: the admitted (deduplicated) configurations, the
/// workloads, the flow parameters, the rung schedule (point budget and
/// interval-truncation shift per rung), and the ε-band with its per-rung
/// decay. A sweep journal
/// hashes differently from a campaign journal over the same matrix —
/// their record index spaces differ — so neither can replay the other.
///
/// Like [`campaign_fingerprint`], scheduling and fault-injection knobs
/// (`--jobs`, `--batch-lanes`, kill-after, disk faults) are excluded:
/// they never change outcomes, only wall-clock.
pub fn sweep_fingerprint(
    cfgs: &[BoomConfig],
    workloads: &[Workload],
    flow: &FlowConfig,
    rungs: &[(usize, u32)],
    epsilon: f64,
    epsilon_decay: f64,
) -> u64 {
    let mut w = ByteWriter::new();
    w.put_str("sweep");
    w.put_u64(campaign_fingerprint(cfgs, workloads, flow));
    w.put_usize(rungs.len());
    for &(points, shift) in rungs {
        w.put_usize(points);
        w.put_u32(shift);
    }
    w.put_f64(epsilon);
    w.put_f64(epsilon_decay);
    fnv1a(&w.into_bytes())
}

// ---------------------------------------------------------------------
// Record payload codec.
// ---------------------------------------------------------------------

fn put_opt_u64(w: &mut ByteWriter, v: Option<u64>) {
    match v {
        None => w.put_bool(false),
        Some(x) => {
            w.put_bool(true);
            w.put_u64(x);
        }
    }
}

fn take_opt_u64(r: &mut ByteReader<'_>) -> Result<Option<u64>, CodecError> {
    Ok(if r.bool()? { Some(r.u64()?) } else { None })
}

fn encode_record(c_idx: usize, p_idx: usize, outcome: &PointOutcome) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_usize(c_idx);
    w.put_usize(p_idx);
    encode_outcome(&mut w, outcome);
    w.into_bytes()
}

fn decode_record(payload: &[u8]) -> Result<(usize, usize, PointOutcome), CodecError> {
    let mut r = ByteReader::new(payload);
    let c_idx = r.usize()?;
    let p_idx = r.usize()?;
    let outcome = decode_outcome(&mut r)?;
    r.finish()?;
    Ok((c_idx, p_idx, outcome))
}

fn encode_outcome(w: &mut ByteWriter, outcome: &PointOutcome) {
    match outcome {
        Ok((result, attempts)) => {
            w.put_u8(0);
            w.put_u32(*attempts);
            encode_point_result(w, result);
        }
        Err(failure) => {
            w.put_u8(1);
            encode_point_failure(w, failure);
        }
    }
}

fn decode_outcome(r: &mut ByteReader<'_>) -> Result<PointOutcome, CodecError> {
    match r.u8()? {
        0 => {
            let attempts = r.u32()?;
            Ok(Ok((decode_point_result(r)?, attempts)))
        }
        1 => Ok(Err(decode_point_failure(r)?)),
        _ => Err(CodecError::Invalid("outcome tag")),
    }
}

fn encode_point_result(w: &mut ByteWriter, p: &PointResult) {
    w.put_usize(p.interval);
    w.put_f64(p.weight);
    w.put_f64(p.ipc);
    encode_power(w, &p.power);
    encode_stats(w, &p.stats);
}

fn decode_point_result(r: &mut ByteReader<'_>) -> Result<PointResult, CodecError> {
    Ok(PointResult {
        interval: r.usize()?,
        weight: r.f64()?,
        ipc: r.f64()?,
        power: decode_power(r)?,
        stats: decode_stats(r)?,
    })
}

fn encode_power(w: &mut ByteWriter, p: &PowerReport) {
    let entries: Vec<&(Component, PowerBreakdown)> = p.iter().collect();
    w.put_usize(entries.len());
    for (c, b) in entries {
        // `u8::MAX` can never match a real slot on decode, so an
        // unknown component (impossible today) fails validation there
        // instead of silently aliasing another component.
        let tag = Component::ALL.iter().position(|x| x == c).map_or(u8::MAX, |i| i as u8);
        w.put_u8(tag);
        w.put_f64(b.leakage_mw);
        w.put_f64(b.internal_mw);
        w.put_f64(b.switching_mw);
    }
    w.put_usize(p.int_issue_slot_mw.len());
    for &mw in &p.int_issue_slot_mw {
        w.put_f64(mw);
    }
}

fn decode_power(r: &mut ByteReader<'_>) -> Result<PowerReport, CodecError> {
    let n = r.seq_len(25)?;
    let mut entries = Vec::with_capacity(n);
    let mut seen = [false; Component::ALL.len()];
    for _ in 0..n {
        let tag = r.u8()? as usize;
        let c = *Component::ALL.get(tag).ok_or(CodecError::Invalid("component tag"))?;
        // `PowerReport::new` panics on duplicates; corrupt input must
        // surface as a decode error instead.
        if std::mem::replace(&mut seen[tag], true) {
            return Err(CodecError::Invalid("duplicate component"));
        }
        let b =
            PowerBreakdown { leakage_mw: r.f64()?, internal_mw: r.f64()?, switching_mw: r.f64()? };
        entries.push((c, b));
    }
    let slots = r.seq_len(8)?;
    let mut int_issue_slot_mw = Vec::with_capacity(slots);
    for _ in 0..slots {
        int_issue_slot_mw.push(r.f64()?);
    }
    Ok(PowerReport::new(entries, int_issue_slot_mw))
}

fn encode_cache_stats(w: &mut ByteWriter, s: &CacheStats) {
    w.put_u64(s.reads);
    w.put_u64(s.writes);
    w.put_u64(s.misses);
    w.put_u64(s.mshr_allocs);
    w.put_u64(s.mshr_occupancy_sum);
    w.put_u64(s.writebacks);
}

fn decode_cache_stats(r: &mut ByteReader<'_>) -> Result<CacheStats, CodecError> {
    Ok(CacheStats {
        reads: r.u64()?,
        writes: r.u64()?,
        misses: r.u64()?,
        mshr_allocs: r.u64()?,
        mshr_occupancy_sum: r.u64()?,
        writebacks: r.u64()?,
    })
}

fn encode_predictor_stats(w: &mut ByteWriter, s: &PredictorStats) {
    w.put_u64(s.lookups);
    w.put_u64(s.table_reads);
    w.put_u64(s.updates);
    w.put_u64(s.allocations);
    w.put_u64(s.btb_lookups);
    w.put_u64(s.btb_updates);
    w.put_u64(s.ras_pushes);
    w.put_u64(s.ras_pops);
}

fn decode_predictor_stats(r: &mut ByteReader<'_>) -> Result<PredictorStats, CodecError> {
    Ok(PredictorStats {
        lookups: r.u64()?,
        table_reads: r.u64()?,
        updates: r.u64()?,
        allocations: r.u64()?,
        btb_lookups: r.u64()?,
        btb_updates: r.u64()?,
        ras_pushes: r.u64()?,
        ras_pops: r.u64()?,
    })
}

fn encode_rename_stats(w: &mut ByteWriter, s: &RenameStats) {
    w.put_u64(s.map_writes);
    w.put_u64(s.map_reads);
    w.put_u64(s.freelist_pops);
    w.put_u64(s.freelist_pushes);
    w.put_u64(s.snapshot_writes);
}

fn decode_rename_stats(r: &mut ByteReader<'_>) -> Result<RenameStats, CodecError> {
    Ok(RenameStats {
        map_writes: r.u64()?,
        map_reads: r.u64()?,
        freelist_pops: r.u64()?,
        freelist_pushes: r.u64()?,
        snapshot_writes: r.u64()?,
    })
}

fn encode_iq_stats(w: &mut ByteWriter, s: &IssueQueueStats) {
    w.put_u64(s.writes);
    w.put_u64(s.collapse_writes);
    w.put_u64(s.issued);
    w.put_u64(s.wakeup_cam_matches);
    w.put_u64(s.occupancy_sum);
    w.put_usize(s.slot_occupancy.len());
    for &v in &s.slot_occupancy {
        w.put_u64(v);
    }
    w.put_usize(s.slot_writes.len());
    for &v in &s.slot_writes {
        w.put_u64(v);
    }
}

fn decode_iq_stats(r: &mut ByteReader<'_>) -> Result<IssueQueueStats, CodecError> {
    let mut s = IssueQueueStats {
        writes: r.u64()?,
        collapse_writes: r.u64()?,
        issued: r.u64()?,
        wakeup_cam_matches: r.u64()?,
        occupancy_sum: r.u64()?,
        slot_occupancy: Vec::new(),
        slot_writes: Vec::new(),
    };
    for _ in 0..r.seq_len(8)? {
        s.slot_occupancy.push(r.u64()?);
    }
    for _ in 0..r.seq_len(8)? {
        s.slot_writes.push(r.u64()?);
    }
    Ok(s)
}

fn encode_stats(w: &mut ByteWriter, s: &Stats) {
    w.put_u64(s.cycles);
    w.put_u64(s.retired);
    w.put_u64(s.branches);
    w.put_u64(s.mispredicts);
    w.put_u64(s.squashed);
    encode_cache_stats(w, &s.icache);
    encode_cache_stats(w, &s.dcache);
    encode_predictor_stats(w, &s.bp);
    w.put_u64(s.fetch_buffer_writes);
    w.put_u64(s.fetch_buffer_reads);
    w.put_u64(s.fetch_buffer_occupancy_sum);
    w.put_u64(s.decoded);
    encode_rename_stats(w, &s.int_rename);
    encode_rename_stats(w, &s.fp_rename);
    w.put_u64(s.irf_reads);
    w.put_u64(s.irf_writes);
    w.put_u64(s.frf_reads);
    w.put_u64(s.frf_writes);
    encode_iq_stats(w, &s.int_iq);
    encode_iq_stats(w, &s.mem_iq);
    encode_iq_stats(w, &s.fp_iq);
    w.put_u64(s.rob_writes);
    w.put_u64(s.rob_reads);
    w.put_u64(s.rob_occupancy_sum);
    w.put_u64(s.ldq_writes);
    w.put_u64(s.stq_writes);
    w.put_u64(s.stq_searches);
    w.put_u64(s.forwards);
    w.put_u64(s.lsu_occupancy_sum);
    w.put_u64(s.alu_ops);
    w.put_u64(s.mul_ops);
    w.put_u64(s.div_ops);
    w.put_u64(s.fpu_ops);
    w.put_u64(s.fdiv_ops);
    w.put_u64(s.agu_ops);
    encode_cache_stats(w, &s.mem.l2);
    w.put_u64(s.mem.dram_reads);
    w.put_u64(s.mem.dram_writes);
    w.put_u64(s.mem.dram_row_hits);
    w.put_u64(s.mem.dram_bw_wait_cycles);
    w.put_u64(s.mem.l2_contention_stalls);
}

fn decode_stats(r: &mut ByteReader<'_>) -> Result<Stats, CodecError> {
    Ok(Stats {
        cycles: r.u64()?,
        retired: r.u64()?,
        branches: r.u64()?,
        mispredicts: r.u64()?,
        squashed: r.u64()?,
        icache: decode_cache_stats(r)?,
        dcache: decode_cache_stats(r)?,
        bp: decode_predictor_stats(r)?,
        fetch_buffer_writes: r.u64()?,
        fetch_buffer_reads: r.u64()?,
        fetch_buffer_occupancy_sum: r.u64()?,
        decoded: r.u64()?,
        int_rename: decode_rename_stats(r)?,
        fp_rename: decode_rename_stats(r)?,
        irf_reads: r.u64()?,
        irf_writes: r.u64()?,
        frf_reads: r.u64()?,
        frf_writes: r.u64()?,
        int_iq: decode_iq_stats(r)?,
        mem_iq: decode_iq_stats(r)?,
        fp_iq: decode_iq_stats(r)?,
        rob_writes: r.u64()?,
        rob_reads: r.u64()?,
        rob_occupancy_sum: r.u64()?,
        ldq_writes: r.u64()?,
        stq_writes: r.u64()?,
        stq_searches: r.u64()?,
        forwards: r.u64()?,
        lsu_occupancy_sum: r.u64()?,
        alu_ops: r.u64()?,
        mul_ops: r.u64()?,
        div_ops: r.u64()?,
        fpu_ops: r.u64()?,
        fdiv_ops: r.u64()?,
        agu_ops: r.u64()?,
        // Deliberately not journaled: a replayed point skipped nothing in
        // this process, and the counter is excluded from fingerprints.
        idle_cycles_skipped: 0,
        mem: MemSysStats {
            l2: decode_cache_stats(r)?,
            dram_reads: r.u64()?,
            dram_writes: r.u64()?,
            dram_row_hits: r.u64()?,
            dram_bw_wait_cycles: r.u64()?,
            l2_contention_stalls: r.u64()?,
        },
    })
}

fn encode_point_failure(w: &mut ByteWriter, f: &PointFailure) {
    w.put_usize(f.simpoint);
    w.put_usize(f.interval);
    w.put_f64(f.weight);
    w.put_u32(f.attempts);
    encode_failure_kind(w, &f.kind);
}

fn decode_point_failure(r: &mut ByteReader<'_>) -> Result<PointFailure, CodecError> {
    Ok(PointFailure {
        simpoint: r.usize()?,
        interval: r.usize()?,
        weight: r.f64()?,
        attempts: r.u32()?,
        kind: decode_failure_kind(r)?,
    })
}

fn encode_failure_kind(w: &mut ByteWriter, k: &FailureKind) {
    match k {
        FailureKind::Hung { snapshot } => {
            w.put_u8(0);
            encode_snapshot(w, snapshot);
        }
        FailureKind::Panicked { message } => {
            w.put_u8(1);
            w.put_str(message);
        }
        FailureKind::CycleBudgetExceeded { cycles, budget } => {
            w.put_u8(2);
            w.put_u64(*cycles);
            w.put_u64(*budget);
        }
        FailureKind::WallClockExceeded { elapsed_ms, budget_ms } => {
            w.put_u8(3);
            w.put_u64(*elapsed_ms);
            w.put_u64(*budget_ms);
        }
    }
}

fn decode_failure_kind(r: &mut ByteReader<'_>) -> Result<FailureKind, CodecError> {
    Ok(match r.u8()? {
        0 => FailureKind::Hung { snapshot: Box::new(decode_snapshot(r)?) },
        1 => FailureKind::Panicked { message: r.str()?.to_string() },
        2 => FailureKind::CycleBudgetExceeded { cycles: r.u64()?, budget: r.u64()? },
        3 => FailureKind::WallClockExceeded { elapsed_ms: r.u64()?, budget_ms: r.u64()? },
        _ => return Err(CodecError::Invalid("failure kind tag")),
    })
}

fn encode_uop_state(w: &mut ByteWriter, s: UopState) {
    match s {
        UopState::Waiting => w.put_u8(0),
        UopState::Executing { done_at } => {
            w.put_u8(1);
            w.put_u64(done_at);
        }
        UopState::WaitMem => w.put_u8(2),
        UopState::Done => w.put_u8(3),
    }
}

fn decode_uop_state(r: &mut ByteReader<'_>) -> Result<UopState, CodecError> {
    Ok(match r.u8()? {
        0 => UopState::Waiting,
        1 => UopState::Executing { done_at: r.u64()? },
        2 => UopState::WaitMem,
        3 => UopState::Done,
        _ => return Err(CodecError::Invalid("uop state tag")),
    })
}

fn encode_snapshot(w: &mut ByteWriter, s: &WatchdogSnapshot) {
    w.put_u64(s.cycle);
    w.put_u64(s.cycles_since_commit);
    w.put_u64(s.retired);
    w.put_u64(s.fetch_pc);
    w.put_bool(s.fetch_wedged);
    w.put_usize(s.fetch_buffer_len);
    match s.redirect {
        None => w.put_bool(false),
        Some((from, to)) => {
            w.put_bool(true);
            w.put_u64(from);
            w.put_u64(to);
        }
    }
    w.put_usize(s.rob_len);
    w.put_usize(s.rob_capacity);
    match &s.rob_head {
        None => w.put_bool(false),
        Some(h) => {
            w.put_bool(true);
            w.put_u64(h.seq);
            w.put_u64(h.pc);
            w.put_str(&h.inst);
            encode_uop_state(w, h.state);
            w.put_u64(h.age_cycles);
            w.put_bool(h.srcs_ready);
        }
    }
    w.put_usize(s.issue_queues.len());
    for q in &s.issue_queues {
        w.put_u8(iq_name_tag(q.name));
        w.put_usize(q.occupancy);
        w.put_usize(q.capacity);
        match &q.oldest {
            None => w.put_bool(false),
            Some(o) => {
                w.put_bool(true);
                w.put_u64(o.seq);
                w.put_bool(o.srcs_ready);
                encode_uop_state(w, o.state);
            }
        }
    }
    w.put_usize(s.lsu.ldq_len);
    put_opt_u64(w, s.lsu.ldq_head_seq);
    w.put_usize(s.lsu.stq_len);
    match s.lsu.stq_head {
        None => w.put_bool(false),
        Some((seq, addr)) => {
            w.put_bool(true);
            w.put_u64(seq);
            put_opt_u64(w, addr);
        }
    }
    encode_mshrs(w, &s.icache_mshrs);
    encode_mshrs(w, &s.dcache_mshrs);
    encode_mshrs(w, &s.l2_mshrs);
}

fn decode_snapshot(r: &mut ByteReader<'_>) -> Result<WatchdogSnapshot, CodecError> {
    let cycle = r.u64()?;
    let cycles_since_commit = r.u64()?;
    let retired = r.u64()?;
    let fetch_pc = r.u64()?;
    let fetch_wedged = r.bool()?;
    let fetch_buffer_len = r.usize()?;
    let redirect = if r.bool()? { Some((r.u64()?, r.u64()?)) } else { None };
    let rob_len = r.usize()?;
    let rob_capacity = r.usize()?;
    let rob_head = if r.bool()? {
        Some(RobHeadView {
            seq: r.u64()?,
            pc: r.u64()?,
            inst: r.str()?.to_string(),
            state: decode_uop_state(r)?,
            age_cycles: r.u64()?,
            srcs_ready: r.bool()?,
        })
    } else {
        None
    };
    let n_queues = r.seq_len(18)?;
    let mut issue_queues = Vec::with_capacity(n_queues);
    for _ in 0..n_queues {
        let name = iq_name_from_tag(r.u8()?)?;
        let occupancy = r.usize()?;
        let capacity = r.usize()?;
        let oldest = if r.bool()? {
            Some(OldestEntryView {
                seq: r.u64()?,
                srcs_ready: r.bool()?,
                state: decode_uop_state(r)?,
            })
        } else {
            None
        };
        issue_queues.push(IssueQueueView { name, occupancy, capacity, oldest });
    }
    let lsu = LsuView {
        ldq_len: r.usize()?,
        ldq_head_seq: take_opt_u64(r)?,
        stq_len: r.usize()?,
        stq_head: if r.bool()? { Some((r.u64()?, take_opt_u64(r)?)) } else { None },
    };
    let icache_mshrs = decode_mshrs(r)?;
    let dcache_mshrs = decode_mshrs(r)?;
    let l2_mshrs = decode_mshrs(r)?;
    Ok(WatchdogSnapshot {
        cycle,
        cycles_since_commit,
        retired,
        fetch_pc,
        fetch_wedged,
        fetch_buffer_len,
        redirect,
        rob_len,
        rob_capacity,
        rob_head,
        issue_queues,
        lsu,
        icache_mshrs,
        dcache_mshrs,
        l2_mshrs,
    })
}

fn encode_mshrs(w: &mut ByteWriter, mshrs: &[MshrView]) {
    w.put_usize(mshrs.len());
    for m in mshrs {
        w.put_u64(m.line_addr);
        w.put_u64(m.done_at);
    }
}

fn decode_mshrs(r: &mut ByteReader<'_>) -> Result<Vec<MshrView>, CodecError> {
    let n = r.seq_len(16)?;
    let mut mshrs = Vec::with_capacity(n);
    for _ in 0..n {
        mshrs.push(MshrView { line_addr: r.u64()?, done_at: r.u64()? });
    }
    Ok(mshrs)
}

/// [`IssueQueueView::name`] is a `&'static str` drawn from the core's
/// fixed queue set, so it round-trips as a tag.
fn iq_name_tag(name: &str) -> u8 {
    match name {
        "int" => 0,
        "mem" => 1,
        "fp" => 2,
        _ => u8::MAX,
    }
}

fn iq_name_from_tag(tag: u8) -> Result<&'static str, CodecError> {
    match tag {
        0 => Ok("int"),
        1 => Ok("mem"),
        2 => Ok("fp"),
        _ => Err(CodecError::Invalid("issue queue name tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("boomflow-journal-{tag}-{}-{n}.bfj", std::process::id()))
    }

    fn sample_power() -> PowerReport {
        PowerReport::new(
            vec![
                (
                    Component::IntRegFile,
                    PowerBreakdown { leakage_mw: 0.25, internal_mw: 1.5, switching_mw: 2.75 },
                ),
                (
                    Component::DCache,
                    PowerBreakdown { leakage_mw: 3.0, internal_mw: 0.125, switching_mw: 0.5 },
                ),
            ],
            vec![0.5, 0.25, 0.125],
        )
    }

    fn sample_ok() -> PointOutcome {
        let stats = Stats {
            cycles: 12_345,
            retired: 10_000,
            int_iq: IssueQueueStats {
                slot_occupancy: vec![7, 6, 5],
                slot_writes: vec![1, 2],
                ..IssueQueueStats::default()
            },
            mem: MemSysStats {
                l2: CacheStats { reads: 11, misses: 3, ..CacheStats::default() },
                dram_reads: 3,
                dram_row_hits: 1,
                dram_bw_wait_cycles: 27,
                l2_contention_stalls: 2,
                ..MemSysStats::default()
            },
            ..Stats::default()
        };
        Ok((
            PointResult { interval: 4, weight: 0.375, ipc: 0.8125, power: sample_power(), stats },
            2,
        ))
    }

    fn sample_hang() -> PointOutcome {
        Err(PointFailure {
            simpoint: 1,
            interval: 9,
            weight: 0.0625,
            attempts: 3,
            kind: FailureKind::Hung {
                snapshot: Box::new(WatchdogSnapshot {
                    cycle: 500,
                    cycles_since_commit: 400,
                    retired: 17,
                    fetch_pc: 0x8000_0010,
                    fetch_wedged: true,
                    fetch_buffer_len: 3,
                    redirect: Some((0x8000_0000, 0x8000_0040)),
                    rob_len: 8,
                    rob_capacity: 32,
                    rob_head: Some(RobHeadView {
                        seq: 99,
                        pc: 0x8000_0020,
                        inst: "lw a0, 0(a1)".to_string(),
                        state: UopState::Executing { done_at: 777 },
                        age_cycles: 400,
                        srcs_ready: true,
                    }),
                    issue_queues: vec![IssueQueueView {
                        name: "mem",
                        occupancy: 2,
                        capacity: 16,
                        oldest: Some(OldestEntryView {
                            seq: 99,
                            srcs_ready: false,
                            state: UopState::Waiting,
                        }),
                    }],
                    lsu: LsuView {
                        ldq_len: 1,
                        ldq_head_seq: Some(99),
                        stq_len: 2,
                        stq_head: Some((98, None)),
                    },
                    icache_mshrs: vec![],
                    dcache_mshrs: vec![MshrView { line_addr: 0x1000, done_at: 600 }],
                    l2_mshrs: vec![MshrView { line_addr: 0x40, done_at: 650 }],
                }),
            },
        })
    }

    fn assert_outcomes_identical(a: &PointOutcome, b: &PointOutcome) {
        // The payload codec is canonical (no maps, fixed field order),
        // so byte equality of re-encodings is outcome equality.
        assert_eq!(encode_record(0, 0, a), encode_record(0, 0, b));
    }

    #[test]
    fn outcome_codec_round_trips_success_and_hang() {
        for outcome in [sample_ok(), sample_hang()] {
            let payload = encode_record(3, 7, &outcome);
            let (c, p, decoded) = decode_record(&payload).expect("decode");
            assert_eq!((c, p), (3, 7));
            assert_outcomes_identical(&outcome, &decoded);
        }
    }

    #[test]
    fn every_truncation_of_a_record_errors() {
        let payload = encode_record(1, 2, &sample_hang());
        for cut in 0..payload.len() {
            assert!(decode_record(&payload[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn create_append_resume_replays_everything() {
        let path = scratch("roundtrip");
        let journal = CampaignJournal::create(&path, 0xfeed).expect("create");
        journal.append(0, 0, &sample_ok());
        journal.append(0, 1, &sample_hang());
        journal.append(2, 5, &sample_ok());
        drop(journal);

        let (journal, replay) = CampaignJournal::resume(&path, 0xfeed).expect("resume");
        assert_eq!(replay.len(), 3);
        assert_outcomes_identical(&replay.outcomes[&(0, 0)], &sample_ok());
        assert_outcomes_identical(&replay.outcomes[&(0, 1)], &sample_hang());
        assert_outcomes_identical(&replay.outcomes[&(2, 5)], &sample_ok());
        // Appending after resume keeps the file valid.
        journal.append(3, 0, &sample_ok());
        drop(journal);
        let (_, replay) = CampaignJournal::resume(&path, 0xfeed).expect("re-resume");
        assert_eq!(replay.len(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_survivors_replayed() {
        let path = scratch("torn");
        let journal = CampaignJournal::create(&path, 1).expect("create");
        journal.append(0, 0, &sample_ok());
        journal.append(0, 1, &sample_ok());
        drop(journal);
        let full = std::fs::read(&path).expect("read");
        // Tear the last record at every possible byte boundary: the
        // first record must always survive, the torn one never replays.
        let first_end = {
            let mut len4 = [0u8; 4];
            len4.copy_from_slice(&full[HEADER_LEN..HEADER_LEN + 4]);
            HEADER_LEN + 4 + u32::from_le_bytes(len4) as usize + 8
        };
        for cut in first_end..full.len() {
            std::fs::write(&path, &full[..cut]).expect("write torn");
            let (_, replay) = CampaignJournal::resume(&path, 1).expect("resume torn");
            assert_eq!(replay.len(), 1, "cut at {cut}");
            assert_eq!(
                std::fs::metadata(&path).expect("meta").len(),
                first_end as u64,
                "torn tail must be truncated away (cut at {cut})"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_flip_in_tail_record_never_replays_a_wrong_outcome() {
        let path = scratch("flip");
        let journal = CampaignJournal::create(&path, 1).expect("create");
        journal.append(0, 0, &sample_ok());
        journal.append(0, 1, &sample_hang());
        drop(journal);
        let full = std::fs::read(&path).expect("read");
        let first_end = {
            let mut len4 = [0u8; 4];
            len4.copy_from_slice(&full[HEADER_LEN..HEADER_LEN + 4]);
            HEADER_LEN + 4 + u32::from_le_bytes(len4) as usize + 8
        };
        // Flip one bit somewhere in the second record: the checksum (or
        // the framing) must reject it, leaving only the first record.
        for pos in (first_end..full.len()).step_by(7) {
            let mut bytes = full.clone();
            bytes[pos] ^= 0x40;
            std::fs::write(&path, &bytes).expect("write flipped");
            let (_, replay) = CampaignJournal::resume(&path, 1).expect("resume flipped");
            assert!(replay.len() <= 1, "flip at {pos} must not invent records");
            if let Some(outcome) = replay.outcomes.get(&(0, 0)) {
                assert_outcomes_identical(outcome, &sample_ok());
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_rejects_wrong_fingerprint_and_bad_header() {
        let path = scratch("reject");
        drop(CampaignJournal::create(&path, 7).expect("create"));
        match CampaignJournal::resume(&path, 8) {
            Err(JournalError::FingerprintMismatch { expected: 8, found: 7 }) => {}
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
        std::fs::write(&path, b"not a journal at all").expect("write");
        assert!(matches!(CampaignJournal::resume(&path, 7), Err(JournalError::BadHeader)));
        std::fs::write(&path, b"BF").expect("write");
        assert!(matches!(CampaignJournal::resume(&path, 7), Err(JournalError::BadHeader)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn campaign_fingerprint_ignores_schedule_knobs_but_not_flow_knobs() {
        let cfgs = [BoomConfig::medium(), BoomConfig::large()];
        let workloads: Vec<Workload> = Vec::new();
        let flow = FlowConfig::default();
        let base = campaign_fingerprint(&cfgs, &workloads, &flow);
        assert_eq!(base, campaign_fingerprint(&cfgs, &workloads, &flow), "deterministic");

        let mut warm = flow.clone();
        warm.warmup_insts += 1;
        assert_ne!(base, campaign_fingerprint(&cfgs, &workloads, &warm));

        let mut inj = flow.clone();
        inj.inject.hang_point = Some(0);
        assert_ne!(base, campaign_fingerprint(&cfgs, &workloads, &inj));

        assert_ne!(base, campaign_fingerprint(&cfgs[..1], &workloads, &flow));
    }
}
