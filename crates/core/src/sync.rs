//! Poison-recovering synchronization helpers shared by the artifact
//! store, the campaign scheduler, and the journal.
//!
//! The supervisor already isolates per-point panics with `catch_unwind`,
//! but a panic while a worker holds a shared mutex would poison it and
//! cascade a single failure into every other in-flight point. Every
//! protected structure in this crate holds only *completed* insertions
//! (memo maps of finished slots, queues of whole tasks, an append-only
//! journal file handle), so the state is valid even when a previous
//! holder panicked — recovering the guard is always safe.

use std::sync::{Mutex, MutexGuard};

/// Locks `m`, recovering the guard if a previous holder panicked.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_recovers_from_poison() {
        let m = Mutex::new(41);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison the mutex");
        }));
        assert!(caught.is_err());
        assert!(m.is_poisoned(), "the mutex must actually be poisoned");
        *lock(&m) += 1;
        assert_eq!(*lock(&m), 42);
    }
}
