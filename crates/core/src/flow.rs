//! The staged SimPoint pipeline:
//! `Profile → SimPointAnalysis → CheckpointSet → DetailedSim → Power`.
//!
//! The first three stages are configuration-independent and memoized by
//! [`ArtifactStore`](crate::artifacts::ArtifactStore) — a campaign over
//! many configurations computes them exactly once per workload
//! ([`run_simpoint_flow_with_store`]); [`run_simpoint_flow`] is the
//! one-shot form with a private store.
//!
//! Detailed simulation is where model bugs and pathological checkpoints
//! surface, so every per-point simulation runs under supervision: panics
//! are caught, a configurable cycle / wall-clock budget bounds each
//! attempt, failed points are retried with a perturbed warm-up, and points
//! that fail every attempt are quarantined — the surviving points'
//! weights are re-normalized and the loss is reported in
//! [`WorkloadResult::degradation`]. See [`crate::supervisor`] for the
//! policy types and [`crate::scheduler`] for the campaign-level driver
//! that schedules points across cells.

use crate::artifacts::{ArtifactStore, CheckpointSet, PlannedPoint};
use crate::supervisor::{
    panic_message, renormalized, Degradation, FailureKind, FaultInjection, PointFailure,
    RetryPolicy,
};
use boom_uarch::{
    BoomConfig, Core, Hierarchy, HierarchyParams, MemBackendKind, Stats, UopTable, WatchdogSnapshot,
};
use rtl_power::{estimate_core, PowerReport};
use rv_isa::bbv::{BbvCollector, BbvProfile};
use rv_isa::cpu::{Cpu, SimError, StopReason};
use rv_workloads::Workload;
use simpoint::SimPointConfig;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Flow parameters (SimPoint settings, warm-up length, and supervision).
#[derive(Clone, Debug)]
pub struct FlowConfig {
    /// SimPoint clustering parameters.
    pub simpoint: SimPointConfig,
    /// Microarchitectural warm-up before each measured interval, in
    /// dynamic instructions (the paper warms caches and branch
    /// predictors before executing each SimPoint).
    pub warmup_insts: u64,
    /// Hard cap on functional profiling length (safety net).
    pub max_profile_insts: u64,
    /// Per-point retry and budget policy.
    pub retry: RetryPolicy,
    /// Test-only fault injection (defaults to "inject nothing").
    pub inject: FaultInjection,
    /// Event-driven idle-cycle skipping in the detailed core
    /// ([`Core::set_idle_skip`]): provably idle stretches are
    /// fast-forwarded and charged analytically, producing bit-identical
    /// stats and reports. Only honored on idle-skip-safe memory backends
    /// (the flat fixed-latency one); deliberately *not* part of the
    /// campaign fingerprint, so a journal resumes across skip modes.
    pub idle_skip: bool,
}

impl Default for FlowConfig {
    fn default() -> FlowConfig {
        FlowConfig {
            simpoint: SimPointConfig::default(),
            warmup_insts: 5_000,
            max_profile_insts: 2_000_000_000,
            retry: RetryPolicy::default(),
            inject: FaultInjection::default(),
            idle_skip: false,
        }
    }
}

/// Error from the flow.
///
/// Clonable so memoizing stores can replay a cached stage failure to
/// every (configuration, workload) cell that shares the artifact.
#[derive(Clone, Debug)]
pub enum FlowError {
    /// The functional simulator faulted.
    Sim(SimError),
    /// The workload did not exit within the profiling budget.
    NoExit,
    /// The phase analysis selected no simulation points (an empty or
    /// degenerate profile), so there is nothing to simulate.
    NoPointsSelected,
    /// The workload exited non-zero (failed its self-verification).
    SelfCheckFailed(u64),
    /// The detailed core hung (model bug or invalid checkpoint) and no
    /// simulation point survived.
    CoreHung {
        /// Which simulation point hung.
        simpoint: usize,
        /// The pipeline watchdog's diagnostic snapshot at the moment the
        /// hang was detected.
        snapshot: Box<WatchdogSnapshot>,
    },
    /// The detailed core hung during a full (non-SimPoint) simulation.
    FullRunHung {
        /// The pipeline watchdog's diagnostic snapshot.
        snapshot: Box<WatchdogSnapshot>,
    },
    /// A point's worker panicked and no simulation point survived.
    PointPanicked {
        /// Which simulation point panicked.
        simpoint: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A point exceeded its cycle or wall-clock budget and no simulation
    /// point survived.
    PointBudgetExceeded {
        /// Which simulation point ran out of budget.
        simpoint: usize,
        /// Human-readable description of the exhausted budget.
        detail: String,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Sim(e) => write!(f, "functional simulation failed: {e}"),
            FlowError::NoExit => write!(f, "workload did not exit within the profiling budget"),
            FlowError::NoPointsSelected => {
                write!(f, "phase analysis selected no simulation points")
            }
            FlowError::SelfCheckFailed(code) => {
                write!(f, "workload failed self-verification (exit code {code})")
            }
            FlowError::CoreHung { simpoint, snapshot } => {
                write!(f, "detailed core hung while simulating point {simpoint}\n{snapshot}")
            }
            FlowError::FullRunHung { snapshot } => {
                write!(f, "detailed core hung during full simulation\n{snapshot}")
            }
            FlowError::PointPanicked { simpoint, message } => {
                write!(f, "worker for simulation point {simpoint} panicked: {message}")
            }
            FlowError::PointBudgetExceeded { simpoint, detail } => {
                write!(f, "simulation point {simpoint} exceeded its budget ({detail})")
            }
        }
    }
}

impl std::error::Error for FlowError {}

impl From<SimError> for FlowError {
    fn from(e: SimError) -> FlowError {
        FlowError::Sim(e)
    }
}

impl PointFailure {
    /// The error this failure escalates to when no point survived.
    pub fn into_flow_error(self) -> FlowError {
        match self.kind {
            FailureKind::Hung { snapshot } => {
                FlowError::CoreHung { simpoint: self.simpoint, snapshot }
            }
            FailureKind::Panicked { message } => {
                FlowError::PointPanicked { simpoint: self.simpoint, message }
            }
            FailureKind::CycleBudgetExceeded { cycles, budget } => FlowError::PointBudgetExceeded {
                simpoint: self.simpoint,
                detail: format!("{cycles} of {budget} cycles"),
            },
            FailureKind::WallClockExceeded { elapsed_ms, budget_ms } => {
                FlowError::PointBudgetExceeded {
                    simpoint: self.simpoint,
                    detail: format!("{elapsed_ms} of {budget_ms} ms"),
                }
            }
        }
    }
}

/// Per-simulation-point measurement.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// Index of the represented interval in the BBV profile.
    pub interval: usize,
    /// Cluster weight (fraction of execution; re-normalized if points
    /// were quarantined).
    pub weight: f64,
    /// Measured IPC of the interval.
    pub ipc: f64,
    /// Power report of the interval.
    pub power: PowerReport,
    /// Detailed-simulation activity (measurement window only).
    pub stats: Stats,
}

/// Everything the paper reports for one (configuration, workload) pair.
#[derive(Clone, Debug)]
pub struct WorkloadResult {
    /// Workload name.
    pub name: &'static str,
    /// Configuration name.
    pub config: String,
    /// SimPoint-weighted IPC (paper Fig. 10).
    pub ipc: f64,
    /// SimPoint-weighted per-component power (paper Figs. 5–8).
    pub power: PowerReport,
    /// Per-point measurements (quarantined points excluded).
    pub points: Vec<PointResult>,
    /// Total dynamic instructions of the full workload.
    pub total_insts: u64,
    /// Interval size used (dynamic instructions).
    pub interval_size: u64,
    /// Execution coverage of the surviving points (scaled down when
    /// points were quarantined).
    pub coverage: f64,
    /// Detailed-simulation reduction factor (paper: 45×).
    pub speedup: f64,
    /// Present when points were quarantined or retried; records the lost
    /// weight, the per-point failures, and the retry count.
    pub degradation: Option<Degradation>,
}

impl WorkloadResult {
    /// Total BOOM-tile power in mW.
    pub fn tile_power_mw(&self) -> f64 {
        self.power.tile_total_mw()
    }

    /// Performance per watt in IPC/W (paper Fig. 11).
    pub fn perf_per_watt(&self) -> f64 {
        self.ipc / (self.tile_power_mw() / 1000.0)
    }
}

/// Functionally profiles a workload, returning its BBV profile.
///
/// # Errors
///
/// Fails if the program faults, never exits, or fails self-verification.
pub fn profile(workload: &Workload, max_insts: u64) -> Result<BbvProfile, FlowError> {
    let mut cpu = Cpu::new(&workload.program);
    let mut collector = BbvCollector::for_program(workload.interval_size, &workload.program);
    let stop = cpu.run_with(max_insts, |r| collector.observe(r))?;
    match stop {
        StopReason::Exited(0) => Ok(collector.finish()),
        StopReason::Exited(code) => Err(FlowError::SelfCheckFailed(code)),
        _ => Err(FlowError::NoExit),
    }
}

/// Runs the complete SimPoint flow for one configuration and workload,
/// with a private single-use [`ArtifactStore`].
///
/// Per-point failures (panics, hangs, budget overruns) are retried per
/// [`FlowConfig::retry`] and quarantined points are dropped with the
/// surviving weights re-normalized, so this returns `Ok` — with a
/// populated [`WorkloadResult::degradation`] — as long as at least one
/// simulation point survives.
///
/// # Errors
///
/// Propagates profiling failures; fails with the first point's error when
/// *every* simulation point fails after retries.
pub fn run_simpoint_flow(
    cfg: &BoomConfig,
    workload: &Workload,
    flow: &FlowConfig,
) -> Result<WorkloadResult, FlowError> {
    run_simpoint_flow_with_store(cfg, workload, flow, &ArtifactStore::new())
}

/// [`run_simpoint_flow`] against a shared [`ArtifactStore`]: the
/// profiling, phase-analysis, and checkpoint stages are fetched from (or
/// computed into) the store, so evaluating many configurations of the
/// same workload runs the configuration-independent front half exactly
/// once.
///
/// # Errors
///
/// As [`run_simpoint_flow`].
pub fn run_simpoint_flow_with_store(
    cfg: &BoomConfig,
    workload: &Workload,
    flow: &FlowConfig,
    store: &ArtifactStore,
) -> Result<WorkloadResult, FlowError> {
    // Stages 1–3 (configuration-independent, memoized).
    let set = store.checkpoints(workload, flow)?;

    // Stages 4 + 5: detailed simulation and power per point — the points
    // are independent (the paper runs them as separate RTL-simulator
    // jobs), so simulate them in parallel, each under its own
    // supervision.
    let outcomes: Vec<PointOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = set
            .points
            .iter()
            .map(|p| s.spawn(move || run_point_timed(cfg, p, flow, None, store)))
            .collect();
        set.points
            .iter()
            .zip(handles)
            .map(|(p, h)| {
                // The worker already isolates panics with `catch_unwind`;
                // a failed join means something unwound outside it, which
                // is still a quarantinable failure, not a reason to abort.
                h.join().unwrap_or_else(|payload| Err(escaped_panic(p, payload.as_ref())))
            })
            .collect()
    });

    assemble_workload_result(&cfg.name, workload, &set, outcomes)
}

/// Outcome of one planned point's supervised detailed simulation: the
/// measurement and the attempts it took, or the quarantine record.
pub(crate) type PointOutcome = Result<(PointResult, u32), PointFailure>;

/// The quarantine record for a panic that escaped per-point isolation
/// (e.g. a worker thread that died outside `catch_unwind`).
pub(crate) fn escaped_panic(
    point: &PlannedPoint,
    payload: &(dyn std::any::Any + Send),
) -> PointFailure {
    PointFailure {
        simpoint: point.sel_idx,
        interval: point.interval,
        weight: point.weight,
        attempts: 1,
        kind: FailureKind::Panicked { message: panic_message(payload) },
    }
}

/// [`run_point_supervised`] plus stage accounting: the attempt span is
/// charged to the store's detailed-simulation wall-clock total.
///
/// `uops` is the point's pre-classified micro-op table when this lane is
/// part of a multi-config batch (classification is configuration-
/// independent, so the batch computes it once and every lane shares it);
/// `None` classifies privately, exactly as a solo run always has.
pub(crate) fn run_point_timed(
    cfg: &BoomConfig,
    point: &PlannedPoint,
    flow: &FlowConfig,
    uops: Option<&Arc<UopTable>>,
    store: &ArtifactStore,
) -> PointOutcome {
    let t0 = Instant::now();
    let r = run_point_supervised(cfg, point, flow, uops);
    store.charge_detailed_us(t0.elapsed().as_micros() as u64);
    r
}

/// Runs one SimPoint for several configurations in one batched pass: the
/// predecoded image travels with the shared checkpoint already, and the
/// per-text-word micro-op table — configuration-independent — is
/// classified once here and shared by every lane. The lanes run on the
/// process-wide persistent [`lane_pool`](crate::pool) (they are
/// read-only over the shared artifacts) with the submitting worker
/// helping drain its own batch, so a batch's aggregate throughput scales
/// with free cores on top of the classification sharing and no threads
/// are created per work item. Each lane is still an independent
/// [`run_point_timed`] under full per-point supervision (retry, budget,
/// quarantine, `catch_unwind`), so lane `i`'s outcome — returned in
/// `cfgs` order regardless of thread timing — is bit-identical to a solo
/// run of `cfgs[i]` on the same point.
pub(crate) fn run_point_batch(
    cfgs: &[&BoomConfig],
    point: &PlannedPoint,
    flow: &FlowConfig,
    store: &ArtifactStore,
) -> Vec<PointOutcome> {
    let uops = point.checkpoint.image.as_ref().map(Core::shared_uop_table);
    let uops = uops.as_ref();
    let outcomes: Vec<std::sync::OnceLock<PointOutcome>> =
        cfgs.iter().map(|_| std::sync::OnceLock::new()).collect();
    crate::pool::lane_pool().run_scoped_helping((0..cfgs.len()).collect(), |i| {
        // Catch the panic here (not only in the pool's generic guard) so
        // the payload is preserved in the quarantine record, exactly as
        // the scoped-thread join used to.
        let r =
            catch_unwind(AssertUnwindSafe(|| run_point_timed(cfgs[i], point, flow, uops, store)))
                .unwrap_or_else(|payload| Err(escaped_panic(point, payload.as_ref())));
        let _ = outcomes[i].set(r);
    });
    outcomes
        .into_iter()
        .map(|slot| {
            slot.into_inner().unwrap_or_else(|| {
                Err(escaped_panic(point, &"batched lane worker died".to_string()))
            })
        })
        .collect()
}

/// Stable fingerprint of the supervision knobs that change point
/// *outcomes*: retry policy (attempt counts, perturbed warm-ups,
/// budgets), outcome-altering fault injection (hang/panic points), and
/// idle-skip (skipped-cycle stats ride in the outcome). Part of the
/// cross-request shared-point key — requests that differ in any of these
/// must not share outcomes, while `kill_after_points` (which only
/// decides *when the process dies*, never what a completed point
/// contains) deliberately stays out.
pub(crate) fn supervision_fingerprint(flow: &FlowConfig) -> u64 {
    let tag = format!(
        "{:?}|{:?}|{:?}|{:?}|{}",
        flow.retry,
        flow.inject.hang_point,
        flow.inject.hang_every_point,
        flow.inject.panic_point,
        flow.idle_skip
    );
    rv_isa::codec::fnv1a(tag.as_bytes())
}

/// Quarantines failed points, re-normalizes the survivors' weights, and
/// aggregates the weighted IPC and power into the final
/// [`WorkloadResult`]. `outcomes` must be in `set.points` order — the
/// order is part of the result's contract, so sequential and parallel
/// campaigns produce identical reports.
pub(crate) fn assemble_workload_result(
    config_name: &str,
    workload: &Workload,
    set: &CheckpointSet,
    outcomes: Vec<PointOutcome>,
) -> Result<WorkloadResult, FlowError> {
    let mut points: Vec<PointResult> = Vec::with_capacity(outcomes.len());
    let mut failed: Vec<PointFailure> = Vec::new();
    let mut retries: u32 = 0;
    for outcome in outcomes {
        match outcome {
            Ok((p, attempts)) => {
                retries += attempts.saturating_sub(1);
                points.push(p);
            }
            Err(f) => {
                retries += f.attempts.saturating_sub(1);
                failed.push(f);
            }
        }
    }

    // Quarantine: drop the failed points and re-normalize the survivors'
    // weights so the weighted averages below stay well-formed.
    let mut coverage = set.analysis.selected_coverage();
    let degradation = if failed.is_empty() && retries == 0 {
        None
    } else {
        let weights: Vec<f64> = points.iter().map(|p| p.weight).collect();
        let Some(renorm) = renormalized(&weights) else {
            // Nothing survived: escalate the first failure.
            let Some(first) = failed.into_iter().next() else {
                // Retries without failures or survivors means the plan had
                // no points at all; degrade honestly rather than panic.
                return Err(FlowError::NoPointsSelected);
            };
            return Err(first.into_flow_error());
        };
        let surviving: f64 = weights.iter().sum();
        let lost_weight: f64 = failed.iter().map(|f| f.weight).sum();
        for (p, w) in points.iter_mut().zip(renorm) {
            p.weight = w;
        }
        coverage *= surviving / (surviving + lost_weight);
        Some(Degradation { failed, lost_weight, retries })
    };
    if points.is_empty() && degradation.is_none() {
        // Nothing was planned: the analysis selected no points.
        return Err(FlowError::NoPointsSelected);
    }

    // Weighted aggregation.
    let ipc = points.iter().map(|p| p.weight * p.ipc).sum();
    let weighted: Vec<(f64, &PowerReport)> = points.iter().map(|p| (p.weight, &p.power)).collect();
    let power = PowerReport::weighted_average(&weighted);

    Ok(WorkloadResult {
        name: workload.name,
        config: config_name.to_string(),
        ipc,
        power,
        points,
        total_insts: set.profile.total_insts,
        interval_size: workload.interval_size,
        coverage,
        speedup: set.analysis.speedup(),
        degradation,
    })
}

/// Weighted (CPI, tile mW) estimate over a *partial* set of point
/// outcomes — the successive-halving rungs rank configurations on
/// whatever subset of points their budget simulated, with the cluster
/// weights renormalized over the surviving subset exactly as
/// [`assemble_workload_result`] renormalizes after quarantine. Returns
/// `None` when no point succeeded (the config cannot be ranked and the
/// sweep treats it as eliminated-by-failure).
///
/// Every configuration in a rung is estimated at the same (point budget,
/// truncation shift), so the subset bias is common mode and cancels in
/// the rung's relative ordering.
pub(crate) fn weighted_estimate(outcomes: &[&PointOutcome]) -> Option<(f64, f64)> {
    let mut wsum = 0.0;
    let mut ipc = 0.0;
    let mut mw = 0.0;
    for (p, _) in outcomes.iter().filter_map(|o| o.as_ref().ok()) {
        wsum += p.weight;
        ipc += p.weight * p.ipc;
        mw += p.weight * p.power.tile_total_mw();
    }
    if wsum <= 0.0 {
        return None;
    }
    let ipc = ipc / wsum;
    if ipc <= 0.0 {
        return None;
    }
    Some((1.0 / ipc, mw / wsum))
}

/// Runs one point under supervision: panics caught, budget enforced,
/// bounded retries with a perturbed (shortened) warm-up and a backed-off
/// budget. Returns the measurement and the attempts it took, or the
/// quarantine record.
fn run_point_supervised(
    cfg: &BoomConfig,
    task: &PlannedPoint,
    flow: &FlowConfig,
    uops: Option<&Arc<UopTable>>,
) -> Result<(PointResult, u32), PointFailure> {
    let retry = &flow.retry;
    let max_attempts = retry.max_attempts.max(1);
    let mut warmup = task.warmup;
    let mut cycle_budget = retry.cycle_budget;
    let mut last: Option<FailureKind> = None;
    for attempt in 1..=max_attempts {
        let result = catch_unwind(AssertUnwindSafe(|| {
            simulate_point(cfg, warmup, task, cycle_budget, retry.wall_clock, flow, uops)
        }));
        match result {
            Ok(Ok(p)) => return Ok((p, attempt)),
            Ok(Err(kind)) => last = Some(kind),
            Err(payload) => {
                last = Some(FailureKind::Panicked { message: panic_message(payload.as_ref()) })
            }
        }
        // Perturb the next attempt: shorten the warm-up (the checkpoint
        // bounds it from above) and widen the budget.
        warmup = ((warmup as f64) * retry.warmup_perturb).round() as u64;
        cycle_budget = cycle_budget.map(|b| ((b as f64) * retry.budget_backoff).round() as u64);
    }
    Err(PointFailure {
        simpoint: task.sel_idx,
        interval: task.interval,
        weight: task.weight,
        attempts: max_attempts,
        kind: last.unwrap_or(FailureKind::Panicked { message: "no attempt recorded".to_string() }),
    })
}

/// Cycle and wall-clock accounting for one simulation attempt.
struct Budget {
    cycle_limit: Option<u64>,
    cycles_used: u64,
    wall_limit: Option<Duration>,
    started: Instant,
}

impl Budget {
    fn new(cycle_limit: Option<u64>, wall_limit: Option<Duration>) -> Budget {
        Budget { cycle_limit, cycles_used: 0, wall_limit, started: Instant::now() }
    }

    fn charge(&mut self, cycles: u64) -> Result<(), FailureKind> {
        self.cycles_used += cycles;
        if let Some(limit) = self.cycle_limit {
            if self.cycles_used > limit {
                return Err(FailureKind::CycleBudgetExceeded {
                    cycles: self.cycles_used,
                    budget: limit,
                });
            }
        }
        if let Some(limit) = self.wall_limit {
            let elapsed = self.started.elapsed();
            if elapsed > limit {
                return Err(FailureKind::WallClockExceeded {
                    elapsed_ms: elapsed.as_millis() as u64,
                    budget_ms: limit.as_millis() as u64,
                });
            }
        }
        Ok(())
    }
}

/// Instructions between budget checks while running the detailed core.
const BUDGET_CHECK_INSTS: u64 = 50_000;

/// Runs up to `insts` instructions on the core in budget-checked chunks.
/// A hang yields the watchdog snapshot; budget overruns yield the budget
/// failure.
fn run_budgeted(core: &mut Core, insts: u64, budget: &mut Budget) -> Result<(), FailureKind> {
    let mut remaining = insts;
    while remaining > 0 {
        let r = core.run(remaining.min(BUDGET_CHECK_INSTS));
        budget.charge(r.cycles)?;
        if r.hung {
            return Err(FailureKind::Hung { snapshot: Box::new(core.dump_state()) });
        }
        if r.exited {
            return Ok(());
        }
        remaining = remaining.saturating_sub(r.retired.max(1));
    }
    Ok(())
}

/// Restores the point's (shared) checkpoint into the detailed core, warms
/// it up, measures one interval, and estimates power.
fn simulate_point(
    cfg: &BoomConfig,
    warmup: u64,
    task: &PlannedPoint,
    cycle_budget: Option<u64>,
    wall_budget: Option<Duration>,
    flow: &FlowConfig,
    uops: Option<&Arc<UopTable>>,
) -> Result<PointResult, FailureKind> {
    let inject = &flow.inject;
    let mut core = match uops {
        Some(uops) => Core::from_checkpoint_with_uops(cfg.clone(), &task.checkpoint, uops),
        None => Core::from_checkpoint(cfg.clone(), &task.checkpoint),
    };
    core.set_idle_skip(flow.idle_skip);
    if inject.hangs(task.sel_idx) {
        core.inject_commit_stall();
    }
    if inject.panics(task.sel_idx) {
        panic!("injected panic for supervisor testing (point {})", task.sel_idx);
    }
    let mut budget = Budget::new(cycle_budget, wall_budget);
    if warmup > 0 {
        run_budgeted(&mut core, warmup, &mut budget)?;
    }
    core.reset_stats();
    run_budgeted(&mut core, task.interval_len, &mut budget)?;
    let power = estimate_core(&core);
    Ok(PointResult {
        interval: task.interval,
        weight: task.weight,
        ipc: core.stats().ipc(),
        power,
        stats: core.stats().clone(),
    })
}

/// Result of a full (non-SimPoint) detailed simulation, used to validate
/// the methodology and measure the speedup (paper §IV-A).
#[derive(Clone, Debug)]
pub struct FullRunResult {
    /// IPC over the entire execution.
    pub ipc: f64,
    /// Power over the entire execution.
    pub power: PowerReport,
    /// Instructions committed.
    pub retired: u64,
    /// Cycles simulated.
    pub cycles: u64,
}

/// Runs the entire workload on the detailed core (no SimPoint).
///
/// # Errors
///
/// Fails if the workload does not exit cleanly; a pipeline hang yields
/// [`FlowError::FullRunHung`] carrying the watchdog's snapshot.
pub fn run_full(cfg: &BoomConfig, workload: &Workload) -> Result<FullRunResult, FlowError> {
    let mut core = Core::new(cfg.clone(), &workload.program);
    let r = core.run(u64::MAX);
    if r.hung {
        return Err(FlowError::FullRunHung { snapshot: Box::new(core.dump_state()) });
    }
    match r.exit_code {
        Some(0) => {}
        Some(code) => return Err(FlowError::SelfCheckFailed(code)),
        None => return Err(FlowError::NoExit),
    }
    Ok(FullRunResult {
        ipc: core.stats().ipc(),
        power: estimate_core(&core),
        retired: core.stats().retired,
        cycles: core.stats().cycles,
    })
}

/// Cycles a co-run core may go without committing before it is declared
/// hung — the same limit as the single-core pipeline watchdog, but
/// tracked here because the co-run loop steps two cores itself instead
/// of delegating to [`Core::run`].
const CO_RUN_HANG_LIMIT: u64 = 100_000;

/// Runs one dual-core co-run cell: two cores, one workload each, sharing
/// one L2 + DRAM uncore through a [`Hierarchy::shared_pair`].
///
/// The cores are stepped in a strict cycle interleave (core 0 then
/// core 1, every cycle) on the calling thread, so the shared uncore
/// observes a single deterministic access order at any `--jobs` and
/// across a kill/resume cycle. A configuration still on the flat
/// [`MemBackendKind::FixedLatency`] backend is upgraded to the default
/// hierarchy first — a co-run without a shared L2 has nothing to
/// contend on.
///
/// Per-core successes are shaped as [`PointResult`]s (interval = core
/// index, weight 1) so the campaign journal's existing outcome codec
/// carries them unchanged; a hang or failed self-check on either core
/// fails the whole cell — both slots receive the same quarantine
/// record.
pub(crate) fn run_co_cell(
    cfg: &BoomConfig,
    pair: [&Workload; 2],
    inject: &FaultInjection,
) -> [PointOutcome; 2] {
    let cfg = match cfg.mem_backend {
        MemBackendKind::Hierarchy(_) => cfg.clone(),
        MemBackendKind::FixedLatency => {
            cfg.clone().with_hierarchy(HierarchyParams::default_uncore())
        }
    };
    let MemBackendKind::Hierarchy(params) = cfg.mem_backend else {
        unreachable!("co-run configs always carry a hierarchy backend")
    };
    let (b0, b1) = Hierarchy::shared_pair(params);
    let mut cores = [Core::new(cfg.clone(), &pair[0].program), Core::new(cfg, &pair[1].program)];
    cores[0].set_mem_backend(Box::new(b0));
    cores[1].set_mem_backend(Box::new(b1));
    for (i, core) in cores.iter_mut().enumerate() {
        if inject.hangs(i) {
            core.inject_commit_stall();
        }
    }

    let fail = |core_idx: usize, kind: FailureKind| -> [PointOutcome; 2] {
        let f =
            PointFailure { simpoint: core_idx, interval: core_idx, weight: 1.0, attempts: 1, kind };
        [Err(f.clone()), Err(f)]
    };

    // (retired, cycle) at each core's last observed commit progress.
    let mut progress = [(0u64, 0u64); 2];
    loop {
        let mut live = false;
        for (i, core) in cores.iter_mut().enumerate() {
            if core.exit_code().is_some() {
                continue;
            }
            live = true;
            core.step_cycle();
            let retired = core.stats().retired;
            if retired != progress[i].0 {
                progress[i] = (retired, core.cycle());
            } else if core.cycle() - progress[i].1 >= CO_RUN_HANG_LIMIT {
                return fail(i, FailureKind::Hung { snapshot: Box::new(core.dump_state()) });
            }
        }
        if !live {
            break;
        }
    }
    for (i, core) in cores.iter().enumerate() {
        if let Some(code) = core.exit_code() {
            if code != 0 {
                return fail(
                    i,
                    FailureKind::Panicked {
                        message: format!(
                            "{} failed self-verification (exit code {code})",
                            pair[i].name
                        ),
                    },
                );
            }
        }
    }
    let done = |i: usize, core: &Core| -> PointOutcome {
        Ok((
            PointResult {
                interval: i,
                weight: 1.0,
                ipc: core.stats().ipc(),
                power: estimate_core(core),
                stats: core.stats().clone(),
            },
            1,
        ))
    };
    [done(0, &cores[0]), done(1, &cores[1])]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_workloads::{by_name, Scale};

    fn quick_flow() -> FlowConfig {
        FlowConfig {
            simpoint: SimPointConfig { max_k: 6, restarts: 2, ..SimPointConfig::default() },
            warmup_insts: 1_000,
            max_profile_insts: 500_000_000,
            ..FlowConfig::default()
        }
    }

    #[test]
    fn flow_produces_weighted_result_for_bitcount() {
        let w = by_name("bitcount", Scale::Test).unwrap();
        let r = run_simpoint_flow(&BoomConfig::medium(), &w, &quick_flow()).unwrap();
        assert!(r.ipc > 0.2 && r.ipc < 3.0, "ipc {}", r.ipc);
        assert!(r.coverage >= 0.9);
        assert!(r.speedup > 1.0);
        assert!(!r.points.is_empty());
        assert!(r.degradation.is_none(), "clean run must not report degradation");
        let wsum: f64 = r.points.iter().map(|p| p.weight).sum();
        assert!((wsum - 1.0).abs() < 1e-9);
        assert!(r.tile_power_mw() > 0.0);
        assert!(r.perf_per_watt() > 0.0);
    }

    #[test]
    fn simpoint_ipc_tracks_full_simulation() {
        // The methodology's validity claim: weighted SimPoint IPC must be
        // close to the IPC of simulating everything.
        let w = by_name("dijkstra", Scale::Test).unwrap();
        let cfg = BoomConfig::medium();
        let flow = run_simpoint_flow(&cfg, &w, &quick_flow()).unwrap();
        let full = run_full(&cfg, &w).unwrap();
        let err = (flow.ipc - full.ipc).abs() / full.ipc;
        assert!(
            err < 0.25,
            "simpoint {:.3} vs full {:.3} ({:.0}% error)",
            flow.ipc,
            full.ipc,
            100.0 * err
        );
    }

    #[test]
    fn failing_workload_is_reported() {
        // A workload that exits non-zero must be flagged, not silently used.
        use rv_isa::asm::Assembler;
        use rv_isa::reg::Reg::*;
        let mut a = Assembler::new();
        a.li(A0, 7);
        a.exit();
        let program = a.assemble().unwrap();
        let w = Workload {
            name: "broken",
            suite: rv_workloads::Suite::MiBench,
            program,
            interval_size: 100,
        };
        match run_simpoint_flow(&BoomConfig::medium(), &w, &quick_flow()) {
            Err(FlowError::SelfCheckFailed(7)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn injected_panic_on_one_point_degrades_instead_of_failing() {
        let w = by_name("bitcount", Scale::Test).unwrap();
        let flow = FlowConfig {
            inject: FaultInjection { panic_point: Some(0), ..FaultInjection::default() },
            retry: RetryPolicy { max_attempts: 2, ..RetryPolicy::default() },
            ..quick_flow()
        };
        let r = run_simpoint_flow(&BoomConfig::medium(), &w, &flow).unwrap();
        let d = r.degradation.expect("quarantine must be reported");
        assert_eq!(d.failed.len(), 1);
        assert_eq!(d.failed[0].simpoint, 0);
        assert_eq!(d.failed[0].attempts, 2);
        assert!(matches!(d.failed[0].kind, FailureKind::Panicked { .. }));
        assert!(d.lost_weight > 0.0);
        let wsum: f64 = r.points.iter().map(|p| p.weight).sum();
        assert!((wsum - 1.0).abs() < 1e-9, "surviving weights must re-normalize, got {wsum}");
    }

    #[test]
    fn cycle_budget_overrun_is_reported_with_backoff() {
        // A 1-cycle budget fails every point on the first attempt; the
        // backed-off budget on retry is still far too small, so the whole
        // workload fails with a budget error.
        let w = by_name("bitcount", Scale::Test).unwrap();
        let flow = FlowConfig {
            retry: RetryPolicy { max_attempts: 2, cycle_budget: Some(1), ..RetryPolicy::default() },
            ..quick_flow()
        };
        match run_simpoint_flow(&BoomConfig::medium(), &w, &flow) {
            Err(FlowError::PointBudgetExceeded { .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
