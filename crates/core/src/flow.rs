//! The SimPoint → checkpoint → detailed-simulation → power flow.

use boom_uarch::{BoomConfig, Core, Stats};
use rtl_power::{estimate_core, PowerReport};
use rv_isa::bbv::{BbvCollector, BbvProfile};
use rv_isa::checkpoint::{checkpoints_at, Checkpoint};
use rv_isa::cpu::{Cpu, SimError, StopReason};
use rv_workloads::Workload;
use simpoint::{analyze, SimPointAnalysis, SimPointConfig};
use std::fmt;

/// Flow parameters (SimPoint settings and warm-up length).
#[derive(Clone, Debug)]
pub struct FlowConfig {
    /// SimPoint clustering parameters.
    pub simpoint: SimPointConfig,
    /// Microarchitectural warm-up before each measured interval, in
    /// dynamic instructions (the paper warms caches and branch
    /// predictors before executing each SimPoint).
    pub warmup_insts: u64,
    /// Hard cap on functional profiling length (safety net).
    pub max_profile_insts: u64,
}

impl Default for FlowConfig {
    fn default() -> FlowConfig {
        FlowConfig {
            simpoint: SimPointConfig::default(),
            warmup_insts: 5_000,
            max_profile_insts: 2_000_000_000,
        }
    }
}

/// Error from the flow.
#[derive(Debug)]
pub enum FlowError {
    /// The functional simulator faulted.
    Sim(SimError),
    /// The workload did not exit within the profiling budget.
    NoExit,
    /// The workload exited non-zero (failed its self-verification).
    SelfCheckFailed(u64),
    /// The detailed core hung (model bug or invalid checkpoint).
    CoreHung {
        /// Which simulation point hung.
        simpoint: usize,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Sim(e) => write!(f, "functional simulation failed: {e}"),
            FlowError::NoExit => write!(f, "workload did not exit within the profiling budget"),
            FlowError::SelfCheckFailed(code) => {
                write!(f, "workload failed self-verification (exit code {code})")
            }
            FlowError::CoreHung { simpoint } => {
                write!(f, "detailed core hung while simulating point {simpoint}")
            }
        }
    }
}

impl std::error::Error for FlowError {}

impl From<SimError> for FlowError {
    fn from(e: SimError) -> FlowError {
        FlowError::Sim(e)
    }
}

/// Per-simulation-point measurement.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// Index of the represented interval in the BBV profile.
    pub interval: usize,
    /// Cluster weight (fraction of execution).
    pub weight: f64,
    /// Measured IPC of the interval.
    pub ipc: f64,
    /// Power report of the interval.
    pub power: PowerReport,
    /// Detailed-simulation activity (measurement window only).
    pub stats: Stats,
}

/// Everything the paper reports for one (configuration, workload) pair.
#[derive(Clone, Debug)]
pub struct WorkloadResult {
    /// Workload name.
    pub name: &'static str,
    /// Configuration name.
    pub config: String,
    /// SimPoint-weighted IPC (paper Fig. 10).
    pub ipc: f64,
    /// SimPoint-weighted per-component power (paper Figs. 5–8).
    pub power: PowerReport,
    /// Per-point measurements.
    pub points: Vec<PointResult>,
    /// Total dynamic instructions of the full workload.
    pub total_insts: u64,
    /// Interval size used (dynamic instructions).
    pub interval_size: u64,
    /// Execution coverage of the selected points.
    pub coverage: f64,
    /// Detailed-simulation reduction factor (paper: 45×).
    pub speedup: f64,
}

impl WorkloadResult {
    /// Total BOOM-tile power in mW.
    pub fn tile_power_mw(&self) -> f64 {
        self.power.tile_total_mw()
    }

    /// Performance per watt in IPC/W (paper Fig. 11).
    pub fn perf_per_watt(&self) -> f64 {
        self.ipc / (self.tile_power_mw() / 1000.0)
    }
}

/// Functionally profiles a workload, returning its BBV profile.
///
/// # Errors
///
/// Fails if the program faults, never exits, or fails self-verification.
pub fn profile(workload: &Workload, max_insts: u64) -> Result<BbvProfile, FlowError> {
    let mut cpu = Cpu::new(&workload.program);
    let mut collector = BbvCollector::new(workload.interval_size);
    let stop = cpu.run_with(max_insts, |r| collector.observe(r))?;
    match stop {
        StopReason::Exited(0) => Ok(collector.finish()),
        StopReason::Exited(code) => Err(FlowError::SelfCheckFailed(code)),
        _ => Err(FlowError::NoExit),
    }
}

/// Runs the complete SimPoint flow for one configuration and workload.
///
/// # Errors
///
/// Propagates profiling failures and detailed-simulation hangs.
pub fn run_simpoint_flow(
    cfg: &BoomConfig,
    workload: &Workload,
    flow: &FlowConfig,
) -> Result<WorkloadResult, FlowError> {
    // 1. Profile + 2. phase analysis.
    let bbv = profile(workload, flow.max_profile_insts)?;
    let analysis: SimPointAnalysis = analyze(&bbv, &flow.simpoint);

    // 3. Checkpoints at (interval start − warm-up), batched in one pass.
    let starts = analysis.selected_starts(&bbv);
    let mut targets: Vec<(usize, u64, u64)> = starts
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let warm = flow.warmup_insts.min(s);
            (i, s - warm, warm)
        })
        .collect();
    targets.sort_by_key(|&(_, at, _)| at);
    let sorted_points: Vec<u64> = targets.iter().map(|&(_, at, _)| at).collect();
    let checkpoints = checkpoints_at(&workload.program, &sorted_points)?;

    // 4 + 5. Detailed simulation and power per point — the points are
    // independent (the paper runs them as separate RTL-simulator jobs),
    // so simulate them in parallel.
    let results: Vec<(usize, Option<PointResult>)> = std::thread::scope(|s| {
        let handles: Vec<_> = targets
            .iter()
            .zip(&checkpoints)
            .map(|((sel_idx, _, warm), ck)| {
                let sp = analysis.selected[*sel_idx];
                let interval_len = bbv.intervals[sp.interval].len;
                let sel_idx = *sel_idx;
                let warm = *warm;
                s.spawn(move || {
                    (sel_idx, simulate_point(cfg, ck, warm, interval_len, sp.interval, sp.weight))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("point worker panicked")).collect()
    });
    let mut points: Vec<PointResult> = Vec::with_capacity(results.len());
    for (sel_idx, point) in results {
        points.push(point.ok_or(FlowError::CoreHung { simpoint: sel_idx })?);
    }

    // Weighted aggregation.
    let ipc = points.iter().map(|p| p.weight * p.ipc).sum();
    let weighted: Vec<(f64, &PowerReport)> =
        points.iter().map(|p| (p.weight, &p.power)).collect();
    let power = PowerReport::weighted_average(&weighted);

    Ok(WorkloadResult {
        name: workload.name,
        config: cfg.name.clone(),
        ipc,
        power,
        points,
        total_insts: bbv.total_insts,
        interval_size: workload.interval_size,
        coverage: analysis.selected_coverage(),
        speedup: analysis.speedup(),
    })
}

/// Restores a checkpoint into the detailed core, warms it up, measures one
/// interval, and estimates power. Returns `None` if the core hangs.
fn simulate_point(
    cfg: &BoomConfig,
    ck: &Checkpoint,
    warmup: u64,
    interval_len: u64,
    interval: usize,
    weight: f64,
) -> Option<PointResult> {
    let mut core = Core::from_checkpoint(cfg.clone(), ck);
    if warmup > 0 {
        let r = core.run(warmup);
        if r.hung {
            return None;
        }
    }
    core.reset_stats();
    let r = core.run(interval_len);
    if r.hung {
        return None;
    }
    let power = estimate_core(&core);
    Some(PointResult {
        interval,
        weight,
        ipc: core.stats().ipc(),
        power,
        stats: core.stats().clone(),
    })
}

/// Result of a full (non-SimPoint) detailed simulation, used to validate
/// the methodology and measure the speedup (paper §IV-A).
#[derive(Clone, Debug)]
pub struct FullRunResult {
    /// IPC over the entire execution.
    pub ipc: f64,
    /// Power over the entire execution.
    pub power: PowerReport,
    /// Instructions committed.
    pub retired: u64,
    /// Cycles simulated.
    pub cycles: u64,
}

/// Runs the entire workload on the detailed core (no SimPoint).
///
/// # Errors
///
/// Fails if the workload does not exit cleanly.
pub fn run_full(cfg: &BoomConfig, workload: &Workload) -> Result<FullRunResult, FlowError> {
    let mut core = Core::new(cfg.clone(), &workload.program);
    let r = core.run(u64::MAX);
    if r.hung {
        return Err(FlowError::CoreHung { simpoint: usize::MAX });
    }
    match r.exit_code {
        Some(0) => {}
        Some(code) => return Err(FlowError::SelfCheckFailed(code)),
        None => return Err(FlowError::NoExit),
    }
    Ok(FullRunResult {
        ipc: core.stats().ipc(),
        power: estimate_core(&core),
        retired: core.stats().retired,
        cycles: core.stats().cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_workloads::{by_name, Scale};

    fn quick_flow() -> FlowConfig {
        FlowConfig {
            simpoint: SimPointConfig { max_k: 6, restarts: 2, ..SimPointConfig::default() },
            warmup_insts: 1_000,
            max_profile_insts: 500_000_000,
        }
    }

    #[test]
    fn flow_produces_weighted_result_for_bitcount() {
        let w = by_name("bitcount", Scale::Test).unwrap();
        let r = run_simpoint_flow(&BoomConfig::medium(), &w, &quick_flow()).unwrap();
        assert!(r.ipc > 0.2 && r.ipc < 3.0, "ipc {}", r.ipc);
        assert!(r.coverage >= 0.9);
        assert!(r.speedup > 1.0);
        assert!(!r.points.is_empty());
        let wsum: f64 = r.points.iter().map(|p| p.weight).sum();
        assert!((wsum - 1.0).abs() < 1e-9);
        assert!(r.tile_power_mw() > 0.0);
        assert!(r.perf_per_watt() > 0.0);
    }

    #[test]
    fn simpoint_ipc_tracks_full_simulation() {
        // The methodology's validity claim: weighted SimPoint IPC must be
        // close to the IPC of simulating everything.
        let w = by_name("dijkstra", Scale::Test).unwrap();
        let cfg = BoomConfig::medium();
        let flow = run_simpoint_flow(&cfg, &w, &quick_flow()).unwrap();
        let full = run_full(&cfg, &w).unwrap();
        let err = (flow.ipc - full.ipc).abs() / full.ipc;
        assert!(err < 0.25, "simpoint {:.3} vs full {:.3} ({:.0}% error)", flow.ipc, full.ipc, 100.0 * err);
    }

    #[test]
    fn failing_workload_is_reported() {
        // A workload that exits non-zero must be flagged, not silently used.
        use rv_isa::asm::Assembler;
        use rv_isa::reg::Reg::*;
        let mut a = Assembler::new();
        a.li(A0, 7);
        a.exit();
        let program = a.assemble().unwrap();
        let w = Workload {
            name: "broken",
            suite: rv_workloads::Suite::MiBench,
            program,
            interval_size: 100,
        };
        match run_simpoint_flow(&BoomConfig::medium(), &w, &quick_flow()) {
            Err(FlowError::SelfCheckFailed(7)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
