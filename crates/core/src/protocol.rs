//! Wire protocol of the `boomflow serve` campaign service.
//!
//! Deliberately tiny and dependency-free: length-prefixed frames over any
//! byte stream (Unix socket or TCP), payloads encoded with the same
//! [`rv_isa::codec`] primitives the journal and disk cache use.
//!
//! # Frame layout
//!
//! ```text
//! u32 LE payload length | payload bytes
//! ```
//!
//! Payloads are capped at [`MAX_FRAME`] (a corrupted length prefix must
//! not allocate gigabytes). Client payloads open with the protocol
//! version (`u32`) then a message tag (`u8`); server payloads open with
//! the tag directly — the server echoes no version because rejecting a
//! mismatched client is its job, not the client's.
//!
//! # Event kinds
//!
//! Client → server: [`ClientMsg::Submit`] (run this request, stream my
//! events), [`ClientMsg::Attach`] (re-subscribe to a known request id —
//! also the resume path after a server crash), [`ClientMsg::Shutdown`]
//! (drain journals and exit).
//!
//! Server → client: [`ServerMsg::Admitted`] (request accepted, here is
//! its id), [`ServerMsg::Progress`] (point completion ticks),
//! [`ServerMsg::Done`] (final deterministic report bytes + stage
//! summary), [`ServerMsg::Rejected`] (version mismatch, full queue,
//! unknown attach id, or a shutting-down server), [`ServerMsg::Bye`]
//! (shutdown acknowledged).
//!
//! # Versioning
//!
//! [`PROTOCOL_VERSION`] is bumped on any change to the frame grammar;
//! the server rejects other versions with a human-readable
//! [`ServerMsg::Rejected`], which every decodable older/newer client can
//! still print. The *request id* is content-addressed —
//! [`request_id`] hashes the canonical encoding of the [`Request`] — so
//! id stability across versions follows from encoding stability, and two
//! clients submitting byte-identical requests are coalesced onto one
//! run.

use rv_isa::codec::{fnv1a, ByteReader, ByteWriter, CodecError};
use rv_workloads::Scale;
use std::io::{Read, Write};

/// Version of the frame grammar (see module docs).
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard cap on one frame's payload size.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Why a frame could not be read, written, or decoded.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// The payload did not decode.
    Codec(CodecError),
    /// The peer speaks a different protocol version.
    Version(u32),
    /// The length prefix exceeds [`MAX_FRAME`].
    FrameTooLarge(usize),
    /// Unknown message tag (or request kind) in an otherwise valid frame.
    UnknownTag(u8),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "stream error: {e}"),
            ProtocolError::Codec(e) => write!(f, "malformed payload: {e:?}"),
            ProtocolError::Version(got) => {
                write!(f, "protocol version {got} (this side speaks {PROTOCOL_VERSION})")
            }
            ProtocolError::FrameTooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            ProtocolError::UnknownTag(t) => write!(f, "unknown message tag {t:#04x}"),
        }
    }
}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> ProtocolError {
        ProtocolError::Io(e)
    }
}

impl From<CodecError> for ProtocolError {
    fn from(e: CodecError) -> ProtocolError {
        ProtocolError::Codec(e)
    }
}

/// Writes one length-prefixed frame and flushes the stream.
///
/// # Errors
///
/// Oversized payloads and stream failures.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtocolError> {
    if payload.len() > MAX_FRAME {
        return Err(ProtocolError::FrameTooLarge(payload.len()));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// Oversized length prefixes and stream failures (including EOF).
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ProtocolError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(ProtocolError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// A campaign specification as submitted over the wire — the server
/// realizes it with exactly the CLI's selection rules, so a submitted
/// campaign and a solo `boomflow` run of the same flags produce
/// byte-identical deterministic reports.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignRequest {
    /// Workload selection: `all` or a comma-separated name list.
    pub workloads: String,
    /// Configuration selection: `medium`, `large`, `mega`, or `all`.
    pub config: String,
    /// Workload scale (`Scale`).
    pub scale: Scale,
    /// Warm-up instructions per point.
    pub warmup: u64,
    /// Per-point retry attempts.
    pub retries: u32,
    /// Configurations per batched work item.
    pub batch_lanes: usize,
    /// Event-driven idle-cycle skipping.
    pub idle_skip: bool,
}

/// A sweep specification as submitted over the wire (preset-based; the
/// full `--grid` axis grammar stays CLI-local).
#[derive(Clone, Debug, PartialEq)]
pub struct SweepRequest {
    /// Grid preset name (`ref64`, `smoke16`).
    pub preset: String,
    /// Base configuration override (`medium`, `large`, `mega`; empty
    /// keeps the preset's base).
    pub base: String,
    /// Workload selection: `all` or a comma-separated name list.
    pub workloads: String,
    /// Workload scale.
    pub scale: Scale,
    /// Warm-up instructions per point.
    pub warmup: u64,
    /// Rung-count cap; `0` keeps the natural doubling schedule.
    pub max_rungs: usize,
    /// Point budget of the truncated prefilter rung.
    pub rung0_points: usize,
    /// Interval truncation shift of the prefilter rung.
    pub rung0_shift: u32,
    /// ε-band of the elimination rule.
    pub epsilon: f64,
    /// Per-rung multiplicative ε decay.
    pub epsilon_decay: f64,
    /// Single full-budget rung, no elimination.
    pub exhaustive: bool,
    /// Configurations per batched point lane group.
    pub batch_lanes: usize,
}

/// One unit of service work: a campaign or a sweep.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// A supervised configuration × workload campaign.
    Campaign(CampaignRequest),
    /// An adaptive (or exhaustive) design-space sweep.
    Sweep(SweepRequest),
}

/// Client → server messages.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientMsg {
    /// Run this request (or join it if an identical one is in flight)
    /// and stream my progress events.
    Submit(Request),
    /// Re-subscribe to a request by id — the attach/resume path.
    Attach(u64),
    /// Drain journals and exit.
    Shutdown,
}

/// Server → client messages.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerMsg {
    /// The request was admitted (or coalesced onto an identical one).
    Admitted {
        /// Content-addressed request id ([`request_id`]).
        id: u64,
        /// Points replayed from a resumed journal at admission.
        replayed: u64,
        /// Requests active on the server after this admission.
        active: u64,
    },
    /// Point-completion tick of one request.
    Progress {
        /// The request the tick belongs to.
        id: u64,
        /// Completed point outcomes (replays included).
        done: u64,
        /// Total point outcomes of the request.
        total: u64,
    },
    /// Terminal event of one request.
    Done {
        /// The request this result belongs to.
        id: u64,
        /// Whether every cell succeeded (the solo CLI's exit-0 rule).
        ok: bool,
        /// The deterministic report — byte-identical to the solo run's
        /// `--report-out` file.
        report: Vec<u8>,
        /// The human-readable stage summary (wall-clock, cache and
        /// single-flight counters; *not* deterministic).
        summary: String,
        /// Kind-specific extra payload (the rendered Pareto frontier for
        /// sweeps; empty for campaigns).
        extra: String,
    },
    /// The request was not admitted (version mismatch, full queue,
    /// unknown attach id, shutdown in progress).
    Rejected {
        /// Human-readable reason.
        reason: String,
    },
    /// Shutdown acknowledged; journals are drained before the socket
    /// closes.
    Bye {
        /// Requests that were still active (they resume on restart).
        active: u64,
    },
}

fn put_scale(w: &mut ByteWriter, s: Scale) {
    w.put_u8(match s {
        Scale::Test => 0,
        Scale::Small => 1,
        Scale::Full => 2,
    });
}

fn get_scale(r: &mut ByteReader<'_>) -> Result<Scale, ProtocolError> {
    match r.u8()? {
        0 => Ok(Scale::Test),
        1 => Ok(Scale::Small),
        2 => Ok(Scale::Full),
        t => Err(ProtocolError::UnknownTag(t)),
    }
}

fn encode_request(w: &mut ByteWriter, req: &Request) {
    match req {
        Request::Campaign(c) => {
            w.put_u8(0);
            w.put_str(&c.workloads);
            w.put_str(&c.config);
            put_scale(w, c.scale);
            w.put_u64(c.warmup);
            w.put_u32(c.retries);
            w.put_usize(c.batch_lanes);
            w.put_bool(c.idle_skip);
        }
        Request::Sweep(s) => {
            w.put_u8(1);
            w.put_str(&s.preset);
            w.put_str(&s.base);
            w.put_str(&s.workloads);
            put_scale(w, s.scale);
            w.put_u64(s.warmup);
            w.put_usize(s.max_rungs);
            w.put_usize(s.rung0_points);
            w.put_u32(s.rung0_shift);
            w.put_f64(s.epsilon);
            w.put_f64(s.epsilon_decay);
            w.put_bool(s.exhaustive);
            w.put_usize(s.batch_lanes);
        }
    }
}

fn decode_request(r: &mut ByteReader<'_>) -> Result<Request, ProtocolError> {
    match r.u8()? {
        0 => Ok(Request::Campaign(CampaignRequest {
            workloads: r.str()?.to_string(),
            config: r.str()?.to_string(),
            scale: get_scale(r)?,
            warmup: r.u64()?,
            retries: r.u32()?,
            batch_lanes: r.usize()?,
            idle_skip: r.bool()?,
        })),
        1 => Ok(Request::Sweep(SweepRequest {
            preset: r.str()?.to_string(),
            base: r.str()?.to_string(),
            workloads: r.str()?.to_string(),
            scale: get_scale(r)?,
            warmup: r.u64()?,
            max_rungs: r.usize()?,
            rung0_points: r.usize()?,
            rung0_shift: r.u32()?,
            epsilon: r.f64()?,
            epsilon_decay: r.f64()?,
            exhaustive: r.bool()?,
            batch_lanes: r.usize()?,
        })),
        t => Err(ProtocolError::UnknownTag(t)),
    }
}

/// The content-addressed id of a request: FNV-1a over its canonical
/// encoding. Identical specifications — regardless of which client sent
/// them, or when — share an id, which is what lets the server coalesce
/// duplicate submissions and a crashed client re-[`ClientMsg::Attach`]
/// deterministically.
pub fn request_id(req: &Request) -> u64 {
    let mut w = ByteWriter::new();
    encode_request(&mut w, req);
    fnv1a(&w.into_bytes())
}

/// Encodes a client message into a frame payload (version-prefixed).
pub fn encode_client(msg: &ClientMsg) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(PROTOCOL_VERSION);
    match msg {
        ClientMsg::Submit(req) => {
            w.put_u8(0x01);
            encode_request(&mut w, req);
        }
        ClientMsg::Attach(id) => {
            w.put_u8(0x02);
            w.put_u64(*id);
        }
        ClientMsg::Shutdown => w.put_u8(0x03),
    }
    w.into_bytes()
}

/// Decodes a client frame payload.
///
/// # Errors
///
/// Version mismatches (before any tag parsing, so every future version
/// can at least be rejected cleanly), unknown tags, and truncations.
pub fn decode_client(payload: &[u8]) -> Result<ClientMsg, ProtocolError> {
    let mut r = ByteReader::new(payload);
    let version = r.u32()?;
    if version != PROTOCOL_VERSION {
        return Err(ProtocolError::Version(version));
    }
    let msg = match r.u8()? {
        0x01 => ClientMsg::Submit(decode_request(&mut r)?),
        0x02 => ClientMsg::Attach(r.u64()?),
        0x03 => ClientMsg::Shutdown,
        t => return Err(ProtocolError::UnknownTag(t)),
    };
    r.finish()?;
    Ok(msg)
}

/// Encodes a server message into a frame payload.
pub fn encode_server(msg: &ServerMsg) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match msg {
        ServerMsg::Admitted { id, replayed, active } => {
            w.put_u8(0x10);
            w.put_u64(*id);
            w.put_u64(*replayed);
            w.put_u64(*active);
        }
        ServerMsg::Progress { id, done, total } => {
            w.put_u8(0x11);
            w.put_u64(*id);
            w.put_u64(*done);
            w.put_u64(*total);
        }
        ServerMsg::Done { id, ok, report, summary, extra } => {
            w.put_u8(0x12);
            w.put_u64(*id);
            w.put_bool(*ok);
            w.put_bytes(report);
            w.put_str(summary);
            w.put_str(extra);
        }
        ServerMsg::Rejected { reason } => {
            w.put_u8(0x13);
            w.put_str(reason);
        }
        ServerMsg::Bye { active } => {
            w.put_u8(0x14);
            w.put_u64(*active);
        }
    }
    w.into_bytes()
}

/// Decodes a server frame payload.
///
/// # Errors
///
/// Unknown tags and truncations.
pub fn decode_server(payload: &[u8]) -> Result<ServerMsg, ProtocolError> {
    let mut r = ByteReader::new(payload);
    let msg = match r.u8()? {
        0x10 => ServerMsg::Admitted { id: r.u64()?, replayed: r.u64()?, active: r.u64()? },
        0x11 => ServerMsg::Progress { id: r.u64()?, done: r.u64()?, total: r.u64()? },
        0x12 => ServerMsg::Done {
            id: r.u64()?,
            ok: r.bool()?,
            report: r.bytes()?.to_vec(),
            summary: r.str()?.to_string(),
            extra: r.str()?.to_string(),
        },
        0x13 => ServerMsg::Rejected { reason: r.str()?.to_string() },
        0x14 => ServerMsg::Bye { active: r.u64()? },
        t => return Err(ProtocolError::UnknownTag(t)),
    };
    r.finish()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_campaign() -> Request {
        Request::Campaign(CampaignRequest {
            workloads: "bitcount,sha".to_string(),
            config: "all".to_string(),
            scale: Scale::Test,
            warmup: 500,
            retries: 3,
            batch_lanes: 1,
            idle_skip: true,
        })
    }

    fn sample_sweep() -> Request {
        Request::Sweep(SweepRequest {
            preset: "smoke16".to_string(),
            base: "medium".to_string(),
            workloads: "sha".to_string(),
            scale: Scale::Test,
            warmup: 500,
            max_rungs: 2,
            rung0_points: 1,
            rung0_shift: 3,
            epsilon: 0.05,
            epsilon_decay: 0.5,
            exhaustive: false,
            batch_lanes: 4,
        })
    }

    #[test]
    fn client_messages_round_trip() {
        for msg in [
            ClientMsg::Submit(sample_campaign()),
            ClientMsg::Submit(sample_sweep()),
            ClientMsg::Attach(0xdead_beef_0102_0304),
            ClientMsg::Shutdown,
        ] {
            let decoded = decode_client(&encode_client(&msg)).expect("round trip");
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn server_messages_round_trip() {
        for msg in [
            ServerMsg::Admitted { id: 7, replayed: 3, active: 2 },
            ServerMsg::Progress { id: 7, done: 5, total: 12 },
            ServerMsg::Done {
                id: 7,
                ok: true,
                report: b"report bytes".to_vec(),
                summary: "=== stage summary ===".to_string(),
                extra: String::new(),
            },
            ServerMsg::Rejected { reason: "queue full".to_string() },
            ServerMsg::Bye { active: 1 },
        ] {
            let decoded = decode_server(&encode_server(&msg)).expect("round trip");
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn frames_round_trip_over_a_stream() {
        let mut buf = Vec::new();
        let payloads: [&[u8]; 3] = [b"", b"x", b"hello frames"];
        for p in payloads {
            write_frame(&mut buf, p).expect("write");
        }
        let mut r = &buf[..];
        for p in payloads {
            assert_eq!(read_frame(&mut r).expect("read"), p);
        }
        // Stream drained: the next read reports EOF as an Io error.
        assert!(matches!(read_frame(&mut r), Err(ProtocolError::Io(_))));
    }

    #[test]
    fn oversized_frames_are_refused_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(read_frame(&mut &buf[..]), Err(ProtocolError::FrameTooLarge(_))));
    }

    #[test]
    fn version_mismatch_is_a_typed_rejection() {
        let mut payload = encode_client(&ClientMsg::Shutdown);
        payload[0] = 0xfe; // clobber the version word
        assert!(matches!(decode_client(&payload), Err(ProtocolError::Version(_))));
    }

    #[test]
    fn request_id_is_content_addressed() {
        let a = sample_campaign();
        let b = sample_campaign();
        assert_eq!(request_id(&a), request_id(&b), "identical specs share an id");
        let Request::Campaign(mut c) = sample_campaign() else { unreachable!() };
        c.warmup += 1;
        assert_ne!(
            request_id(&a),
            request_id(&Request::Campaign(c)),
            "any field change moves the id"
        );
        assert_ne!(request_id(&a), request_id(&sample_sweep()));
    }
}
