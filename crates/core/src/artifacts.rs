//! Staged, shareable artifacts of the SimPoint flow.
//!
//! The front half of the flow — functional profiling, phase analysis, and
//! architectural checkpoint capture — is *configuration-independent* by
//! construction: BBVs, cluster assignments, and architectural snapshots
//! depend only on the workload and the flow parameters, never on the
//! microarchitecture being evaluated (the same property the paper's
//! Spike/gem5 artifacts exploit). A campaign over many configurations
//! therefore needs each of those stages exactly once per workload.
//!
//! [`ArtifactStore`] memoizes the three stages behind a thread-safe,
//! compute-exactly-once cache:
//!
//! * **Profile** — [`BbvProfile`], keyed by (program fingerprint,
//!   interval size, profiling budget);
//! * **SimPointAnalysis** — [`SimPointAnalysis`], keyed by the profile
//!   key plus [`SimPointConfig::cache_fingerprint`];
//! * **CheckpointSet** — [`CheckpointSet`], keyed by the analysis key
//!   plus the warm-up length. Checkpoints are held behind [`Arc`]
//!   ([`rv_isa::checkpoint::SharedCheckpoint`]) so the memory images are
//!   shared — not cloned — across configurations and worker threads.
//!
//! A full-run baseline cache ([`ArtifactStore::full_run`]) rides along for
//! the methodology benches that compare SimPoint against full detailed
//! simulation: the baseline is (configuration, workload)-keyed and only
//! ever simulated once per store.
//!
//! Every stage records compute/hit counters and wall-clock totals
//! ([`CacheStats`]), which the campaign scheduler surfaces through
//! [`CampaignReport`](crate::CampaignReport) — the reuse win is
//! observable, not assumed.

use crate::diskcache::{CacheStage, DiskCache, DiskFaultInjection, DiskLookup};
use crate::flow::{run_full, FlowConfig, FlowError, FullRunResult};
use crate::sync::lock;
use boom_uarch::BoomConfig;
use rv_isa::bbv::BbvProfile;
use rv_isa::checkpoint::{checkpoints_at_shared, Checkpoint, SharedCheckpoint};
use rv_isa::codec::{fnv1a, ByteReader, ByteWriter, CodecError};
use rv_workloads::Workload;
use simpoint::{analyze, SimPointAnalysis};
use std::collections::HashMap;
use std::hash::Hash;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Cache key of a profiling artifact.
type ProfileKey = (u64, u64, u64);
/// Cache key of a phase-analysis artifact.
type AnalysisKey = (ProfileKey, u64);
/// Cache key of a checkpoint-set artifact.
type CheckpointKey = (AnalysisKey, u64);
/// Cache key of a full-run baseline.
type FullRunKey = (u64, u64);

/// Cache key of one memoized detailed-sim point outcome in a sweep:
/// (config fingerprint, program fingerprint, interval size, warm-up,
/// interval truncation shift, point index). Budget parameters are part of
/// the key so a truncated rung-0 measurement never masquerades as the
/// full-length result a later rung needs.
pub(crate) type PointKey = (u64, u64, u64, u64, u32, u32);

/// Cache key of a cross-request shared point outcome: the sweep
/// [`PointKey`] plus the supervision fingerprint (retry policy, fault
/// injection, idle-skip) — supervision knobs change *outcomes* (attempt
/// counts, skipped-cycle stats), so requests that differ in them must not
/// share results.
pub(crate) type SharedPointKey = (PointKey, u64);

/// A compute-exactly-once slot: concurrent callers of the same key block
/// on the first computation and then share its result.
type Slot<T> = Arc<OnceLock<Result<T, FlowError>>>;

/// One selected simulation point, fully planned for detailed simulation:
/// its checkpoint (shared, not cloned), warm-up length, and measurement
/// window.
#[derive(Clone, Debug)]
pub struct PlannedPoint {
    /// Index among the analysis' selected points.
    pub sel_idx: usize,
    /// Index of the represented interval in the BBV profile.
    pub interval: usize,
    /// Cluster weight (fraction of execution).
    pub weight: f64,
    /// Length of the measured interval in dynamic instructions.
    pub interval_len: u64,
    /// Warm-up instructions before the measured interval (clamped to the
    /// checkpoint's position).
    pub warmup: u64,
    /// Architectural snapshot at (interval start − warm-up), shared
    /// across every configuration that simulates this point.
    pub checkpoint: SharedCheckpoint,
}

/// The complete configuration-independent front half of the flow for one
/// (workload, flow-parameters) pair: profile, analysis, and one planned
/// point per selected simulation point.
#[derive(Clone, Debug)]
pub struct CheckpointSet {
    /// The BBV profile the analysis was derived from.
    pub profile: Arc<BbvProfile>,
    /// The phase analysis (selected points, weights, coverage, speedup).
    pub analysis: Arc<SimPointAnalysis>,
    /// Planned points in checkpoint-capture order (ascending position in
    /// the dynamic instruction stream) — the order detailed simulation
    /// and result assembly use.
    pub points: Vec<PlannedPoint>,
}

/// Per-stage compute/hit counters and wall-clock totals of an
/// [`ArtifactStore`] (monotonic; snapshot with [`ArtifactStore::stats`]).
///
/// "Computed" counts closure executions (cache misses that did the work);
/// "hits" counts lookups served from the cache, including the store's own
/// internal lookups (a checkpoint-set computation re-reads its profile
/// and analysis through the cache).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CacheStats {
    /// Profiling passes executed.
    pub profile_computed: u64,
    /// Profiling lookups served from cache.
    pub profile_hits: u64,
    /// Phase analyses executed.
    pub cluster_computed: u64,
    /// Phase-analysis lookups served from cache.
    pub cluster_hits: u64,
    /// Checkpoint-capture passes executed.
    pub checkpoint_computed: u64,
    /// Checkpoint-set lookups served from cache.
    pub checkpoint_hits: u64,
    /// Full-run baselines simulated.
    pub full_run_computed: u64,
    /// Full-run lookups served from cache.
    pub full_run_hits: u64,
    /// Wall-clock spent profiling, in ms.
    pub profile_ms: f64,
    /// Wall-clock spent clustering, in ms.
    pub cluster_ms: f64,
    /// Wall-clock spent capturing checkpoints, in ms.
    pub checkpoint_ms: f64,
    /// Wall-clock spent in detailed point simulation, in ms (accumulated
    /// across worker threads; not a cached stage).
    pub detailed_ms: f64,
    /// Wall-clock spent simulating full-run baselines, in ms.
    pub full_run_ms: f64,
    /// Stage fills served from the disk cache (validated loads).
    pub disk_hits: u64,
    /// Disk-cache lookups that found no entry.
    pub disk_misses: u64,
    /// Artifacts persisted to the disk cache.
    pub disk_writes: u64,
    /// Disk entries that failed validation and were quarantined.
    pub disk_quarantined: u64,
    /// Cached stage *errors* replayed to later callers — the failure
    /// context is the original compute's, not the replaying cell's.
    pub error_replays: u64,
    /// Sweep point lookups served from the point-outcome memo (a
    /// promoted config re-reading a lower-rung measurement).
    pub sweep_point_hits: u64,
    /// Sweep point outcomes recorded into the point-outcome memo.
    pub sweep_point_stored: u64,
    /// Lookups (stage or shared point) that found the key *in flight* —
    /// another caller was already computing it — and blocked on that
    /// computation instead of duplicating it. Nonzero means single-flight
    /// deduplication actually coalesced concurrent work.
    pub inflight_dedup_hits: u64,
    /// Shared point lookups served from an already-*completed* slot of
    /// the cross-request point map — warm reuse of work another request
    /// (or an earlier pass) finished.
    pub warm_store_hits: u64,
}

#[derive(Default)]
struct Counters {
    profile_computed: AtomicU64,
    profile_hits: AtomicU64,
    cluster_computed: AtomicU64,
    cluster_hits: AtomicU64,
    checkpoint_computed: AtomicU64,
    checkpoint_hits: AtomicU64,
    full_run_computed: AtomicU64,
    full_run_hits: AtomicU64,
    profile_us: AtomicU64,
    cluster_us: AtomicU64,
    checkpoint_us: AtomicU64,
    detailed_us: AtomicU64,
    full_run_us: AtomicU64,
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    disk_writes: AtomicU64,
    disk_quarantined: AtomicU64,
    error_replays: AtomicU64,
    sweep_point_hits: AtomicU64,
    sweep_point_stored: AtomicU64,
    inflight_dedup_hits: AtomicU64,
    warm_store_hits: AtomicU64,
}

/// Thread-safe memoization of the flow's configuration-independent
/// stages, plus the full-run baseline cache and stage accounting.
///
/// One store per campaign (or per bench process) is the intended scope:
/// artifacts live for the store's lifetime, and [`CacheStats`] then
/// describes exactly that campaign's reuse.
#[derive(Default)]
pub struct ArtifactStore {
    profiles: Mutex<HashMap<ProfileKey, Slot<Arc<BbvProfile>>>>,
    analyses: Mutex<HashMap<AnalysisKey, Slot<Arc<SimPointAnalysis>>>>,
    checkpoints: Mutex<HashMap<CheckpointKey, Slot<Arc<CheckpointSet>>>>,
    full_runs: Mutex<HashMap<FullRunKey, Slot<Arc<FullRunResult>>>>,
    /// Sweep point-outcome memo: completed detailed-sim measurements
    /// keyed by (config, program, budget) so successive-halving rungs
    /// and resumed sweeps never resimulate a finished point.
    points: Mutex<HashMap<PointKey, crate::flow::PointOutcome>>,
    /// Cross-request single-flight map of *supervised* point outcomes,
    /// keyed by ([`PointKey`], supervision fingerprint): concurrent
    /// requests for the same point share one computation (the second
    /// blocks on the first), and later requests reuse the completed
    /// result warm. Only point-sharing schedulers (the campaign service)
    /// populate it.
    flights: Mutex<HashMap<SharedPointKey, Arc<OnceLock<crate::flow::PointOutcome>>>>,
    counters: Counters,
    /// Optional crash-safe disk tier behind the in-memory memo maps.
    disk: Option<DiskCache>,
}

/// Fetches `key` from `map`, computing it exactly once across threads:
/// concurrent callers of an in-flight key block until the first
/// computation finishes and then share its (cloned) result.
///
/// `compute` additionally reports whether the fill was served by the
/// disk tier, so disk loads are counted as disk hits rather than
/// computations; in-memory replays of a cached *error* are tallied in
/// `error_replays` — the failure context stays attributed to the
/// original compute.
struct MemoMeters<'a> {
    /// Fresh (non-disk) computations of this stage.
    computed: &'a AtomicU64,
    /// Completed-slot cache hits.
    hits: &'a AtomicU64,
    /// Hits that replayed a cached *error*.
    error_replays: &'a AtomicU64,
    /// Hits that blocked on another caller's in-flight computation.
    inflight: &'a AtomicU64,
    /// Wall-clock microseconds spent computing.
    spent_us: &'a AtomicU64,
}

fn memoize<K, T>(
    map: &Mutex<HashMap<K, Slot<T>>>,
    key: K,
    meters: MemoMeters<'_>,
    compute: impl FnOnce() -> (Result<T, FlowError>, bool),
) -> Result<T, FlowError>
where
    K: Eq + Hash,
    T: Clone,
{
    let slot = lock(map).entry(key).or_default().clone();
    // Whether the slot was already complete *before* this lookup: a hit
    // on an incomplete slot means we blocked on another caller's
    // in-flight computation — single-flight dedup, not a plain cache hit.
    let pre_done = slot.get().is_some();
    let mut ran = false;
    let mut from_disk = false;
    let result = slot.get_or_init(|| {
        ran = true;
        let t0 = Instant::now();
        let (r, disk) = compute();
        from_disk = disk;
        meters.spent_us.fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
        r
    });
    if ran {
        if !from_disk {
            meters.computed.fetch_add(1, Ordering::Relaxed);
        }
    } else {
        meters.hits.fetch_add(1, Ordering::Relaxed);
        if !pre_done {
            meters.inflight.fetch_add(1, Ordering::Relaxed);
        }
        if result.is_err() {
            meters.error_replays.fetch_add(1, Ordering::Relaxed);
        }
    }
    result.clone()
}

impl ArtifactStore {
    /// Creates an empty, memory-only store.
    pub fn new() -> ArtifactStore {
        ArtifactStore::default()
    }

    /// Creates a store backed by a crash-safe disk cache at `dir`
    /// (created if needed): stage artifacts are persisted on compute and
    /// served from disk on later runs, under the same fingerprint keys
    /// the in-memory maps use. Corrupt entries are quarantined and
    /// recomputed, never trusted.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn with_disk_cache(dir: &Path) -> std::io::Result<ArtifactStore> {
        Self::with_disk_cache_injected(dir, DiskFaultInjection::default())
    }

    /// [`ArtifactStore::with_disk_cache`] with deterministic I/O fault
    /// injection, for tests and CI drills of the recovery paths.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn with_disk_cache_injected(
        dir: &Path,
        faults: DiskFaultInjection,
    ) -> std::io::Result<ArtifactStore> {
        Ok(ArtifactStore { disk: Some(DiskCache::open(dir, faults)?), ..ArtifactStore::default() })
    }

    fn profile_key(workload: &Workload, flow: &FlowConfig) -> ProfileKey {
        (workload.program.fingerprint(), workload.interval_size, flow.max_profile_insts)
    }

    fn analysis_key(workload: &Workload, flow: &FlowConfig) -> AnalysisKey {
        (Self::profile_key(workload, flow), flow.simpoint.cache_fingerprint())
    }

    fn checkpoint_key(workload: &Workload, flow: &FlowConfig) -> CheckpointKey {
        (Self::analysis_key(workload, flow), flow.warmup_insts)
    }

    /// Runs a stage fill through the disk tier: validated disk entries
    /// short-circuit the compute, anything else (miss, quarantine, or an
    /// undecodable payload) recomputes and persists the result. The bool
    /// reports whether the value came from disk. Stage *errors* are never
    /// persisted — only successful artifacts are worth replaying across
    /// processes.
    fn with_disk<T>(
        &self,
        stage: CacheStage,
        key: u64,
        name: &str,
        decode: impl FnOnce(&[u8]) -> Result<T, CodecError>,
        encode: impl FnOnce(&T) -> Vec<u8>,
        compute: impl FnOnce() -> Result<T, FlowError>,
    ) -> (Result<T, FlowError>, bool) {
        let Some(disk) = &self.disk else {
            return (compute(), false);
        };
        let c = &self.counters;
        match disk.load(stage, key, name) {
            DiskLookup::Hit(bytes) => match decode(&bytes) {
                Ok(t) => {
                    c.disk_hits.fetch_add(1, Ordering::Relaxed);
                    return (Ok(t), true);
                }
                Err(_) => {
                    // Checksum passed but the payload does not decode
                    // (format drift): quarantine like any corruption.
                    disk.quarantine_entry(stage, name);
                    c.disk_quarantined.fetch_add(1, Ordering::Relaxed);
                }
            },
            DiskLookup::Miss => {
                c.disk_misses.fetch_add(1, Ordering::Relaxed);
            }
            DiskLookup::Quarantined => {
                c.disk_quarantined.fetch_add(1, Ordering::Relaxed);
            }
        }
        let result = compute();
        if let Ok(t) = &result {
            if disk.store(stage, key, name, &encode(t)).is_ok() {
                c.disk_writes.fetch_add(1, Ordering::Relaxed);
            }
        }
        (result, false)
    }

    /// Stage 1 — the workload's BBV profile, computed at most once per
    /// (program, interval size, profiling budget).
    ///
    /// # Errors
    ///
    /// Propagates profiling failures (simulator fault, no exit, failed
    /// self-verification); the error is cached and replayed to every
    /// caller of the same key.
    pub fn profile(
        &self,
        workload: &Workload,
        flow: &FlowConfig,
    ) -> Result<Arc<BbvProfile>, FlowError> {
        let c = &self.counters;
        let key = Self::profile_key(workload, flow);
        memoize(
            &self.profiles,
            key,
            MemoMeters {
                computed: &c.profile_computed,
                hits: &c.profile_hits,
                error_replays: &c.error_replays,
                inflight: &c.inflight_dedup_hits,
                spent_us: &c.profile_us,
            },
            || {
                self.with_disk(
                    CacheStage::Profile,
                    hash_words(&[key.0, key.1, key.2]),
                    &format!("{:016x}-{}-{}", key.0, key.1, key.2),
                    |bytes| {
                        let mut r = ByteReader::new(bytes);
                        let p = BbvProfile::decode(&mut r)?;
                        r.finish()?;
                        Ok(Arc::new(p))
                    },
                    |p| {
                        let mut w = ByteWriter::new();
                        p.encode(&mut w);
                        w.into_bytes()
                    },
                    || crate::flow::profile(workload, flow.max_profile_insts).map(Arc::new),
                )
            },
        )
    }

    /// Stage 2 — the SimPoint phase analysis over the workload's profile,
    /// computed at most once per (profile, SimPoint config).
    ///
    /// # Errors
    ///
    /// Propagates a profiling failure from stage 1.
    pub fn analysis(
        &self,
        workload: &Workload,
        flow: &FlowConfig,
    ) -> Result<Arc<SimPointAnalysis>, FlowError> {
        let c = &self.counters;
        let key = Self::analysis_key(workload, flow);
        memoize(
            &self.analyses,
            key,
            MemoMeters {
                computed: &c.cluster_computed,
                hits: &c.cluster_hits,
                error_replays: &c.error_replays,
                inflight: &c.inflight_dedup_hits,
                spent_us: &c.cluster_us,
            },
            || {
                self.with_disk(
                    CacheStage::Analysis,
                    hash_words(&[key.0 .0, key.0 .1, key.0 .2, key.1]),
                    &format!("{:016x}-{}-{}-{:016x}", key.0 .0, key.0 .1, key.0 .2, key.1),
                    |bytes| {
                        let mut r = ByteReader::new(bytes);
                        let a = SimPointAnalysis::decode(&mut r)?;
                        r.finish()?;
                        Ok(Arc::new(a))
                    },
                    |a| {
                        let mut w = ByteWriter::new();
                        a.encode(&mut w);
                        w.into_bytes()
                    },
                    || {
                        let bbv = self.profile(workload, flow)?;
                        Ok(Arc::new(analyze(&bbv, &flow.simpoint)))
                    },
                )
            },
        )
    }

    /// Stage 3 — the planned checkpoint set: one architectural snapshot
    /// per selected point at (interval start − warm-up), captured in a
    /// single functional pass at most once per (analysis, warm-up).
    ///
    /// # Errors
    ///
    /// Propagates stage 1/2 failures and checkpoint-capture simulator
    /// faults.
    pub fn checkpoints(
        &self,
        workload: &Workload,
        flow: &FlowConfig,
    ) -> Result<Arc<CheckpointSet>, FlowError> {
        let c = &self.counters;
        let key = Self::checkpoint_key(workload, flow);
        memoize(
            &self.checkpoints,
            key,
            MemoMeters {
                computed: &c.checkpoint_computed,
                hits: &c.checkpoint_hits,
                error_replays: &c.error_replays,
                inflight: &c.inflight_dedup_hits,
                spent_us: &c.checkpoint_us,
            },
            || {
                // Both the disk-decode and the compute path need the
                // (cached) front stages: the set embeds them, and the
                // disk entry stores only the planned points.
                let profile = match self.profile(workload, flow) {
                    Ok(p) => p,
                    Err(e) => return (Err(e), false),
                };
                let analysis = match self.analysis(workload, flow) {
                    Ok(a) => a,
                    Err(e) => return (Err(e), false),
                };
                let (dec_profile, dec_analysis) = (profile.clone(), analysis.clone());
                let ((pk, ik, bk), sk) = key.0;
                self.with_disk(
                    CacheStage::Checkpoints,
                    hash_words(&[pk, ik, bk, sk, key.1]),
                    &format!("{pk:016x}-{ik}-{bk}-{sk:016x}-{}", key.1),
                    move |bytes| {
                        let mut r = ByteReader::new(bytes);
                        let points = decode_points(&mut r)?;
                        r.finish()?;
                        Ok(Arc::new(CheckpointSet {
                            profile: dec_profile,
                            analysis: dec_analysis,
                            points,
                        }))
                    },
                    |set| {
                        let mut w = ByteWriter::new();
                        encode_points(&mut w, &set.points);
                        w.into_bytes()
                    },
                    move || {
                        let starts = analysis.selected_starts(&profile);
                        // Capture at (interval start − warm-up), batched
                        // in one pass; the capture cursor only moves
                        // forward, so sort by position. This order is
                        // also the flow's point order.
                        let mut targets: Vec<(usize, u64, u64)> = starts
                            .iter()
                            .enumerate()
                            .map(|(i, &s)| {
                                let warm = flow.warmup_insts.min(s);
                                (i, s - warm, warm)
                            })
                            .collect();
                        targets.sort_by_key(|&(_, at, _)| at);
                        let sorted: Vec<u64> = targets.iter().map(|&(_, at, _)| at).collect();
                        let checkpoints = checkpoints_at_shared(&workload.program, &sorted)?;
                        let points = targets
                            .into_iter()
                            .zip(checkpoints)
                            .map(|((sel_idx, _, warmup), checkpoint)| {
                                let sp = analysis.selected[sel_idx];
                                PlannedPoint {
                                    sel_idx,
                                    interval: sp.interval,
                                    weight: sp.weight,
                                    interval_len: profile.intervals[sp.interval].len,
                                    warmup,
                                    checkpoint,
                                }
                            })
                            .collect();
                        Ok(Arc::new(CheckpointSet { profile, analysis, points }))
                    },
                )
            },
        )
    }

    /// Full-detailed-simulation baseline for one (configuration,
    /// workload), simulated at most once per store — the methodology
    /// benches compare many SimPoint variants against this single run.
    ///
    /// # Errors
    ///
    /// Propagates [`run_full`] failures.
    pub fn full_run(
        &self,
        cfg: &BoomConfig,
        workload: &Workload,
    ) -> Result<Arc<FullRunResult>, FlowError> {
        let c = &self.counters;
        let key = (config_fingerprint(cfg), workload.program.fingerprint());
        memoize(
            &self.full_runs,
            key,
            MemoMeters {
                computed: &c.full_run_computed,
                hits: &c.full_run_hits,
                error_replays: &c.error_replays,
                inflight: &c.inflight_dedup_hits,
                spent_us: &c.full_run_us,
            },
            || (run_full(cfg, workload).map(Arc::new), false),
        )
    }

    /// Adds detailed-simulation wall-clock (one point's attempt span) to
    /// the stage accounting.
    pub(crate) fn charge_detailed_us(&self, us: u64) {
        self.counters.detailed_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Looks up a completed sweep point outcome; a hit means a promoted
    /// (or resumed) config re-reads its earlier measurement instead of
    /// resimulating it.
    pub(crate) fn cached_point(&self, key: &PointKey) -> Option<crate::flow::PointOutcome> {
        let hit = lock(&self.points).get(key).cloned();
        if hit.is_some() {
            self.counters.sweep_point_hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Records a sweep point outcome (fresh simulation or journal
    /// replay) into the point-outcome memo.
    pub(crate) fn record_point(&self, key: PointKey, outcome: &crate::flow::PointOutcome) {
        if lock(&self.points).insert(key, outcome.clone()).is_none() {
            self.counters.sweep_point_stored.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Runs one supervised point through the cross-request single-flight
    /// map: the first caller of `key` computes, concurrent callers of an
    /// in-flight key block and share the result (`inflight_dedup_hits`),
    /// and later callers reuse the completed slot (`warm_store_hits`).
    pub(crate) fn singleflight_point(
        &self,
        key: SharedPointKey,
        compute: impl FnOnce() -> crate::flow::PointOutcome,
    ) -> crate::flow::PointOutcome {
        // The completion check happens under the map lock so "found it in
        // flight" is decided atomically with the slot lookup (observable
        // and testable without timing races).
        let (slot, pre_done) = {
            let mut g = lock(&self.flights);
            let slot = g.entry(key).or_default().clone();
            let pre_done = slot.get().is_some();
            (slot, pre_done)
        };
        let mut ran = false;
        let result = slot.get_or_init(|| {
            ran = true;
            compute()
        });
        if !ran {
            let c = &self.counters;
            if pre_done {
                c.warm_store_hits.fetch_add(1, Ordering::Relaxed);
            } else {
                c.inflight_dedup_hits.fetch_add(1, Ordering::Relaxed);
            }
        }
        result.clone()
    }

    /// Snapshot of the per-stage counters and wall-clock totals.
    pub fn stats(&self) -> CacheStats {
        let c = &self.counters;
        let ms = |a: &AtomicU64| a.load(Ordering::Relaxed) as f64 / 1000.0;
        CacheStats {
            profile_computed: c.profile_computed.load(Ordering::Relaxed),
            profile_hits: c.profile_hits.load(Ordering::Relaxed),
            cluster_computed: c.cluster_computed.load(Ordering::Relaxed),
            cluster_hits: c.cluster_hits.load(Ordering::Relaxed),
            checkpoint_computed: c.checkpoint_computed.load(Ordering::Relaxed),
            checkpoint_hits: c.checkpoint_hits.load(Ordering::Relaxed),
            full_run_computed: c.full_run_computed.load(Ordering::Relaxed),
            full_run_hits: c.full_run_hits.load(Ordering::Relaxed),
            profile_ms: ms(&c.profile_us),
            cluster_ms: ms(&c.cluster_us),
            checkpoint_ms: ms(&c.checkpoint_us),
            detailed_ms: ms(&c.detailed_us),
            full_run_ms: ms(&c.full_run_us),
            disk_hits: c.disk_hits.load(Ordering::Relaxed),
            disk_misses: c.disk_misses.load(Ordering::Relaxed),
            disk_writes: c.disk_writes.load(Ordering::Relaxed),
            disk_quarantined: c.disk_quarantined.load(Ordering::Relaxed),
            error_replays: c.error_replays.load(Ordering::Relaxed),
            sweep_point_hits: c.sweep_point_hits.load(Ordering::Relaxed),
            sweep_point_stored: c.sweep_point_stored.load(Ordering::Relaxed),
            inflight_dedup_hits: c.inflight_dedup_hits.load(Ordering::Relaxed),
            warm_store_hits: c.warm_store_hits.load(Ordering::Relaxed),
        }
    }
}

/// FNV-1a over a word sequence — the disk-cache key hash of a composite
/// in-memory key.
fn hash_words(words: &[u64]) -> u64 {
    let mut bytes = Vec::with_capacity(words.len() * 8);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    fnv1a(&bytes)
}

/// Serializes the planned points of a [`CheckpointSet`] (the profile and
/// analysis have their own disk entries and are re-attached on load).
fn encode_points(w: &mut ByteWriter, points: &[PlannedPoint]) {
    w.put_usize(points.len());
    for p in points {
        w.put_usize(p.sel_idx);
        w.put_usize(p.interval);
        w.put_f64(p.weight);
        w.put_u64(p.interval_len);
        w.put_u64(p.warmup);
        p.checkpoint.encode(w);
    }
}

/// Decodes the planned points written by [`encode_points`], re-wrapping
/// each checkpoint in a fresh [`Arc`] for cross-thread sharing.
fn decode_points(r: &mut ByteReader<'_>) -> Result<Vec<PlannedPoint>, CodecError> {
    let n = r.seq_len(40)?;
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        let sel_idx = r.usize()?;
        let interval = r.usize()?;
        let weight = r.f64()?;
        let interval_len = r.u64()?;
        let warmup = r.u64()?;
        let checkpoint = Arc::new(Checkpoint::decode(r)?);
        points.push(PlannedPoint { sel_idx, interval, weight, interval_len, warmup, checkpoint });
    }
    Ok(points)
}

/// Stable fingerprint of a configuration for full-run baseline keying
/// (also part of the campaign journal's matrix fingerprint).
/// `BoomConfig`'s `Debug` rendering covers every field, so hashing it
/// distinguishes ablation variants that share a preset name.
pub(crate) fn config_fingerprint(cfg: &BoomConfig) -> u64 {
    fnv1a(format!("{cfg:?}").as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_workloads::{by_name, Scale};
    use simpoint::SimPointConfig;

    fn quick_flow() -> FlowConfig {
        FlowConfig {
            simpoint: SimPointConfig { max_k: 4, restarts: 1, ..SimPointConfig::default() },
            warmup_insts: 500,
            ..FlowConfig::default()
        }
    }

    #[test]
    fn stages_compute_once_and_then_hit() {
        let store = ArtifactStore::new();
        let w = by_name("bitcount", Scale::Test).unwrap();
        let flow = quick_flow();
        let a = store.checkpoints(&w, &flow).unwrap();
        let b = store.checkpoints(&w, &flow).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must share the artifact");
        let s = store.stats();
        assert_eq!(s.profile_computed, 1);
        assert_eq!(s.cluster_computed, 1);
        assert_eq!(s.checkpoint_computed, 1);
        assert_eq!(s.checkpoint_hits, 1);
        // Checkpoints are shared allocations, not clones.
        for p in &a.points {
            assert!(Arc::strong_count(&p.checkpoint) >= 1);
        }
    }

    #[test]
    fn distinct_warmups_share_profile_and_analysis() {
        let store = ArtifactStore::new();
        let w = by_name("bitcount", Scale::Test).unwrap();
        let f1 = quick_flow();
        let f2 = FlowConfig { warmup_insts: 100, ..quick_flow() };
        store.checkpoints(&w, &f1).unwrap();
        store.checkpoints(&w, &f2).unwrap();
        let s = store.stats();
        assert_eq!(s.profile_computed, 1, "warm-up must not invalidate the profile");
        assert_eq!(s.cluster_computed, 1, "warm-up must not invalidate the analysis");
        assert_eq!(s.checkpoint_computed, 2, "warm-up is part of the checkpoint key");
    }

    #[test]
    fn profiling_errors_are_cached_and_replayed() {
        use rv_isa::asm::Assembler;
        use rv_isa::reg::Reg::*;
        let mut a = Assembler::new();
        a.li(A0, 9);
        a.exit();
        let broken = Workload {
            name: "broken",
            suite: rv_workloads::Suite::MiBench,
            program: a.assemble().unwrap(),
            interval_size: 100,
        };
        let store = ArtifactStore::new();
        for _ in 0..2 {
            match store.profile(&broken, &quick_flow()) {
                Err(FlowError::SelfCheckFailed(9)) => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        let s = store.stats();
        assert_eq!(s.profile_computed, 1, "the failing profile must not be re-run");
        assert_eq!(s.profile_hits, 1);
    }

    #[test]
    fn singleflight_point_counts_inflight_and_warm_hits() {
        use crate::supervisor::{FailureKind, PointFailure};
        let store = Arc::new(ArtifactStore::new());
        let key: super::SharedPointKey = ((1, 2, 3, 4, 0, 0), 42);
        let outcome = |tag: &str| {
            Err(PointFailure {
                simpoint: 0,
                interval: 0,
                weight: 0.0,
                attempts: 1,
                kind: FailureKind::Panicked { message: tag.to_string() },
            })
        };
        // First caller holds the computation open until the second caller
        // has provably entered the lookup, so the second is guaranteed to
        // find the key in flight (not completed).
        let (entered_tx, entered_rx) = std::sync::mpsc::channel::<()>();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let first = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                store.singleflight_point(key, || {
                    entered_tx.send(()).expect("signal entry");
                    release_rx.recv().expect("await release");
                    outcome("first")
                })
            })
        };
        entered_rx.recv().expect("first caller entered compute");
        let second = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || store.singleflight_point(key, || outcome("second")))
        };
        // The second caller has looked up the slot (and decided "in
        // flight", since the first has not completed) exactly when the
        // slot's refcount reaches 3: map + first caller + second caller.
        // Only then is the first computation released.
        loop {
            let entered =
                lock(&store.flights).get(&key).is_some_and(|slot| Arc::strong_count(slot) >= 3);
            if entered {
                break;
            }
            std::thread::yield_now();
        }
        release_tx.send(()).expect("release first");
        let a = first.join().expect("first caller");
        let b = second.join().expect("second caller");
        // Single computation: both see the first caller's outcome.
        for r in [&a, &b] {
            match r {
                Err(f) => assert!(matches!(
                    &f.kind,
                    FailureKind::Panicked { message } if message == "first"
                )),
                Ok(_) => panic!("synthetic outcome must be a failure"),
            }
        }
        // Third lookup after completion: a warm-store hit.
        let c = store.singleflight_point(key, || outcome("third"));
        assert!(c.is_err());
        let s = store.stats();
        assert_eq!(s.inflight_dedup_hits, 1, "second caller blocked on the in-flight slot");
        assert_eq!(s.warm_store_hits, 1, "third caller reused the completed slot");
    }

    #[test]
    fn full_run_baseline_is_cached_per_config() {
        let store = ArtifactStore::new();
        let w = by_name("bitcount", Scale::Test).unwrap();
        let medium = BoomConfig::medium();
        let a = store.full_run(&medium, &w).unwrap();
        let b = store.full_run(&medium, &w).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        store.full_run(&BoomConfig::large(), &w).unwrap();
        let s = store.stats();
        assert_eq!(s.full_run_computed, 2);
        assert_eq!(s.full_run_hits, 1);
    }
}
