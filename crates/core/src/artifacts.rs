//! Staged, shareable artifacts of the SimPoint flow.
//!
//! The front half of the flow — functional profiling, phase analysis, and
//! architectural checkpoint capture — is *configuration-independent* by
//! construction: BBVs, cluster assignments, and architectural snapshots
//! depend only on the workload and the flow parameters, never on the
//! microarchitecture being evaluated (the same property the paper's
//! Spike/gem5 artifacts exploit). A campaign over many configurations
//! therefore needs each of those stages exactly once per workload.
//!
//! [`ArtifactStore`] memoizes the three stages behind a thread-safe,
//! compute-exactly-once cache:
//!
//! * **Profile** — [`BbvProfile`], keyed by (program fingerprint,
//!   interval size, profiling budget);
//! * **SimPointAnalysis** — [`SimPointAnalysis`], keyed by the profile
//!   key plus [`SimPointConfig::cache_fingerprint`];
//! * **CheckpointSet** — [`CheckpointSet`], keyed by the analysis key
//!   plus the warm-up length. Checkpoints are held behind [`Arc`]
//!   ([`rv_isa::checkpoint::SharedCheckpoint`]) so the memory images are
//!   shared — not cloned — across configurations and worker threads.
//!
//! A full-run baseline cache ([`ArtifactStore::full_run`]) rides along for
//! the methodology benches that compare SimPoint against full detailed
//! simulation: the baseline is (configuration, workload)-keyed and only
//! ever simulated once per store.
//!
//! Every stage records compute/hit counters and wall-clock totals
//! ([`CacheStats`]), which the campaign scheduler surfaces through
//! [`CampaignReport`](crate::CampaignReport) — the reuse win is
//! observable, not assumed.

use crate::flow::{run_full, FlowConfig, FlowError, FullRunResult};
use boom_uarch::BoomConfig;
use rv_isa::bbv::BbvProfile;
use rv_isa::checkpoint::{checkpoints_at_shared, SharedCheckpoint};
use rv_workloads::Workload;
use simpoint::{analyze, SimPointAnalysis};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Cache key of a profiling artifact.
type ProfileKey = (u64, u64, u64);
/// Cache key of a phase-analysis artifact.
type AnalysisKey = (ProfileKey, u64);
/// Cache key of a checkpoint-set artifact.
type CheckpointKey = (AnalysisKey, u64);
/// Cache key of a full-run baseline.
type FullRunKey = (u64, u64);

/// A compute-exactly-once slot: concurrent callers of the same key block
/// on the first computation and then share its result.
type Slot<T> = Arc<OnceLock<Result<T, FlowError>>>;

/// One selected simulation point, fully planned for detailed simulation:
/// its checkpoint (shared, not cloned), warm-up length, and measurement
/// window.
#[derive(Clone, Debug)]
pub struct PlannedPoint {
    /// Index among the analysis' selected points.
    pub sel_idx: usize,
    /// Index of the represented interval in the BBV profile.
    pub interval: usize,
    /// Cluster weight (fraction of execution).
    pub weight: f64,
    /// Length of the measured interval in dynamic instructions.
    pub interval_len: u64,
    /// Warm-up instructions before the measured interval (clamped to the
    /// checkpoint's position).
    pub warmup: u64,
    /// Architectural snapshot at (interval start − warm-up), shared
    /// across every configuration that simulates this point.
    pub checkpoint: SharedCheckpoint,
}

/// The complete configuration-independent front half of the flow for one
/// (workload, flow-parameters) pair: profile, analysis, and one planned
/// point per selected simulation point.
#[derive(Clone, Debug)]
pub struct CheckpointSet {
    /// The BBV profile the analysis was derived from.
    pub profile: Arc<BbvProfile>,
    /// The phase analysis (selected points, weights, coverage, speedup).
    pub analysis: Arc<SimPointAnalysis>,
    /// Planned points in checkpoint-capture order (ascending position in
    /// the dynamic instruction stream) — the order detailed simulation
    /// and result assembly use.
    pub points: Vec<PlannedPoint>,
}

/// Per-stage compute/hit counters and wall-clock totals of an
/// [`ArtifactStore`] (monotonic; snapshot with [`ArtifactStore::stats`]).
///
/// "Computed" counts closure executions (cache misses that did the work);
/// "hits" counts lookups served from the cache, including the store's own
/// internal lookups (a checkpoint-set computation re-reads its profile
/// and analysis through the cache).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CacheStats {
    /// Profiling passes executed.
    pub profile_computed: u64,
    /// Profiling lookups served from cache.
    pub profile_hits: u64,
    /// Phase analyses executed.
    pub cluster_computed: u64,
    /// Phase-analysis lookups served from cache.
    pub cluster_hits: u64,
    /// Checkpoint-capture passes executed.
    pub checkpoint_computed: u64,
    /// Checkpoint-set lookups served from cache.
    pub checkpoint_hits: u64,
    /// Full-run baselines simulated.
    pub full_run_computed: u64,
    /// Full-run lookups served from cache.
    pub full_run_hits: u64,
    /// Wall-clock spent profiling, in ms.
    pub profile_ms: f64,
    /// Wall-clock spent clustering, in ms.
    pub cluster_ms: f64,
    /// Wall-clock spent capturing checkpoints, in ms.
    pub checkpoint_ms: f64,
    /// Wall-clock spent in detailed point simulation, in ms (accumulated
    /// across worker threads; not a cached stage).
    pub detailed_ms: f64,
    /// Wall-clock spent simulating full-run baselines, in ms.
    pub full_run_ms: f64,
}

#[derive(Default)]
struct Counters {
    profile_computed: AtomicU64,
    profile_hits: AtomicU64,
    cluster_computed: AtomicU64,
    cluster_hits: AtomicU64,
    checkpoint_computed: AtomicU64,
    checkpoint_hits: AtomicU64,
    full_run_computed: AtomicU64,
    full_run_hits: AtomicU64,
    profile_us: AtomicU64,
    cluster_us: AtomicU64,
    checkpoint_us: AtomicU64,
    detailed_us: AtomicU64,
    full_run_us: AtomicU64,
}

/// Thread-safe memoization of the flow's configuration-independent
/// stages, plus the full-run baseline cache and stage accounting.
///
/// One store per campaign (or per bench process) is the intended scope:
/// artifacts live for the store's lifetime, and [`CacheStats`] then
/// describes exactly that campaign's reuse.
#[derive(Default)]
pub struct ArtifactStore {
    profiles: Mutex<HashMap<ProfileKey, Slot<Arc<BbvProfile>>>>,
    analyses: Mutex<HashMap<AnalysisKey, Slot<Arc<SimPointAnalysis>>>>,
    checkpoints: Mutex<HashMap<CheckpointKey, Slot<Arc<CheckpointSet>>>>,
    full_runs: Mutex<HashMap<FullRunKey, Slot<Arc<FullRunResult>>>>,
    counters: Counters,
}

/// Locks a mutex, recovering the guard if a previous holder panicked (the
/// maps hold only completed insertions, so the state is always valid).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Fetches `key` from `map`, computing it exactly once across threads:
/// concurrent callers of an in-flight key block until the first
/// computation finishes and then share its (cloned) result.
fn memoize<K, T>(
    map: &Mutex<HashMap<K, Slot<T>>>,
    key: K,
    computed: &AtomicU64,
    hits: &AtomicU64,
    spent_us: &AtomicU64,
    compute: impl FnOnce() -> Result<T, FlowError>,
) -> Result<T, FlowError>
where
    K: Eq + Hash,
    T: Clone,
{
    let slot = lock(map).entry(key).or_default().clone();
    let mut ran = false;
    let result = slot.get_or_init(|| {
        ran = true;
        let t0 = Instant::now();
        let r = compute();
        spent_us.fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
        r
    });
    if ran {
        computed.fetch_add(1, Ordering::Relaxed);
    } else {
        hits.fetch_add(1, Ordering::Relaxed);
    }
    result.clone()
}

impl ArtifactStore {
    /// Creates an empty store.
    pub fn new() -> ArtifactStore {
        ArtifactStore::default()
    }

    fn profile_key(workload: &Workload, flow: &FlowConfig) -> ProfileKey {
        (workload.program.fingerprint(), workload.interval_size, flow.max_profile_insts)
    }

    fn analysis_key(workload: &Workload, flow: &FlowConfig) -> AnalysisKey {
        (Self::profile_key(workload, flow), flow.simpoint.cache_fingerprint())
    }

    fn checkpoint_key(workload: &Workload, flow: &FlowConfig) -> CheckpointKey {
        (Self::analysis_key(workload, flow), flow.warmup_insts)
    }

    /// Stage 1 — the workload's BBV profile, computed at most once per
    /// (program, interval size, profiling budget).
    ///
    /// # Errors
    ///
    /// Propagates profiling failures (simulator fault, no exit, failed
    /// self-verification); the error is cached and replayed to every
    /// caller of the same key.
    pub fn profile(
        &self,
        workload: &Workload,
        flow: &FlowConfig,
    ) -> Result<Arc<BbvProfile>, FlowError> {
        let c = &self.counters;
        memoize(
            &self.profiles,
            Self::profile_key(workload, flow),
            &c.profile_computed,
            &c.profile_hits,
            &c.profile_us,
            || crate::flow::profile(workload, flow.max_profile_insts).map(Arc::new),
        )
    }

    /// Stage 2 — the SimPoint phase analysis over the workload's profile,
    /// computed at most once per (profile, SimPoint config).
    ///
    /// # Errors
    ///
    /// Propagates a profiling failure from stage 1.
    pub fn analysis(
        &self,
        workload: &Workload,
        flow: &FlowConfig,
    ) -> Result<Arc<SimPointAnalysis>, FlowError> {
        let c = &self.counters;
        memoize(
            &self.analyses,
            Self::analysis_key(workload, flow),
            &c.cluster_computed,
            &c.cluster_hits,
            &c.cluster_us,
            || {
                let bbv = self.profile(workload, flow)?;
                Ok(Arc::new(analyze(&bbv, &flow.simpoint)))
            },
        )
    }

    /// Stage 3 — the planned checkpoint set: one architectural snapshot
    /// per selected point at (interval start − warm-up), captured in a
    /// single functional pass at most once per (analysis, warm-up).
    ///
    /// # Errors
    ///
    /// Propagates stage 1/2 failures and checkpoint-capture simulator
    /// faults.
    pub fn checkpoints(
        &self,
        workload: &Workload,
        flow: &FlowConfig,
    ) -> Result<Arc<CheckpointSet>, FlowError> {
        let c = &self.counters;
        memoize(
            &self.checkpoints,
            Self::checkpoint_key(workload, flow),
            &c.checkpoint_computed,
            &c.checkpoint_hits,
            &c.checkpoint_us,
            || {
                let profile = self.profile(workload, flow)?;
                let analysis = self.analysis(workload, flow)?;
                let starts = analysis.selected_starts(&profile);
                // Capture at (interval start − warm-up), batched in one
                // pass; the capture cursor only moves forward, so sort by
                // position. This order is also the flow's point order.
                let mut targets: Vec<(usize, u64, u64)> = starts
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| {
                        let warm = flow.warmup_insts.min(s);
                        (i, s - warm, warm)
                    })
                    .collect();
                targets.sort_by_key(|&(_, at, _)| at);
                let sorted: Vec<u64> = targets.iter().map(|&(_, at, _)| at).collect();
                let checkpoints = checkpoints_at_shared(&workload.program, &sorted)?;
                let points = targets
                    .into_iter()
                    .zip(checkpoints)
                    .map(|((sel_idx, _, warmup), checkpoint)| {
                        let sp = analysis.selected[sel_idx];
                        PlannedPoint {
                            sel_idx,
                            interval: sp.interval,
                            weight: sp.weight,
                            interval_len: profile.intervals[sp.interval].len,
                            warmup,
                            checkpoint,
                        }
                    })
                    .collect();
                Ok(Arc::new(CheckpointSet { profile, analysis, points }))
            },
        )
    }

    /// Full-detailed-simulation baseline for one (configuration,
    /// workload), simulated at most once per store — the methodology
    /// benches compare many SimPoint variants against this single run.
    ///
    /// # Errors
    ///
    /// Propagates [`run_full`] failures.
    pub fn full_run(
        &self,
        cfg: &BoomConfig,
        workload: &Workload,
    ) -> Result<Arc<FullRunResult>, FlowError> {
        let c = &self.counters;
        let key = (config_fingerprint(cfg), workload.program.fingerprint());
        memoize(
            &self.full_runs,
            key,
            &c.full_run_computed,
            &c.full_run_hits,
            &c.full_run_us,
            || run_full(cfg, workload).map(Arc::new),
        )
    }

    /// Adds detailed-simulation wall-clock (one point's attempt span) to
    /// the stage accounting.
    pub(crate) fn charge_detailed_us(&self, us: u64) {
        self.counters.detailed_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Snapshot of the per-stage counters and wall-clock totals.
    pub fn stats(&self) -> CacheStats {
        let c = &self.counters;
        let ms = |a: &AtomicU64| a.load(Ordering::Relaxed) as f64 / 1000.0;
        CacheStats {
            profile_computed: c.profile_computed.load(Ordering::Relaxed),
            profile_hits: c.profile_hits.load(Ordering::Relaxed),
            cluster_computed: c.cluster_computed.load(Ordering::Relaxed),
            cluster_hits: c.cluster_hits.load(Ordering::Relaxed),
            checkpoint_computed: c.checkpoint_computed.load(Ordering::Relaxed),
            checkpoint_hits: c.checkpoint_hits.load(Ordering::Relaxed),
            full_run_computed: c.full_run_computed.load(Ordering::Relaxed),
            full_run_hits: c.full_run_hits.load(Ordering::Relaxed),
            profile_ms: ms(&c.profile_us),
            cluster_ms: ms(&c.cluster_us),
            checkpoint_ms: ms(&c.checkpoint_us),
            detailed_ms: ms(&c.detailed_us),
            full_run_ms: ms(&c.full_run_us),
        }
    }
}

/// Stable fingerprint of a configuration for full-run baseline keying.
/// `BoomConfig`'s `Debug` rendering covers every field, so hashing it
/// distinguishes ablation variants that share a preset name.
fn config_fingerprint(cfg: &BoomConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{cfg:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_workloads::{by_name, Scale};
    use simpoint::SimPointConfig;

    fn quick_flow() -> FlowConfig {
        FlowConfig {
            simpoint: SimPointConfig { max_k: 4, restarts: 1, ..SimPointConfig::default() },
            warmup_insts: 500,
            ..FlowConfig::default()
        }
    }

    #[test]
    fn stages_compute_once_and_then_hit() {
        let store = ArtifactStore::new();
        let w = by_name("bitcount", Scale::Test).unwrap();
        let flow = quick_flow();
        let a = store.checkpoints(&w, &flow).unwrap();
        let b = store.checkpoints(&w, &flow).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must share the artifact");
        let s = store.stats();
        assert_eq!(s.profile_computed, 1);
        assert_eq!(s.cluster_computed, 1);
        assert_eq!(s.checkpoint_computed, 1);
        assert_eq!(s.checkpoint_hits, 1);
        // Checkpoints are shared allocations, not clones.
        for p in &a.points {
            assert!(Arc::strong_count(&p.checkpoint) >= 1);
        }
    }

    #[test]
    fn distinct_warmups_share_profile_and_analysis() {
        let store = ArtifactStore::new();
        let w = by_name("bitcount", Scale::Test).unwrap();
        let f1 = quick_flow();
        let f2 = FlowConfig { warmup_insts: 100, ..quick_flow() };
        store.checkpoints(&w, &f1).unwrap();
        store.checkpoints(&w, &f2).unwrap();
        let s = store.stats();
        assert_eq!(s.profile_computed, 1, "warm-up must not invalidate the profile");
        assert_eq!(s.cluster_computed, 1, "warm-up must not invalidate the analysis");
        assert_eq!(s.checkpoint_computed, 2, "warm-up is part of the checkpoint key");
    }

    #[test]
    fn profiling_errors_are_cached_and_replayed() {
        use rv_isa::asm::Assembler;
        use rv_isa::reg::Reg::*;
        let mut a = Assembler::new();
        a.li(A0, 9);
        a.exit();
        let broken = Workload {
            name: "broken",
            suite: rv_workloads::Suite::MiBench,
            program: a.assemble().unwrap(),
            interval_size: 100,
        };
        let store = ArtifactStore::new();
        for _ in 0..2 {
            match store.profile(&broken, &quick_flow()) {
                Err(FlowError::SelfCheckFailed(9)) => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        let s = store.stats();
        assert_eq!(s.profile_computed, 1, "the failing profile must not be re-run");
        assert_eq!(s.profile_hits, 1);
    }

    #[test]
    fn full_run_baseline_is_cached_per_config() {
        let store = ArtifactStore::new();
        let w = by_name("bitcount", Scale::Test).unwrap();
        let medium = BoomConfig::medium();
        let a = store.full_run(&medium, &w).unwrap();
        let b = store.full_run(&medium, &w).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        store.full_run(&BoomConfig::large(), &w).unwrap();
        let s = store.stats();
        assert_eq!(s.full_run_computed, 2);
        assert_eq!(s.full_run_hits, 1);
    }
}
